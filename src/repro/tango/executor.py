"""The multiprocessor trace generator (the repo's Tango Lite equivalent).

Runs P thread programs on a simulated shared-memory multiprocessor and
produces, for each traced processor, a dynamic instruction trace annotated
with effective addresses, memory latencies, and synchronization stall
times — the input the trace-driven processor simulators consume.

Architecture modelled (paper §3.2):

* P in-order processors with blocking reads; writes go to a write buffer
  and their latency is hidden (the host runs release consistency), but the
  write's *miss penalty* is still recorded in the trace for the downstream
  processor models;
* per-processor direct-mapped write-back caches, invalidation coherence,
  1-cycle hits, and a fixed miss penalty with no network contention by
  default (``network="ideal"``); with ``network="crossbar"``/``"mesh"``
  the :mod:`repro.net` subsystem times each miss through a contended
  interconnect and directory instead, and the variable latencies land
  in the traces' ``stall`` column;
* ANL-macro synchronization handled by :class:`~repro.sync.SyncManager`.

Scheduling uses per-thread virtual time: the runnable thread with the
smallest clock executes next (batched up to the next thread's clock to cut
scheduler overhead), which is deterministic and approximates the global
interleaving a real machine would produce.

Two execution engines produce identical results:

* the **compiled** engine (default) dispatches through the specialised
  closures :mod:`repro.isa.compiled` built at ``Program.seal()`` time —
  one closure call per dynamic instruction, no opcode re-decoding, and
  trace rows appended column-wise as flat ints;
* the **reference** engine (``compiled=False``) steps
  :func:`~repro.tango.interp.execute_instruction` per instruction.  It is
  the semantic oracle the differential tests compare against.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..isa import MemClass, Op, Program
from ..mem import CoherentMemorySystem, MemoryError_, SharedMemory
from ..net import build_network
from ..sync import SyncManager, Wakeup
from .interp import ExecutionError, ThreadState, execute_instruction
from .stats import CpuStats, RunStats
from .trace import Trace

_SYNC_OPS = frozenset({
    Op.LOCK, Op.UNLOCK, Op.BARRIER, Op.EVWAIT, Op.EVSET, Op.EVCLEAR,
})
_COND_BRANCHES = frozenset({
    Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLE, Op.BGT,
})

_MC_READ = int(MemClass.READ)
_MC_WRITE = int(MemClass.WRITE)
_MC_RELEASE = int(MemClass.RELEASE)
_OP_LW = int(Op.LW)
_OP_SW = int(Op.SW)


class DeadlockError(Exception):
    """All runnable threads are blocked on synchronization."""


class StepLimitExceeded(Exception):
    """The run exceeded the configured instruction budget."""


@dataclass
class MultiprocessorConfig:
    """Knobs of the simulated multiprocessor (defaults = the paper's)."""

    n_cpus: int = 16
    cache_size: int = 64 * 1024
    line_size: int = 16
    miss_penalty: int = 50
    #: Latency of touching a (remote) synchronization variable; the paper
    #: charges one memory latency.  ``None`` means "same as miss_penalty".
    sync_access_latency: int | None = None
    #: Interconnect timing backend: "ideal" (fixed miss_penalty, the
    #: paper's model), "crossbar", or "mesh" (repro.net contention).
    network: str = "ideal"
    #: Optional repro.net.NetworkConfig overriding the timing defaults.
    network_config: object | None = None
    #: Which processors get a full trace (all get statistics).
    trace_cpus: tuple[int, ...] = (0,)
    #: Record the synchronization schedule (lock handoffs, event grants,
    #: barrier episodes) as cross-processor wait edges for the
    #: co-simulation engine's live sync mode (repro.cosim).
    record_sync_schedule: bool = False
    #: Global retired-instruction budget, a runaway-program backstop.
    max_instructions: int = 100_000_000

    @property
    def sync_latency(self) -> int:
        if self.sync_access_latency is None:
            return self.miss_penalty
        return self.sync_access_latency


@dataclass
class RunResult:
    """Everything a multiprocessor run produces."""

    config: MultiprocessorConfig
    traces: dict[int, Trace]
    stats: RunStats
    memory: SharedMemory
    memsys: CoherentMemorySystem
    sync: SyncManager
    #: The recorded sync schedule (config.record_sync_schedule), or None.
    sync_schedule: object | None = None

    def trace(self, cpu: int = 0) -> Trace:
        return self.traces[cpu]


class TangoExecutor:
    """Executes thread programs and generates annotated traces."""

    def __init__(
        self,
        programs: list[Program],
        config: MultiprocessorConfig | None = None,
        memory: SharedMemory | None = None,
        compiled: bool = True,
        recorder=None,
        probe=None,
    ) -> None:
        self.config = config or MultiprocessorConfig()
        if len(programs) != self.config.n_cpus:
            raise ValueError(
                f"got {len(programs)} programs for "
                f"{self.config.n_cpus} processors"
            )
        self.compiled = compiled
        self.memory = memory if memory is not None else SharedMemory()
        self.network = build_network(
            self.config.network,
            self.config.n_cpus,
            self.config.line_size,
            self.config.network_config,
        )
        self.memsys = CoherentMemorySystem(
            n_cpus=self.config.n_cpus,
            cache_size=self.config.cache_size,
            line_size=self.config.line_size,
            miss_penalty=self.config.miss_penalty,
            network=self.network,
        )
        self.sync = SyncManager(self.config.n_cpus)
        self.sync_recorder = None
        if self.config.record_sync_schedule:
            from ..sync.schedule import SyncScheduleRecorder

            self.sync_recorder = SyncScheduleRecorder(self.config.n_cpus)
        self.threads = [
            ThreadState(tid=i, program=p.seal())
            for i, p in enumerate(programs)
        ]
        self.cpu_stats = [CpuStats(cpu=i) for i in range(self.config.n_cpus)]
        self.traces = {
            cpu: Trace(cpu=cpu) for cpu in self.config.trace_cpus
        }
        self._steps = 0
        # Opt-in consistency-verification hook (repro.verify): records
        # every performed load/store/sync and listens for coherence
        # events.  None keeps the hot paths untouched.
        self.recorder = recorder
        if recorder is not None:
            recorder.bind(self.config.n_cpus)
            self.memsys.attach_listener(recorder)
        # Opt-in observability hook (repro.obs): per-miss histograms and
        # coherence counters during the run, everything else published
        # after it.  Purely observational — results are byte-identical
        # with or without a probe.
        self.probe = probe if probe is not None and probe.enabled else None
        if self.probe is not None:
            self.memsys.attach_probe(self.probe)
            if self.network is not None:
                self.network.attach_probe(self.probe)

    # -- trace helpers ------------------------------------------------------

    def _emit(
        self,
        tid: int,
        instr,
        pc: int,
        next_pc: int,
        addr: int = -1,
        stall: int = 0,
        wait: int = 0,
        mem_class: MemClass = MemClass.NONE,
    ) -> None:
        trace = self.traces.get(tid)
        if trace is None:
            return
        # Flat ints straight into the column arrays — no per-row
        # TraceRecord materialization on the emit path.
        trace.append_row(
            int(instr.op),
            pc,
            next_pc,
            -1 if instr.rd is None else instr.rd,
            -1 if instr.rs1 is None else instr.rs1,
            -1 if instr.rs2 is None else instr.rs2,
            addr,
            stall,
            wait,
            int(mem_class),
        )

    # -- synchronization completion -------------------------------------------

    def _finish_acquire(
        self,
        tid: int,
        clock: int,
        wait: int,
        op: Op,
        addr: int,
    ) -> int:
        """Complete a granted acquire-type op; returns the new clock."""
        state = self.threads[tid]
        stats = self.cpu_stats[tid]
        lat = self.config.sync_latency
        instr = state.program.instructions[state.pc]
        if op is Op.LOCK:
            stats.locks += 1
            mem_class = MemClass.ACQUIRE
        elif op is Op.EVWAIT:
            stats.wait_events += 1
            mem_class = MemClass.ACQUIRE
        else:  # BARRIER
            stats.barriers += 1
            mem_class = MemClass.BARRIER
        stats.acquire_wait_cycles += wait
        stats.acquire_access_cycles += lat
        stats.busy_cycles += 1
        state.instructions_executed += 1
        if self.recorder is not None:
            self.recorder.record(
                tid, state.pc, int(op), int(mem_class), addr
            )
        self._emit(
            tid, instr, state.pc, state.pc + 1,
            addr=addr, stall=lat, wait=wait, mem_class=mem_class,
        )
        rec = self.sync_recorder
        if rec is not None:
            if op is Op.BARRIER:
                rec.note_barrier(tid, addr)
            else:
                rec.note_acquire(
                    tid, "lock" if op is Op.LOCK else "event", addr
                )
        state.pc += 1
        return clock + 1 + lat

    def _wake(self, wakeup: Wakeup, op: Op, addr: int, heap: list) -> None:
        """Resume a thread blocked on ``op`` at ``addr``."""
        new_clock = self._finish_acquire(
            wakeup.tid, wakeup.grant_time, wakeup.wait, op, addr
        )
        heapq.heappush(heap, (new_clock, wakeup.tid))

    def _sync_step(
        self, tid: int, clock: int, heap: list
    ) -> tuple[int, bool]:
        """Execute the sync/HALT instruction at the thread's pc.

        Returns ``(clock, blocked)``; ``blocked`` means the thread must
        not be re-queued (it halted, or a wakeup will re-queue it later).
        Shared verbatim by the compiled and reference engines.
        """
        state = self.threads[tid]
        stats = self.cpu_stats[tid]
        lat = self.config.sync_latency
        instr = state.program.instructions[state.pc]
        op = instr.op

        if op is Op.HALT:
            state.halted = True
            stats.end_time = clock
            return clock, True

        addr = state.regs[instr.rs1]
        if op is Op.LOCK:
            if self.sync.acquire_lock(addr, tid, clock):
                clock = self._finish_acquire(tid, clock, 0, op, addr)
            else:
                return clock, True
        elif op is Op.UNLOCK:
            wakeup = self.sync.release_lock(addr, tid, clock)
            stats.unlocks += 1
            stats.release_access_cycles += lat
            stats.busy_cycles += 1
            state.instructions_executed += 1
            if self.recorder is not None:
                # Recorded before the wakeup so the handed-off acquire
                # sees this release as its synchronizes-with source.
                self.recorder.record(
                    tid, state.pc, int(op), _MC_RELEASE, addr
                )
            self._emit(
                tid, instr, state.pc, state.pc + 1,
                addr=addr, stall=lat, mem_class=MemClass.RELEASE,
            )
            if self.sync_recorder is not None:
                # Before the wakeup, so the handed-off acquire sees this
                # unlock as its source edge.
                self.sync_recorder.note_release(tid, "lock", addr)
            state.pc += 1
            clock += 1  # release latency hidden on the host
            if wakeup is not None:
                self._wake(wakeup, Op.LOCK, addr, heap)
        elif op is Op.BARRIER:
            wakeups = self.sync.barrier_arrive(addr, tid, clock)
            if wakeups is None:
                return clock, True
            if self.sync_recorder is not None:
                self.sync_recorder.open_episode(addr, len(wakeups))
            self_clock = None
            for wakeup in wakeups:
                if wakeup.tid == tid:
                    self_clock = self._finish_acquire(
                        tid, wakeup.grant_time, wakeup.wait, op, addr,
                    )
                else:
                    self._wake(wakeup, Op.BARRIER, addr, heap)
            clock = self_clock
        elif op is Op.EVWAIT:
            if self.sync.event_wait(addr, tid, clock):
                clock = self._finish_acquire(tid, clock, 0, op, addr)
            else:
                return clock, True
        elif op is Op.EVSET:
            wakeups = self.sync.event_set(addr, tid, clock)
            stats.set_events += 1
            stats.release_access_cycles += lat
            stats.busy_cycles += 1
            state.instructions_executed += 1
            if self.recorder is not None:
                self.recorder.record(
                    tid, state.pc, int(op), _MC_RELEASE, addr
                )
            self._emit(
                tid, instr, state.pc, state.pc + 1,
                addr=addr, stall=lat, mem_class=MemClass.RELEASE,
            )
            if self.sync_recorder is not None:
                self.sync_recorder.note_release(tid, "event", addr)
            state.pc += 1
            clock += 1
            for wakeup in wakeups:
                self._wake(wakeup, Op.EVWAIT, addr, heap)
        else:  # EVCLEAR
            self.sync.event_clear(addr)
            stats.busy_cycles += 1
            state.instructions_executed += 1
            if self.recorder is not None:
                self.recorder.record(
                    tid, state.pc, int(op), _MC_RELEASE, addr
                )
            self._emit(
                tid, instr, state.pc, state.pc + 1,
                addr=addr, stall=lat, mem_class=MemClass.RELEASE,
            )
            if self.sync_recorder is not None:
                # A clear enables no acquire: ordinal only.
                self.sync_recorder.note_release(tid, None, addr)
            state.pc += 1
            clock += 1
        self._steps += 1
        return clock, False

    # -- the run loops --------------------------------------------------------

    def run(self) -> RunResult:
        """Execute all threads to completion; returns the annotated result."""
        if self.compiled:
            self._run_compiled()
        else:
            self._run_reference()

        unfinished = [t.tid for t in self.threads if not t.halted]
        if unfinished:
            reasons = self.sync.blocked_threads()
            detail = ", ".join(
                f"t{tid}: {reasons.get(tid, 'not blocked on sync?')}"
                for tid in unfinished
            )
            raise DeadlockError(f"threads never finished — {detail}")

        run_stats = RunStats(
            cpus=self.cpu_stats,
            total_cycles=max(s.end_time for s in self.cpu_stats),
        )
        result = RunResult(
            config=self.config,
            traces=self.traces,
            stats=run_stats,
            memory=self.memory,
            memsys=self.memsys,
            sync=self.sync,
            sync_schedule=(
                None if self.sync_recorder is None
                else self.sync_recorder.schedule
            ),
        )
        if self.probe is not None:
            self.probe.publish_run(result)
        return result

    def _run_compiled(self) -> None:
        """Fast engine: closure dispatch + columnar emission.

        Timing, interleaving, statistics and traces are bit-identical to
        :meth:`_run_reference`.  Counters accumulate in per-thread plain
        lists and land in the :class:`CpuStats` objects once, at the end
        of the run (the flush commutes with the direct updates the sync
        helpers make mid-run); with lockstep threads the scheduler slices
        average barely over one instruction, so the slice prologue and
        epilogue are kept to a pc store and a retired-count flush.
        """
        config = self.config
        max_steps = config.max_instructions
        heappop = heapq.heappop
        heappushpop = heapq.heappushpop
        access_ht = self.memsys.access_ht
        words = self.memory.words
        doubles = self.memory.doubles
        rec = self.recorder

        ctxs = []
        # Per-thread counter lists: [busy, branches, reads, writes,
        # read_misses, read_stall, write_misses, write_stall].
        counters = [[0] * 8 for _ in range(config.n_cpus)]
        for tid in range(config.n_cpus):
            state = self.threads[tid]
            prog = state.program
            trace = self.traces.get(tid)
            ctxs.append((
                prog.kinds, prog.code, prog.trace_meta, state.regs,
                state, counters[tid],
                None if trace is None else trace.append_row,
                prog.name,
            ))

        heap = [(0, tid) for tid in range(config.n_cpus)]
        heapq.heapify(heap)
        item = heappop(heap)
        inf = float("inf")
        tid = item[1]
        kinds, code, meta, regs, state, c, emit, name = ctxs[tid]
        pc = state.pc
        n = 0

        try:
            while True:
                clock, tid = item
                kinds, code, meta, regs, state, c, emit, name = ctxs[tid]
                limit = heap[0][0] if heap else inf
                blocked = False
                pc = state.pc
                n = 0  # instructions retired on the fast path this slice
                steps_base = self._steps

                while clock <= limit:
                    kind = kinds[pc]
                    if kind == 0:  # plain ALU/FP
                        code[pc](regs)
                        if emit is not None:
                            m = meta[pc]
                            emit(m[0], pc, pc + 1, m[1], m[2], m[3],
                                 -1, 0, 0, 0)
                        pc += 1
                    elif kind == 3:  # load (host blocks on read misses)
                        addr = code[pc](regs, words, doubles)
                        hit, stall = access_ht(tid, addr, False, clock)
                        c[2] += 1
                        if not hit:
                            c[4] += 1
                            c[5] += stall
                            clock += stall
                        if emit is not None:
                            m = meta[pc]
                            emit(m[0], pc, pc + 1, m[1], m[2], m[3],
                                 addr, stall, 0, _MC_READ)
                        if rec is not None:
                            m = meta[pc]
                            if m[0] == _OP_LW:
                                rec.record(tid, pc, m[0], _MC_READ, addr,
                                           value=words.get(addr, 0))
                            else:
                                rec.record(tid, pc, m[0], _MC_READ, addr,
                                           value=doubles.get(addr, 0.0),
                                           wide=True)
                        pc += 1
                    elif kind == 1:  # conditional branch
                        nxt = code[pc](regs)
                        c[1] += 1
                        if emit is not None:
                            m = meta[pc]
                            emit(m[0], pc, nxt, m[1], m[2], m[3],
                                 -1, 0, 0, 0)
                        pc = nxt
                    elif kind == 4:  # store (write buffer hides latency)
                        addr = code[pc](regs, words, doubles)
                        hit, stall = access_ht(tid, addr, True, clock)
                        c[3] += 1
                        if not hit:
                            c[6] += 1
                            c[7] += stall
                        if emit is not None:
                            m = meta[pc]
                            emit(m[0], pc, pc + 1, m[1], m[2], m[3],
                                 addr, stall, 0, _MC_WRITE)
                        if rec is not None:
                            m = meta[pc]
                            if m[0] == _OP_SW:
                                rec.record(tid, pc, m[0], _MC_WRITE, addr,
                                           value=words.get(addr, 0))
                            else:
                                rec.record(tid, pc, m[0], _MC_WRITE, addr,
                                           value=doubles.get(addr, 0.0),
                                           wide=True)
                        pc += 1
                    elif kind == 2:  # jump
                        nxt = code[pc](regs)
                        if nxt < 0:
                            raise ExecutionError(
                                f"thread {tid}: pc {nxt} out of range "
                                f"in {name!r}"
                            )
                        if emit is not None:
                            m = meta[pc]
                            emit(m[0], pc, nxt, m[1], m[2], m[3],
                                 -1, 0, 0, 0)
                        pc = nxt
                    else:  # sync / HALT: leave the fast path
                        state.pc = pc
                        clock, blocked = self._sync_step(tid, clock, heap)
                        if blocked:
                            break
                        pc = state.pc
                        steps_base = self._steps
                        continue

                    clock += 1
                    n += 1
                    if steps_base + n > max_steps:
                        raise StepLimitExceeded(
                            f"exceeded {max_steps} instructions"
                        )

                state.pc = pc
                if n:
                    c[0] += n
                    self._steps += n
                    n = 0
                if blocked:
                    if not heap:
                        break
                    item = heappop(heap)
                else:
                    # push-then-pop fused: same schedule, one heap op.
                    item = heappushpop(heap, (clock, tid))
        except MemoryError_ as exc:
            # Misalignment faults carry only the address; add where the
            # access came from (same format as the reference engine).
            raise MemoryError_(
                f"{exc} (thread {tid}, pc {pc})"
            ) from None
        except (TypeError, IndexError) as exc:
            if not 0 <= pc < len(kinds):
                raise ExecutionError(
                    f"thread {tid}: pc {pc} out of range in {name!r}"
                ) from None
            instr = state.program.instructions[pc]
            raise ExecutionError(
                f"thread {tid}: fault at pc {pc} ({instr}): {exc}"
            ) from exc
        finally:
            # An exception leaves the faulting slice's progress
            # unflushed; account for it before the final merge.
            if n:
                state.pc = pc
                c[0] += n
                self._steps += n
            for t in range(config.n_cpus):
                cnt = counters[t]
                stats = self.cpu_stats[t]
                stats.busy_cycles += cnt[0]
                self.threads[t].instructions_executed += cnt[0]
                stats.cond_branches += cnt[1]
                stats.reads += cnt[2]
                stats.writes += cnt[3]
                stats.read_misses += cnt[4]
                stats.read_stall_cycles += cnt[5]
                stats.write_misses += cnt[6]
                stats.write_stall_cycles += cnt[7]

    def _run_reference(self) -> None:
        """Oracle engine: one ``execute_instruction`` call per instruction."""
        config = self.config
        heap: list[tuple[int, int]] = [
            (0, tid) for tid in range(config.n_cpus)
        ]
        heapq.heapify(heap)
        memsys = self.memsys
        memory = self.memory

        while heap:
            clock, tid = heapq.heappop(heap)
            state = self.threads[tid]
            stats = self.cpu_stats[tid]
            program = state.program.instructions
            limit = heap[0][0] if heap else float("inf")
            blocked = False

            while clock <= limit:
                instr = program[state.pc]
                op = instr.op

                if op in _SYNC_OPS or op is Op.HALT:
                    clock, blocked = self._sync_step(tid, clock, heap)
                    if blocked:
                        break
                    continue

                pc = state.pc
                try:
                    result = execute_instruction(state, memory)
                except MemoryError_ as exc:
                    raise MemoryError_(
                        f"{exc} (thread {tid}, pc {pc})"
                    ) from None
                stats.busy_cycles += 1
                self._steps += 1
                cost = 1

                if result.addr >= 0:
                    access = memsys.access(
                        tid, result.addr, result.is_write, clock
                    )
                    if result.is_write:
                        if not access.hit:
                            stats.write_misses += 1
                            stats.write_stall_cycles += access.stall
                        stats.writes += 1
                        # Host write buffer + RC hide the write latency.
                        mem_class = MemClass.WRITE
                    else:
                        if not access.hit:
                            stats.read_misses += 1
                            stats.read_stall_cycles += access.stall
                            cost += access.stall  # host blocks on reads
                        stats.reads += 1
                        mem_class = MemClass.READ
                    self._emit(
                        tid, instr, pc, result.next_pc,
                        addr=result.addr, stall=access.stall,
                        mem_class=mem_class,
                    )
                    if self.recorder is not None:
                        wide = op is Op.FLD or op is Op.FSD
                        value = (
                            memory.read_double(result.addr) if wide
                            else memory.read_word(result.addr)
                        )
                        self.recorder.record(
                            tid, pc, int(op), int(mem_class),
                            result.addr, value=value, wide=wide,
                        )
                else:
                    if op in _COND_BRANCHES:
                        stats.cond_branches += 1
                    self._emit(tid, instr, pc, result.next_pc)

                clock += cost
                if self._steps > config.max_instructions:
                    raise StepLimitExceeded(
                        f"exceeded {config.max_instructions} instructions"
                    )

            if not blocked:
                heapq.heappush(heap, (clock, tid))


def run_workload(
    programs: list[Program],
    memory: SharedMemory,
    config: MultiprocessorConfig | None = None,
    compiled: bool = True,
    probe=None,
) -> RunResult:
    """Convenience wrapper: build an executor and run it."""
    return TangoExecutor(
        programs, config=config, memory=memory, compiled=compiled,
        probe=probe,
    ).run()
