"""Multiprocessor trace generation (the Tango Lite equivalent)."""

from .executor import (
    DeadlockError,
    MultiprocessorConfig,
    RunResult,
    StepLimitExceeded,
    TangoExecutor,
    run_workload,
)
from .interp import ExecutionError, StepResult, ThreadState, execute_instruction
from .stats import CpuStats, RunStats
from .trace import (
    TRACE_FORMAT_VERSION,
    Trace,
    TraceFormatError,
    TraceRecord,
)

__all__ = [
    "CpuStats",
    "DeadlockError",
    "ExecutionError",
    "MultiprocessorConfig",
    "RunResult",
    "RunStats",
    "StepLimitExceeded",
    "StepResult",
    "TRACE_FORMAT_VERSION",
    "TangoExecutor",
    "ThreadState",
    "Trace",
    "TraceFormatError",
    "TraceRecord",
    "execute_instruction",
    "run_workload",
]
