"""Multiprocessor trace generation (the Tango Lite equivalent)."""

from .executor import (
    DeadlockError,
    MultiprocessorConfig,
    RunResult,
    StepLimitExceeded,
    TangoExecutor,
    run_workload,
)
from .interp import ExecutionError, StepResult, ThreadState, execute_instruction
from .stats import CpuStats, RunStats
from .trace import Trace, TraceRecord

__all__ = [
    "CpuStats",
    "DeadlockError",
    "ExecutionError",
    "MultiprocessorConfig",
    "RunResult",
    "RunStats",
    "StepLimitExceeded",
    "StepResult",
    "TangoExecutor",
    "ThreadState",
    "Trace",
    "TraceRecord",
    "execute_instruction",
    "run_workload",
]
