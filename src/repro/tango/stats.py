"""Per-processor statistics collected during multiprocessor execution.

These counters are what Tables 1 and 2 of the paper report: data-reference
counts and miss counts, synchronization operation counts, and the derived
per-thousand-instruction rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CpuStats:
    """Counters for one simulated processor."""

    cpu: int = 0

    #: Retired instructions == useful processor cycles ("busy cycles").
    busy_cycles: int = 0

    # Data references (synchronization accesses are counted separately).
    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0

    # Synchronization operation counts (Table 2).
    locks: int = 0
    unlocks: int = 0
    wait_events: int = 0
    set_events: int = 0
    barriers: int = 0

    # Stall-cycle totals observed on the trace-generating (in-order,
    # blocking-read, RC-write-buffered) host processor.
    read_stall_cycles: int = 0
    write_stall_cycles: int = 0

    # Synchronization latency, split per the paper's analysis:
    # contention/imbalance wait vs. the sync variable access latency.
    acquire_wait_cycles: int = 0
    acquire_access_cycles: int = 0
    release_access_cycles: int = 0

    # Branch counts (Table 3 prediction numbers come from a BTB model run
    # over the trace afterwards).
    cond_branches: int = 0

    #: Final virtual clock of the thread.
    end_time: int = 0

    def per_thousand(self, count: int) -> float:
        """Rate of ``count`` per thousand instructions."""
        if self.busy_cycles == 0:
            return 0.0
        return 1000.0 * count / self.busy_cycles


@dataclass
class RunStats:
    """Statistics of one full multiprocessor run."""

    cpus: list[CpuStats] = field(default_factory=list)
    total_cycles: int = 0

    def total_instructions(self) -> int:
        return sum(c.busy_cycles for c in self.cpus)

    def cpu(self, n: int) -> CpuStats:
        return self.cpus[n]
