"""Dynamic instruction traces.

The multiprocessor executor emits one :class:`TraceRecord` per retired
instruction of each traced processor.  A record carries everything the
downstream trace-driven processor simulators need (§3.2 of the paper):

* the opcode and its static register operands (for dependence tracking
  and renaming in the dynamically scheduled model);
* the effective address and observed memory stall for loads/stores;
* actual control-flow outcome (``next_pc``) for branch-prediction
  modelling;
* the contention-wait / access-latency split for synchronization
  operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import MemClass, Op


@dataclass(slots=True)
class TraceRecord:
    """One retired dynamic instruction.

    Attributes:
        op: opcode executed.
        pc: static instruction index.
        next_pc: index of the dynamically following instruction (equals
            ``pc + 1`` unless a control transfer happened).
        rd: destination register flat id, or -1.
        rs1: first source register flat id, or -1.
        rs2: second source register flat id, or -1.
        addr: effective byte address for memory/sync operations, else -1.
        stall: memory stall in cycles beyond the 1-cycle occupancy
            (0 on hits, the miss penalty on misses; for synchronization
            operations this is the access latency of the sync variable —
            the *hideable* component).
        wait: synchronization contention/imbalance wait in cycles (the
            component processor lookahead cannot hide); 0 for ordinary
            instructions.
        mem_class: consistency classification of the operation.
    """

    op: Op
    pc: int
    next_pc: int
    rd: int = -1
    rs1: int = -1
    rs2: int = -1
    addr: int = -1
    stall: int = 0
    wait: int = 0
    mem_class: MemClass = MemClass.NONE


@dataclass
class Trace:
    """The full dynamic trace of one simulated processor."""

    cpu: int
    records: list[TraceRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, idx):
        return self.records[idx]

    def append(self, record: TraceRecord) -> None:
        self.records.append(record)

    # -- summary helpers used by tests and experiments ----------------------

    def count(self, predicate) -> int:
        return sum(1 for r in self.records if predicate(r))

    def read_misses(self) -> int:
        return sum(
            1
            for r in self.records
            if r.mem_class == MemClass.READ and r.stall > 0
        )

    def write_misses(self) -> int:
        return sum(
            1
            for r in self.records
            if r.mem_class == MemClass.WRITE and r.stall > 0
        )

    def total_read_stall(self) -> int:
        return sum(
            r.stall for r in self.records if r.mem_class == MemClass.READ
        )

    def total_write_stall(self) -> int:
        return sum(
            r.stall for r in self.records if r.mem_class == MemClass.WRITE
        )
