"""Dynamic instruction traces, stored column-wise.

The multiprocessor executor emits one row per retired instruction of each
traced processor.  A row carries everything the downstream trace-driven
processor simulators need (§3.2 of the paper):

* the opcode and its static register operands (for dependence tracking
  and renaming in the dynamically scheduled model);
* the effective address and observed memory stall for loads/stores;
* actual control-flow outcome (``next_pc``) for branch-prediction
  modelling;
* the contention-wait / access-latency split for synchronization
  operations.

Storage is **columnar**: one flat :mod:`array` of machine integers per
field instead of a Python object per record.  That shrinks the on-disk
pickles by ~10x, makes loading them near-instant (one ``frombytes`` per
column), and lets the processor models iterate over plain ints instead of
chasing attribute lookups through millions of heap objects.
:class:`TraceRecord` remains available as a materialised *view* of one
row for tests, debugging and the (cold) trace-transformation passes.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

import numpy as np

from ..isa import MemClass, Op

#: Bump whenever the pickle layout of :class:`Trace` (or anything reachable
#: from a cached ``AppRun``) changes.  The trace cache includes this in the
#: cache key, so stale pickles are never even opened.
TRACE_FORMAT_VERSION = 2

#: numpy dtype corresponding to each array typecode used by the columns.
_NP_DTYPES = {"B": np.uint8, "h": np.int16, "i": np.int32, "q": np.int64}

#: (field name, array typecode) for every column, in row order.
#: Narrow typecodes keep pickles small: opcodes and memory classes fit a
#: byte, register ids a short, pc/stall an int32; addresses and waits get
#: the full 64 bits.
TRACE_COLUMNS = (
    ("op", "B"),
    ("pc", "i"),
    ("next_pc", "i"),
    ("rd", "h"),
    ("rs1", "h"),
    ("rs2", "h"),
    ("addr", "q"),
    ("stall", "i"),
    ("wait", "q"),
    ("mem_class", "B"),
)


class TraceFormatError(Exception):
    """Raised when unpickling a trace written in an incompatible format."""


@dataclass(slots=True)
class TraceRecord:
    """One retired dynamic instruction (a materialised row view).

    Attributes:
        op: opcode executed.
        pc: static instruction index.
        next_pc: index of the dynamically following instruction (equals
            ``pc + 1`` unless a control transfer happened).
        rd: destination register flat id, or -1.
        rs1: first source register flat id, or -1.
        rs2: second source register flat id, or -1.
        addr: effective byte address for memory/sync operations, else -1.
        stall: memory stall in cycles beyond the 1-cycle occupancy
            (0 on hits, the miss penalty on misses; for synchronization
            operations this is the access latency of the sync variable —
            the *hideable* component).
        wait: synchronization contention/imbalance wait in cycles (the
            component processor lookahead cannot hide); 0 for ordinary
            instructions.
        mem_class: consistency classification of the operation.
    """

    op: Op
    pc: int
    next_pc: int
    rd: int = -1
    rs1: int = -1
    rs2: int = -1
    addr: int = -1
    stall: int = 0
    wait: int = 0
    mem_class: MemClass = MemClass.NONE


class Trace:
    """The full dynamic trace of one simulated processor.

    Rows live in parallel integer arrays (one per ``TRACE_COLUMNS``
    entry).  Indexing and iteration materialise :class:`TraceRecord`
    views for compatibility; hot consumers should grab the raw columns
    via :meth:`columns` and iterate flat ints.
    """

    __slots__ = ("cpu", "op", "pc", "next_pc", "rd", "rs1", "rs2",
                 "addr", "stall", "wait", "mem_class", "fastpath_cache")

    def __init__(self, cpu: int = 0) -> None:
        self.cpu = cpu
        # Scratch slot for derived row indices (see cpu/static_fast.py);
        # never pickled or compared, invalidated by length checks.
        self.fastpath_cache = None
        for name, typecode in TRACE_COLUMNS:
            setattr(self, name, array(typecode))

    # -- construction -------------------------------------------------------

    def append(self, record: TraceRecord) -> None:
        """Append one record (compatibility path for tests/builders)."""
        self.append_row(
            int(record.op), record.pc, record.next_pc,
            record.rd, record.rs1, record.rs2,
            record.addr, record.stall, record.wait, int(record.mem_class),
        )

    def append_row(
        self, op: int, pc: int, next_pc: int, rd: int, rs1: int, rs2: int,
        addr: int, stall: int, wait: int, mem_class: int,
    ) -> None:
        """Append one row of flat ints (the executor's fast path)."""
        self.op.append(op)
        self.pc.append(pc)
        self.next_pc.append(next_pc)
        self.rd.append(rd)
        self.rs1.append(rs1)
        self.rs2.append(rs2)
        self.addr.append(addr)
        self.stall.append(stall)
        self.wait.append(wait)
        self.mem_class.append(mem_class)

    @classmethod
    def from_records(cls, records, cpu: int = 0) -> "Trace":
        """Build a trace from an iterable of :class:`TraceRecord`."""
        trace = cls(cpu=cpu)
        for record in records:
            trace.append(record)
        return trace

    # -- access -------------------------------------------------------------

    def columns(self) -> tuple:
        """The raw column arrays, in ``TRACE_COLUMNS`` order."""
        return (self.op, self.pc, self.next_pc, self.rd, self.rs1,
                self.rs2, self.addr, self.stall, self.wait, self.mem_class)

    def np_columns(self) -> tuple:
        """Zero-copy read-only numpy views, in ``TRACE_COLUMNS`` order.

        Each view aliases the column's ``array`` buffer directly
        (``np.frombuffer``) — no bytes are copied.  Views are built fresh
        on every call because ``append_row`` may reallocate the buffers;
        do not cache them across appends.
        """
        views = []
        for name, typecode in TRACE_COLUMNS:
            col = getattr(self, name)
            if len(col):
                view = np.frombuffer(col, dtype=_NP_DTYPES[typecode])
            else:  # frombuffer rejects empty buffers
                view = np.empty(0, dtype=_NP_DTYPES[typecode])
            view.flags.writeable = False
            views.append(view)
        return tuple(views)

    def __len__(self) -> int:
        return len(self.op)

    def __iter__(self):
        for row in zip(*self.columns()):
            yield TraceRecord(
                Op(row[0]), row[1], row[2], row[3], row[4], row[5],
                row[6], row[7], row[8], MemClass(row[9]),
            )

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return [self[i] for i in range(*idx.indices(len(self)))]
        return TraceRecord(
            Op(self.op[idx]), self.pc[idx], self.next_pc[idx],
            self.rd[idx], self.rs1[idx], self.rs2[idx], self.addr[idx],
            self.stall[idx], self.wait[idx], MemClass(self.mem_class[idx]),
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self.cpu == other.cpu and all(
            a == b for a, b in zip(self.columns(), other.columns())
        )

    def __hash__(self):  # arrays are mutable; hash by identity
        return id(self)

    @property
    def records(self) -> list[TraceRecord]:
        """Materialised record views (compatibility/debug helper)."""
        return list(self)

    def to_records(self) -> list[TraceRecord]:
        """Alias of :attr:`records` with method-call syntax."""
        return list(self)

    # -- pickling ------------------------------------------------------------

    def __getstate__(self):
        return {
            "version": TRACE_FORMAT_VERSION,
            "cpu": self.cpu,
            "columns": {
                name: (typecode, getattr(self, name).tobytes())
                for name, typecode in TRACE_COLUMNS
            },
        }

    def __setstate__(self, state) -> None:
        if not isinstance(state, dict) or "columns" not in state:
            raise TraceFormatError(
                "pickled trace predates columnar storage; regenerate it"
            )
        if state.get("version") != TRACE_FORMAT_VERSION:
            raise TraceFormatError(
                f"trace format {state.get('version')!r} != "
                f"{TRACE_FORMAT_VERSION}; regenerate it"
            )
        self.cpu = state["cpu"]
        self.fastpath_cache = None
        for name, typecode in TRACE_COLUMNS:
            col = array(typecode)
            stored_typecode, raw = state["columns"][name]
            if stored_typecode != typecode:
                raise TraceFormatError(
                    f"column {name!r} stored as {stored_typecode!r}, "
                    f"expected {typecode!r}; regenerate the trace"
                )
            col.frombytes(raw)
            setattr(self, name, col)

    # -- summary helpers used by tests and experiments ----------------------

    def count(self, predicate) -> int:
        return sum(1 for r in self if predicate(r))

    def read_misses(self) -> int:
        if not len(self):
            return 0
        cols = self.np_columns()
        cls, stall = cols[9], cols[7]
        return int(((cls == int(MemClass.READ)) & (stall > 0)).sum())

    def write_misses(self) -> int:
        if not len(self):
            return 0
        cols = self.np_columns()
        cls, stall = cols[9], cols[7]
        return int(((cls == int(MemClass.WRITE)) & (stall > 0)).sum())

    def total_read_stall(self) -> int:
        if not len(self):
            return 0
        cols = self.np_columns()
        cls, stall = cols[9], cols[7]
        return int(stall[cls == int(MemClass.READ)].sum())

    def total_write_stall(self) -> int:
        if not len(self):
            return 0
        cols = self.np_columns()
        cls, stall = cols[9], cols[7]
        return int(stall[cls == int(MemClass.WRITE)].sum())
