"""Functional interpreter for one thread of the simulated ISA.

Executes the register/memory semantics of a single instruction.  Integer
arithmetic uses unbounded Python integers with C-style truncating
division; the applications keep their values in ranges where 32/64-bit
wraparound would be unobservable, so this matches a real machine.

Synchronization opcodes and ``HALT`` are *not* handled here — they have no
register semantics and are intercepted by the executor before the
functional step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..isa import NUM_INT_REGS, NUM_REGS, Op, Program
from ..mem import SharedMemory


class ExecutionError(Exception):
    """Raised on runtime faults (division by zero, bad jump target, ...)."""


@dataclass
class ThreadState:
    """Architectural state of one simulated thread."""

    tid: int
    program: Program
    pc: int = 0
    regs: list = field(default_factory=lambda: [0] * NUM_INT_REGS
                       + [0.0] * (NUM_REGS - NUM_INT_REGS))
    halted: bool = False
    instructions_executed: int = 0

    def __post_init__(self) -> None:
        if not self.program.sealed:
            raise ExecutionError(
                f"thread {self.tid}: program {self.program.name!r} not sealed"
            )


def _trunc_div(a: int, b: int) -> int:
    if b == 0:
        raise ExecutionError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _trunc_rem(a: int, b: int) -> int:
    return a - b * _trunc_div(a, b)


@dataclass(slots=True)
class StepResult:
    """Functional outcome of one instruction.

    ``addr`` is -1 unless the instruction was a load or a store, in which
    case it is the effective byte address and ``is_write`` distinguishes
    the two.
    """

    next_pc: int
    addr: int = -1
    is_write: bool = False


def execute_instruction(
    state: ThreadState, mem: SharedMemory
) -> StepResult:
    """Execute the instruction at ``state.pc``; returns the outcome.

    Updates registers, memory and ``state.pc``.  The caller is responsible
    for timing, caching and trace emission.
    """
    program = state.program
    if not 0 <= state.pc < len(program.instructions):
        raise ExecutionError(
            f"thread {state.tid}: pc {state.pc} out of range in "
            f"{program.name!r}"
        )
    instr = program.instructions[state.pc]
    op = instr.op
    regs = state.regs
    pc = state.pc
    next_pc = pc + 1
    addr = -1
    is_write = False

    try:
        if op is Op.ADD:
            val = regs[instr.rs1] + regs[instr.rs2]
        elif op is Op.ADDI:
            val = regs[instr.rs1] + instr.imm
        elif op is Op.SUB:
            val = regs[instr.rs1] - regs[instr.rs2]
        elif op is Op.MUL:
            val = regs[instr.rs1] * regs[instr.rs2]
        elif op is Op.MULI:
            val = regs[instr.rs1] * instr.imm
        elif op is Op.DIV:
            val = _trunc_div(regs[instr.rs1], regs[instr.rs2])
        elif op is Op.REM:
            val = _trunc_rem(regs[instr.rs1], regs[instr.rs2])
        elif op is Op.AND:
            val = regs[instr.rs1] & regs[instr.rs2]
        elif op is Op.OR:
            val = regs[instr.rs1] | regs[instr.rs2]
        elif op is Op.XOR:
            val = regs[instr.rs1] ^ regs[instr.rs2]
        elif op is Op.ANDI:
            val = regs[instr.rs1] & instr.imm
        elif op is Op.ORI:
            val = regs[instr.rs1] | instr.imm
        elif op is Op.XORI:
            val = regs[instr.rs1] ^ instr.imm
        elif op is Op.SLT:
            val = 1 if regs[instr.rs1] < regs[instr.rs2] else 0
        elif op is Op.SLE:
            val = 1 if regs[instr.rs1] <= regs[instr.rs2] else 0
        elif op is Op.SEQ:
            val = 1 if regs[instr.rs1] == regs[instr.rs2] else 0
        elif op is Op.SLTI:
            val = 1 if regs[instr.rs1] < instr.imm else 0
        elif op is Op.SLL:
            val = regs[instr.rs1] << regs[instr.rs2]
        elif op is Op.SRL or op is Op.SRA:
            val = regs[instr.rs1] >> regs[instr.rs2]
        elif op is Op.SLLI:
            val = regs[instr.rs1] << instr.imm
        elif op is Op.SRLI or op is Op.SRAI:
            val = regs[instr.rs1] >> instr.imm

        elif op is Op.FADD:
            val = regs[instr.rs1] + regs[instr.rs2]
        elif op is Op.FSUB:
            val = regs[instr.rs1] - regs[instr.rs2]
        elif op is Op.FMUL:
            val = regs[instr.rs1] * regs[instr.rs2]
        elif op is Op.FDIV:
            divisor = regs[instr.rs2]
            if divisor == 0.0:
                raise ExecutionError("floating point division by zero")
            val = regs[instr.rs1] / divisor
        elif op is Op.FSQRT:
            operand = regs[instr.rs1]
            if operand < 0.0:
                raise ExecutionError("sqrt of negative value")
            val = math.sqrt(operand)
        elif op is Op.FNEG:
            val = -regs[instr.rs1]
        elif op is Op.FABS:
            val = abs(regs[instr.rs1])
        elif op is Op.FMOV:
            val = regs[instr.rs1]
        elif op is Op.FMIN:
            val = min(regs[instr.rs1], regs[instr.rs2])
        elif op is Op.FMAX:
            val = max(regs[instr.rs1], regs[instr.rs2])
        elif op is Op.FLT:
            val = 1 if regs[instr.rs1] < regs[instr.rs2] else 0
        elif op is Op.FLE:
            val = 1 if regs[instr.rs1] <= regs[instr.rs2] else 0
        elif op is Op.FEQ:
            val = 1 if regs[instr.rs1] == regs[instr.rs2] else 0
        elif op is Op.FLI:
            val = instr.imm
        elif op is Op.CVTIF:
            val = float(regs[instr.rs1])
        elif op is Op.CVTFI:
            val = int(regs[instr.rs1])

        elif op is Op.LW:
            addr = regs[instr.rs1] + instr.imm
            val = mem.read_word(addr)
        elif op is Op.FLD:
            addr = regs[instr.rs1] + instr.imm
            val = mem.read_double(addr)
        elif op is Op.SW:
            addr = regs[instr.rs1] + instr.imm
            mem.write_word(addr, regs[instr.rs2])
            val = None
            is_write = True
        elif op is Op.FSD:
            addr = regs[instr.rs1] + instr.imm
            mem.write_double(addr, regs[instr.rs2])
            val = None
            is_write = True

        elif op is Op.BEQ:
            val = None
            if regs[instr.rs1] == regs[instr.rs2]:
                next_pc = instr.target
        elif op is Op.BNE:
            val = None
            if regs[instr.rs1] != regs[instr.rs2]:
                next_pc = instr.target
        elif op is Op.BLT:
            val = None
            if regs[instr.rs1] < regs[instr.rs2]:
                next_pc = instr.target
        elif op is Op.BGE:
            val = None
            if regs[instr.rs1] >= regs[instr.rs2]:
                next_pc = instr.target
        elif op is Op.BLE:
            val = None
            if regs[instr.rs1] <= regs[instr.rs2]:
                next_pc = instr.target
        elif op is Op.BGT:
            val = None
            if regs[instr.rs1] > regs[instr.rs2]:
                next_pc = instr.target
        elif op is Op.J:
            val = None
            next_pc = instr.target
        elif op is Op.JAL:
            val = pc + 1
            next_pc = instr.target
        elif op is Op.JR:
            val = None
            next_pc = regs[instr.rs1]
        elif op is Op.NOP:
            val = None
        else:
            raise ExecutionError(
                f"thread {state.tid}: opcode {op.name} has no functional "
                f"semantics (sync ops and HALT are executor-handled)"
            )
    except ExecutionError:
        raise
    except (TypeError, IndexError) as exc:  # pragma: no cover - diagnostics
        raise ExecutionError(
            f"thread {state.tid}: fault at pc {pc} ({instr}): {exc}"
        ) from exc

    if val is not None and instr.rd is not None and instr.rd != 0:
        regs[instr.rd] = val
    state.pc = next_pc
    state.instructions_executed += 1
    return StepResult(next_pc=next_pc, addr=addr, is_write=is_write)
