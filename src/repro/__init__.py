"""repro — reproduction of Gharachorloo, Gupta & Hennessy (ISCA 1992),
"Hiding Memory Latency using Dynamic Scheduling in Shared-Memory
Multiprocessors".

The package builds, from scratch, everything the paper's methodology
needs:

* a small RISC ISA and structured assembler (:mod:`repro.isa`,
  :mod:`repro.asm`);
* a shared-memory multiprocessor trace generator with coherent caches and
  ANL-style synchronization (:mod:`repro.mem`, :mod:`repro.sync`,
  :mod:`repro.tango`);
* the five benchmark applications, written against the ISA and
  functionally verified (:mod:`repro.apps`);
* the four consistency models (:mod:`repro.consistency`);
* the four trace-driven processor models, including the Johnson-style
  dynamically scheduled core (:mod:`repro.cpu`);
* the experiment harness regenerating every table and figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro import build_app, MultiprocessorConfig, TangoExecutor

    workload = build_app("lu", preset="tiny")
    result = TangoExecutor(workload.programs,
                           MultiprocessorConfig(),
                           memory=workload.memory).run()
    workload.verify(result.memory)
"""

from .apps import APP_NAMES, Workload, build_app
from .consistency import MODELS, PC, RC, SC, WO, get_model
from .tango import MultiprocessorConfig, RunResult, TangoExecutor

__version__ = "1.0.0"

__all__ = [
    "APP_NAMES",
    "MODELS",
    "MultiprocessorConfig",
    "PC",
    "RC",
    "RunResult",
    "SC",
    "TangoExecutor",
    "WO",
    "Workload",
    "build_app",
    "get_model",
    "__version__",
]
