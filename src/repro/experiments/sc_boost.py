"""E12 — boosting sequential consistency (paper §6, reference [8]).

The related-work section discusses two techniques (Gharachorloo, Gupta &
Hennessy, ICPP'91) that aggressively overlap accesses *without* violating
SC: non-binding prefetch of accesses delayed by consistency constraints,
and speculative execution of reads with rollback.  The paper leaves their
quantitative impact open ("remains to be fully studied"), so this
experiment studies it: the DS processor under SC, with prefetch, with
speculative loads, with both — alongside plain RC as the ceiling.
"""

from __future__ import annotations

from ..consistency import get_model
from ..cpu import ExecutionBreakdown
from ..cpu.ds import DSConfig, DSProcessor
from .report import format_breakdowns
from .runner import TraceStore, default_store


def run_sc_boost(
    store: TraceStore | None = None,
    window: int = 64,
    apps: tuple[str, ...] | None = None,
) -> dict[str, list[ExecutionBreakdown]]:
    store = store or default_store()
    sc = get_model("SC")
    rc = get_model("RC")
    result = {}
    for run in store.all_apps():
        if apps is not None and run.app not in apps:
            continue
        variants = [
            ("BASE", None, {}),
            (f"DS-SC-w{window}", sc, {}),
            (f"DS-SC-w{window}+pf", sc, {"prefetch": True}),
            (f"DS-SC-w{window}+spec", sc, {"speculative_loads": True}),
            (f"DS-SC-w{window}+pf+spec", sc,
             {"prefetch": True, "speculative_loads": True}),
            (f"DS-RC-w{window}", rc, {}),
        ]
        runs = []
        for label, model, extra in variants:
            if model is None:
                runs.append(run.base)
                continue
            breakdown = DSProcessor(
                run.trace, model, DSConfig(window=window, **extra)
            ).run(label=label)
            runs.append(breakdown)
        result[run.app] = runs
    return result


def format_sc_boost(results: dict[str, list[ExecutionBreakdown]]) -> str:
    sections = []
    for app, runs in results.items():
        sections.append(
            format_breakdowns(
                f"Boosting SC ([8]) — {app.upper()} "
                f"(percent of BASE)",
                runs,
                runs[0],
            )
        )
    return "\n\n".join(sections)
