"""E11 — multiple hardware contexts as the competing technique (§5).

The paper's discussion lists multiple-context processors among the
alternative latency-hiding techniques.  This experiment runs the
switch-on-miss multiple-context model over K traces of the same
application (different processors of the multiprocessor run supply the
independent streams) and reports the processor-efficiency curve
(busy / total) versus K, next to the single-context BASE and the DS
window-64 result.
"""

from __future__ import annotations

from ..cpu import ProcessorConfig, simulate
from ..cpu.multicontext import simulate_multicontext
from ..tango import MultiprocessorConfig, TangoExecutor
from ..apps import build_app
from .report import format_table
from .runner import TraceStore, default_store

CONTEXT_COUNTS = (1, 2, 4, 8)


def run_contexts(
    store: TraceStore | None = None,
    switch_penalty: int = 4,
    apps: tuple[str, ...] | None = None,
) -> dict[str, dict]:
    """Per app: efficiency by context count, plus DS-w64 efficiency."""
    store = store or default_store()
    result: dict[str, dict] = {}
    for run in store.all_apps():
        if apps is not None and run.app not in apps:
            continue
        # Re-run the workload tracing the first max(K) processors so the
        # contexts are genuinely independent streams of the same program.
        workload = build_app(
            run.app, n_procs=store.n_procs, preset=store.preset
        )
        config = MultiprocessorConfig(
            n_cpus=store.n_procs,
            cache_size=store.cache_size,
            miss_penalty=store.miss_penalty,
            trace_cpus=tuple(range(max(CONTEXT_COUNTS))),
        )
        mp = TangoExecutor(
            workload.programs, config, memory=workload.memory
        ).run()
        traces = [mp.trace(c) for c in range(max(CONTEXT_COUNTS))]

        efficiency = {}
        for k in CONTEXT_COUNTS:
            breakdown = simulate_multicontext(
                traces[:k], switch_penalty=switch_penalty
            )
            efficiency[k] = breakdown.busy / breakdown.total
        ds = simulate(
            run.trace, ProcessorConfig(kind="ds", model="RC", window=64)
        )
        result[run.app] = {
            "efficiency": efficiency,
            "ds_efficiency": ds.busy / ds.total,
            "base_efficiency": run.base.busy / run.base.total,
        }
    return result


def format_contexts(result: dict[str, dict]) -> str:
    rows = []
    for app, data in result.items():
        row = [app.upper()]
        row.append(f"{100 * data['base_efficiency']:.0f}%")
        for k in CONTEXT_COUNTS:
            row.append(f"{100 * data['efficiency'][k]:.0f}%")
        row.append(f"{100 * data['ds_efficiency']:.0f}%")
        rows.append(row)
    return format_table(
        ["program", "BASE"]
        + [f"MC k={k}" for k in CONTEXT_COUNTS]
        + ["DS-RC w64"],
        rows,
        title=(
            "Processor efficiency (busy/total): multiple contexts "
            "(switch-on-miss) vs. dynamic scheduling"
        ),
    )
