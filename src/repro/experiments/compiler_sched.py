"""E13 — compiler read scheduling (the paper's stated future work).

§5/§7: the overlap a relaxed model permits "can also be exploited by the
compiler for scheduling read misses to mask their latency on a statically
scheduled processor with non-blocking reads".  This experiment applies
the :mod:`repro.cpu.scheduling` hoisting pass to each trace and re-runs
the SS processor, comparing: SS on the original code, SS on the
rescheduled code, and the DS processor with a small window — the
hardware the compiler is trying to substitute for.
"""

from __future__ import annotations

from ..consistency import get_model
from ..cpu import ExecutionBreakdown, ProcessorConfig, simulate
from ..cpu.scheduling import ScheduleStats, schedule_reads_early
from .report import format_breakdowns, format_table
from .runner import TraceStore, default_store


def run_compiler_sched(
    store: TraceStore | None = None,
    max_hoist: int = 32,
    apps: tuple[str, ...] | None = None,
) -> dict[str, dict]:
    store = store or default_store()
    result = {}
    for run in store.all_apps():
        if apps is not None and run.app not in apps:
            continue
        rescheduled, stats = schedule_reads_early(
            run.trace, max_hoist=max_hoist
        )
        runs: list[ExecutionBreakdown] = [run.base]
        ss_orig = simulate(
            run.trace, ProcessorConfig(kind="ss", model="RC")
        )
        ss_orig.label = "SS-RC (original)"
        runs.append(ss_orig)
        ss_sched = simulate(
            rescheduled, ProcessorConfig(kind="ss", model="RC")
        )
        ss_sched.label = "SS-RC (scheduled)"
        runs.append(ss_sched)
        runs.append(
            simulate(
                run.trace,
                ProcessorConfig(kind="ds", model="RC", window=16),
            )
        )
        runs.append(
            simulate(
                run.trace,
                ProcessorConfig(kind="ds", model="RC", window=64),
            )
        )
        result[run.app] = {"runs": runs, "stats": stats}
    return result


def format_compiler_sched(result: dict[str, dict]) -> str:
    sections = []
    summary_rows = []
    for app, data in result.items():
        runs = data["runs"]
        stats: ScheduleStats = data["stats"]
        sections.append(
            format_breakdowns(
                f"Compiler read scheduling — {app.upper()} "
                f"(percent of BASE)",
                runs,
                runs[0],
            )
        )
        summary_rows.append([
            app.upper(),
            stats.loads_seen,
            stats.loads_moved,
            f"{stats.average_hoist:.1f}",
        ])
    sections.append(
        format_table(
            ["program", "loads", "hoisted", "avg hoist (instrs)"],
            summary_rows,
            title="Scheduling pass statistics",
        )
    )
    return "\n\n".join(sections)
