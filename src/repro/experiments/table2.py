"""Table 2 — statistics on synchronization.

Per application: lock, unlock, wait-event, set-event and barrier counts
for a single processor, with per-thousand-instruction rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from .report import format_table
from .runner import TraceStore, default_store


@dataclass
class Table2Row:
    app: str
    busy_cycles: int
    locks: int
    unlocks: int
    wait_events: int
    set_events: int
    barriers: int

    def rate(self, count: int) -> float:
        return 1000.0 * count / self.busy_cycles


def run_table2(store: TraceStore | None = None) -> list[Table2Row]:
    store = store or default_store()
    rows = []
    for run in store.all_apps():
        stats = run.stats.cpu(store.trace_cpu)
        rows.append(
            Table2Row(
                app=run.app,
                busy_cycles=stats.busy_cycles,
                locks=stats.locks,
                unlocks=stats.unlocks,
                wait_events=stats.wait_events,
                set_events=stats.set_events,
                barriers=stats.barriers,
            )
        )
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    return format_table(
        ["program", "locks", "unlocks", "wait event", "set event",
         "barriers"],
        [
            [
                r.app.upper(),
                f"{r.locks} ({r.rate(r.locks):.2f})",
                f"{r.unlocks} ({r.rate(r.unlocks):.2f})",
                f"{r.wait_events} ({r.rate(r.wait_events):.2f})",
                f"{r.set_events} ({r.rate(r.set_events):.2f})",
                f"{r.barriers} ({r.rate(r.barriers):.2f})",
            ]
            for r in rows
        ],
        title=(
            "Table 2: synchronization references (one processor of 16; "
            "rates per 1000 instructions)"
        ),
    )
