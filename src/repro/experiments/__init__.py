"""Experiment harness: one module per table/figure of the paper.

See DESIGN.md's per-experiment index.  Each module exposes a ``run_*``
function returning structured results and a ``format_*`` function
rendering them as text.
"""

from .compiler_sched import format_compiler_sched, run_compiler_sched
from .contention import (
    contention_configs,
    format_contention,
    run_contention,
)
from .contexts import CONTEXT_COUNTS, format_contexts, run_contexts
from .figure1 import format_figure1, run_figure1
from .figure3 import figure3_configs, format_figure3, run_figure3
from .figure4 import figure4_configs, format_figure4, run_figure4
from .headline import PAPER_HIDDEN, format_headline, run_headline
from .latency100 import format_latency100, run_latency100
from .miss_analysis import format_miss_analysis, run_miss_analysis
from .multi_issue import format_multi_issue, run_multi_issue
from .report import format_breakdowns, format_stacked_bars, format_table
from .runner import (
    AppRun,
    TraceStore,
    default_store,
    generate_traces,
    simulate_app_models,
)
from .sc_boost import format_sc_boost, run_sc_boost
from .table1 import format_table1, run_table1
from .table2 import format_table2, run_table2
from .table3 import analyze_trace, format_table3, run_table3

__all__ = [
    "AppRun",
    "CONTEXT_COUNTS",
    "PAPER_HIDDEN",
    "TraceStore",
    "analyze_trace",
    "contention_configs",
    "default_store",
    "figure3_configs",
    "figure4_configs",
    "format_breakdowns",
    "format_compiler_sched",
    "format_contention",
    "format_contexts",
    "format_figure1",
    "format_figure3",
    "format_figure4",
    "format_headline",
    "format_latency100",
    "format_miss_analysis",
    "format_sc_boost",
    "format_multi_issue",
    "format_stacked_bars",
    "format_table",
    "format_table1",
    "format_table2",
    "format_table3",
    "generate_traces",
    "simulate_app_models",
    "run_compiler_sched",
    "run_contention",
    "run_contexts",
    "run_figure1",
    "run_figure3",
    "run_figure4",
    "run_headline",
    "run_latency100",
    "run_miss_analysis",
    "run_sc_boost",
    "run_multi_issue",
    "run_table1",
    "run_table2",
    "run_table3",
]
