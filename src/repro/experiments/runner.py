"""Shared experiment infrastructure.

Every table and figure consumes the same inputs: the multiprocessor run
of each application (statistics + the traced processor's dynamic trace).
Generating a trace takes seconds-to-minutes of functional simulation, so
this module provides :class:`TraceStore` — an in-memory plus on-disk
cache keyed by (application, processor count, miss penalty, preset).

The defaults mirror the paper's simulation parameters: 16 processors,
64 KB direct-mapped write-back caches with 16-byte lines, a 50-cycle miss
penalty, and processor 0 as the traced processor.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path

from ..apps import APP_NAMES, build_app
from ..cpu import ExecutionBreakdown, simulate_base
from ..tango import (
    MultiprocessorConfig,
    RunStats,
    TangoExecutor,
    Trace,
)

DEFAULT_CACHE_DIR = Path(__file__).resolve().parents[3] / ".cache" / "traces"


@dataclass
class AppRun:
    """Cached outcome of one multiprocessor run of one application."""

    app: str
    trace: Trace
    stats: RunStats
    base: ExecutionBreakdown
    params: dict = field(default_factory=dict)


class TraceStore:
    """Builds, runs, verifies and caches application traces."""

    def __init__(
        self,
        n_procs: int = 16,
        miss_penalty: int = 50,
        cache_size: int = 64 * 1024,
        preset: str = "default",
        trace_cpu: int = 0,
        cache_dir: Path | str | None = DEFAULT_CACHE_DIR,
        verify: bool = True,
    ) -> None:
        self.n_procs = n_procs
        self.miss_penalty = miss_penalty
        self.cache_size = cache_size
        self.preset = preset
        self.trace_cpu = trace_cpu
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.verify = verify
        self._runs: dict[str, AppRun] = {}

    def _cache_path(self, app: str) -> Path | None:
        if self.cache_dir is None:
            return None
        name = (
            f"{app}_p{self.n_procs}_m{self.miss_penalty}"
            f"_c{self.cache_size}_{self.preset}_t{self.trace_cpu}.pkl"
        )
        return self.cache_dir / name

    def get(self, app: str) -> AppRun:
        """Return the cached run for ``app``, generating it if needed."""
        if app not in APP_NAMES:
            raise ValueError(f"unknown application {app!r}")
        run = self._runs.get(app)
        if run is not None:
            return run
        path = self._cache_path(app)
        if path is not None and path.exists():
            with open(path, "rb") as f:
                run = pickle.load(f)
            self._runs[app] = run
            return run
        run = self._generate(app)
        self._runs[app] = run
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "wb") as f:
                pickle.dump(run, f, protocol=pickle.HIGHEST_PROTOCOL)
        return run

    def _generate(self, app: str) -> AppRun:
        workload = build_app(app, n_procs=self.n_procs, preset=self.preset)
        config = MultiprocessorConfig(
            n_cpus=self.n_procs,
            cache_size=self.cache_size,
            miss_penalty=self.miss_penalty,
            trace_cpus=(self.trace_cpu,),
        )
        result = TangoExecutor(
            workload.programs, config, memory=workload.memory
        ).run()
        if self.verify:
            workload.verify(result.memory)
        trace = result.trace(self.trace_cpu)
        return AppRun(
            app=app,
            trace=trace,
            stats=result.stats,
            base=simulate_base(trace),
            params=dict(workload.params),
        )

    def all_apps(self) -> list[AppRun]:
        return [self.get(app) for app in APP_NAMES]


#: Process-wide default stores (50- and 100-cycle miss penalties), shared
#: by the test suite and the benchmark harness so the expensive functional
#: simulation happens once.
_STORES: dict[int, TraceStore] = {}


def default_store(miss_penalty: int = 50) -> TraceStore:
    store = _STORES.get(miss_penalty)
    if store is None:
        store = TraceStore(miss_penalty=miss_penalty)
        _STORES[miss_penalty] = store
    return store
