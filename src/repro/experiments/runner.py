"""Shared experiment infrastructure.

Every table and figure consumes the same inputs: the multiprocessor run
of each application (statistics + the traced processor's dynamic trace).
Generating a trace takes seconds-to-minutes of functional simulation, so
this module provides :class:`TraceStore` — an in-memory plus on-disk
cache keyed by every parameter that shapes the trace (application,
processor count, miss penalty, cache size, line size, sync latency,
preset, network backend, traced processor) plus the on-disk trace
schema version
(:data:`repro.tango.trace.TRACE_FORMAT_VERSION`).  Stale or unreadable
pickles are regenerated, never trusted.

The defaults mirror the paper's simulation parameters: 16 processors,
64 KB direct-mapped write-back caches with 16-byte lines, a 50-cycle miss
penalty, and processor 0 as the traced processor.

For multi-core hosts the module also provides process-pool fan-out:
:func:`generate_traces` builds the five application traces concurrently
and :func:`simulate_app_models` distributes independent (model, window)
processor simulations across workers.  The fan-out runs on the
supervised pool of :mod:`repro.service` — a worker that crashes, hangs,
or returns a torn payload is restarted and its job retried instead of
aborting the sweep.  Results are collected in submission order, so
output is byte-identical regardless of ``jobs``.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path

from ..apps import APP_NAMES, build_app
from ..cpu import (
    ExecutionBreakdown,
    ProcessorConfig,
    simulate,
    simulate_base,
)
from ..tango import (
    MultiprocessorConfig,
    RunStats,
    TangoExecutor,
    Trace,
)
from ..obs.metrics import NULL_REGISTRY
from ..service.pool import run_jobs
from ..tango.trace import TRACE_FORMAT_VERSION, TraceFormatError

DEFAULT_CACHE_DIR = Path(__file__).resolve().parents[3] / ".cache" / "traces"


@dataclass
class AppRun:
    """Cached outcome of one multiprocessor run of one application."""

    app: str
    trace: Trace
    stats: RunStats
    base: ExecutionBreakdown
    params: dict = field(default_factory=dict)


@dataclass
class CosimRun:
    """Cached all-processor outcome of one multiprocessor run: every
    processor's annotated trace plus the recorded synchronization
    schedule — the inputs of the co-simulation engine
    (:mod:`repro.cosim`)."""

    app: str
    traces: list[Trace]  # indexed by cpu id, all n_procs of them
    schedule: object  # repro.sync.SyncSchedule
    stats: RunStats
    params: dict = field(default_factory=dict)


class TraceStore:
    """Builds, runs, verifies and caches application traces."""

    def __init__(
        self,
        n_procs: int = 16,
        miss_penalty: int = 50,
        cache_size: int = 64 * 1024,
        preset: str = "default",
        trace_cpu: int = 0,
        cache_dir: Path | str | None = DEFAULT_CACHE_DIR,
        verify: bool = True,
        line_size: int = 16,
        sync_access_latency: int | None = None,
        network: str = "ideal",
        metrics=None,
    ) -> None:
        self.n_procs = n_procs
        self.miss_penalty = miss_penalty
        self.cache_size = cache_size
        self.line_size = line_size
        self.sync_access_latency = sync_access_latency
        self.preset = preset
        self.trace_cpu = trace_cpu
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.verify = verify
        self.network = network
        #: Warm-cache observability sink (re-attachable; the daemon
        #: points a long-lived shared store at its own registry).  Not
        #: part of :meth:`spec` — workers attach their own.
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._runs: dict[str, AppRun] = {}
        self._cosim_runs: dict[str, CosimRun] = {}

    def _cache_path(self, app: str) -> Path | None:
        if self.cache_dir is None:
            return None
        sync = (
            "auto" if self.sync_access_latency is None
            else str(self.sync_access_latency)
        )
        # The ideal backend keeps the pre-network filename so existing
        # cached traces stay valid (they are byte-identical anyway).
        net = "" if self.network == "ideal" else f"_net{self.network}"
        name = (
            f"{app}_v{TRACE_FORMAT_VERSION}_p{self.n_procs}"
            f"_m{self.miss_penalty}_c{self.cache_size}_l{self.line_size}"
            f"_s{sync}_{self.preset}{net}_t{self.trace_cpu}.pkl"
        )
        return self.cache_dir / name

    def _load(self, path: Path, cls=AppRun):
        """Read a cached run; any stale/corrupt pickle means 'miss'."""
        try:
            with open(path, "rb") as f:
                run = pickle.load(f)
        except FileNotFoundError:
            return None
        except (TraceFormatError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError, ValueError,
                TypeError):
            # A schema bump or a truncated/foreign pickle: regenerate.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if not isinstance(run, cls):
            return None
        return run

    def _save(self, path: Path, run: AppRun) -> None:
        """Atomic write: concurrent workers never see a partial pickle."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as f:
            pickle.dump(run, f, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    def get(self, app: str) -> AppRun:
        """Return the cached run for ``app``, generating it if needed."""
        if app not in APP_NAMES:
            raise ValueError(f"unknown application {app!r}")
        run = self._runs.get(app)
        if run is not None:
            self.metrics.counter("trace.warm_hits").inc()
            return run
        path = self._cache_path(app)
        if path is not None:
            run = self._load(path)
            if run is not None:
                self.metrics.counter("trace.disk_hits").inc()
                self._runs[app] = run
                return run
        self.metrics.counter("trace.builds").inc()
        run = self._generate(app)
        self._runs[app] = run
        if path is not None:
            self._save(path, run)
        return run

    def _generate(self, app: str) -> AppRun:
        workload = build_app(app, n_procs=self.n_procs, preset=self.preset)
        config = MultiprocessorConfig(
            n_cpus=self.n_procs,
            cache_size=self.cache_size,
            line_size=self.line_size,
            miss_penalty=self.miss_penalty,
            sync_access_latency=self.sync_access_latency,
            network=self.network,
            trace_cpus=(self.trace_cpu,),
        )
        result = TangoExecutor(
            workload.programs, config, memory=workload.memory
        ).run()
        if self.verify:
            workload.verify(result.memory)
        trace = result.trace(self.trace_cpu)
        return AppRun(
            app=app,
            trace=trace,
            stats=result.stats,
            base=simulate_base(trace),
            params=dict(workload.params),
        )

    # -- co-simulation inputs: all processors traced ---------------------

    def _cosim_cache_path(self, app: str) -> Path | None:
        if self.cache_dir is None:
            return None
        sync = (
            "auto" if self.sync_access_latency is None
            else str(self.sync_access_latency)
        )
        net = "" if self.network == "ideal" else f"_net{self.network}"
        name = (
            f"cosim_{app}_v{TRACE_FORMAT_VERSION}_p{self.n_procs}"
            f"_m{self.miss_penalty}_c{self.cache_size}_l{self.line_size}"
            f"_s{sync}_{self.preset}{net}.pkl"
        )
        return self.cache_dir / name

    def get_cosim(self, app: str) -> CosimRun:
        """The all-processor run for ``app``: every cpu's trace plus the
        recorded sync schedule, generated (and disk-cached) on demand.
        The underlying functional execution is identical to
        :meth:`get` — the traced-cpu set and the schedule recording are
        observational — so cpu ``trace_cpu``'s trace is byte-identical
        to the single-trace cache's."""
        if app not in APP_NAMES:
            raise ValueError(f"unknown application {app!r}")
        run = self._cosim_runs.get(app)
        if run is not None:
            self.metrics.counter("trace.warm_hits").inc()
            return run
        path = self._cosim_cache_path(app)
        if path is not None:
            run = self._load(path, CosimRun)
            if run is not None:
                self.metrics.counter("trace.disk_hits").inc()
                self._cosim_runs[app] = run
                return run
        self.metrics.counter("trace.builds").inc()
        run = self._generate_cosim(app)
        self._cosim_runs[app] = run
        if path is not None:
            self._save(path, run)
        return run

    def _generate_cosim(self, app: str) -> CosimRun:
        workload = build_app(app, n_procs=self.n_procs, preset=self.preset)
        config = MultiprocessorConfig(
            n_cpus=self.n_procs,
            cache_size=self.cache_size,
            line_size=self.line_size,
            miss_penalty=self.miss_penalty,
            sync_access_latency=self.sync_access_latency,
            network=self.network,
            trace_cpus=tuple(range(self.n_procs)),
            record_sync_schedule=True,
        )
        result = TangoExecutor(
            workload.programs, config, memory=workload.memory
        ).run()
        if self.verify:
            workload.verify(result.memory)
        return CosimRun(
            app=app,
            traces=[result.trace(cpu) for cpu in range(self.n_procs)],
            schedule=result.sync_schedule,
            stats=result.stats,
            params=dict(workload.params),
        )

    def all_apps(self) -> list[AppRun]:
        return [self.get(app) for app in APP_NAMES]

    def spec(self) -> dict:
        """Picklable constructor arguments for pool workers."""
        return dict(
            n_procs=self.n_procs,
            miss_penalty=self.miss_penalty,
            cache_size=self.cache_size,
            preset=self.preset,
            trace_cpu=self.trace_cpu,
            cache_dir=self.cache_dir,
            verify=self.verify,
            line_size=self.line_size,
            sync_access_latency=self.sync_access_latency,
            network=self.network,
        )


#: Process-wide stores keyed by their full constructor spec.  A
#: persistent daemon worker serves many jobs over its lifetime; routing
#: them through one shared store per spec keeps the in-memory trace and
#: program caches warm across jobs, so a repeated sweep skips both
#: regeneration and the disk-cache unpickle.
_SHARED_STORES: dict[tuple, TraceStore] = {}


def shared_store(spec: dict, metrics=None) -> TraceStore:
    """The process-wide :class:`TraceStore` for ``spec`` (see above).

    ``metrics``, when given, (re)binds the store's warm-cache counters
    to the caller's registry — the daemon's serial path attaches its
    own so ``GET /v1/metrics`` reports warm hits.
    """
    key = tuple(sorted((k, str(v)) for k, v in spec.items()))
    store = _SHARED_STORES.get(key)
    if store is None:
        store = TraceStore(**spec)
        _SHARED_STORES[key] = store
    if metrics is not None:
        store.metrics = metrics
    return store


def _gen_worker(spec: dict, app: str) -> AppRun:
    """Pool worker: generate (or load) one application run."""
    return TraceStore(**spec).get(app)


def _sim_worker(
    spec: dict, app: str, configs: list[ProcessorConfig]
) -> list[ExecutionBreakdown]:
    """Pool worker: run a batch of processor models over one trace."""
    run = TraceStore(**spec).get(app)
    return [simulate(run.trace, cfg) for cfg in configs]


def _select_apps(apps: tuple[str, ...] | None) -> list[str]:
    return [a for a in APP_NAMES if apps is None or a in apps]


def generate_traces(
    store: TraceStore,
    apps: tuple[str, ...] | None = None,
    jobs: int = 1,
) -> list[AppRun]:
    """Materialise application runs, fanning out across processes.

    With ``jobs > 1`` each missing trace is generated in its own
    supervised worker process (workers share the on-disk cache, and a
    crashed or wedged worker is restarted with its trace retried);
    results are collected in canonical application order, so the
    outcome is independent of worker scheduling.  ``jobs <= 1`` is the
    plain serial path.
    """
    names = _select_apps(apps)
    missing = [a for a in names if a not in store._runs]
    if jobs > 1 and len(missing) > 1:
        spec = store.spec()
        runs = run_jobs(
            _gen_worker,
            [(spec, a) for a in missing],
            jobs=jobs,
            labels=[f"trace:{a}" for a in missing],
        )
        for app, run in zip(missing, runs):
            store._runs[app] = run
    return [store.get(a) for a in names]


def _chunk(seq: list, n: int) -> list[list]:
    """Split ``seq`` into at most ``n`` contiguous, order-preserving
    chunks."""
    n = max(1, min(n, len(seq)))
    size, extra = divmod(len(seq), n)
    chunks, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        chunks.append(seq[start:end])
        start = end
    return chunks


def simulate_app_models(
    store: TraceStore,
    configs: list[ProcessorConfig],
    apps: tuple[str, ...] | None = None,
    jobs: int = 1,
) -> dict[str, list[ExecutionBreakdown]]:
    """Run every config over every app's trace, optionally in parallel.

    The fan-out unit is one app (several apps) or one contiguous config
    chunk (single app), whichever exposes parallelism.  Results are
    assembled in input order — identical to the serial path, bar wall
    time.  Requires an on-disk cache for ``jobs > 1`` (workers cannot
    share in-memory traces); without one the sims run serially.
    """
    names = _select_apps(apps)
    if jobs > 1 and store.cache_dir is not None and names:
        generate_traces(store, tuple(names), jobs)
        spec = store.spec()
        if len(names) > 1:
            batches = run_jobs(
                _sim_worker,
                [(spec, a, configs) for a in names],
                jobs=jobs,
                labels=[f"sim:{a}" for a in names],
            )
            return dict(zip(names, batches))
        app = names[0]
        chunks = _chunk(list(configs), jobs)
        batches = run_jobs(
            _sim_worker,
            [(spec, app, chunk) for chunk in chunks],
            jobs=jobs,
            labels=[f"sim:{app}[{i}]" for i in range(len(chunks))],
        )
        return {app: [bd for batch in batches for bd in batch]}
    return {
        a: [simulate(store.get(a).trace, cfg) for cfg in configs]
        for a in names
    }


#: Process-wide default stores (50- and 100-cycle miss penalties), shared
#: by the test suite and the benchmark harness so the expensive functional
#: simulation happens once.
_STORES: dict[int, TraceStore] = {}


def default_store(miss_penalty: int = 50) -> TraceStore:
    store = _STORES.get(miss_penalty)
    if store is None:
        store = TraceStore(miss_penalty=miss_penalty)
        _STORES[miss_penalty] = store
    return store
