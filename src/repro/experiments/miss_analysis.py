"""§4.1.3 detail — read-miss issue delays and read-miss spacing.

The paper isolates data-dependence behaviour with two measurements on the
DS processor (window 64, perfect branch prediction):

* the delay of each read miss from decode (entering the reorder buffer)
  to memory issue — long delays indicate read misses whose address
  depends on a previous miss (LU/OCEAN: rarely above 10 cycles; MP3D:
  ~15% above 40; LOCUS: >20% above 40; PTHOR: ~50% above 50);
* the dynamic distance (in instructions) between consecutive read
  misses — if the spacing exceeds the window, small windows cannot
  overlap them (LU: ~90% of misses 20-30 apart; OCEAN: ~55% 16-20
  apart).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..consistency import get_model
from ..cpu.ds import DSConfig, DSProcessor
from .report import format_table
from .runner import TraceStore, default_store


@dataclass
class MissAnalysis:
    app: str
    issue_delays: list[int]
    distances: list[int]

    def frac_delay_over(self, threshold: int) -> float:
        if not self.issue_delays:
            return 0.0
        late = sum(1 for d in self.issue_delays if d > threshold)
        return late / len(self.issue_delays)

    def frac_distance_in(self, lo: int, hi: int) -> float:
        if not self.distances:
            return 0.0
        within = sum(1 for d in self.distances if lo <= d <= hi)
        return within / len(self.distances)

    def median_distance(self) -> float:
        if not self.distances:
            return 0.0
        ordered = sorted(self.distances)
        return float(ordered[len(ordered) // 2])


def run_miss_analysis(
    store: TraceStore | None = None,
    window: int = 64,
) -> list[MissAnalysis]:
    store = store or default_store()
    results = []
    for run in store.all_apps():
        proc = DSProcessor(
            run.trace,
            get_model("RC"),
            DSConfig(
                window=window,
                perfect_branch_prediction=True,
                collect_miss_stats=True,
            ),
        )
        proc.run()
        results.append(
            MissAnalysis(
                app=run.app,
                issue_delays=proc.read_miss_issue_delays,
                distances=proc.read_miss_distances,
            )
        )
    return results


def format_miss_analysis(results: list[MissAnalysis]) -> str:
    rows = []
    for r in results:
        rows.append([
            r.app.upper(),
            len(r.issue_delays),
            f"{100 * r.frac_delay_over(10):.0f}%",
            f"{100 * r.frac_delay_over(40):.0f}%",
            f"{100 * r.frac_delay_over(50):.0f}%",
            f"{r.median_distance():.0f}",
        ])
    return format_table(
        ["program", "read misses", ">10cyc", ">40cyc", ">50cyc",
         "median miss spacing"],
        rows,
        title=(
            "Read-miss issue delay (decode->issue, DS-RC window 64, "
            "perfect BP) and dynamic spacing between read misses"
        ),
    )
