"""Contention — Figure-3-style bars under a loaded interconnect.

The paper's fixed 50-cycle miss penalty assumes "no network contention",
an assumption it flags as optimistic for dynamically scheduled
processors: a DS core's lockup-free cache overlaps misses, and the
resulting bursty traffic queues in a real interconnect.  This experiment
quantifies how much of DS/RC's latency-hiding survives that queueing.

Each application's trace is replayed through BASE, SSBR and DS models
with the miss latencies re-timed by a :mod:`repro.net` backend at the
cycle each miss actually issues:

* ``ideal`` — the fixed penalty (the paper's model, the reference bars);
* ``crossbar`` — uniform switch; contention only at the node ports;
* ``mesh`` — k-ary 2D mesh with X-Y routing; distance and shared links.

Every (model, network) pair gets a fresh network, so the reported miss
latency distribution (mean / p50 / p99) is that model's own traffic: the
serial BASE processor's widely spaced misses see an unloaded network,
while DS's overlapped misses queue behind each other on the node's
injection link and at hot directory home nodes — which is exactly the
effect the fixed-penalty model cannot express.
"""

from __future__ import annotations

from ..cpu import ExecutionBreakdown, ProcessorConfig
from ..isa import MemClass
from ..net import NETWORK_KINDS, NetworkConfig
from ..service.pool import run_jobs
from .report import format_table
from .runner import TraceStore, default_store

_MC_READ = int(MemClass.READ)
_MC_WRITE = int(MemClass.WRITE)


def contention_configs() -> list[ProcessorConfig]:
    """The bars: serial reference, static RC, and two DS/RC windows."""
    return [
        ProcessorConfig(kind="base"),
        ProcessorConfig(kind="ssbr", model="RC"),
        ProcessorConfig(kind="ds", model="RC", window=64),
        ProcessorConfig(kind="ds", model="RC", window=256),
    ]


def _ideal_summary(trace, miss_penalty: int) -> dict:
    """The fixed-penalty 'distribution': every miss costs the same."""
    count = sum(
        1
        for cls, stall in zip(trace.mem_class, trace.stall)
        if stall > 0 and (cls == _MC_READ or cls == _MC_WRITE)
    )
    return {
        "count": count,
        "mean": float(miss_penalty),
        "p50": miss_penalty,
        "p99": miss_penalty,
        "max": miss_penalty,
        # An ideal network has no links, hence no queueing.
        "q_mean": 0.0,
        "q_max": 0,
    }


def _app_contention(
    store: TraceStore,
    app: str,
    networks: tuple[str, ...],
    network_config: NetworkConfig | None,
) -> dict[str, list[tuple[ExecutionBreakdown, dict]]]:
    """All (model, network) replays for one application.

    Each replay is a single-node run of the co-simulation engine
    (:func:`repro.cosim.replay_solo`): the same stepper/fabric path the
    ``cosim`` subcommand drives with all processors at once, here with
    one processor alone on a fresh network per (model, network) pair.
    """
    from ..cosim import replay_solo

    run = store.get(app)
    configs = contention_configs()
    per_net: dict[str, list[tuple[ExecutionBreakdown, dict]]] = {}
    for kind in networks:
        rows = []
        for cfg in configs:
            breakdown, net = replay_solo(
                run.trace, cfg, kind, store.n_procs, store.line_size,
                network_config,
            )
            if net is None:
                summary = _ideal_summary(run.trace, store.miss_penalty)
            else:
                summary = net.summary()
                links = net.link_summary()
                summary["q_mean"] = links["mean_depth"]
                summary["q_max"] = links["max_depth"]
            rows.append((breakdown, summary))
        per_net[kind] = rows
    return per_net


def _contention_worker(
    spec: dict,
    app: str,
    networks: tuple[str, ...],
    network_config: NetworkConfig | None,
) -> dict[str, list[tuple[ExecutionBreakdown, dict]]]:
    """Pool worker: one app's full contention replay (fresh store)."""
    return _app_contention(TraceStore(**spec), app, networks, network_config)


def run_contention(
    store: TraceStore | None = None,
    apps: tuple[str, ...] | None = None,
    networks: tuple[str, ...] = NETWORK_KINDS,
    network_config: NetworkConfig | None = None,
    jobs: int = 1,
) -> dict[str, dict[str, list[tuple[ExecutionBreakdown, dict]]]]:
    """Replay every app through every (model, network) combination.

    Returns ``results[app][network]`` as a list of
    ``(breakdown, miss_latency_summary)`` pairs, one per config of
    :func:`contention_configs`, where the summary carries the model's
    observed miss-latency distribution (count / mean / p50 / p99 / max).

    With ``jobs > 1`` (and an on-disk trace cache) each application's
    replay runs in its own supervised worker; results are assembled in
    canonical app order, identical to the serial path.
    """
    store = store or default_store()
    from ..apps import APP_NAMES

    names = [
        a for a in APP_NAMES if apps is None or a in apps
    ]
    if jobs > 1 and len(names) > 1 and store.cache_dir is not None:
        from .runner import generate_traces

        generate_traces(store, tuple(names), jobs)
        spec = store.spec()
        per_app = run_jobs(
            _contention_worker,
            [(spec, a, tuple(networks), network_config) for a in names],
            jobs=jobs,
            labels=[f"contention:{a}" for a in names],
        )
        return dict(zip(names, per_app))
    return {
        app: _app_contention(store, app, tuple(networks), network_config)
        for app in names
    }


def format_contention(
    results: dict[str, dict[str, list[tuple[ExecutionBreakdown, dict]]]],
) -> str:
    """Render per-app tables: execution time and miss-latency stats."""
    sections = []
    for app, per_net in results.items():
        rows = []
        base_total = None
        for kind, pairs in per_net.items():
            for breakdown, summary in pairs:
                total = breakdown.total
                if base_total is None:
                    base_total = total  # first row: ideal BASE
                rows.append([
                    kind,
                    breakdown.label,
                    total,
                    100.0 * total / base_total,
                    summary["count"],
                    float(summary["mean"]),
                    summary["p50"],
                    summary["p99"],
                    float(summary.get("q_mean", 0.0)),
                    summary.get("q_max", 0),
                ])
        sections.append(format_table(
            ["network", "config", "cycles", "% ideal BASE",
             "misses", "lat mean", "p50", "p99", "q mean", "q max"],
            rows,
            title=f"Contention — {app.upper()} (miss latency per model)",
        ))
    return "\n\n".join(sections)
