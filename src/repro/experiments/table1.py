"""Table 1 — statistics on data references.

Per application, for a single processor of the 16-processor simulation:
busy cycles, reads, writes, read misses and write misses, with the
per-thousand-instruction rates the paper prints in parentheses.
"""

from __future__ import annotations

from dataclasses import dataclass

from .report import format_table
from .runner import TraceStore, default_store


@dataclass
class Table1Row:
    app: str
    busy_cycles: int
    reads: int
    writes: int
    read_misses: int
    write_misses: int

    @property
    def read_rate(self) -> float:
        return 1000.0 * self.reads / self.busy_cycles

    @property
    def write_rate(self) -> float:
        return 1000.0 * self.writes / self.busy_cycles

    @property
    def read_miss_rate(self) -> float:
        return 1000.0 * self.read_misses / self.busy_cycles

    @property
    def write_miss_rate(self) -> float:
        return 1000.0 * self.write_misses / self.busy_cycles


def run_table1(store: TraceStore | None = None) -> list[Table1Row]:
    store = store or default_store()
    rows = []
    for run in store.all_apps():
        stats = run.stats.cpu(store.trace_cpu)
        rows.append(
            Table1Row(
                app=run.app,
                busy_cycles=stats.busy_cycles,
                reads=stats.reads,
                writes=stats.writes,
                read_misses=stats.read_misses,
                write_misses=stats.write_misses,
            )
        )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    return format_table(
        ["program", "busy cycles", "reads", "(rate)", "writes", "(rate)",
         "read misses", "(rate)", "write misses", "(rate)"],
        [
            [
                r.app.upper(), r.busy_cycles,
                r.reads, f"({r.read_rate:.0f})",
                r.writes, f"({r.write_rate:.0f})",
                r.read_misses, f"({r.read_miss_rate:.1f})",
                r.write_misses, f"({r.write_miss_rate:.1f})",
            ]
            for r in rows
        ],
        title=(
            "Table 1: data references (one processor of 16; rates per "
            "1000 instructions)"
        ),
    )
