"""Plain-text table/figure rendering for experiment output.

The original paper presents its results as tables and stacked-bar
figures.  This module renders the same content as aligned text tables and
ASCII stacked bars, so every experiment's output can be diffed, logged
from a benchmark run, and pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from ..cpu import ExecutionBreakdown
from ..cpu.results import COMPONENT_GLYPHS, COMPONENTS


def format_table(
    headers: list[str],
    rows: list[list],
    title: str = "",
    float_fmt: str = "{:.1f}",
) -> str:
    """Render an aligned text table."""
    def cell(value) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows))
        if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def breakdown_rows(
    runs: list[ExecutionBreakdown],
    base: ExecutionBreakdown,
) -> list[list]:
    """Rows of normalised execution-time components (percent of BASE)."""
    rows = []
    for run in runs:
        nz = run.normalized_to(base)
        rows.append(
            [run.label] + [nz[comp] for comp in COMPONENTS] + [nz["total"]]
        )
    return rows


def format_breakdowns(
    title: str,
    runs: list[ExecutionBreakdown],
    base: ExecutionBreakdown,
) -> str:
    """The paper's stacked-bar data as a table (percent of BASE time)."""
    headers = ["config", *COMPONENTS, "total"]
    return format_table(headers, breakdown_rows(runs, base), title=title)


def format_stacked_bars(
    title: str,
    runs: list[ExecutionBreakdown],
    base: ExecutionBreakdown,
    width: int = 60,
) -> str:
    """ASCII rendition of the paper's stacked execution-time bars.

    Each configuration is one horizontal bar scaled so that BASE fills
    ``width`` characters: ``#`` busy, ``S`` sync stall, ``R`` read stall,
    ``W`` write stall, ``.`` other.
    """
    label_w = max((len(r.label) for r in runs), default=5)
    lines = [title] if title else []
    for run in runs:
        nz = run.normalized_to(base)
        scale = width / 100.0
        bar = "".join(
            COMPONENT_GLYPHS[comp] * round(nz[comp] * scale)
            for comp in COMPONENTS
        )
        lines.append(
            f"{run.label.ljust(label_w)} |{bar}| {nz['total']:6.1f}%"
        )
    legend = "  ".join(
        f"{COMPONENT_GLYPHS[comp]} {comp}" for comp in COMPONENTS
    )
    lines.append(f"{''.ljust(label_w)}  legend: {legend}")
    return "\n".join(lines)
