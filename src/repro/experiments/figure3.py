"""Figure 3 — execution time vs. processor model and consistency model.

For each application, the paper's Figure 3 plots normalised execution
time (breakdown: busy / sync / read / write) for:

* BASE — in-order, no overlap;
* SC:  SSBR, SS, DS with window 256;
* PC:  SSBR, SS, DS with window 256;
* RC:  SSBR, SS, DS with windows 16, 32, 64, 128, 256;

all at a 50-cycle miss penalty (the 100-cycle variant lives in
:mod:`repro.experiments.latency100`).
"""

from __future__ import annotations

from ..cpu import ExecutionBreakdown, ProcessorConfig, simulate
from .report import format_breakdowns, format_stacked_bars
from .runner import (
    AppRun,
    TraceStore,
    default_store,
    simulate_app_models,
)

WINDOW_SIZES = (16, 32, 64, 128, 256)


def figure3_configs() -> list[ProcessorConfig]:
    configs: list[ProcessorConfig] = [ProcessorConfig(kind="base")]
    for model in ("SC", "PC"):
        configs.append(ProcessorConfig(kind="ssbr", model=model))
        configs.append(ProcessorConfig(kind="ss", model=model))
        configs.append(ProcessorConfig(kind="ds", model=model, window=256))
    configs.append(ProcessorConfig(kind="ssbr", model="RC"))
    configs.append(ProcessorConfig(kind="ss", model="RC"))
    for window in WINDOW_SIZES:
        configs.append(ProcessorConfig(kind="ds", model="RC", window=window))
    return configs


def run_figure3_app(run: AppRun) -> list[ExecutionBreakdown]:
    """All Figure 3 bars for one application."""
    return [simulate(run.trace, cfg) for cfg in figure3_configs()]


def run_figure3(
    store: TraceStore | None = None,
    apps: tuple[str, ...] | None = None,
    jobs: int = 1,
) -> dict[str, list[ExecutionBreakdown]]:
    store = store or default_store()
    return simulate_app_models(
        store, figure3_configs(), apps=apps, jobs=jobs
    )


def format_figure3(
    results: dict[str, list[ExecutionBreakdown]],
    bars: bool = True,
) -> str:
    sections = []
    for app, runs in results.items():
        base = runs[0]
        title = f"Figure 3 — {app.upper()} (percent of BASE, 50-cycle miss)"
        sections.append(format_breakdowns(title, runs, base))
        if bars:
            sections.append(format_stacked_bars("", runs, base))
    return "\n\n".join(sections)
