"""Figure 4 — isolating branch prediction and data dependences (DS, RC).

For each application: BASE, then the DS processor under RC at windows
16-256 with *perfect branch prediction*, then the same windows with
perfect branch prediction *and data dependences ignored* (consistency
constraints are still respected, exactly as the paper's footnote 3
specifies).
"""

from __future__ import annotations

from ..cpu import ExecutionBreakdown, ProcessorConfig, simulate
from .figure3 import WINDOW_SIZES
from .report import format_breakdowns, format_stacked_bars
from .runner import (
    AppRun,
    TraceStore,
    default_store,
    simulate_app_models,
)


def figure4_configs() -> list[ProcessorConfig]:
    configs: list[ProcessorConfig] = [ProcessorConfig(kind="base")]
    for window in WINDOW_SIZES:
        configs.append(
            ProcessorConfig(
                kind="ds", model="RC", window=window, perfect_bp=True
            )
        )
    for window in WINDOW_SIZES:
        configs.append(
            ProcessorConfig(
                kind="ds", model="RC", window=window,
                perfect_bp=True, ignore_deps=True,
            )
        )
    return configs


def run_figure4_app(run: AppRun) -> list[ExecutionBreakdown]:
    return [simulate(run.trace, cfg) for cfg in figure4_configs()]


def run_figure4(
    store: TraceStore | None = None,
    apps: tuple[str, ...] | None = None,
    jobs: int = 1,
) -> dict[str, list[ExecutionBreakdown]]:
    store = store or default_store()
    return simulate_app_models(
        store, figure4_configs(), apps=apps, jobs=jobs
    )


def format_figure4(
    results: dict[str, list[ExecutionBreakdown]],
    bars: bool = True,
) -> str:
    sections = []
    for app, runs in results.items():
        base = runs[0]
        title = (
            f"Figure 4 — {app.upper()}: perfect branch prediction and "
            f"ignored data dependences (DS under RC, percent of BASE)"
        )
        sections.append(format_breakdowns(title, runs, base))
        if bars:
            sections.append(format_stacked_bars("", runs, base))
    return "\n\n".join(sections)
