"""Table 3 — statistics on branch behaviour.

Per application: the fraction of instructions that are branches, the
average distance between branches, the BTB prediction accuracy (2048
entries, 4-way, 2-bit counters — the paper's configuration), and the
average distance between mispredictions.

Following the paper, "branches" here are the control-transfer
instructions whose outcome prediction matters: conditional branches and
indirect jumps.  Direct jumps always predict correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu import BranchTargetBuffer
from ..cpu.ds.btb import predicted_correctly
from ..isa import Op, is_cond_branch
from ..tango import Trace
from .report import format_table
from .runner import TraceStore, default_store


@dataclass
class Table3Row:
    app: str
    instructions: int
    branches: int
    predicted: int

    @property
    def branch_pct(self) -> float:
        return 100.0 * self.branches / self.instructions

    @property
    def avg_distance(self) -> float:
        return self.instructions / self.branches if self.branches else 0.0

    @property
    def predicted_pct(self) -> float:
        return 100.0 * self.predicted / self.branches if self.branches else 0.0

    @property
    def avg_mispredict_distance(self) -> float:
        missed = self.branches - self.predicted
        return self.instructions / missed if missed else float("inf")


def analyze_trace(app: str, trace: Trace,
                  btb_entries: int = 2048, btb_assoc: int = 4) -> Table3Row:
    btb = BranchTargetBuffer(btb_entries, btb_assoc)
    branches = 0
    predicted = 0
    for record in trace:
        op = record.op
        if is_cond_branch(op) or op is Op.JR:
            branches += 1
            if predicted_correctly(btb, op, record.pc, record.next_pc):
                predicted += 1
    return Table3Row(
        app=app,
        instructions=len(trace),
        branches=branches,
        predicted=predicted,
    )


def run_table3(store: TraceStore | None = None) -> list[Table3Row]:
    store = store or default_store()
    return [analyze_trace(run.app, run.trace) for run in store.all_apps()]


def format_table3(rows: list[Table3Row]) -> str:
    return format_table(
        ["program", "% instrs", "avg dist", "% predicted", "avg mispred dist"],
        [
            [
                r.app.upper(),
                f"{r.branch_pct:.1f}%",
                f"{r.avg_distance:.1f}",
                f"{r.predicted_pct:.1f}%",
                f"{r.avg_mispredict_distance:.1f}",
            ]
            for r in rows
        ],
        title="Table 3: branch behaviour (2048-entry 4-way BTB)",
    )
