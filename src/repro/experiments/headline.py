"""The paper's headline result (§7).

"Assuming a memory latency of 50 cycles, the average percentage of read
latency that was hidden across the five applications was 33% for window
size of 16, 63% for window size of 32, and 81% for window size of 64."

This experiment computes the same averages from our Figure 3 data: per
application, the fraction of the BASE processor's read-stall time that
the dynamically scheduled processor under RC eliminated, averaged across
applications.
"""

from __future__ import annotations

from ..cpu import ProcessorConfig, simulate
from .figure3 import WINDOW_SIZES
from .report import format_table
from .runner import TraceStore, default_store

PAPER_HIDDEN = {16: 0.33, 32: 0.63, 64: 0.81}


def run_headline(
    store: TraceStore | None = None,
    windows: tuple[int, ...] = WINDOW_SIZES,
) -> dict[int, dict[str, float]]:
    """Fraction of read latency hidden, per window per app (+ 'avg')."""
    store = store or default_store()
    result: dict[int, dict[str, float]] = {w: {} for w in windows}
    for run in store.all_apps():
        for window in windows:
            ds = simulate(
                run.trace,
                ProcessorConfig(kind="ds", model="RC", window=window),
            )
            result[window][run.app] = ds.read_latency_hidden_vs(run.base)
    for window in windows:
        apps = result[window]
        apps["avg"] = sum(apps.values()) / len(apps)
    return result


def format_headline(result: dict[int, dict[str, float]]) -> str:
    windows = sorted(result)
    apps = [a for a in next(iter(result.values())) if a != "avg"]
    rows = []
    for window in windows:
        row = [window]
        row.extend(f"{100 * result[window][a]:.0f}%" for a in apps)
        row.append(f"{100 * result[window]['avg']:.0f}%")
        paper = PAPER_HIDDEN.get(window)
        row.append(f"{100 * paper:.0f}%" if paper is not None else "-")
        rows.append(row)
    return format_table(
        ["window"] + [a.upper() for a in apps] + ["avg", "paper avg"],
        rows,
        title="Read latency hidden by DS under RC (percent of BASE read stall)",
    )
