"""§4.2 / technical-report extension: 100-cycle memory latency.

The paper reports that with a 100-cycle miss penalty the trends match the
50-cycle results except that performance levels off at window 128 rather
than 64 (the window must exceed the latency to fully overlap it), and
that the *relative* gain from hiding latency is consistently larger.

This experiment regenerates the traces with ``miss_penalty=100`` and
sweeps the DS/RC window sizes.
"""

from __future__ import annotations

from ..cpu import ExecutionBreakdown, ProcessorConfig, simulate
from .figure3 import WINDOW_SIZES
from .report import format_breakdowns
from .runner import TraceStore, default_store, simulate_app_models


def latency100_configs() -> list[ProcessorConfig]:
    configs = [ProcessorConfig(kind="base")]
    for window in WINDOW_SIZES:
        configs.append(
            ProcessorConfig(kind="ds", model="RC", window=window)
        )
    return configs


def run_latency100(
    store: TraceStore | None = None,
    apps: tuple[str, ...] | None = None,
    jobs: int = 1,
) -> dict[str, list[ExecutionBreakdown]]:
    store = store or default_store(miss_penalty=100)
    if store.miss_penalty != 100:
        raise ValueError("latency100 requires a 100-cycle store")
    return simulate_app_models(
        store, latency100_configs(), apps=apps, jobs=jobs
    )


def format_latency100(
    results: dict[str, list[ExecutionBreakdown]]
) -> str:
    sections = []
    for app, runs in results.items():
        base = runs[0]
        sections.append(
            format_breakdowns(
                f"100-cycle latency — {app.upper()} "
                f"(DS under RC, percent of BASE)",
                runs,
                base,
            )
        )
    return "\n\n".join(sections)
