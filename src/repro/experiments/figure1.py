"""Figure 1 — ordering restrictions of the four consistency models.

The paper's Figure 1 is conceptual: for a canonical sequence of accesses
it draws which must complete before which under SC, PC, WO and RC.  This
experiment makes the figure executable: for the same canonical sequence
it reports the (transitively reduced) ordering edges each model imposes
and the idealised overlapped completion time — demonstrating the strict
SC > PC > WO > RC relaxation order.
"""

from __future__ import annotations

from ..consistency import (
    MODELS,
    earliest_completion_times,
    ordering_edges,
    reduced_edges,
    total_time,
)
from ..isa import MemClass
from .report import format_table

#: The access sequence sketched by the paper's Figure 1: data accesses,
#: an acquire, more data accesses, a release, then trailing accesses.
CANONICAL_OPS = [
    MemClass.READ,
    MemClass.WRITE,
    MemClass.ACQUIRE,
    MemClass.READ,
    MemClass.WRITE,
    MemClass.RELEASE,
    MemClass.READ,
    MemClass.WRITE,
]

#: Every access costs one memory latency in the idealised machine.
CANONICAL_LATENCIES = [50] * len(CANONICAL_OPS)


def run_figure1() -> dict[str, dict]:
    """Per model: reduced ordering edges and idealised makespan."""
    result = {}
    for name, model in MODELS.items():
        edges = reduced_edges(model, CANONICAL_OPS)
        times = earliest_completion_times(
            model, CANONICAL_OPS, CANONICAL_LATENCIES
        )
        result[name] = {
            "edges": sorted(edges),
            "constraints": len(ordering_edges(model, CANONICAL_OPS)),
            "times": times,
            "makespan": total_time(
                model, CANONICAL_OPS, CANONICAL_LATENCIES
            ),
        }
    return result


def format_figure1(result: dict[str, dict]) -> str:
    ops = ", ".join(
        f"{i}:{op.name.lower()}" for i, op in enumerate(CANONICAL_OPS)
    )
    rows = [
        [name, data["constraints"], len(data["edges"]), data["makespan"]]
        for name, data in result.items()
    ]
    table = format_table(
        ["model", "constraints", "drawn arrows",
         "idealised makespan (cycles)"],
        rows,
        title=f"Figure 1: ordering restrictions over [{ops}]",
    )
    detail = []
    for name, data in result.items():
        arrows = " ".join(f"{i}->{j}" for i, j in data["edges"])
        detail.append(f"  {name}: {arrows}")
    return table + "\n" + "\n".join(detail)
