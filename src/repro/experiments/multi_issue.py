"""§4.2 / technical-report extension: multiple instruction issue.

With a maximum of four instructions issued per cycle, computation speeds
up while memory latency stays at 50 cycles, so a larger window is needed:
the paper observes performance still climbing from window 64 to 128 under
RC, where single issue had levelled off at 64.
"""

from __future__ import annotations

from ..cpu import ExecutionBreakdown, ProcessorConfig, simulate
from .figure3 import WINDOW_SIZES
from .report import format_breakdowns
from .runner import TraceStore, default_store


def run_multi_issue(
    store: TraceStore | None = None,
    issue_width: int = 4,
    apps: tuple[str, ...] | None = None,
) -> dict[str, list[ExecutionBreakdown]]:
    store = store or default_store()
    result = {}
    for run in store.all_apps():
        if apps is not None and run.app not in apps:
            continue
        runs = [simulate(run.trace, ProcessorConfig(kind="base"))]
        for window in WINDOW_SIZES:
            runs.append(
                simulate(
                    run.trace,
                    ProcessorConfig(
                        kind="ds", model="RC", window=window,
                        issue_width=issue_width,
                    ),
                )
            )
        result[run.app] = runs
    return result


def format_multi_issue(
    results: dict[str, list[ExecutionBreakdown]],
    issue_width: int = 4,
) -> str:
    sections = []
    for app, runs in results.items():
        base = runs[0]
        sections.append(
            format_breakdowns(
                f"{issue_width}-issue — {app.upper()} "
                f"(DS under RC, percent of single-issue BASE)",
                runs,
                base,
            )
        )
    return "\n\n".join(sections)
