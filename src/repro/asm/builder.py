"""A structured assembler for building thread programs.

The five applications in :mod:`repro.apps` are written directly against the
simulated ISA, the way the original study's applications were compiled MIPS
binaries.  Writing raw instruction lists by hand is error prone, so this
module provides :class:`AsmBuilder`: a thin structured-assembly layer with

* a register allocator over the 31 usable integer and 32 floating point
  registers (exhaustion raises — programs must reuse registers, which is
  what creates the realistic WAR/WAW hazards that make register renaming
  in the dynamically scheduled core meaningful);
* one helper method per opcode, plus the usual pseudo-instructions
  (``li``, ``mov``, ``la``);
* structured control flow (``for_range``, ``while_cmp``, ``if_cmp``)
  implemented as context managers that expand to labels and conditional
  branches.

Example::

    b = AsmBuilder("sum")
    acc = b.ireg("acc")
    i = b.ireg("i")
    b.li(acc, 0)
    with b.for_range(i, 0, 10):
        b.add(acc, acc, i)
    program = b.build()
"""

from __future__ import annotations

from contextlib import contextmanager

from ..isa import Instruction, Op, Program, RA, ZERO, fp_reg, int_reg, reg_name


class Reg(int):
    """A register id.

    A distinct type (an ``int`` subclass) so the structured helpers can
    tell a register operand from an immediate: ``for_range(i, 0, r_n)``
    must treat ``r_n`` as a bound register, not the constant equal to its
    register number.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return reg_name(int(self))


#: Condition code -> (branch op taken when condition holds,
#:                    branch op taken when condition fails)
_CC = {
    "eq": (Op.BEQ, Op.BNE),
    "ne": (Op.BNE, Op.BEQ),
    "lt": (Op.BLT, Op.BGE),
    "ge": (Op.BGE, Op.BLT),
    "le": (Op.BLE, Op.BGT),
    "gt": (Op.BGT, Op.BLE),
}


class RegisterPressureError(Exception):
    """Raised when a program needs more live registers than the file has."""


class AsmBuilder:
    """Builds a :class:`~repro.isa.Program` with structured helpers."""

    def __init__(self, name: str = "program") -> None:
        self.program = Program(name)
        # r0 is hardwired zero and r31 is the link register; neither is
        # available to the allocator.
        self._free_int = [int_reg(n) for n in range(30, 0, -1)]
        self._free_fp = [fp_reg(n) for n in range(31, -1, -1)]
        self._names: dict[int, str] = {}
        self._label_seq = 0
        self.zero = Reg(ZERO)
        self.ra = Reg(RA)

    # -- register allocation ------------------------------------------------

    def ireg(self, name: str | None = None) -> Reg:
        """Allocate an integer register for the rest of the program."""
        if not self._free_int:
            raise RegisterPressureError(
                f"{self.program.name}: out of integer registers"
            )
        reg = Reg(self._free_int.pop())
        if name:
            self._names[reg] = name
        return reg

    def freg(self, name: str | None = None) -> Reg:
        """Allocate a floating point register for the rest of the program."""
        if not self._free_fp:
            raise RegisterPressureError(
                f"{self.program.name}: out of fp registers"
            )
        reg = Reg(self._free_fp.pop())
        if name:
            self._names[reg] = name
        return reg

    def free(self, *regs: int) -> None:
        """Return registers to the allocator."""
        for reg in regs:
            self._names.pop(reg, None)
            if reg >= 32:
                self._free_fp.append(reg)
            elif reg not in (ZERO, RA):
                self._free_int.append(reg)

    @contextmanager
    def itemps(self, count: int):
        """Scoped integer temporaries, freed on exit."""
        regs = [self.ireg() for _ in range(count)]
        try:
            yield regs[0] if count == 1 else tuple(regs)
        finally:
            self.free(*regs)

    @contextmanager
    def ftemps(self, count: int):
        """Scoped floating point temporaries, freed on exit."""
        regs = [self.freg() for _ in range(count)]
        try:
            yield regs[0] if count == 1 else tuple(regs)
        finally:
            self.free(*regs)

    # -- raw emission ---------------------------------------------------------

    def emit(self, op: Op, **kwargs) -> int:
        """Append a raw instruction; returns its index."""
        return self.program.append(Instruction(op, **kwargs))

    def label(self, name: str) -> str:
        """Define ``name`` at the current position; returns the name."""
        self.program.define_label(name)
        return name

    def newlabel(self, prefix: str = "L") -> str:
        """Generate a fresh label name (not yet defined)."""
        self._label_seq += 1
        return f".{prefix}{self._label_seq}"

    # -- integer ALU ---------------------------------------------------------

    def add(self, rd, rs1, rs2):
        self.emit(Op.ADD, rd=rd, rs1=rs1, rs2=rs2)

    def sub(self, rd, rs1, rs2):
        self.emit(Op.SUB, rd=rd, rs1=rs1, rs2=rs2)

    def mul(self, rd, rs1, rs2):
        self.emit(Op.MUL, rd=rd, rs1=rs1, rs2=rs2)

    def div(self, rd, rs1, rs2):
        self.emit(Op.DIV, rd=rd, rs1=rs1, rs2=rs2)

    def rem(self, rd, rs1, rs2):
        self.emit(Op.REM, rd=rd, rs1=rs1, rs2=rs2)

    def and_(self, rd, rs1, rs2):
        self.emit(Op.AND, rd=rd, rs1=rs1, rs2=rs2)

    def or_(self, rd, rs1, rs2):
        self.emit(Op.OR, rd=rd, rs1=rs1, rs2=rs2)

    def xor(self, rd, rs1, rs2):
        self.emit(Op.XOR, rd=rd, rs1=rs1, rs2=rs2)

    def slt(self, rd, rs1, rs2):
        self.emit(Op.SLT, rd=rd, rs1=rs1, rs2=rs2)

    def sle(self, rd, rs1, rs2):
        self.emit(Op.SLE, rd=rd, rs1=rs1, rs2=rs2)

    def seq(self, rd, rs1, rs2):
        self.emit(Op.SEQ, rd=rd, rs1=rs1, rs2=rs2)

    def addi(self, rd, rs1, imm: int):
        self.emit(Op.ADDI, rd=rd, rs1=rs1, imm=imm)

    def muli(self, rd, rs1, imm: int):
        self.emit(Op.MULI, rd=rd, rs1=rs1, imm=imm)

    def andi(self, rd, rs1, imm: int):
        self.emit(Op.ANDI, rd=rd, rs1=rs1, imm=imm)

    def ori(self, rd, rs1, imm: int):
        self.emit(Op.ORI, rd=rd, rs1=rs1, imm=imm)

    def xori(self, rd, rs1, imm: int):
        self.emit(Op.XORI, rd=rd, rs1=rs1, imm=imm)

    def slti(self, rd, rs1, imm: int):
        self.emit(Op.SLTI, rd=rd, rs1=rs1, imm=imm)

    # -- shifter ---------------------------------------------------------------

    def sll(self, rd, rs1, rs2):
        self.emit(Op.SLL, rd=rd, rs1=rs1, rs2=rs2)

    def srl(self, rd, rs1, rs2):
        self.emit(Op.SRL, rd=rd, rs1=rs1, rs2=rs2)

    def slli(self, rd, rs1, imm: int):
        self.emit(Op.SLLI, rd=rd, rs1=rs1, imm=imm)

    def srli(self, rd, rs1, imm: int):
        self.emit(Op.SRLI, rd=rd, rs1=rs1, imm=imm)

    def srai(self, rd, rs1, imm: int):
        self.emit(Op.SRAI, rd=rd, rs1=rs1, imm=imm)

    # -- pseudo-instructions ------------------------------------------------

    def li(self, rd, imm: int):
        """Load integer constant."""
        self.emit(Op.ADDI, rd=rd, rs1=ZERO, imm=imm)

    def la(self, rd, address: int):
        """Load an address constant (alias of :meth:`li`)."""
        self.li(rd, address)

    def mov(self, rd, rs):
        self.emit(Op.ADD, rd=rd, rs1=rs, rs2=ZERO)

    def nop(self):
        self.emit(Op.NOP)

    # -- floating point --------------------------------------------------------

    def fadd(self, fd, fs1, fs2):
        self.emit(Op.FADD, rd=fd, rs1=fs1, rs2=fs2)

    def fsub(self, fd, fs1, fs2):
        self.emit(Op.FSUB, rd=fd, rs1=fs1, rs2=fs2)

    def fmul(self, fd, fs1, fs2):
        self.emit(Op.FMUL, rd=fd, rs1=fs1, rs2=fs2)

    def fdiv(self, fd, fs1, fs2):
        self.emit(Op.FDIV, rd=fd, rs1=fs1, rs2=fs2)

    def fsqrt(self, fd, fs1):
        self.emit(Op.FSQRT, rd=fd, rs1=fs1)

    def fneg(self, fd, fs1):
        self.emit(Op.FNEG, rd=fd, rs1=fs1)

    def fabs_(self, fd, fs1):
        self.emit(Op.FABS, rd=fd, rs1=fs1)

    def fmov(self, fd, fs1):
        self.emit(Op.FMOV, rd=fd, rs1=fs1)

    def fli(self, fd, imm: float):
        """Load a floating point constant."""
        self.emit(Op.FLI, rd=fd, imm=float(imm))

    def fmin(self, fd, fs1, fs2):
        self.emit(Op.FMIN, rd=fd, rs1=fs1, rs2=fs2)

    def fmax(self, fd, fs1, fs2):
        self.emit(Op.FMAX, rd=fd, rs1=fs1, rs2=fs2)

    def flt(self, rd, fs1, fs2):
        self.emit(Op.FLT, rd=rd, rs1=fs1, rs2=fs2)

    def fle(self, rd, fs1, fs2):
        self.emit(Op.FLE, rd=rd, rs1=fs1, rs2=fs2)

    def feq(self, rd, fs1, fs2):
        self.emit(Op.FEQ, rd=rd, rs1=fs1, rs2=fs2)

    def cvtif(self, fd, rs1):
        """Convert integer register to floating point."""
        self.emit(Op.CVTIF, rd=fd, rs1=rs1)

    def cvtfi(self, rd, fs1):
        """Convert floating point register to integer (truncating)."""
        self.emit(Op.CVTFI, rd=rd, rs1=fs1)

    # -- memory ----------------------------------------------------------------

    def lw(self, rd, base, offset: int = 0):
        self.emit(Op.LW, rd=rd, rs1=base, imm=offset)

    def sw(self, rs, base, offset: int = 0):
        self.emit(Op.SW, rs1=base, rs2=rs, imm=offset)

    def fld(self, fd, base, offset: int = 0):
        self.emit(Op.FLD, rd=fd, rs1=base, imm=offset)

    def fsd(self, fs, base, offset: int = 0):
        self.emit(Op.FSD, rs1=base, rs2=fs, imm=offset)

    # -- control flow ------------------------------------------------------------

    def branch(self, cc: str, rs1, rs2, label: str):
        """Branch to ``label`` when ``rs1 <cc> rs2`` holds."""
        op, _ = _CC[cc]
        self.emit(op, rs1=rs1, rs2=rs2, label=label)

    def branch_not(self, cc: str, rs1, rs2, label: str):
        """Branch to ``label`` when ``rs1 <cc> rs2`` does NOT hold."""
        _, op = _CC[cc]
        self.emit(op, rs1=rs1, rs2=rs2, label=label)

    def beqz(self, rs, label: str):
        self.emit(Op.BEQ, rs1=rs, rs2=ZERO, label=label)

    def bnez(self, rs, label: str):
        self.emit(Op.BNE, rs1=rs, rs2=ZERO, label=label)

    def j(self, label: str):
        self.emit(Op.J, label=label)

    def jal(self, label: str):
        self.emit(Op.JAL, rd=RA, label=label)

    def jr(self, rs=RA):
        self.emit(Op.JR, rs1=rs)

    def halt(self):
        self.emit(Op.HALT)

    # -- synchronization ------------------------------------------------------

    def lock(self, addr_reg):
        self.emit(Op.LOCK, rs1=addr_reg)

    def unlock(self, addr_reg):
        self.emit(Op.UNLOCK, rs1=addr_reg)

    def barrier(self, addr_reg):
        self.emit(Op.BARRIER, rs1=addr_reg)

    def evwait(self, addr_reg):
        self.emit(Op.EVWAIT, rs1=addr_reg)

    def evset(self, addr_reg):
        self.emit(Op.EVSET, rs1=addr_reg)

    def evclear(self, addr_reg):
        self.emit(Op.EVCLEAR, rs1=addr_reg)

    # -- structured control flow ----------------------------------------------

    @contextmanager
    def for_range(self, counter, start, stop, step: int = 1):
        """``for counter in range(start, stop, step)``.

        ``start`` and ``stop`` may each be an integer constant or a
        register.  ``step`` must be a non-zero integer constant.  The loop
        body must not clobber ``counter`` (or ``stop``'s register).
        """
        if step == 0:
            raise ValueError("for_range step must be non-zero")
        top = self.newlabel("for")
        end = self.newlabel("endfor")
        if isinstance(start, Reg):
            self.mov(counter, start)
        else:
            self.li(counter, int(start or 0))
        stop_tmp = None
        if isinstance(stop, Reg):
            stop_reg = stop
        else:
            stop_tmp = self.ireg()
            self.li(stop_tmp, int(stop))
            stop_reg = stop_tmp
        self.label(top)
        exit_cc = "ge" if step > 0 else "le"
        self.branch(exit_cc, counter, stop_reg, end)
        try:
            yield counter
        finally:
            self.addi(counter, counter, step)
            self.j(top)
            self.label(end)
            if stop_tmp is not None:
                self.free(stop_tmp)

    @contextmanager
    def if_cmp(self, cc: str, rs1, rs2):
        """Execute the body only when ``rs1 <cc> rs2`` holds (no else)."""
        end = self.newlabel("endif")
        self.branch_not(cc, rs1, rs2, end)
        yield
        self.label(end)

    @contextmanager
    def while_cmp(self, cc: str, rs1, rs2):
        """Loop while ``rs1 <cc> rs2`` holds; condition tested at top."""
        top = self.newlabel("while")
        end = self.newlabel("endwhile")
        self.label(top)
        self.branch_not(cc, rs1, rs2, end)
        yield
        self.j(top)
        self.label(end)

    # -- finishing ----------------------------------------------------------------

    def build(self) -> Program:
        """Seal and return the program."""
        return self.program.seal()
