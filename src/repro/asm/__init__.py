"""Structured assembler for writing applications against the simulated ISA."""

from .builder import AsmBuilder, Reg, RegisterPressureError

__all__ = ["AsmBuilder", "Reg", "RegisterPressureError"]
