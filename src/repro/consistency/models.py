"""Memory consistency models: SC, PC, WO, RC.

A consistency model, for the purposes of every processor simulator in this
package, is a *pairwise ordering predicate* over the memory-operation
classes of :class:`~repro.isa.MemClass`:

    ``requires(earlier, later)`` — may the ``later`` access not be issued
    until the ``earlier`` access (which precedes it in program order) has
    performed?

This is exactly the information Figure 1 of the paper conveys:

* **SC** orders every access after every previous access.
* **PC** lets a read bypass previous writes, but reads are serialized
  after previous reads, and writes after everything.
* **WO** orders accesses only around synchronization points: a sync
  operation waits for everything before it and gates everything after it;
  ordinary data accesses in between overlap freely.
* **RC** splits synchronization into *acquires* (read-like: lock, event
  wait, barrier entry) and *releases* (write-like: unlock, event set,
  barrier exit).  Only an acquire gates the accesses after it, and only a
  release waits for the accesses before it.  Synchronization accesses
  themselves stay ordered with respect to one another (the RCsc flavour).

The predicate is deliberately conservative/straightforward — the paper's
own words: "straightforward implementations of the four consistency
models".
"""

from __future__ import annotations

from ..isa import MemClass

_CLASSES = (
    MemClass.READ,
    MemClass.WRITE,
    MemClass.ACQUIRE,
    MemClass.RELEASE,
    MemClass.BARRIER,
)

_SYNC = frozenset({MemClass.ACQUIRE, MemClass.RELEASE, MemClass.BARRIER})


class ConsistencyModel:
    """Base class; subclasses define :meth:`_requires` and capabilities."""

    #: Short name used in tables and experiment output ("SC", "RC", ...).
    name: str = "?"

    #: May a read be serviced while writes are pending in the write
    #: buffer?  Drives the static-processor write-buffer model.
    reads_bypass_writes: bool = False

    #: May multiple buffered writes be outstanding (pipelined retire)?
    #: False forces one-at-a-time serialized write misses.
    writes_overlap: bool = False

    def __init__(self) -> None:
        self._matrix = {
            (earlier, later): self._requires(earlier, later)
            for earlier in _CLASSES
            for later in _CLASSES
        }

    def _requires(self, earlier: MemClass, later: MemClass) -> bool:
        raise NotImplementedError

    def requires(self, earlier: MemClass, later: MemClass) -> bool:
        """True if ``later`` must wait until ``earlier`` has performed."""
        return self._matrix[(earlier, later)]

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


def _read_like(cls: MemClass) -> bool:
    return cls in (MemClass.READ, MemClass.ACQUIRE, MemClass.BARRIER)


def _write_like(cls: MemClass) -> bool:
    return cls in (MemClass.WRITE, MemClass.RELEASE, MemClass.BARRIER)


class SequentialConsistency(ConsistencyModel):
    """Lamport's SC: accesses perform strictly in program order."""

    name = "SC"
    reads_bypass_writes = False
    writes_overlap = False

    def _requires(self, earlier: MemClass, later: MemClass) -> bool:
        return True


class ProcessorConsistency(ConsistencyModel):
    """Goodman's PC: reads may bypass previous writes, nothing else relaxes.

    Synchronization operations are treated by their access type: acquires
    are reads, releases are writes (PC has no special sync knowledge).
    """

    name = "PC"
    reads_bypass_writes = True
    writes_overlap = False

    def _requires(self, earlier: MemClass, later: MemClass) -> bool:
        if _write_like(earlier) and _read_like(later) and not (
            earlier is MemClass.BARRIER or later is MemClass.BARRIER
        ):
            # The one relaxation: a later read may bypass an earlier write.
            # (A barrier is both read- and write-like, so it never
            # participates in the relaxation.)
            return False
        return True


class WeakOrdering(ConsistencyModel):
    """Dubois et al.'s weak ordering: consistency at sync points only."""

    name = "WO"
    reads_bypass_writes = True
    writes_overlap = True

    def _requires(self, earlier: MemClass, later: MemClass) -> bool:
        return earlier in _SYNC or later in _SYNC


class ReleaseConsistency(ConsistencyModel):
    """RC (RCpc): acquire gates what follows; release awaits what precedes.

    Special (synchronization) accesses obey *processor consistency* among
    themselves, per the definition in Gharachorloo et al. [ISCA'90] that
    this paper builds on: a later acquire (read-like) may bypass an
    earlier release (write-like), which is what lets lock-dense codes
    pipeline unlock/lock sequences.
    """

    name = "RC"
    reads_bypass_writes = True
    writes_overlap = True

    def _requires(self, earlier: MemClass, later: MemClass) -> bool:
        if earlier in _SYNC and later in _SYNC:
            # Processor consistency among specials: only the
            # release -> acquire (write -> read) pair relaxes.
            return not (
                earlier is MemClass.RELEASE and later is MemClass.ACQUIRE
            )
        if earlier in (MemClass.ACQUIRE, MemClass.BARRIER):
            return True
        if later in (MemClass.RELEASE, MemClass.BARRIER):
            return True
        return False


SC = SequentialConsistency()
PC = ProcessorConsistency()
WO = WeakOrdering()
RC = ReleaseConsistency()

MODELS: dict[str, ConsistencyModel] = {m.name: m for m in (SC, PC, WO, RC)}


def get_model(name: str) -> ConsistencyModel:
    """Look up a model by name (case insensitive)."""
    try:
        return MODELS[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown consistency model {name!r}; "
            f"choose from {sorted(MODELS)}"
        ) from None
