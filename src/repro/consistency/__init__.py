"""Memory consistency models (SC, PC, WO, RC) and ordering analysis."""

from .models import (
    MODELS,
    PC,
    RC,
    SC,
    WO,
    ConsistencyModel,
    ProcessorConsistency,
    ReleaseConsistency,
    SequentialConsistency,
    WeakOrdering,
    get_model,
)
from .ordering import (
    earliest_completion_times,
    ordering_edges,
    reduced_edges,
    total_time,
)

__all__ = [
    "MODELS",
    "PC",
    "RC",
    "SC",
    "WO",
    "ConsistencyModel",
    "ProcessorConsistency",
    "ReleaseConsistency",
    "SequentialConsistency",
    "WeakOrdering",
    "earliest_completion_times",
    "get_model",
    "ordering_edges",
    "reduced_edges",
    "total_time",
]
