"""Ordering analysis utilities over access sequences.

These helpers make the consistency models concrete for tests, examples and
the Figure-1 reproduction: given a program-order sequence of memory-access
classes, they compute which pairs must be ordered under a model, and the
earliest time each access could issue/complete on an idealised machine
with unlimited overlap (the "best case" the processor simulators approach).
"""

from __future__ import annotations

from ..isa import MemClass
from .models import ConsistencyModel


def ordering_edges(
    model: ConsistencyModel, ops: list[MemClass]
) -> set[tuple[int, int]]:
    """All pairs ``(i, j)`` with ``i < j`` where ``j`` must wait for ``i``."""
    edges = set()
    for j in range(len(ops)):
        for i in range(j):
            if model.requires(ops[i], ops[j]):
                edges.add((i, j))
    return edges


def reduced_edges(
    model: ConsistencyModel, ops: list[MemClass]
) -> set[tuple[int, int]]:
    """Transitively reduced ordering edges (the arrows Figure 1 draws)."""
    edges = ordering_edges(model, ops)
    reduced = set(edges)
    for i, j in edges:
        for k in range(i + 1, j):
            if (i, k) in edges and (k, j) in edges:
                reduced.discard((i, j))
                break
    return reduced


def earliest_completion_times(
    model: ConsistencyModel,
    ops: list[MemClass],
    latencies: list[int],
) -> list[tuple[int, int]]:
    """Idealised ``(issue, complete)`` time per access.

    Assumes unlimited bandwidth and lookahead: an access issues the moment
    every access it is ordered after has completed, and completes
    ``latency`` cycles later.  This is the bound that an infinitely
    aggressive dynamically scheduled processor approaches, and the quantity
    the Figure 1 reproduction reports per model.
    """
    if len(ops) != len(latencies):
        raise ValueError("ops and latencies must have equal length")
    times: list[tuple[int, int]] = []
    for j, (op, latency) in enumerate(zip(ops, latencies)):
        issue = 0
        for i in range(j):
            if model.requires(ops[i], op):
                issue = max(issue, times[i][1])
        times.append((issue, issue + latency))
    return times


def total_time(
    model: ConsistencyModel,
    ops: list[MemClass],
    latencies: list[int],
) -> int:
    """Makespan of the idealised overlapped execution."""
    times = earliest_completion_times(model, ops, latencies)
    return max((complete for _, complete in times), default=0)
