"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run <app>`` — run one application on the simulated multiprocessor,
  verify it, and print its statistics.
* ``simulate <app>`` — run one application and sweep the processor
  models over its trace (one Figure-3 column set).
* ``table1|table2|table3|headline|figure1|figure3|figure4|latency100|
  multi-issue|miss-analysis|sc-boost|contexts|compiler-sched`` —
  regenerate a specific table/figure/extension experiment and print it.
* ``contention`` — replay traces under the contention-aware network
  backends (``--network {ideal,crossbar,mesh}``) and report per-model
  miss-latency distributions.
* ``profile <app>`` — instrumented run of one model/window/network
  combination: occupancy histograms, stall attribution per consistency
  model, and (``--trace``) a Perfetto-loadable timeline plus a
  machine-readable run manifest under ``results/profiles/``.
* ``batch`` — resilient config-grid sweep on the supervised worker
  pool: deduplicated sub-runs, content-addressed results, retries with
  backoff, and partial results + a failure report when jobs keep
  failing (exit code 5).
* ``status`` / ``results`` — inspect a batch's per-job state / its
  completed results from the content-addressed store.
* ``serve`` — run the persistent simulation daemon: warm worker pool
  and trace/result caches behind a bounded priority job queue, exposed
  over a stdlib JSON/HTTP API (``POST /v1/jobs``, ``GET
  /v1/jobs/{id}``, ``/v1/results/{id}``, ``/v1/healthz``,
  ``/v1/metrics``).  SIGTERM/SIGINT drains in flight and exits 130.
* ``submit`` / ``watch`` — client side of the daemon: submit a config
  grid over HTTP (several ``--endpoint`` values shard the grid across
  daemons and merge the results) and follow a submission to
  completion.  ``submit --trace-out`` mints a distributed trace id,
  collects every daemon's spans for the submission and writes one
  stitched, validated Perfetto timeline.
* ``top`` — live fleet view: poll one or more daemons' health and
  metrics endpoints and render queue/worker/cache state in the
  terminal (``--once`` for a single CI-friendly sample).
* ``bench`` — append the perf smoke's ``BENCH_core.json`` numbers to
  a timestamped history file and (``--check``) gate the
  machine-independent ratio metrics against a committed baseline.
* ``all`` — regenerate everything into ``results/``.

Exit codes are uniform across subcommands (see the README table):
0 success, 1 simulation/verification/validation failure, 2 usage
error, 3 bad configuration value, 4 cache/store I/O error, 5 partial
batch results, 130 interrupted by SIGINT/SIGTERM.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from . import MultiprocessorConfig, TangoExecutor, build_app
from . import service
from .apps import APP_NAMES
from .net import NETWORK_KINDS
from . import experiments as exp

#: Uniform CLI exit codes (documented in README).
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2  # produced by argparse itself
EXIT_BAD_CONFIG = 3
EXIT_IO = 4
EXIT_PARTIAL = 5
EXIT_INTERRUPTED = 130


def _store(args) -> exp.TraceStore:
    return exp.TraceStore(
        n_procs=args.procs,
        miss_penalty=args.penalty,
        preset=args.preset,
        cache_dir=args.cache_dir,
        network=args.network,
    )


def cmd_run(args) -> None:
    workload = build_app(args.app, n_procs=args.procs, preset=args.preset)
    config = MultiprocessorConfig(
        n_cpus=args.procs, miss_penalty=args.penalty,
        network=args.network,
    )
    result = TangoExecutor(
        workload.programs, config, memory=workload.memory
    ).run()
    workload.verify(result.memory)
    stats = result.stats.cpu(0)
    k = stats.busy_cycles / 1000
    print(f"{args.app}: functional verification OK")
    print(f"  instructions (cpu0): {stats.busy_cycles}")
    print(f"  reads/writes per 1000: {stats.reads / k:.0f} / "
          f"{stats.writes / k:.0f}")
    print(f"  read/write misses per 1000: {stats.read_misses / k:.1f} / "
          f"{stats.write_misses / k:.1f}")
    print(f"  locks {stats.locks}  barriers {stats.barriers}  "
          f"events {stats.wait_events}/{stats.set_events}")
    print(f"  end time: {stats.end_time} cycles "
          f"(whole machine: {result.stats.total_cycles})")


def cmd_simulate(args) -> None:
    store = _store(args)
    results = exp.simulate_app_models(
        store, exp.figure3_configs(), apps=(args.app,), jobs=args.jobs
    )
    runs = results[args.app]
    print(exp.format_breakdowns(
        f"{args.app.upper()} (percent of BASE, "
        f"{args.penalty}-cycle miss)",
        runs, runs[0],
    ))
    print()
    print(exp.format_stacked_bars("", runs, runs[0]))


_SIMPLE = {
    "table1": lambda s, j=1: exp.format_table1(exp.run_table1(s)),
    "table2": lambda s, j=1: exp.format_table2(exp.run_table2(s)),
    "table3": lambda s, j=1: exp.format_table3(exp.run_table3(s)),
    "headline": lambda s, j=1: exp.format_headline(exp.run_headline(s)),
    "figure1": lambda s, j=1: exp.format_figure1(exp.run_figure1()),
    "figure3": lambda s, j=1: exp.format_figure3(
        exp.run_figure3(s, jobs=j)
    ),
    "figure4": lambda s, j=1: exp.format_figure4(
        exp.run_figure4(s, jobs=j)
    ),
    "multi-issue": lambda s, j=1: exp.format_multi_issue(
        exp.run_multi_issue(s)
    ),
    "miss-analysis": lambda s, j=1: exp.format_miss_analysis(
        exp.run_miss_analysis(s)
    ),
    "sc-boost": lambda s, j=1: exp.format_sc_boost(exp.run_sc_boost(s)),
    "contexts": lambda s, j=1: exp.format_contexts(exp.run_contexts(s)),
    "compiler-sched": lambda s, j=1: exp.format_compiler_sched(
        exp.run_compiler_sched(s)
    ),
}


def cmd_experiment(args) -> None:
    jobs = getattr(args, "jobs", 1)
    if args.command == "latency100":
        store = exp.TraceStore(
            n_procs=args.procs, miss_penalty=100, preset=args.preset,
            cache_dir=args.cache_dir,
        )
        print(exp.format_latency100(
            exp.run_latency100(store, jobs=jobs)
        ))
        return
    print(_SIMPLE[args.command](_store(args), jobs))


def cmd_contention(args) -> None:
    # The contention replay builds its own network per (model, network)
    # pair; traces themselves stay on the ideal backend.
    store = exp.TraceStore(
        n_procs=args.procs, miss_penalty=args.penalty,
        preset=args.preset, cache_dir=args.cache_dir,
    )
    networks = (
        tuple(NETWORK_KINDS) if args.network == "ideal"
        else ("ideal", args.network)
    )
    apps = tuple(args.apps) if args.apps else None
    print(exp.format_contention(
        exp.run_contention(
            store, apps=apps, networks=networks, jobs=args.jobs
        )
    ))


def cmd_cosim(args) -> int:
    from . import cosim

    # Traces are generated on the ideal backend (cache-shareable); the
    # co-simulation serves every miss on its own shared fabric.
    store = exp.TraceStore(
        n_procs=args.procs, miss_penalty=args.penalty,
        preset=args.preset, cache_dir=args.cache_dir,
    )
    argv_echo = (
        f"python -m repro --procs {args.procs} --preset {args.preset} "
        f"--network {args.network} --engine {args.engine} "
        f"cosim {args.app} --kind {args.kind} --model {args.model} "
        f"--window {args.window} --sync {args.sync}"
    )
    result = cosim.run_cosim_app(
        args.app, store,
        kind=args.kind, model=args.model, window=args.window,
        network=args.network, sync_mode=args.sync,
        contexts=args.contexts, trace=args.trace,
        out_dir=args.out, command=argv_echo,
    )
    print(result.report)
    if result.errors:
        print()
        for err in result.errors:
            print(f"VALIDATION FAILED: {err}")
        return EXIT_FAILURE
    return EXIT_OK


def cmd_profile(args) -> int:
    from . import obs

    # Traces are generated on the ideal backend (cache-shareable); the
    # profiled model replays them through a fresh network of the chosen
    # kind, contention-style.
    store = exp.TraceStore(
        n_procs=args.procs, miss_penalty=args.penalty,
        preset=args.preset, cache_dir=args.cache_dir,
    )
    argv_echo = (
        f"python -m repro --procs {args.procs} --preset {args.preset} "
        f"--engine {args.engine} "
        f"profile {args.app} --kind {args.kind} --model {args.model} "
        f"--window {args.window} --network {args.network}"
    )
    result = obs.run_profile(
        args.app, store,
        kind=args.kind, model=args.model, window=args.window,
        network=args.network, engine=args.engine,
        trace=args.trace, metrics=args.metrics,
        out_dir=args.out, command=argv_echo,
    )
    print(result.report)
    if result.errors:
        print()
        for err in result.errors:
            print(f"VALIDATION FAILED: {err}")
        return 1
    return 0


def cmd_verify(args) -> int:
    from . import verify as v

    models = (
        v.ALL_MODELS if args.model == "all" else (args.model.upper(),)
    )
    failures = 0
    target = args.target
    litmus_names: tuple[str, ...] = ()
    app_names: tuple[str, ...] = ()
    if target in ("litmus", "all"):
        litmus_names = tuple(v.CATALOG)
    elif target in v.CATALOG:
        litmus_names = (target,)
    if target in ("apps", "all"):
        app_names = tuple(APP_NAMES)
    elif target in APP_NAMES:
        app_names = (target,)
    if litmus_names:
        results = v.verify_litmus(
            names=litmus_names, models=models,
            schedules=args.schedules, seed=args.seed, jobs=args.jobs,
            ooo=args.ooo,
        )
        print(v.format_litmus_report(results))
        failures += sum(not r.ok for r in results)
    if app_names:
        app_results = v.verify_apps(
            app_names, models=models, n_procs=args.procs,
            preset="tiny" if args.preset == "default" else args.preset,
            miss_penalty=args.penalty, jobs=args.jobs,
        )
        for result in app_results:
            print(result.format())
        failures += sum(not r.ok for r in app_results)
    print(
        "verification "
        + ("OK" if failures == 0 else f"FAILED ({failures} targets)")
    )
    return 0 if failures == 0 else 1


def _chaos_from_args(args) -> service.ChaosSpec | None:
    """Assemble the fault-injection spec from the ``--chaos-*`` flags."""
    crash: dict[int, int] = {}
    hang: dict[int, int] = {}
    corrupt: dict[int, int] = {}
    fail: dict[int, int] = {}
    for mapping, specs in (
        (crash, args.chaos_crash),
        (hang, args.chaos_hang),
        (corrupt, args.chaos_corrupt),
        (fail, args.chaos_fail),
    ):
        for spec in specs or ():
            service.parse_chaos_arg(mapping, spec)
    if not (crash or hang or corrupt or fail):
        return None
    return service.ChaosSpec(
        crash=crash, hang=hang, corrupt=corrupt, fail=fail
    )


def _grid_payload(args) -> dict:
    """The JSON request body equivalent of the batch/submit grid flags."""
    payload = {
        "kinds": list(args.kinds),
        "models": [m.upper() for m in args.models],
        "windows": list(args.windows),
        "networks": list(args.networks),
        "penalties": list(args.penalties),
        "procs": args.procs,
        "preset": args.preset,
        "engine": args.engine,
    }
    if args.apps:
        payload["apps"] = list(args.apps)
    priority = getattr(args, "priority", 0)
    if priority:
        payload["priority"] = priority
    return payload


def _format_remote_results(rows: list[dict], title: str) -> str:
    from .experiments.report import format_table  # lazy: avoid cycle

    return format_table(
        ["job", "cycles", "busy", "sync", "read", "write", "source"],
        [
            [
                row["label"],
                row["breakdown"]["total"],
                row["breakdown"]["busy"],
                row["breakdown"]["sync"],
                row["breakdown"]["read"],
                row["breakdown"]["write"],
                row["source"],
            ]
            for row in rows
        ],
        title=title,
    )


def _logger_from_args(args):
    """A :class:`JsonLogger` for ``--log-file``, or None when unset."""
    if not getattr(args, "log_file", None):
        return None
    from .obs.log import JsonLogger

    return JsonLogger.to_path(args.log_file, level=args.log_level)


def cmd_serve(args) -> int:
    log = _logger_from_args(args)
    daemon = service.Daemon(
        store_dir=args.store,
        cache_dir=args.cache_dir,
        workers=args.jobs,
        queue_depth=args.queue_depth,
        timeout=args.timeout if args.timeout > 0 else None,
        max_attempts=args.max_attempts,
        seed=args.seed,
        grace=args.grace,
        log=log,
    )
    try:
        return service.serve(daemon, args.host, args.port, banner=print)
    finally:
        if log is not None:
            log.close()


def _write_submit_trace(path, trace, spans, t0, t1) -> int:
    """Stitch, validate and write a submission's distributed trace.

    ``spans`` are the daemons' spans for ``trace``; the client's own
    submit span (the trace root, covering the whole round trip) is
    added here.  Returns 1 when the stitched timeline fails
    :func:`~repro.obs.tracer.validate_trace` — CI asserts trace
    integrity through this exit code, no extra script needed.
    """
    from .obs.spans import Span, stitch
    from .obs.tracer import validate_trace

    root = Span(
        trace.trace_id, trace.span_id, None,
        "submit", "client", "main", t0, t1,
        args={"n_daemon_spans": len(spans)},
    )
    doc = stitch([root] + list(spans))
    errors = validate_trace(doc)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, sort_keys=True) + "\n")
    print(
        f"trace {trace.trace_id}: {len(spans) + 1} spans -> {out}"
    )
    if errors:
        for err in errors:
            print(f"TRACE VALIDATION FAILED: {err}")
        return EXIT_FAILURE
    return EXIT_OK


def cmd_submit(args) -> int:
    payload = _grid_payload(args)
    timeout = args.timeout if args.timeout > 0 else None
    trace = None
    if args.trace_out:
        from .obs.context import TraceContext

        trace = TraceContext.mint()
    t0 = time.time()
    if len(args.endpoint) > 1:
        # Shard dispatch: partition the expanded grid across daemons
        # and merge the per-shard results back into grid order.
        report = service.dispatch(
            args.endpoint, payload,
            timeout=timeout, interval=args.interval, trace=trace,
        )
        print(report.format_summary())
        if report.results:
            print()
            print(_format_remote_results(
                report.results, "Merged sharded results"
            ))
        rc = EXIT_OK if report.ok else EXIT_PARTIAL
        if trace is not None:
            trace_rc = _write_submit_trace(
                args.trace_out, trace, report.spans, t0, time.time()
            )
            if trace_rc != EXIT_OK:
                return trace_rc
        return rc

    client = service.DaemonClient(args.endpoint[0])
    accepted = client.submit(payload, trace=trace)
    verb = "duplicate of" if accepted["deduped"] else "accepted as"
    print(
        f"{verb} job {accepted['id']} "
        f"({accepted['n_subruns']} sub-runs, "
        f"state {accepted['state']})"
    )
    if not args.wait and trace is None:
        return EXIT_OK
    final = client.wait(
        accepted["id"], timeout=timeout, interval=args.interval
    )
    counts = ", ".join(
        f"{k}={v}" for k, v in sorted(final.get("counts", {}).items())
    )
    latency = final.get("queue_latency")
    wait_txt = f", queue wait {latency:.2f}s" if latency is not None else ""
    print(f"job {final['id']} {final['state']} ({counts}{wait_txt})")
    rows = client.results(accepted["id"]).get("results", [])
    if rows:
        print(_format_remote_results(
            rows, f"Job {final['id']} — completed results"
        ))
    rc = EXIT_OK if final["state"] == "done" else EXIT_PARTIAL
    if trace is not None:
        trace_rc = _write_submit_trace(
            args.trace_out, trace,
            client.trace_spans(trace.trace_id), t0, time.time(),
        )
        if trace_rc != EXIT_OK:
            return trace_rc
    return rc


def _format_subrun_timing(final: dict) -> str | None:
    """Per-sub-run wait/run seconds from the job's wall timestamps."""
    subruns = final.get("subruns") or []
    if not subruns:
        return None
    from .experiments.report import format_table  # lazy: avoid cycle

    def sec(a, b):
        return f"{b - a:.2f}" if a is not None and b is not None else "-"

    return format_table(
        ["job", "state", "source", "attempts", "wait_s", "run_s"],
        [
            [
                sub.get("label", "?"),
                sub.get("state", "?"),
                sub.get("source") or "-",
                sub.get("attempts", 0),
                sec(sub.get("queued_at"), sub.get("started_at")),
                sec(sub.get("started_at"), sub.get("finished_at")),
            ]
            for sub in subruns
        ],
        title=f"Job {final['id']} — per-sub-run timing",
    )


def cmd_watch(args) -> int:
    client = service.DaemonClient(args.endpoint)
    last = None

    def on_poll(job: dict) -> None:
        nonlocal last
        counts = ", ".join(
            f"{k}={v}" for k, v in sorted(job.get("counts", {}).items())
        )
        line = f"job {job['id']} {job['state']}" + (
            f" ({counts})" if counts else ""
        )
        if line != last:
            print(line, flush=True)
            last = line

    final = client.wait(
        args.id,
        timeout=args.timeout if args.timeout > 0 else None,
        interval=args.interval,
        on_poll=on_poll,
    )
    timing = _format_subrun_timing(final)
    if timing:
        print(timing)
    return EXIT_OK if final["state"] == "done" else EXIT_PARTIAL


def _top_table(endpoints: list[str]) -> tuple[str, int]:
    """One fleet sample: a rendered table plus the live-endpoint count.

    Reads each daemon's ``/v1/healthz`` and ``/v1/metrics`` snapshot;
    a dead endpoint renders as a DOWN row instead of failing the view.
    """
    from .experiments.report import format_table  # lazy: avoid cycle

    headers = [
        "endpoint", "state", "queue", "ewma_s", "workers",
        "done", "retry", "quar", "cache", "wait_s", "run_s",
    ]
    rows = []
    up = 0
    for url in endpoints:
        client = service.DaemonClient(url, timeout=5.0)
        try:
            health = client.healthz()
            snap = client.metrics()
        except service.ClientError:
            rows.append([url, "DOWN"] + ["-"] * (len(headers) - 2))
            continue
        up += 1
        counters = snap.get("counters", {})
        gauges = snap.get("gauges", {})
        hists = snap.get("histograms", {})
        busy = gauges.get('service.workers{state="busy"}', 0)
        idle = gauges.get('service.workers{state="idle"}', 0)
        hits = counters.get("daemon.result_cache_hits", 0)
        lookups = hits + counters.get("daemon.result_cache_misses", 0)
        wait = hists.get("daemon.job_wait_seconds") or {}
        run = hists.get("daemon.job_run_seconds") or {}
        rows.append([
            url,
            health.get("status", "?"),
            gauges.get("daemon.queue_depth", 0),
            f"{gauges.get('daemon.drain_ewma_seconds', 0):.2f}",
            f"{busy}/{busy + idle}" if busy + idle else "-",
            counters.get("daemon.jobs_done", 0),
            counters.get("service.retries", 0),
            counters.get("service.quarantined", 0),
            f"{hits}/{lookups}" if lookups else "-",
            f"{wait['mean']:.3f}" if wait.get("count") else "-",
            f"{run['mean']:.3f}" if run.get("count") else "-",
        ])
    table = format_table(
        headers, rows,
        title=f"repro fleet — {up}/{len(endpoints)} endpoint(s) up",
    )
    return table, up


def cmd_top(args) -> int:
    if args.once:
        table, up = _top_table(args.endpoint)
        print(table)
        return EXIT_OK if up else EXIT_IO
    try:
        while True:
            table, _ = _top_table(args.endpoint)
            sys.stdout.write("\x1b[2J\x1b[H")  # clear screen, home
            print(time.strftime("%H:%M:%S"), "(Ctrl-C to quit)")
            print(table, flush=True)
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return EXIT_OK


def cmd_bench(args) -> int:
    from . import bench

    payload = bench.load_payload(args.input)
    if args.record:
        entry = bench.append_history(payload, args.history)
        runs = len(bench.load_history(args.history))
        print(
            f"recorded bench run {entry['recorded_at']} "
            f"(rev {entry['revision'] or 'unknown'}) -> "
            f"{args.history} ({runs} run(s))"
        )
    if args.check:
        baseline = bench.load_payload(args.baseline)
        deltas = bench.check(payload, baseline)
        print(bench.format_check(deltas))
        if not deltas or any(not d.ok for d in deltas):
            return EXIT_FAILURE
    return EXIT_OK


def cmd_batch(args) -> int:
    if args.endpoint:
        # Thin-client mode: hand the grid to one or more daemons (warm
        # caches, shared store) instead of running a cold local pool.
        report = service.dispatch(args.endpoint, _grid_payload(args))
        print(report.format_summary())
        if report.results:
            print()
            print(_format_remote_results(
                report.results, "Daemon batch — completed results"
            ))
        return EXIT_OK if report.ok else EXIT_PARTIAL
    grid = service.expand_grid(
        apps=tuple(args.apps) if args.apps else APP_NAMES,
        kinds=tuple(args.kinds),
        models=tuple(m.upper() for m in args.models),
        windows=tuple(args.windows),
        networks=tuple(args.networks),
        penalties=tuple(args.penalties),
        procs=args.procs,
        preset=args.preset,
        engine=args.engine,
    )
    command = "python -m repro batch " + " ".join(
        f"--{k} {v}" for k, v in (
            ("jobs", args.jobs), ("timeout", args.timeout),
            ("max-attempts", args.max_attempts),
        )
    )
    log = _logger_from_args(args)
    trace = None
    if args.trace:
        from .obs.context import TraceContext

        trace = TraceContext.mint()
    try:
        report = service.run_batch(
            grid,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            out_dir=args.out,
            store_dir=args.store,
            timeout=args.timeout if args.timeout > 0 else None,
            max_attempts=args.max_attempts,
            seed=args.seed,
            chaos=_chaos_from_args(args),
            command=command,
            log=log,
            trace=trace,
        )
    finally:
        if log is not None:
            log.close()
    print(report.format_summary())
    if trace is not None:
        print(f"trace {trace.trace_id}: {report.out_dir / 'trace.json'}")
    return EXIT_PARTIAL if report.partial else EXIT_OK


def cmd_status(args) -> int:
    state = service.load_state(service.find_batch(args.out, args.id))
    print(service.format_status(state))
    jobs = state.get("jobs", [])
    degraded = any(
        j["state"] in ("failed", "cancelled") for j in jobs
    )
    # Mirror the batch's own exit: 5 when degraded, 0 otherwise (a
    # batch still in flight is not a failure — status is a live view).
    return EXIT_PARTIAL if degraded else EXIT_OK


def cmd_results(args) -> int:
    state = service.load_state(service.find_batch(args.out, args.id))
    print(service.format_results(state))
    return EXIT_OK


def cmd_all(args) -> None:
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    store = _store(args)
    if args.jobs > 1:
        # Warm the trace cache concurrently before the sweeps below.
        exp.generate_traces(store, jobs=args.jobs)
    for name, fn in _SIMPLE.items():
        print(f"[{name}] ...", flush=True)
        (out / f"{name.replace('-', '_')}.txt").write_text(
            fn(store, args.jobs) + "\n"
        )
    print("[latency100] ...", flush=True)
    store100 = exp.TraceStore(
        n_procs=args.procs, miss_penalty=100, preset=args.preset,
        cache_dir=args.cache_dir,
    )
    (out / "latency100.txt").write_text(
        exp.format_latency100(
            exp.run_latency100(store100, jobs=args.jobs)
        ) + "\n"
    )
    print(f"wrote results to {out}/")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Hiding Memory Latency using Dynamic "
            "Scheduling in Shared-Memory Multiprocessors' (ISCA 1992)"
        ),
    )
    parser.add_argument("--procs", type=int, default=16,
                        help="number of simulated processors")
    parser.add_argument("--penalty", type=int, default=50,
                        help="cache miss penalty in cycles")
    parser.add_argument("--preset", default="default",
                        choices=("tiny", "default", "large"),
                        help="application size preset")
    parser.add_argument("--cache-dir", default=exp.runner.DEFAULT_CACHE_DIR,
                        help="trace cache directory")
    parser.add_argument("--network", default="ideal",
                        choices=NETWORK_KINDS,
                        help="interconnect timing backend (ideal = the "
                             "paper's fixed miss penalty)")
    parser.add_argument("--engine", default="fast",
                        choices=("fast", "reference"),
                        help="simulation engine: the vectorized/event-"
                             "driven fast path (default) or the scalar "
                             "reference models; results are identical")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run and verify one application")
    p_run.add_argument("app", choices=APP_NAMES)
    p_run.set_defaults(func=cmd_run)

    p_sim = sub.add_parser(
        "simulate", help="sweep processor models over one application"
    )
    p_sim.add_argument("app", choices=APP_NAMES)
    p_sim.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the model sweep")
    p_sim.set_defaults(func=cmd_simulate)

    for name in list(_SIMPLE) + ["latency100"]:
        p = sub.add_parser(name, help=f"regenerate {name}")
        if name in ("figure3", "figure4", "latency100"):
            p.add_argument("--jobs", type=int, default=1,
                           help="worker processes for trace generation "
                                "and model sweeps")
        p.set_defaults(func=cmd_experiment)

    p_cont = sub.add_parser(
        "contention",
        help="miss-latency distributions under a loaded interconnect",
        description=(
            "Replay the application traces through BASE/SSBR/DS with "
            "miss latencies re-timed by a contention-aware network "
            "model, reporting each model's execution time and observed "
            "miss-latency distribution (mean/p50/p99).  With --network "
            "ideal (the default) all backends are compared; otherwise "
            "only ideal plus the selected backend."
        ),
    )
    p_cont.add_argument("--apps", nargs="*", choices=APP_NAMES,
                        help="restrict to these applications")
    p_cont.add_argument("--jobs", type=int, default=1,
                        help="supervised worker processes (one app's "
                             "replay per worker)")
    p_cont.set_defaults(func=cmd_contention)

    p_cosim = sub.add_parser(
        "cosim",
        help="co-simulate all processors on one shared fabric",
        description=(
            "Execution-driven co-simulation: advance every processor "
            "of the application against a single shared network with "
            "live directory state, feeding each miss's actual fabric "
            "latency (including queueing behind the other processors' "
            "concurrent misses) back into the issuing CPU's timing.  "
            "--sync live additionally resolves lock/barrier waits from "
            "the co-simulated timeline instead of the trace's baked "
            "waits.  With --out, writes metrics + a validated run "
            "manifest (and --trace a Perfetto timeline)."
        ),
    )
    p_cosim.add_argument("app", choices=APP_NAMES)
    p_cosim.add_argument("--kind", default="ds",
                         choices=("base", "ssbr", "ss", "ds", "mc"),
                         help="processor model co-simulated on every "
                              "node (mc groups --contexts traces per "
                              "node)")
    p_cosim.add_argument("--model", default="RC",
                         type=lambda s: s.upper(),
                         choices=("SC", "PC", "WO", "RC"),
                         help="consistency model")
    p_cosim.add_argument("--window", type=int, default=64,
                         help="DS reorder-buffer window")
    p_cosim.add_argument("--sync", default="replay",
                         choices=("replay", "live"),
                         help="sync waits: trace-baked (replay) or "
                              "resolved live from the recorded "
                              "schedule (scalar steppers only)")
    p_cosim.add_argument("--contexts", type=int, default=1,
                         help="contexts per node for --kind mc")
    p_cosim.add_argument("--trace", action="store_true",
                         help="emit a Chrome trace_event JSON timeline "
                              "(requires --out)")
    p_cosim.add_argument("--out", default=None,
                         help="write metrics + run manifest under this "
                              "directory")
    p_cosim.set_defaults(func=cmd_cosim)

    p_prof = sub.add_parser(
        "profile",
        help="instrumented run: occupancy, stall attribution, trace",
        description=(
            "Profile one application under one model/window/network "
            "combination: stall attribution across all four consistency "
            "models, occupancy histograms (reorder buffer, store "
            "buffer, link queues), and — with --trace — a Perfetto-"
            "loadable trace.json.  Writes trace + metrics + a run "
            "manifest under --out."
        ),
    )
    p_prof.add_argument("app", choices=APP_NAMES)
    p_prof.add_argument("--kind", default="ds",
                        choices=("base", "ssbr", "ss", "ds"),
                        help="processor model to profile")
    p_prof.add_argument("--model", default="RC",
                        type=lambda s: s.upper(),
                        choices=("SC", "PC", "WO", "RC"),
                        help="consistency model of the primary run")
    p_prof.add_argument("--window", type=int, default=64,
                        help="DS reorder-buffer window")
    # Accepted here as well as globally, so `profile lu --network mesh`
    # works; SUPPRESS keeps the global value when omitted.
    p_prof.add_argument("--network", choices=NETWORK_KINDS,
                        default=argparse.SUPPRESS,
                        help="interconnect backend for the profiled run")
    p_prof.add_argument("--trace", action="store_true",
                        help="emit a Chrome trace_event JSON timeline")
    p_prof.add_argument("--metrics", action="store_true", default=True,
                        help="write the metrics registry snapshot "
                             "(metrics.json; on by default)")
    p_prof.add_argument("--no-metrics", dest="metrics",
                        action="store_false",
                        help="skip writing metrics.json")
    p_prof.add_argument("--out", default="results/profiles",
                        help="output directory for profile artifacts")
    p_prof.set_defaults(func=cmd_profile)

    p_ver = sub.add_parser(
        "verify",
        help="check recorded executions against the consistency axioms",
        description=(
            "Record executions and check them against a model's "
            "happens-before axioms.  Targets: an application name "
            "(run on the Tango executor), a litmus-test name (run on "
            "the model-aware store-buffer engine), or the groups "
            "'litmus', 'apps', 'all'."
        ),
    )
    from .verify import CATALOG as _CATALOG  # local to keep startup lazy

    p_ver.add_argument(
        "target",
        choices=tuple(APP_NAMES) + tuple(_CATALOG)
        + ("litmus", "apps", "all"),
    )
    p_ver.add_argument("--model", default="all",
                       choices=("sc", "pc", "wo", "rc", "all"),
                       help="consistency model(s) to check against")
    p_ver.add_argument("--schedules", type=int, default=100,
                       help="seeded schedules per litmus test and model")
    p_ver.add_argument("--seed", type=int, default=0,
                       help="base seed for the schedule sweep")
    p_ver.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the verification sweep")
    p_ver.add_argument("--ooo", action="store_true",
                       help="litmus engine issues loads/stores out of "
                            "order (exposes lb/iriw reorderings under "
                            "WO/RC)")
    p_ver.set_defaults(func=cmd_verify)

    p_batch = sub.add_parser(
        "batch",
        help="resilient config-grid sweep on the supervised pool",
        description=(
            "Decompose a config grid (apps x kinds x models x windows "
            "x networks x penalties) into deduplicated jobs and run "
            "them on the supervised worker pool: per-job wall-clock "
            "timeouts, automatic worker restart, seeded "
            "exponential-backoff retries, and a quarantine list.  "
            "Results land in a content-addressed store keyed by "
            "(config hash, trace schema version, git revision), so "
            "repeated or overlapping sweeps only pay for their unique "
            "work.  A batch with permanently failing jobs still "
            "completes, printing partial results plus a structured "
            "failure report and exiting with code 5."
        ),
    )
    p_batch.add_argument("--apps", nargs="*", choices=APP_NAMES,
                         help="applications to sweep (default: all)")
    p_batch.add_argument("--kinds", nargs="*", default=["ds"],
                         choices=service.KINDS,
                         help="processor kinds to sweep")
    p_batch.add_argument("--models", nargs="*", default=["RC"],
                         type=lambda s: s.upper(),
                         choices=service.MODELS,
                         help="consistency models to sweep")
    p_batch.add_argument("--windows", nargs="*", type=int, default=[64],
                         help="DS reorder-buffer windows to sweep")
    p_batch.add_argument("--networks", nargs="*", default=["ideal"],
                         choices=NETWORK_KINDS,
                         help="interconnect backends to sweep")
    p_batch.add_argument("--penalties", nargs="*", type=int,
                         default=[50],
                         help="miss penalties (cycles) to sweep")
    p_batch.add_argument("--jobs", type=int, default=1,
                         help="supervised worker processes")
    p_batch.add_argument("--timeout", type=float, default=0.0,
                         help="per-job wall-clock budget in seconds "
                              "(0 = unlimited)")
    p_batch.add_argument("--max-attempts", type=int, default=3,
                         help="attempts per job before quarantine")
    p_batch.add_argument("--seed", type=int, default=0,
                         help="seed for retry backoff jitter")
    p_batch.add_argument("--out", default=str(service.DEFAULT_BATCH_DIR),
                         help="batch state/report directory")
    p_batch.add_argument("--store", default=None,
                         help="content-addressed result store directory "
                              "(default: <out>/store)")
    for flag, what in (
        ("--chaos-crash", "SIGKILL the worker"),
        ("--chaos-hang", "hang past the timeout"),
        ("--chaos-corrupt", "corrupt the result payload"),
        ("--chaos-fail", "raise a transient exception"),
    ):
        p_batch.add_argument(
            flag, nargs="*", metavar="IDX[:N]", default=[],
            help=f"fault injection (testing): {what} for scheduled job "
                 f"IDX on its first N attempts (default: all attempts)",
        )
    p_batch.add_argument("--endpoint", nargs="*", default=None,
                         metavar="URL",
                         help="submit the grid to running daemon(s) "
                              "instead of a local pool; several URLs "
                              "shard the grid across them")
    p_batch.add_argument("--trace", action="store_true",
                         help="record a distributed trace of the batch "
                              "(supervisor, per-job, per-attempt and "
                              "worker spans) and write a stitched "
                              "Perfetto timeline to <batch>/trace.json")
    p_batch.add_argument("--log-file", default=None, metavar="PATH",
                         help="append structured JSONL logs (queue, "
                              "pool, chaos, degradation events) here")
    p_batch.add_argument("--log-level", default="info",
                         choices=("debug", "info", "warning", "error"),
                         help="minimum level written to --log-file")
    p_batch.set_defaults(func=cmd_batch)

    p_serve = sub.add_parser(
        "serve",
        help="run the persistent simulation daemon (HTTP API)",
        description=(
            "Start the simulation-as-a-service daemon: a warm "
            "supervised worker pool plus in-memory trace and result "
            "caches that persist across requests, fed by a bounded "
            "priority job queue and exposed over a stdlib JSON/HTTP "
            "API.  POST /v1/jobs accepts the batch grid as JSON "
            "(429 + Retry-After under backpressure, duplicate "
            "submissions return the existing job id); GET "
            "/v1/jobs/{id}, /v1/results/{id}, /v1/healthz and "
            "/v1/metrics observe it.  Results are byte-identical to "
            "the batch path and land in the same content-addressed "
            "store.  SIGTERM/SIGINT drains the in-flight submission "
            "within --grace seconds and exits 130."
        ),
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address")
    p_serve.add_argument("--port", type=int, default=8631,
                         help="bind port (0 = ephemeral)")
    p_serve.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1 = in-process "
                              "execution with maximally warm caches)")
    p_serve.add_argument("--queue-depth", type=int, default=64,
                         help="max queued submissions before 429")
    p_serve.add_argument("--timeout", type=float, default=0.0,
                         help="per-job wall-clock budget in seconds "
                              "(0 = unlimited; pooled mode only)")
    p_serve.add_argument("--max-attempts", type=int, default=3,
                         help="attempts per job before quarantine "
                              "(pooled mode only)")
    p_serve.add_argument("--seed", type=int, default=0,
                         help="seed for retry backoff jitter")
    p_serve.add_argument("--grace", type=float, default=5.0,
                         help="shutdown drain budget in seconds")
    p_serve.add_argument("--store",
                         default=str(service.DEFAULT_DAEMON_DIR / "store"),
                         help="content-addressed result store directory")
    p_serve.add_argument("--log-file", default=None, metavar="PATH",
                         help="append structured JSONL logs (lifecycle, "
                              "queue admission, pool supervision) here")
    p_serve.add_argument("--log-level", default="info",
                         choices=("debug", "info", "warning", "error"),
                         help="minimum level written to --log-file")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit",
        help="submit a config grid to daemon(s) over HTTP",
        description=(
            "Client side of the daemon: expand the same grid flags as "
            "`batch` into a JSON request and POST it to /v1/jobs.  "
            "With one --endpoint the daemon expands the grid; with "
            "several, the grid is expanded locally, partitioned into "
            "deterministic contiguous shards, submitted to all "
            "endpoints concurrently, and the per-shard results are "
            "merged back into grid order."
        ),
    )
    p_submit.add_argument("--endpoint", nargs="+", required=True,
                          metavar="URL",
                          help="daemon base URL(s), e.g. "
                               "http://127.0.0.1:8631")
    p_submit.add_argument("--apps", nargs="*", choices=APP_NAMES,
                          help="applications to sweep (default: all)")
    p_submit.add_argument("--kinds", nargs="*", default=["ds"],
                          choices=service.KINDS)
    p_submit.add_argument("--models", nargs="*", default=["RC"],
                          type=lambda s: s.upper(),
                          choices=service.MODELS)
    p_submit.add_argument("--windows", nargs="*", type=int, default=[64])
    p_submit.add_argument("--networks", nargs="*", default=["ideal"],
                          choices=NETWORK_KINDS)
    p_submit.add_argument("--penalties", nargs="*", type=int,
                          default=[50])
    p_submit.add_argument("--priority", type=int, default=0,
                          help="queue priority (lower runs earlier)")
    p_submit.add_argument("--wait", action="store_true",
                          help="poll until the submission finishes and "
                               "print its results")
    p_submit.add_argument("--timeout", type=float, default=0.0,
                          help="max seconds to wait (0 = unlimited)")
    p_submit.add_argument("--interval", type=float, default=0.2,
                          help="poll interval in seconds")
    p_submit.add_argument("--trace-out", default=None, metavar="PATH",
                          help="mint a distributed trace id for the "
                               "submission, collect every endpoint's "
                               "spans and write one stitched, validated "
                               "Perfetto timeline here (implies --wait; "
                               "exits 1 if validation fails)")
    p_submit.set_defaults(func=cmd_submit)

    p_watch = sub.add_parser(
        "watch",
        help="follow a daemon submission to completion",
    )
    p_watch.add_argument("id", help="submission id returned by submit")
    p_watch.add_argument("--endpoint", required=True, metavar="URL",
                         help="daemon base URL")
    p_watch.add_argument("--timeout", type=float, default=0.0,
                         help="max seconds to wait (0 = unlimited)")
    p_watch.add_argument("--interval", type=float, default=0.2,
                         help="poll interval in seconds")
    p_watch.set_defaults(func=cmd_watch)

    p_status = sub.add_parser(
        "status",
        help="per-job state of a batch (latest, or --id)",
    )
    p_status.add_argument("--id", default=None, help="batch id")
    p_status.add_argument("--out",
                          default=str(service.DEFAULT_BATCH_DIR),
                          help="batch state directory")
    p_status.set_defaults(func=cmd_status)

    p_results = sub.add_parser(
        "results",
        help="completed results of a batch from the result store",
    )
    p_results.add_argument("--id", default=None, help="batch id")
    p_results.add_argument("--out",
                           default=str(service.DEFAULT_BATCH_DIR),
                           help="batch state directory")
    p_results.set_defaults(func=cmd_results)

    p_top = sub.add_parser(
        "top",
        help="live terminal view of daemon fleet metrics",
        description=(
            "Poll one or more daemons' /v1/healthz and /v1/metrics "
            "endpoints and render queue depth, drain-rate EWMA, worker "
            "busy/idle counts, retry/quarantine counters, result-cache "
            "hit ratio and mean job wait/run latency in one table, "
            "refreshed every --interval seconds.  A dead endpoint "
            "shows as a DOWN row.  --once prints a single sample and "
            "exits (0 if any endpoint answered, 4 if none did)."
        ),
    )
    p_top.add_argument("--endpoint", nargs="+", required=True,
                       metavar="URL",
                       help="daemon base URL(s) to watch")
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="refresh interval in seconds")
    p_top.add_argument("--once", action="store_true",
                       help="print one sample and exit (CI-friendly)")
    p_top.set_defaults(func=cmd_top)

    p_bench = sub.add_parser(
        "bench",
        help="record/check the perf trajectory from BENCH_core.json",
        description=(
            "Append the perf smoke test's BENCH_core.json payload to a "
            "JSONL history file (stamped with a UTC timestamp and the "
            "git revision), and — with --check — compare the "
            "machine-independent ratio metrics (engine speedups, "
            "instrumentation overheads) against a committed baseline "
            "with per-metric tolerances, exiting 1 on any regression."
        ),
    )
    p_bench.add_argument("--input", default="BENCH_core.json",
                         metavar="PATH",
                         help="current bench payload (written by the "
                              "perf smoke test)")
    p_bench.add_argument("--history", default="BENCH_history.jsonl",
                         metavar="PATH",
                         help="JSONL history file to append to")
    p_bench.add_argument("--no-record", dest="record",
                         action="store_false",
                         help="skip appending to the history file")
    p_bench.add_argument("--check", action="store_true",
                         help="gate ratio metrics against --baseline")
    p_bench.add_argument("--baseline", default="BENCH_core.json",
                         metavar="PATH",
                         help="baseline payload for --check")
    p_bench.set_defaults(func=cmd_bench)

    p_all = sub.add_parser("all", help="regenerate everything")
    p_all.add_argument("--output", default="results")
    p_all.add_argument("--jobs", type=int, default=1,
                       help="worker processes for trace generation "
                            "and model sweeps")
    p_all.set_defaults(func=cmd_all)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Dispatch a subcommand, mapping failures to uniform exit codes.

    Every failure class gets a distinct code and a one-line message on
    stderr instead of a traceback (set ``REPRO_DEBUG=1`` to re-raise
    for debugging).  Argparse itself exits 2 on usage errors.
    """
    args = build_parser().parse_args(argv)
    from . import cpu

    cpu.DEFAULT_ENGINE = args.engine
    try:
        rc = args.func(args)
    except (service.BatchInterrupted, KeyboardInterrupt) as exc:
        if os.environ.get("REPRO_DEBUG"):
            raise
        print(f"interrupted: {exc}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except service.JobsFailedError as exc:
        if os.environ.get("REPRO_DEBUG"):
            raise
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    except service.ClientError as exc:
        if os.environ.get("REPRO_DEBUG"):
            raise
        print(f"daemon error: {exc}", file=sys.stderr)
        # A rejected request is the caller's fault (bad grid: 3); an
        # unreachable or overloaded daemon is an I/O condition (4).
        return EXIT_BAD_CONFIG if exc.status == 400 else EXIT_IO
    except (service.ResultStoreError, OSError) as exc:
        if os.environ.get("REPRO_DEBUG"):
            raise
        print(f"I/O error: {exc}", file=sys.stderr)
        return EXIT_IO
    except (ValueError, KeyError) as exc:
        if os.environ.get("REPRO_DEBUG"):
            raise
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_CONFIG
    except AssertionError as exc:
        if os.environ.get("REPRO_DEBUG"):
            raise
        print(f"validation failed: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    return rc if isinstance(rc, int) else EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
