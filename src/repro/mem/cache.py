"""Direct-mapped write-back cache with MESI coherence state.

This models the per-processor data caches of the paper's multiprocessor:
direct mapped, write back, 16-byte lines, kept coherent by an
invalidation-based protocol (see :mod:`repro.mem.coherence`).  The cache
tracks tags and MESI state only; functional data lives in the global
:class:`~repro.mem.memory.SharedMemory`.

The EXCLUSIVE state matters for fidelity: a processor that read-misses on
private data and then writes it (the dominant pattern in LU's column
updates) must not pay a second, spurious ownership miss, or write-miss
counts come out far above what the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

INVALID = 0
SHARED = 1
EXCLUSIVE = 2
MODIFIED = 3

_STATE_NAMES = {INVALID: "I", SHARED: "S", EXCLUSIVE: "E", MODIFIED: "M"}


@dataclass
class CacheStats:
    """Per-cache access and coherence-event counters."""

    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0
    upgrades: int = 0
    writebacks: int = 0
    invalidations_received: int = 0
    downgrades_received: int = 0
    evictions: int = 0

    #: Counter fields, in declaration order (merge/publish iterate this).
    FIELDS = (
        "reads", "writes", "read_misses", "write_misses", "upgrades",
        "writebacks", "invalidations_received", "downgrades_received",
        "evictions",
    )

    def merge(self, other: "CacheStats") -> None:
        for fld in self.FIELDS:
            setattr(self, fld, getattr(self, fld) + getattr(other, fld))

    def publish(self, metrics, prefix: str = "cache") -> None:
        """Push every counter into a metrics registry as ``prefix.field``."""
        for fld in self.FIELDS:
            metrics.counter(f"{prefix}.{fld}").inc(getattr(self, fld))


@dataclass
class Cache:
    """Tag/state array of one direct-mapped write-back cache.

    Attributes:
        size: capacity in bytes.
        line_size: line size in bytes (the paper uses 16).
    """

    size: int = 64 * 1024
    line_size: int = 16
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.size % self.line_size:
            raise ValueError("cache size must be a multiple of the line size")
        self.num_lines = self.size // self.line_size
        if self.num_lines & (self.num_lines - 1):
            raise ValueError("number of lines must be a power of two")
        # Per-set: the full line address currently cached (or -1).
        self._line_addr = [-1] * self.num_lines
        self._state = [INVALID] * self.num_lines
        # Optional ``tap(line, dirty)`` fired on each replacement —
        # installed by CoherentMemorySystem.attach_listener().
        self.evict_tap = None

    # -- geometry ---------------------------------------------------------

    def line_of(self, addr: int) -> int:
        """Line (block) address containing byte address ``addr``."""
        return addr // self.line_size

    def index_of(self, line: int) -> int:
        return line % self.num_lines

    # -- lookups ----------------------------------------------------------

    def state_of(self, addr: int) -> int:
        """MSI state of the line holding ``addr`` (INVALID if absent)."""
        line = self.line_of(addr)
        idx = self.index_of(line)
        if self._line_addr[idx] == line:
            return self._state[idx]
        return INVALID

    def holds(self, addr: int) -> bool:
        return self.state_of(addr) != INVALID

    # -- batch lookups ------------------------------------------------------

    def batch_states(self, addrs) -> np.ndarray:
        """MESI states for a whole address column at once.

        Vectorizes the set-index/tag-match of :meth:`state_of` over an
        ``int64`` address array: one division for the line addresses, one
        mask for the set indices, one gather + compare against the tag
        array.  The cache is not mutated — this answers "which of these
        accesses would hit *right now*", which is what trace-locality
        analysis and the perf smoke measure.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        lines = addrs // self.line_size
        idx = lines % self.num_lines
        tags = np.asarray(self._line_addr, dtype=np.int64)
        states = np.asarray(self._state, dtype=np.uint8)
        return np.where(tags[idx] == lines, states[idx],
                        np.uint8(INVALID))

    def batch_hits(self, addrs) -> np.ndarray:
        """Boolean hit mask for a whole address column (see batch_states)."""
        return self.batch_states(addrs) != INVALID

    # -- local transitions (driven by the coherence controller) ------------

    def install(self, addr: int, state: int) -> int | None:
        """Fill the line holding ``addr`` in ``state``.

        Returns the line address of a dirty victim that must be written
        back, or ``None``.
        """
        line = self.line_of(addr)
        idx = self.index_of(line)
        victim = None
        if self._line_addr[idx] not in (-1, line):
            self.stats.evictions += 1
            dirty = self._state[idx] == MODIFIED
            if dirty:
                victim = self._line_addr[idx]
                self.stats.writebacks += 1
            if self.evict_tap is not None:
                self.evict_tap(self._line_addr[idx], dirty)
        self._line_addr[idx] = line
        self._state[idx] = state
        return victim

    def set_state(self, addr: int, state: int) -> None:
        line = self.line_of(addr)
        idx = self.index_of(line)
        if self._line_addr[idx] != line:
            raise ValueError(f"line {line:#x} not present")
        self._state[idx] = state

    def invalidate(self, addr: int) -> bool:
        """Invalidate the line holding ``addr`` if present.

        Returns True if a valid copy was dropped (the remote-write case the
        invalidation protocol counts).
        """
        line = self.line_of(addr)
        idx = self.index_of(line)
        if self._line_addr[idx] == line and self._state[idx] != INVALID:
            self._state[idx] = INVALID
            self.stats.invalidations_received += 1
            return True
        return False

    def downgrade(self, addr: int) -> bool:
        """Downgrade an EXCLUSIVE/MODIFIED copy to SHARED (remote read).

        Returns True if a writeback of dirty data was needed (the line was
        MODIFIED); an EXCLUSIVE copy downgrades silently.
        """
        line = self.line_of(addr)
        idx = self.index_of(line)
        if self._line_addr[idx] != line:
            return False
        if self._state[idx] == MODIFIED:
            self._state[idx] = SHARED
            self.stats.downgrades_received += 1
            self.stats.writebacks += 1
            return True
        if self._state[idx] == EXCLUSIVE:
            self._state[idx] = SHARED
            self.stats.downgrades_received += 1
        return False

    def describe(self, addr: int) -> str:  # pragma: no cover - debugging aid
        return _STATE_NAMES[self.state_of(addr)]
