"""Functional shared memory and segment allocation.

The functional state of memory is held once, globally, in
:class:`SharedMemory`.  Per-processor caches (:mod:`repro.mem.cache`) track
*tags and coherence state only* — the data itself is always read from and
written to this single backing store.  That is sound for a Tango-style
trace generator: the interleaving produced by the functional execution is
the golden ordering, and the cache simulation exists to attribute hit/miss
latency and coherence traffic to each access, not to model stale data.

Addresses are byte addresses.  Integer words are 4 bytes, doubles are
8 bytes, and all accesses must be naturally aligned; the applications
allocate their data structures through :class:`SegmentAllocator`, which
hands out aligned, non-overlapping segments.
"""

from __future__ import annotations

WORD = 4
DOUBLE = 8
LINE_SIZE = 16


class MemoryError_(Exception):
    """Raised on misaligned or out-of-segment accesses."""


class SharedMemory:
    """Byte-addressed functional memory storing ints and floats.

    The store is sparse (a dict keyed by address), so an application can
    use a naturally laid-out address space without paying for untouched
    gaps.  Reads of never-written locations return 0 / 0.0, matching
    zero-initialised shared segments.
    """

    def __init__(self) -> None:
        self._words: dict[int, int] = {}
        self._doubles: dict[int, float] = {}

    @property
    def words(self) -> dict[int, int]:
        """The raw word store (compiled-dispatch closures bind this)."""
        return self._words

    @property
    def doubles(self) -> dict[int, float]:
        """The raw double store (compiled-dispatch closures bind this)."""
        return self._doubles

    def read_word(self, addr: int) -> int:
        if addr % WORD:
            raise MemoryError_(f"misaligned word read at {addr:#x}")
        return self._words.get(addr, 0)

    def write_word(self, addr: int, value: int) -> None:
        if addr % WORD:
            raise MemoryError_(f"misaligned word write at {addr:#x}")
        self._words[addr] = value

    def read_double(self, addr: int) -> float:
        if addr % DOUBLE:
            raise MemoryError_(f"misaligned double read at {addr:#x}")
        return self._doubles.get(addr, 0.0)

    def write_double(self, addr: int, value: float) -> None:
        if addr % DOUBLE:
            raise MemoryError_(f"misaligned double write at {addr:#x}")
        self._doubles[addr] = value

    def words_written(self) -> int:
        """Number of distinct word locations ever written (for tests)."""
        return len(self._words)


class SegmentAllocator:
    """Carves a flat address space into named, aligned segments.

    The applications use this the way a linker lays out data sections:
    each array, queue, lock or scalar gets its own segment.  Alignment
    defaults to the cache line size so that independently allocated
    structures never falsely share a line.
    """

    def __init__(self, base: int = 0x1000) -> None:
        self._next = base
        self._segments: dict[str, tuple[int, int]] = {}

    def alloc(self, name: str, nbytes: int, align: int = LINE_SIZE) -> int:
        """Reserve ``nbytes`` for ``name``; returns the base address."""
        if nbytes < 0:
            raise ValueError(f"negative segment size for {name!r}")
        if align <= 0 or (align & (align - 1)):
            raise ValueError(f"alignment must be a power of two, got {align}")
        if name in self._segments:
            raise ValueError(f"duplicate segment name {name!r}")
        base = (self._next + align - 1) & ~(align - 1)
        self._segments[name] = (base, nbytes)
        self._next = base + nbytes
        return base

    def alloc_words(self, name: str, count: int, align: int = LINE_SIZE) -> int:
        """Reserve ``count`` integer words."""
        return self.alloc(name, count * WORD, align)

    def alloc_doubles(self, name: str, count: int, align: int = LINE_SIZE) -> int:
        """Reserve ``count`` doubles."""
        return self.alloc(name, count * DOUBLE, align)

    def segment(self, name: str) -> tuple[int, int]:
        """Return ``(base, nbytes)`` of a named segment."""
        return self._segments[name]

    def segments(self) -> dict[str, tuple[int, int]]:
        return dict(self._segments)

    @property
    def top(self) -> int:
        """First address beyond all allocated segments."""
        return self._next
