"""Memory substrate: functional memory, caches, and coherence."""

from .cache import Cache, CacheStats, EXCLUSIVE, INVALID, MODIFIED, SHARED
from .coherence import AccessResult, CoherentMemorySystem
from .memory import (
    DOUBLE,
    LINE_SIZE,
    WORD,
    MemoryError_,
    SegmentAllocator,
    SharedMemory,
)

__all__ = [
    "AccessResult",
    "Cache",
    "CacheStats",
    "CoherentMemorySystem",
    "DOUBLE",
    "EXCLUSIVE",
    "INVALID",
    "LINE_SIZE",
    "MODIFIED",
    "MemoryError_",
    "SegmentAllocator",
    "SHARED",
    "SharedMemory",
    "WORD",
]
