"""Invalidation-based cache coherence across the multiprocessor.

This is the memory-system model of the paper's §3.2: per-processor
direct-mapped write-back caches kept coherent with an invalidation
protocol (MSI), a 1-cycle hit time, and a *fixed* miss penalty — queueing
and contention in the interconnect and at the memory modules are not
modelled, exactly as in the paper.

That fixed penalty is now the degenerate "ideal" network backend.  When
a :class:`~repro.net.ContentionNetwork` is attached, miss latency is
instead computed per transaction — request to the line's directory home
node, directory occupancy, invalidation/intervention fan-out, data
return — so it varies with interconnect and directory load.  The ideal
backend (``network=None``) remains the default and its code path is
byte-for-byte the original one.

Write misses include ownership upgrades (a write to a SHARED line must
invalidate remote copies and therefore pays the full miss penalty), which
is what makes write misses outnumber read misses in OCEAN-style
read-modify-write stencil codes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cache import Cache, CacheStats, EXCLUSIVE, INVALID, MODIFIED, SHARED


def _make_evict_tap(listener, cpu: int):
    """Closure a cache calls when it evicts a line (carries the cpu id)."""

    def tap(line: int, dirty: bool) -> None:
        listener.coherence_event("evict", cpu, line, dirty)

    return tap


@dataclass(slots=True)
class AccessResult:
    """Outcome of one data access.

    Attributes:
        hit: whether the access hit in the local cache.
        stall: extra cycles beyond the 1-cycle pipeline occupancy
            (0 on a hit, the miss penalty on a miss).
    """

    hit: bool
    stall: int


class CoherentMemorySystem:
    """The set of per-processor caches plus the shared backing store model.

    All latency numbers are in processor cycles.  The system is purely a
    timing/accounting model: functional values live in
    :class:`~repro.mem.memory.SharedMemory` and never pass through here.
    """

    def __init__(
        self,
        n_cpus: int,
        cache_size: int = 64 * 1024,
        line_size: int = 16,
        miss_penalty: int = 50,
        network=None,
    ) -> None:
        if n_cpus < 1:
            raise ValueError("need at least one processor")
        self.n_cpus = n_cpus
        self.line_size = line_size
        self.miss_penalty = miss_penalty
        #: optional repro.net.ContentionNetwork; None = fixed penalty
        self.network = network
        self.caches = [
            Cache(size=cache_size, line_size=line_size) for _ in range(n_cpus)
        ]
        # All caches share one geometry; precompute it so the hot lookup
        # avoids two method calls and two divisions per access.
        self._line_mask = self.caches[0].num_lines - 1
        self._listener = None
        #: optional repro.obs.Probe (miss-latency histograms + coherence
        #: counters); None keeps every miss path free of probe branches.
        self._obs = None

    def attach_probe(self, probe) -> None:
        """Register an observability probe (see :mod:`repro.obs`).

        Purely observational: taps fire on miss paths only and never
        alter timing, so simulation results are byte-identical with or
        without a probe attached.
        """
        self._obs = probe if probe is not None and probe.enabled else None

    def attach_listener(self, listener) -> None:
        """Register a protocol-event listener (consistency verification).

        The listener's ``coherence_event(kind, cpu, line, extra)`` is
        called on every install / upgrade / invalidate / downgrade /
        evict.  Events fire on miss paths only, so cache hits stay as
        cheap as without a listener.
        """
        self._listener = listener
        for cpu, cache in enumerate(self.caches):
            cache.evict_tap = _make_evict_tap(listener, cpu)

    # -- the single entry point used by the executor -------------------------

    def access(
        self, cpu: int, addr: int, is_write: bool, now: int = 0
    ) -> AccessResult:
        """Perform the timing/coherence side of one data access."""
        hit, stall = self.access_ht(cpu, addr, is_write, now)
        return AccessResult(hit=hit, stall=stall)

    def access_ht(self, cpu: int, addr: int, is_write: bool, now: int = 0):
        """Like :meth:`access` but returns a plain ``(hit, stall)`` tuple.

        This is the executor's fast path: no result object is allocated
        and the cache lookup is inlined (hits are ~90% of accesses).
        ``now`` is the requester's current cycle; the ideal backend
        ignores it, the network backend uses it to place the miss's
        messages in time so overlapping misses contend.
        """
        cache = self.caches[cpu]
        line = addr // self.line_size
        idx = line & self._line_mask
        state = cache._state[idx] if cache._line_addr[idx] == line else INVALID
        stats = cache.stats
        if is_write:
            stats.writes += 1
            if state == MODIFIED:
                return True, 0
            if state == EXCLUSIVE:
                # Silent E -> M transition: the copy is already exclusive.
                cache._state[idx] = MODIFIED
                return True, 0
            # SHARED needs an ownership upgrade; INVALID needs a full fill.
            # Both invalidate every remote copy and pay the miss penalty.
            sharers = self._invalidate_others(cpu, addr)
            if state == SHARED:
                stats.upgrades += 1
                cache._state[idx] = MODIFIED
                if self._listener is not None:
                    self._listener.coherence_event("upgrade", cpu, line, None)
                if self._obs is not None:
                    self._obs.on_coherence("upgrade", cpu, line, None)
            else:
                cache.install(addr, MODIFIED)
                if self._listener is not None:
                    self._listener.coherence_event(
                        "install", cpu, line, MODIFIED
                    )
                if self._obs is not None:
                    self._obs.on_coherence("install", cpu, line, MODIFIED)
            stats.write_misses += 1
            if self.network is None:
                stall = self.miss_penalty
            else:
                stall = self.network.write_miss(
                    cpu, line, sharers, now, upgrade=state == SHARED
                )
            if self._obs is not None:
                self._obs.on_miss(cpu, True, stall, now)
            return False, stall
        stats.reads += 1
        if state != INVALID:
            return True, 0
        # Read miss: remote copies are downgraded to SHARED (a dirty one
        # is written back); the line installs SHARED if anyone else holds
        # it, EXCLUSIVE otherwise.
        shared, owner = self._downgrade_others(cpu, addr)
        new_state = SHARED if shared else EXCLUSIVE
        cache.install(addr, new_state)
        if self._listener is not None:
            self._listener.coherence_event("install", cpu, line, new_state)
        if self._obs is not None:
            self._obs.on_coherence("install", cpu, line, new_state)
        stats.read_misses += 1
        if self.network is None:
            stall = self.miss_penalty
        else:
            stall = self.network.read_miss(cpu, line, owner, now)
        if self._obs is not None:
            self._obs.on_miss(cpu, False, stall, now)
        return False, stall

    def would_hit(self, cpu: int, addr: int, is_write: bool) -> bool:
        """Non-mutating lookup: would this access hit right now?"""
        state = self.caches[cpu].state_of(addr)
        if is_write:
            return state in (MODIFIED, EXCLUSIVE)
        return state != INVALID

    # -- protocol helpers ---------------------------------------------------

    def _invalidate_others(self, cpu: int, addr: int) -> tuple[int, ...]:
        """Invalidate remote copies; returns the cpus that held one."""
        line = addr // self.line_size
        idx = line & self._line_mask
        sharers = []
        for other, cache in enumerate(self.caches):
            if other != cpu and cache._line_addr[idx] == line:
                state = cache._state[idx]
                if state != INVALID:
                    if state == MODIFIED:
                        cache.stats.writebacks += 1
                    cache._state[idx] = INVALID
                    cache.stats.invalidations_received += 1
                    sharers.append(other)
                    if self._listener is not None:
                        self._listener.coherence_event(
                            "invalidate", other, line, state == MODIFIED
                        )
                    if self._obs is not None:
                        self._obs.on_coherence(
                            "invalidate", other, line, state == MODIFIED
                        )
        return tuple(sharers)

    def _downgrade_others(self, cpu: int, addr: int):
        """Downgrade remote copies to SHARED.

        Returns ``(shared, owner)``: whether any remote copy existed,
        and the cpu that held the line MODIFIED (the intervention
        target that supplies data cache-to-cache) or None when memory
        at the home node sources the fill.
        """
        line = addr // self.line_size
        idx = line & self._line_mask
        shared = False
        owner = None
        for other, cache in enumerate(self.caches):
            if other != cpu and cache._line_addr[idx] == line:
                state = cache._state[idx]
                if state == MODIFIED:
                    shared = True
                    owner = other
                    cache._state[idx] = SHARED
                    stats = cache.stats
                    stats.downgrades_received += 1
                    stats.writebacks += 1
                    if self._listener is not None:
                        self._listener.coherence_event(
                            "downgrade", other, line, True
                        )
                    if self._obs is not None:
                        self._obs.on_coherence("downgrade", other, line, True)
                elif state == EXCLUSIVE:
                    shared = True
                    cache._state[idx] = SHARED
                    cache.stats.downgrades_received += 1
                    if self._listener is not None:
                        self._listener.coherence_event(
                            "downgrade", other, line, False
                        )
                    if self._obs is not None:
                        self._obs.on_coherence(
                            "downgrade", other, line, False
                        )
                elif state == SHARED:
                    shared = True
        return shared, owner

    # -- invariants and reporting ---------------------------------------------

    def check_coherence_invariant(self, addr: int) -> None:
        """Assert single-writer / multiple-reader for the line of ``addr``.

        Used by tests and debug runs: at most one cache may hold the line
        MODIFIED or EXCLUSIVE, and if one does, no other cache may hold it
        at all.
        """
        holders = [
            (i, c.state_of(addr))
            for i, c in enumerate(self.caches)
            if c.holds(addr)
        ]
        owners = [i for i, s in holders if s in (MODIFIED, EXCLUSIVE)]
        if len(owners) > 1:
            raise AssertionError(
                f"multiple owned copies of line {addr:#x}: {holders}"
            )
        if owners and len(holders) > 1:
            raise AssertionError(
                f"owned copy coexists with other copies of {addr:#x}: "
                f"{holders}"
            )

    def total_stats(self) -> CacheStats:
        """Aggregate counters across all caches."""
        total = CacheStats()
        for cache in self.caches:
            total.merge(cache.stats)
        return total
