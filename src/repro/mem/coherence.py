"""Invalidation-based cache coherence across the multiprocessor.

This is the memory-system model of the paper's §3.2: per-processor
direct-mapped write-back caches kept coherent with an invalidation
protocol (MSI), a 1-cycle hit time, and a *fixed* miss penalty — queueing
and contention in the interconnect and at the memory modules are not
modelled, exactly as in the paper.

Write misses include ownership upgrades (a write to a SHARED line must
invalidate remote copies and therefore pays the full miss penalty), which
is what makes write misses outnumber read misses in OCEAN-style
read-modify-write stencil codes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cache import Cache, CacheStats, EXCLUSIVE, INVALID, MODIFIED, SHARED


@dataclass(slots=True)
class AccessResult:
    """Outcome of one data access.

    Attributes:
        hit: whether the access hit in the local cache.
        stall: extra cycles beyond the 1-cycle pipeline occupancy
            (0 on a hit, the miss penalty on a miss).
    """

    hit: bool
    stall: int


class CoherentMemorySystem:
    """The set of per-processor caches plus the shared backing store model.

    All latency numbers are in processor cycles.  The system is purely a
    timing/accounting model: functional values live in
    :class:`~repro.mem.memory.SharedMemory` and never pass through here.
    """

    def __init__(
        self,
        n_cpus: int,
        cache_size: int = 64 * 1024,
        line_size: int = 16,
        miss_penalty: int = 50,
    ) -> None:
        if n_cpus < 1:
            raise ValueError("need at least one processor")
        self.n_cpus = n_cpus
        self.line_size = line_size
        self.miss_penalty = miss_penalty
        self.caches = [
            Cache(size=cache_size, line_size=line_size) for _ in range(n_cpus)
        ]

    # -- the single entry point used by the executor -------------------------

    def access(self, cpu: int, addr: int, is_write: bool) -> AccessResult:
        """Perform the timing/coherence side of one data access."""
        cache = self.caches[cpu]
        state = cache.state_of(addr)
        if is_write:
            cache.stats.writes += 1
            if state == MODIFIED:
                return AccessResult(hit=True, stall=0)
            if state == EXCLUSIVE:
                # Silent E -> M transition: the copy is already exclusive.
                cache.set_state(addr, MODIFIED)
                return AccessResult(hit=True, stall=0)
            # SHARED needs an ownership upgrade; INVALID needs a full fill.
            # Both invalidate every remote copy and pay the miss penalty.
            self._invalidate_others(cpu, addr)
            if state == SHARED:
                cache.stats.upgrades += 1
                cache.set_state(addr, MODIFIED)
            else:
                cache.install(addr, MODIFIED)
            cache.stats.write_misses += 1
            return AccessResult(hit=False, stall=self.miss_penalty)
        cache.stats.reads += 1
        if state != INVALID:
            return AccessResult(hit=True, stall=0)
        # Read miss: remote copies are downgraded to SHARED (a dirty one
        # is written back); the line installs SHARED if anyone else holds
        # it, EXCLUSIVE otherwise.
        shared = self._downgrade_others(cpu, addr)
        cache.install(addr, SHARED if shared else EXCLUSIVE)
        cache.stats.read_misses += 1
        return AccessResult(hit=False, stall=self.miss_penalty)

    def would_hit(self, cpu: int, addr: int, is_write: bool) -> bool:
        """Non-mutating lookup: would this access hit right now?"""
        state = self.caches[cpu].state_of(addr)
        if is_write:
            return state in (MODIFIED, EXCLUSIVE)
        return state != INVALID

    # -- protocol helpers ---------------------------------------------------

    def _invalidate_others(self, cpu: int, addr: int) -> None:
        for other, cache in enumerate(self.caches):
            if other != cpu and cache.holds(addr):
                if cache.state_of(addr) == MODIFIED:
                    cache.stats.writebacks += 1
                cache.invalidate(addr)

    def _downgrade_others(self, cpu: int, addr: int) -> bool:
        """Downgrade remote copies to SHARED; True if any copy existed."""
        shared = False
        for other, cache in enumerate(self.caches):
            if other != cpu:
                if cache.holds(addr):
                    shared = True
                cache.downgrade(addr)
        return shared

    # -- invariants and reporting ---------------------------------------------

    def check_coherence_invariant(self, addr: int) -> None:
        """Assert single-writer / multiple-reader for the line of ``addr``.

        Used by tests and debug runs: at most one cache may hold the line
        MODIFIED or EXCLUSIVE, and if one does, no other cache may hold it
        at all.
        """
        holders = [
            (i, c.state_of(addr))
            for i, c in enumerate(self.caches)
            if c.holds(addr)
        ]
        owners = [i for i, s in holders if s in (MODIFIED, EXCLUSIVE)]
        if len(owners) > 1:
            raise AssertionError(
                f"multiple owned copies of line {addr:#x}: {holders}"
            )
        if owners and len(holders) > 1:
            raise AssertionError(
                f"owned copy coexists with other copies of {addr:#x}: "
                f"{holders}"
            )

    def total_stats(self) -> CacheStats:
        """Aggregate counters across all caches."""
        total = CacheStats()
        for cache in self.caches:
            total.merge(cache.stats)
        return total
