"""LU — dense LU decomposition (paper §3.3).

Right-looking LU decomposition without pivoting on an ``n``-by-``n``
matrix of doubles.  As in the paper, columns are statically assigned to
processors in an interleaved fashion; each processor waits (via an ANL
event) for the current pivot column to be produced, then uses it to update
the columns it owns.  The processor that owns the pivot column scales it
and sets the column's event, releasing all waiters.

The matrix is stored column-major so a column is contiguous — the owner's
writes stay local while consumers' reads of the pivot column are
communication misses, which is exactly the sharing pattern the paper's LU
exhibits.  The paper ran 200x200; the default here is reduced for
pure-Python simulation speed and is configurable.

Synchronization: one event per column, plus one barrier before and one
after the factorization (the paper reports 2 barriers).
"""

from __future__ import annotations

import numpy as np

from ..asm import AsmBuilder
from ..isa import Program
from ..mem import SegmentAllocator, SharedMemory
from .common import Workload


def _reference_lu(a: np.ndarray) -> np.ndarray:
    """The factorization the parallel program must reproduce exactly.

    Mirrors the per-element operation order of the assembly kernels
    (scale column, then rank-1 update column by column), so the result is
    bit-identical to the simulated machine's.
    """
    a = a.copy()
    n = a.shape[0]
    for k in range(n):
        pivot = a[k, k]
        for i in range(k + 1, n):
            a[i, k] = a[i, k] / pivot
        for j in range(k + 1, n):
            m = a[k, j]
            for i in range(k + 1, n):
                a[i, j] = a[i, j] - a[i, k] * m
    return a


def _thread_program(
    me: int,
    n_procs: int,
    n: int,
    a_base: int,
    ev_base: int,
    bar_base: int,
) -> Program:
    """One processor's LU program, with pivot send-ahead.

    A column owner scales and publishes column ``k+1`` *immediately* after
    applying column ``k``'s update to it — before updating the rest of its
    columns — so consumers of the next pivot rarely wait.  This is the
    standard pipelined column-LU structure the paper's version uses.
    """
    b = AsmBuilder(f"lu.t{me}")

    r_a = b.ireg("A")
    r_n = b.ireg("n")
    r_p = b.ireg("P")
    r_me = b.ireg("me")
    r_ev = b.ireg("ev")
    b.li(r_a, a_base)
    b.li(r_n, n)
    b.li(r_p, n_procs)
    b.li(r_me, me)
    b.li(r_ev, ev_base)

    def scale_and_publish(col):
        """Scale column ``col`` below its diagonal and set its event."""
        with b.itemps(2) as (p, i), b.ftemps(2) as (f_piv, f_v):
            b.mul(p, col, r_n)
            b.add(p, p, col)
            b.muli(p, p, 8)
            b.add(p, p, r_a)               # &A[col,col]
            b.fld(f_piv, p, 0)
            b.addi(p, p, 8)                # &A[col+1,col]
            b.addi(i, col, 1)
            with b.while_cmp("lt", i, r_n):
                b.fld(f_v, p, 0)
                b.fdiv(f_v, f_v, f_piv)
                b.fsd(f_v, p, 0)
                b.addi(p, p, 8)
                b.addi(i, i, 1)
        with b.itemps(1) as t_ev:
            b.muli(t_ev, col, 4)
            b.add(t_ev, t_ev, r_ev)
            b.evset(t_ev)

    with b.itemps(1) as r_bar:
        b.li(r_bar, bar_base)
        b.barrier(r_bar)

    # The owner of column 0 publishes it before anyone loops.
    if me == 0 % n_procs:
        with b.itemps(1) as c0:
            b.li(c0, 0)
            scale_and_publish(c0)

    k = b.ireg("k")
    kp1 = b.ireg("kp1")
    with b.for_range(k, 0, r_n):
        b.addi(kp1, k, 1)
        # Wait for the pivot column (a no-op latency-wise for its owner,
        # who set the event itself).
        with b.itemps(1) as t_ev:
            b.muli(t_ev, k, 4)
            b.add(t_ev, t_ev, r_ev)
            b.evwait(t_ev)

        # Update owned columns j > k in increasing order; after updating
        # j == k+1 (necessarily its final update), scale and publish it.
        # j0 = k+1 + ((me - (k+1)) mod P), the first owned column past k.
        with b.itemps(2) as (j, t):
            b.sub(t, r_me, k)
            b.addi(t, t, -1)
            b.rem(t, t, r_p)
            b.add(t, t, r_p)
            b.rem(t, t, r_p)
            b.add(j, t, kp1)
            with b.while_cmp("lt", j, r_n):
                with (
                    b.itemps(4) as (t_jcol, t_k8, p, q),
                    b.ftemps(3) as (f_m, f_a, f_b),
                ):
                    b.mul(t_jcol, j, r_n)
                    b.muli(t_jcol, t_jcol, 8)
                    b.add(t_jcol, t_jcol, r_a)   # base of column j
                    b.muli(t_k8, k, 8)
                    b.add(p, t_jcol, t_k8)       # &A[k,j]
                    b.fld(f_m, p, 0)             # multiplier A[k,j]
                    b.addi(p, p, 8)              # &A[k+1,j]
                    b.mul(q, k, r_n)
                    b.muli(q, q, 8)
                    b.add(q, q, r_a)
                    b.add(q, q, t_k8)
                    b.addi(q, q, 8)              # &A[k+1,k]
                    with b.itemps(1) as i:
                        b.addi(i, k, 1)
                        with b.while_cmp("lt", i, r_n):
                            b.fld(f_a, p, 0)
                            b.fld(f_b, q, 0)
                            b.fmul(f_b, f_b, f_m)
                            b.fsub(f_a, f_a, f_b)
                            b.fsd(f_a, p, 0)
                            b.addi(p, p, 8)
                            b.addi(q, q, 8)
                            b.addi(i, i, 1)
                with b.if_cmp("eq", j, kp1):
                    scale_and_publish(kp1)
                b.add(j, j, r_p)

    with b.itemps(1) as r_bar:
        b.li(r_bar, bar_base + 4)
        b.barrier(r_bar)
    b.halt()
    return b.build()


def build(n_procs: int = 16, n: int = 96, seed: int = 12) -> Workload:
    """Build the LU workload.

    Args:
        n_procs: number of processors (the paper uses 16).
        n: matrix dimension (the paper uses 200; default reduced).
        seed: RNG seed for the input matrix.
    """
    if n < 2:
        raise ValueError("matrix must be at least 2x2")
    rng = np.random.default_rng(seed)
    # Diagonally dominant so factoring without pivoting is stable.
    a = rng.uniform(0.1, 1.0, size=(n, n)) + np.eye(n) * n

    layout = SegmentAllocator()
    a_base = layout.alloc_doubles("A", n * n)
    ev_base = layout.alloc_words("events", n)
    bar_base = layout.alloc_words("barriers", 2)

    memory = SharedMemory()
    for j in range(n):
        for i in range(n):
            memory.write_double(a_base + (j * n + i) * 8, float(a[i, j]))

    programs = [
        _thread_program(me, n_procs, n, a_base, ev_base, bar_base)
        for me in range(n_procs)
    ]

    expected = _reference_lu(a)

    def verify(mem: SharedMemory) -> None:
        result = np.empty((n, n))
        for j in range(n):
            for i in range(n):
                result[i, j] = mem.read_double(a_base + (j * n + i) * 8)
        if not np.allclose(result, expected, rtol=1e-12, atol=1e-12):
            worst = np.abs(result - expected).max()
            raise AssertionError(
                f"LU result mismatch, max abs error {worst:.3e}"
            )

    return Workload(
        name="lu",
        programs=programs,
        memory=memory,
        layout=layout,
        verify=verify,
        params={"n_procs": n_procs, "n": n, "seed": seed},
    )
