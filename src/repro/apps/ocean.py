"""OCEAN — eddy/boundary-current simulation kernel (paper §3.3).

Models the computational core of the OCEAN code: per timestep, a set of
two-dimensional double-precision arrays is swept with nearest-neighbour
stencil updates, separated by global barriers.  Each timestep performs

1. a five-point Jacobi relaxation of the stream field ``A`` into ``B``
   with forcing from ``W``;
2. a copy-back of ``B`` into ``A`` combined with a pointwise decay/update
   of the forcing field ``W``;
3. a finite-difference "velocity" computation writing ``U`` and ``V``
   from central differences of ``A``.

Rows are statically block-partitioned across processors; the boundary rows
of each partition are the communication surface (read by neighbours each
step, re-written by the owner), and the five live arrays per processor
slightly exceed a realistically scaled cache — together these reproduce
OCEAN's signature property in the paper: *write misses outnumber read
misses*, which is what makes processor consistency unable to hide its
write latency (§4.1.1).

The paper ran a 98x98 grid with ~25 arrays; the default here is reduced
proportionally for pure-Python simulation speed.
"""

from __future__ import annotations

import numpy as np

from ..asm import AsmBuilder
from ..isa import Program
from ..mem import SegmentAllocator, SharedMemory
from .common import Workload

_OMEGA = 0.2       # Jacobi weight
_FORCE = 0.05      # forcing contribution
_DECAY = 0.95      # forcing decay per step
_FEEDBACK = 0.01   # field feedback into the forcing


def _reference(a, w, steps):
    """Pure-numpy replay with the same per-element operation order."""
    a = a.copy()
    w = w.copy()
    n = a.shape[0]
    u = np.zeros_like(a)
    v = np.zeros_like(a)
    b = a.copy()
    interior = slice(1, n - 1)
    for _ in range(steps):
        b[interior, interior] = (
            (((a[interior, interior] + a[:-2, 1:-1]) + a[2:, 1:-1])
             + a[1:-1, :-2]) + a[1:-1, 2:]
        ) * _OMEGA + w[interior, interior] * _FORCE
        a[interior, interior] = b[interior, interior]
        w[interior, interior] = (
            w[interior, interior] * _DECAY
            + b[interior, interior] * _FEEDBACK
        )
        u[interior, interior] = a[2:, 1:-1] - a[:-2, 1:-1]
        v[interior, interior] = a[1:-1, 2:] - a[1:-1, :-2]
    return a, w, u, v


def _row_range(me: int, n_procs: int, n: int) -> tuple[int, int]:
    """Contiguous block of interior rows [lo, hi) owned by processor."""
    interior = n - 2
    q, r = divmod(interior, n_procs)
    lo = 1 + me * q + min(me, r)
    hi = lo + q + (1 if me < r else 0)
    return lo, hi


def _thread_program(
    me: int,
    n_procs: int,
    n: int,
    steps: int,
    bases: dict[str, int],
    bar_base: int,
) -> Program:
    b = AsmBuilder(f"ocean.t{me}")
    lo, hi = _row_range(me, n_procs, n)
    row_bytes = n * 8

    r_a = b.ireg("A")
    r_b = b.ireg("B")
    r_w = b.ireg("W")
    r_u = b.ireg("U")
    r_v = b.ireg("V")
    r_bar = b.ireg("bar")
    b.li(r_a, bases["A"])
    b.li(r_b, bases["B"])
    b.li(r_w, bases["W"])
    b.li(r_u, bases["U"])
    b.li(r_v, bases["V"])

    f_omega = b.freg("omega")
    f_force = b.freg("force")
    f_decay = b.freg("decay")
    f_feed = b.freg("feed")
    b.fli(f_omega, _OMEGA)
    b.fli(f_force, _FORCE)
    b.fli(f_decay, _DECAY)
    b.fli(f_feed, _FEEDBACK)

    b.li(r_bar, bar_base)
    b.barrier(r_bar)

    step = b.ireg("step")
    i = b.ireg("i")
    j = b.ireg("j")
    with b.for_range(step, 0, steps):
        # ---- phase 1: Jacobi relaxation A -> B, forced by W ------------
        with b.for_range(i, lo, hi):
            with b.itemps(3) as (p_c, p_b, p_w):
                # p_c -> &A[i,1]; row-major layout.
                b.muli(p_c, i, row_bytes)
                b.addi(p_b, p_c, 8)
                b.add(p_b, p_b, r_b)        # &B[i,1]
                b.addi(p_w, p_c, 8)
                b.add(p_w, p_w, r_w)        # &W[i,1]
                b.addi(p_c, p_c, 8)
                b.add(p_c, p_c, r_a)        # &A[i,1]
                with b.for_range(j, 1, n - 1), b.ftemps(3) as (f0, f1, f2):
                    b.fld(f0, p_c, 0)                # A[i,j]
                    b.fld(f1, p_c, -row_bytes)       # A[i-1,j]
                    b.fadd(f0, f0, f1)
                    b.fld(f1, p_c, row_bytes)        # A[i+1,j]
                    b.fadd(f0, f0, f1)
                    b.fld(f1, p_c, -8)               # A[i,j-1]
                    b.fadd(f0, f0, f1)
                    b.fld(f1, p_c, 8)                # A[i,j+1]
                    b.fadd(f0, f0, f1)
                    b.fmul(f0, f0, f_omega)
                    b.fld(f2, p_w, 0)                # W[i,j]
                    b.fmul(f2, f2, f_force)
                    b.fadd(f0, f0, f2)
                    b.fsd(f0, p_b, 0)
                    b.addi(p_c, p_c, 8)
                    b.addi(p_b, p_b, 8)
                    b.addi(p_w, p_w, 8)
        b.li(r_bar, bar_base + 4)
        b.barrier(r_bar)

        # ---- phase 2: copy back and update forcing ----------------------
        with b.for_range(i, lo, hi):
            with b.itemps(3) as (p_a, p_b, p_w):
                b.muli(p_a, i, row_bytes)
                b.addi(p_a, p_a, 8)
                b.add(p_b, p_a, r_b)
                b.add(p_w, p_a, r_w)
                b.add(p_a, p_a, r_a)
                with b.for_range(j, 1, n - 1), b.ftemps(2) as (f0, f1):
                    b.fld(f0, p_b, 0)                # B[i,j]
                    b.fsd(f0, p_a, 0)                # A[i,j] = B[i,j]
                    b.fld(f1, p_w, 0)                # W[i,j]
                    b.fmul(f1, f1, f_decay)
                    with b.ftemps(1) as f2:
                        b.fmul(f2, f0, f_feed)
                        b.fadd(f1, f1, f2)
                    b.fsd(f1, p_w, 0)
                    b.addi(p_a, p_a, 8)
                    b.addi(p_b, p_b, 8)
                    b.addi(p_w, p_w, 8)
        b.li(r_bar, bar_base + 8)
        b.barrier(r_bar)

        # ---- phase 3: central-difference velocities ----------------------
        with b.for_range(i, lo, hi):
            with b.itemps(3) as (p_a, p_u, p_v):
                b.muli(p_a, i, row_bytes)
                b.addi(p_a, p_a, 8)
                b.add(p_u, p_a, r_u)
                b.add(p_v, p_a, r_v)
                b.add(p_a, p_a, r_a)
                with b.for_range(j, 1, n - 1), b.ftemps(2) as (f0, f1):
                    b.fld(f0, p_a, row_bytes)        # A[i+1,j]
                    b.fld(f1, p_a, -row_bytes)       # A[i-1,j]
                    b.fsub(f0, f0, f1)
                    b.fsd(f0, p_u, 0)                # U[i,j]
                    b.fld(f0, p_a, 8)                # A[i,j+1]
                    b.fld(f1, p_a, -8)               # A[i,j-1]
                    b.fsub(f0, f0, f1)
                    b.fsd(f0, p_v, 0)                # V[i,j]
                    b.addi(p_a, p_a, 8)
                    b.addi(p_u, p_u, 8)
                    b.addi(p_v, p_v, 8)
        b.li(r_bar, bar_base + 12)
        b.barrier(r_bar)

    b.halt()
    return b.build()


def build(n_procs: int = 16, n: int = 50, steps: int = 5,
          seed: int = 31) -> Workload:
    """Build the OCEAN workload.

    Args:
        n_procs: number of processors.
        n: grid dimension including boundary (paper: 98).
        steps: timesteps to simulate.
        seed: RNG seed for the initial fields.
    """
    if n - 2 < n_procs:
        raise ValueError("grid too small: fewer interior rows than CPUs")
    rng = np.random.default_rng(seed)
    a0 = rng.uniform(-1.0, 1.0, size=(n, n))
    w0 = rng.uniform(-0.5, 0.5, size=(n, n))

    layout = SegmentAllocator()
    bases = {
        name: layout.alloc_doubles(name, n * n)
        for name in ("A", "B", "W", "U", "V")
    }
    bar_base = layout.alloc_words("barriers", 4)

    memory = SharedMemory()
    for i in range(n):
        for j in range(n):
            memory.write_double(bases["A"] + (i * n + j) * 8, float(a0[i, j]))
            memory.write_double(bases["W"] + (i * n + j) * 8, float(w0[i, j]))

    programs = [
        _thread_program(me, n_procs, n, steps, bases, bar_base)
        for me in range(n_procs)
    ]

    exp_a, exp_w, exp_u, exp_v = _reference(a0, w0, steps)

    def verify(mem: SharedMemory) -> None:
        for name, expected in (
            ("A", exp_a), ("W", exp_w), ("U", exp_u), ("V", exp_v),
        ):
            base = bases[name]
            result = np.array([
                [mem.read_double(base + (i * n + j) * 8) for j in range(n)]
                for i in range(n)
            ])
            if not np.allclose(result, expected, rtol=1e-10, atol=1e-12):
                worst = np.abs(result - expected).max()
                raise AssertionError(
                    f"OCEAN array {name} mismatch, max abs err {worst:.3e}"
                )

    return Workload(
        name="ocean",
        programs=programs,
        memory=memory,
        layout=layout,
        verify=verify,
        params={"n_procs": n_procs, "n": n, "steps": steps, "seed": seed},
    )
