"""PTHOR — parallel distributed-time logic simulator (paper §3.3).

Models the behaviour of PTHOR's Chandy-Misra-style simulation loop on a
levelized combinational circuit.  The data structures mirror the real
simulator's: *elements* (two-input gates with type, value, input ids, a
fanout list into a shared fanout pool, and an activation flag) and
per-processor *task queues* of activated elements, protected by locks.

Execution proceeds in simulated clock cycles.  At each clock a seeded
subset of the primary inputs toggles; the resulting activations propagate
level by level (a barrier separates levels, so an element always sees
final input values — the deterministic-evaluation property Chandy-Misra
timestamps provide in the real simulator).  Each processor drains its own
queue for the current level: pop an element under the queue lock, clear
its activation flag, chase pointers to read its input values (the
dependent-load chains the paper blames for PTHOR's residual read
latency), evaluate the gate through a type-dispatch branch tree (the
unpredictable branches behind PTHOR's 81% prediction accuracy), and on an
output change push every fanout element onto its owner's queue for that
element's level, under that queue's lock.

PTHOR is the synchronization-heavy application of the suite — thousands
of lock acquisitions and hundreds of barriers (Table 2) — and that is
exactly what this structure produces.

Verification is strong: the circuit is initialised consistently, so after
the run every element's value must equal the full combinational
evaluation of the circuit at the final primary-input assignment, and all
activation flags and queues must be empty.
"""

from __future__ import annotations

import numpy as np

from ..asm import AsmBuilder
from ..isa import Program
from ..mem import SegmentAllocator, SharedMemory
from .common import Workload

_ELEM_BYTES = 48
# Element record field offsets, grouped by sharing behaviour so each
# 16-byte cache line of the record has a single coherence personality:
# line 0 is read-only circuit structure, line 1 is the dirty-shared
# simulation state (value + activation flag), line 2 is owner-private.
_F_TYPE = 0       # line 0: read-only
_F_IN0 = 4
_F_IN1 = 8
_F_DELAY = 12     # gate delay, accumulated into the local virtual time
_F_VAL = 16       # line 1: written by owner, read/written by pushers
_F_QUEUED = 20
_F_LEVEL = 24
_F_FANBASE = 32   # line 2: only the owner walks its own fanout list
_F_FANCNT = 36
_F_ACT = 40       # evaluation count (statistics, owner-private)

_QD_BYTES = 16
# Queue descriptor offsets: lock word, head, tail, buffer base address.
_Q_LOCK = 0
_Q_HEAD = 4
_Q_TAIL = 8
_Q_BUF = 12

_AND, _OR, _XOR, _NAND = range(4)


def _gate_eval(gtype: int, v0: int, v1: int) -> int:
    if gtype == _AND:
        return v0 & v1
    if gtype == _OR:
        return v0 | v1
    if gtype == _XOR:
        return v0 ^ v1
    return (v0 & v1) ^ 1  # NAND


class _Circuit:
    """A seeded, levelized random circuit."""

    def __init__(self, n_elements: int, n_inputs: int, window: int,
                 seed: int) -> None:
        if n_inputs >= n_elements:
            raise ValueError("circuit needs gates, not only inputs")
        rng = np.random.default_rng(seed)
        self.n_elements = n_elements
        self.n_inputs = n_inputs
        self.gtype = np.zeros(n_elements, dtype=int)
        self.in0 = np.zeros(n_elements, dtype=int)
        self.in1 = np.zeros(n_elements, dtype=int)
        self.level = np.zeros(n_elements, dtype=int)
        for e in range(n_inputs, n_elements):
            lo = max(0, e - window)
            self.gtype[e] = rng.integers(0, 4)
            self.in0[e] = rng.integers(lo, e)
            self.in1[e] = rng.integers(lo, e)
            self.level[e] = 1 + max(
                self.level[self.in0[e]], self.level[self.in1[e]]
            )
        self.depth = int(self.level.max())
        self.fanout: list[list[int]] = [[] for _ in range(n_elements)]
        for e in range(n_inputs, n_elements):
            self.fanout[self.in0[e]].append(e)
            self.fanout[self.in1[e]].append(e)

    def settle(self, pi_values: np.ndarray) -> np.ndarray:
        """Full combinational evaluation at a primary-input assignment."""
        values = np.zeros(self.n_elements, dtype=int)
        values[: self.n_inputs] = pi_values
        for e in range(self.n_inputs, self.n_elements):
            values[e] = _gate_eval(
                int(self.gtype[e]),
                int(values[self.in0[e]]),
                int(values[self.in1[e]]),
            )
        return values


def _thread_program(
    me: int,
    n_procs: int,
    circuit: _Circuit,
    clocks: int,
    bases: dict[str, int],
) -> Program:
    b = AsmBuilder(f"pthor.t{me}")
    depth = circuit.depth
    npi = circuit.n_inputs

    r_elem = b.ireg("elem")
    r_qd = b.ireg("qd")
    r_pat = b.ireg("pat")
    r_p = b.ireg("P")
    r_bar = b.ireg("bar")
    r_npi = b.ireg("npi")
    r_time = b.ireg("time")
    r_load = b.ireg("load")
    b.li(r_time, 0)
    b.li(r_load, 0)
    b.li(r_elem, bases["elements"])
    b.li(r_qd, bases["queues"])
    b.li(r_pat, bases["pattern"])
    b.li(r_p, n_procs)
    b.li(r_bar, bases["barriers"])
    b.li(r_npi, npi)

    def push_fanouts(rec):
        """Push every fanout of the element record at ``rec`` whose
        activation flag is clear onto its owner's queue for its level."""
        with b.itemps(3) as (fb, fc, f):
            b.lw(fb, rec, _F_FANBASE)
            b.lw(fc, rec, _F_FANCNT)
            with b.for_range(f, 0, fc):
                with b.itemps(2) as (tgt, trec):
                    b.muli(tgt, f, 4)
                    b.add(tgt, tgt, fb)
                    b.lw(tgt, tgt, 0)            # target element id
                    b.muli(trec, tgt, _ELEM_BYTES)
                    b.add(trec, trec, r_elem)
                    with b.itemps(1) as q:
                        b.lw(q, trec, _F_QUEUED)
                        with b.if_cmp("eq", q, b.zero):
                            b.li(q, 1)
                            b.sw(q, trec, _F_QUEUED)
                            with b.itemps(2) as (own, qd2):
                                b.rem(own, tgt, r_p)
                                b.muli(own, own, depth)
                                b.lw(qd2, trec, _F_LEVEL)
                                b.addi(qd2, qd2, -1)
                                b.add(qd2, qd2, own)
                                b.muli(qd2, qd2, _QD_BYTES)
                                b.add(qd2, qd2, r_qd)
                                b.lock(qd2)
                                with b.itemps(2) as (tail, buf):
                                    b.lw(tail, qd2, _Q_TAIL)
                                    b.lw(buf, qd2, _Q_BUF)
                                    with b.itemps(1) as slot:
                                        b.muli(slot, tail, 4)
                                        b.add(slot, slot, buf)
                                        b.sw(tgt, slot, 0)
                                    b.addi(tail, tail, 1)
                                    b.sw(tail, qd2, _Q_TAIL)
                                b.unlock(qd2)

    b.barrier(r_bar)

    clock = b.ireg("clock")
    lvl = b.ireg("lvl")
    r_rec = b.ireg("rec")   # current element record address
    r_nv = b.ireg("nv")     # newly evaluated value
    with b.for_range(clock, 0, clocks):
        # ---- toggle this processor's share of the primary inputs --------
        with b.itemps(1) as pi:
            b.li(pi, me)
            with b.while_cmp("lt", pi, r_npi):
                with b.itemps(2) as (taddr, flag):
                    b.muli(taddr, clock, npi)
                    b.add(taddr, taddr, pi)
                    b.muli(taddr, taddr, 4)
                    b.add(taddr, taddr, r_pat)
                    b.lw(flag, taddr, 0)
                    with b.if_cmp("ne", flag, b.zero):
                        b.muli(r_rec, pi, _ELEM_BYTES)
                        b.add(r_rec, r_rec, r_elem)
                        with b.itemps(1) as v:
                            b.lw(v, r_rec, _F_VAL)
                            b.xori(v, v, 1)
                            b.sw(v, r_rec, _F_VAL)
                        push_fanouts(r_rec)
                b.addi(pi, pi, n_procs)

        # ---- propagate level by level --------------------------------------
        with b.for_range(lvl, 1, depth + 1):
            b.barrier(r_bar)
            with b.itemps(1) as qd:
                b.addi(qd, lvl, -1)
                b.addi(qd, qd, me * depth)
                b.muli(qd, qd, _QD_BYTES)
                b.add(qd, qd, r_qd)
                drain = b.newlabel("drain")
                empty = b.newlabel("empty")
                drained = b.newlabel("drained")
                b.label(drain)
                b.lock(qd)
                # Pop one element id into r_rec (as a record address).
                with b.itemps(2) as (head, tail):
                    b.lw(head, qd, _Q_HEAD)
                    b.lw(tail, qd, _Q_TAIL)
                    b.branch("eq", head, tail, empty)
                    with b.itemps(1) as buf:
                        b.lw(buf, qd, _Q_BUF)
                        b.muli(r_rec, head, 4)
                        b.add(r_rec, r_rec, buf)
                        b.lw(r_rec, r_rec, 0)    # popped element id
                    b.addi(head, head, 1)
                    b.sw(head, qd, _Q_HEAD)
                b.unlock(qd)
                b.muli(r_rec, r_rec, _ELEM_BYTES)
                b.add(r_rec, r_rec, r_elem)
                b.sw(b.zero, r_rec, _F_QUEUED)
                # Timing-wheel bookkeeping: advance the local virtual
                # time by the gate delay, bump the element's evaluation
                # counter, and charge the fanout load (sum of consumer
                # delays) -- the per-event overhead a Chandy-Misra
                # simulator really pays.
                with b.itemps(1) as t:
                    b.lw(t, r_rec, _F_DELAY)
                    b.add(r_time, r_time, t)
                    b.lw(t, r_rec, _F_ACT)
                    b.addi(t, t, 1)
                    b.sw(t, r_rec, _F_ACT)
                with b.itemps(3) as (fb, fc, f):
                    b.lw(fb, r_rec, _F_FANBASE)
                    b.lw(fc, r_rec, _F_FANCNT)
                    with b.for_range(f, 0, fc):
                        with b.itemps(2) as (tgt, td):
                            b.muli(tgt, f, 4)
                            b.add(tgt, tgt, fb)
                            b.lw(tgt, tgt, 0)
                            b.muli(tgt, tgt, _ELEM_BYTES)
                            b.add(tgt, tgt, r_elem)
                            b.lw(td, tgt, _F_DELAY)
                            b.add(r_load, r_load, td)
                with b.itemps(3) as (v0, v1, ty):
                    # Pointer-chase both input values.
                    b.lw(v0, r_rec, _F_IN0)
                    b.muli(v0, v0, _ELEM_BYTES)
                    b.add(v0, v0, r_elem)
                    b.lw(v0, v0, _F_VAL)
                    b.lw(v1, r_rec, _F_IN1)
                    b.muli(v1, v1, _ELEM_BYTES)
                    b.add(v1, v1, r_elem)
                    b.lw(v1, v1, _F_VAL)
                    b.lw(ty, r_rec, _F_TYPE)
                    # Type-dispatch branch tree.
                    is_or = b.newlabel("is_or")
                    is_xor = b.newlabel("is_xor")
                    is_nand = b.newlabel("is_nand")
                    done_eval = b.newlabel("done_eval")
                    with b.itemps(1) as t:
                        b.li(t, _OR)
                        b.branch("eq", ty, t, is_or)
                        b.li(t, _XOR)
                        b.branch("eq", ty, t, is_xor)
                        b.li(t, _NAND)
                        b.branch("eq", ty, t, is_nand)
                    b.and_(r_nv, v0, v1)
                    b.j(done_eval)
                    b.label(is_or)
                    b.or_(r_nv, v0, v1)
                    b.j(done_eval)
                    b.label(is_xor)
                    b.xor(r_nv, v0, v1)
                    b.j(done_eval)
                    b.label(is_nand)
                    b.and_(r_nv, v0, v1)
                    b.xori(r_nv, r_nv, 1)
                    b.label(done_eval)
                with b.itemps(1) as old:
                    b.lw(old, r_rec, _F_VAL)
                    with b.if_cmp("ne", r_nv, old):
                        b.sw(r_nv, r_rec, _F_VAL)
                        push_fanouts(r_rec)
                b.j(drain)
                b.label(empty)
                # Reset the drained queue for the next clock.
                b.sw(b.zero, qd, _Q_HEAD)
                b.sw(b.zero, qd, _Q_TAIL)
                b.unlock(qd)
                b.label(drained)

        # End-of-clock barrier: the next clock's toggles must not race
        # with processors still draining the deepest level.
        b.barrier(r_bar)

    b.barrier(r_bar)
    b.halt()
    return b.build()


def build(
    n_procs: int = 16,
    n_elements: int = 2600,
    n_inputs: int = 96,
    clocks: int = 6,
    window: int = 800,
    toggle_prob: float = 0.6,
    seed: int = 5,
) -> Workload:
    """Build the PTHOR workload.

    Args:
        n_procs: number of processors.
        n_elements: circuit size including primary inputs (paper: ~11,000
            two-input gates).
        n_inputs: primary inputs (level-0 elements).
        clocks: simulated clock cycles (the paper simulates 5).
        window: locality window for input selection; smaller windows make
            deeper circuits.
        toggle_prob: per-clock probability that a primary input toggles.
        seed: RNG seed for circuit structure and stimulus.
    """
    circuit = _Circuit(n_elements, n_inputs, window, seed)
    rng = np.random.default_rng(seed + 1)
    pattern = (
        rng.random(size=(clocks, n_inputs)) < toggle_prob
    ).astype(int)
    pi_init = rng.integers(0, 2, size=n_inputs)
    init_values = circuit.settle(pi_init)

    depth = circuit.depth
    layout = SegmentAllocator()
    elem_base = layout.alloc("elements", n_elements * _ELEM_BYTES)
    fan_pool_len = sum(len(f) for f in circuit.fanout)
    fan_base = layout.alloc_words("fanout_pool", max(fan_pool_len, 1))
    qd_base = layout.alloc("queues", n_procs * depth * _QD_BYTES)
    pat_base = layout.alloc_words("pattern", clocks * n_inputs)
    bar_base = layout.alloc_words("barriers", 1)

    # Queue buffers: capacity 3x the static element count per
    # (owner, level) plus slack for racy duplicate pushes.
    caps = np.zeros((n_procs, depth), dtype=int)
    for e in range(n_elements):
        if circuit.level[e] >= 1:
            caps[e % n_procs][circuit.level[e] - 1] += 1
    buf_bases = {}
    for p in range(n_procs):
        for l in range(depth):
            cap = int(caps[p][l]) * 3 + 8
            buf_bases[(p, l)] = layout.alloc_words(f"qbuf_{p}_{l}", cap)

    delays = rng.integers(1, 8, size=n_elements)
    memory = SharedMemory()
    fan_cursor = 0
    for e in range(n_elements):
        rec = elem_base + e * _ELEM_BYTES
        memory.write_word(rec + _F_TYPE, int(circuit.gtype[e]))
        memory.write_word(rec + _F_VAL, int(init_values[e]))
        memory.write_word(rec + _F_IN0, int(circuit.in0[e]))
        memory.write_word(rec + _F_IN1, int(circuit.in1[e]))
        memory.write_word(rec + _F_LEVEL, int(circuit.level[e]))
        memory.write_word(rec + _F_QUEUED, 0)
        memory.write_word(rec + _F_FANBASE, fan_base + fan_cursor * 4)
        memory.write_word(rec + _F_FANCNT, len(circuit.fanout[e]))
        memory.write_word(rec + _F_DELAY, int(delays[e]))
        memory.write_word(rec + _F_ACT, 0)
        for tgt in circuit.fanout[e]:
            memory.write_word(fan_base + fan_cursor * 4, tgt)
            fan_cursor += 1
    for p in range(n_procs):
        for l in range(depth):
            qd = qd_base + (p * depth + l) * _QD_BYTES
            memory.write_word(qd + _Q_HEAD, 0)
            memory.write_word(qd + _Q_TAIL, 0)
            memory.write_word(qd + _Q_BUF, buf_bases[(p, l)])
    for c in range(clocks):
        for pi in range(n_inputs):
            memory.write_word(
                pat_base + (c * n_inputs + pi) * 4, int(pattern[c, pi])
            )

    bases = {
        "elements": elem_base,
        "queues": qd_base,
        "pattern": pat_base,
        "barriers": bar_base,
    }
    programs = [
        _thread_program(me, n_procs, circuit, clocks, bases)
        for me in range(n_procs)
    ]

    toggles = pattern.sum(axis=0) % 2
    final_pi = (pi_init + toggles) % 2
    expected = circuit.settle(final_pi)

    def verify(mem: SharedMemory) -> None:
        for e in range(n_elements):
            rec = elem_base + e * _ELEM_BYTES
            got = mem.read_word(rec + _F_VAL)
            if got != int(expected[e]):
                raise AssertionError(
                    f"PTHOR element {e} (level {int(circuit.level[e])}) "
                    f"value {got} != expected {int(expected[e])}"
                )
            flag = mem.read_word(rec + _F_QUEUED)
            if flag != 0:
                raise AssertionError(
                    f"PTHOR element {e} left its activation flag set"
                )
        for p in range(n_procs):
            for l in range(depth):
                qd = qd_base + (p * depth + l) * _QD_BYTES
                head = mem.read_word(qd + _Q_HEAD)
                tail = mem.read_word(qd + _Q_TAIL)
                if head != tail:
                    raise AssertionError(
                        f"PTHOR queue ({p},{l + 1}) not drained: "
                        f"head={head} tail={tail}"
                    )

    return Workload(
        name="pthor",
        programs=programs,
        memory=memory,
        layout=layout,
        verify=verify,
        params={
            "n_procs": n_procs,
            "n_elements": n_elements,
            "n_inputs": n_inputs,
            "clocks": clocks,
            "window": window,
            "seed": seed,
        },
    )
