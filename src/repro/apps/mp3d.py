"""MP3D — rarefied-flow particle simulator (paper §3.3).

Models the computational structure of MP3D: over a sequence of timesteps,
each processor moves its statically assigned block of particles through a
3-D space array.  Per particle and step:

* position advances along the velocity vector;
* collisions with the six walls of the wind tunnel reflect the velocity;
* collisions with a rectangular object in the flow reflect the particle;
* the particle's space-array cell counter is incremented — these
  unprotected read-modify-writes on the *shared* space array are MP3D's
  signature: particles owned by different processors land in the same
  cells, so both the reads and the writes miss heavily (the paper measures
  24.3 read misses and 22.5 write misses per 1000 instructions — by far
  the worst locality of the five applications).

A lock-protected global counter accumulates per-processor move counts once
per step (the paper reports 40 locks / 30 barriers for 5 steps), and a
barrier separates timesteps.

The per-particle dynamics are exactly reproducible in the pure-Python
reference (each particle is touched only by its owner); the racy space
array is checked with order-independent invariants, matching the original
MP3D's famously unsynchronized cell updates.
"""

from __future__ import annotations

import numpy as np

from ..asm import AsmBuilder
from ..isa import Program
from ..mem import SegmentAllocator, SharedMemory
from .common import Workload

_PARTICLE_BYTES = 48  # x, y, z, vx, vy, vz -- six doubles, three lines
_CELL_BYTES = 16      # count, reservoir pointer, 2 pad words -- one line


def _reference_particles(pos, vel, steps, dims, obstacle):
    """Replay particle dynamics with the asm kernels' operation order."""
    pos = pos.copy()
    vel = vel.copy()
    ox0, ox1, oy0, oy1, oz0, oz1 = obstacle
    for _ in range(steps):
        for p in range(pos.shape[0]):
            for axis in range(3):
                pos[p, axis] = pos[p, axis] + vel[p, axis]
            for axis, limit in enumerate(dims):
                if pos[p, axis] < 0.0:
                    pos[p, axis] = -pos[p, axis]
                    vel[p, axis] = -vel[p, axis]
                elif pos[p, axis] > limit:
                    pos[p, axis] = 2.0 * limit - pos[p, axis]
                    vel[p, axis] = -vel[p, axis]
            if (ox0 < pos[p, 0] < ox1 and oy0 < pos[p, 1] < oy1
                    and oz0 < pos[p, 2] < oz1):
                vel[p, 0] = -vel[p, 0]
                vel[p, 1] = -vel[p, 1]
                vel[p, 2] = -vel[p, 2]
    return pos, vel


def _thread_program(
    me: int,
    n_procs: int,
    n_particles: int,
    steps: int,
    grid: tuple[int, int, int],
    obstacle: tuple[float, ...],
    bases: dict[str, int],
) -> Program:
    b = AsmBuilder(f"mp3d.t{me}")
    nx, ny, nz = grid
    dims = (float(nx), float(ny), float(nz))
    ox0, ox1, oy0, oy1, oz0, oz1 = obstacle

    per_proc = n_particles // n_procs
    first = me * per_proc
    last = first + per_proc if me < n_procs - 1 else n_particles

    r_part = b.ireg("particles")
    r_cells = b.ireg("cells")
    r_bar = b.ireg("bar")
    r_lockaddr = b.ireg("lock")
    b.li(r_part, bases["particles"])
    b.li(r_cells, bases["cells"])
    b.li(r_lockaddr, bases["global"])  # the lock guards the word after it

    # Floating point constants: wall limits, their doubled values, and the
    # obstacle bounds.
    f_zero = b.freg("zero")
    b.fli(f_zero, 0.0)
    f_lim = [b.freg(f"lim{i}") for i in range(3)]
    f_2lim = [b.freg(f"2lim{i}") for i in range(3)]
    for axis in range(3):
        b.fli(f_lim[axis], dims[axis])
        b.fli(f_2lim[axis], 2.0 * dims[axis])
    f_ob_lo = [b.freg(f"ob_lo{i}") for i in range(3)]
    f_ob_hi = [b.freg(f"ob_hi{i}") for i in range(3)]
    for axis, (lo, hi) in enumerate(((ox0, ox1), (oy0, oy1), (oz0, oz1))):
        b.fli(f_ob_lo[axis], lo)
        b.fli(f_ob_hi[axis], hi)

    b.li(r_bar, bases["barriers"])
    b.barrier(r_bar)

    step = b.ireg("step")
    pid = b.ireg("pid")
    local = b.ireg("local")
    f_pos = [b.freg(f"pos{i}") for i in range(3)]
    f_vel = [b.freg(f"vel{i}") for i in range(3)]

    with b.for_range(step, 0, steps):
        b.li(local, 0)
        with b.for_range(pid, first, last):
            with b.itemps(1) as p_rec:
                b.muli(p_rec, pid, _PARTICLE_BYTES)
                b.add(p_rec, p_rec, r_part)
                for axis in range(3):
                    b.fld(f_pos[axis], p_rec, axis * 8)
                    b.fld(f_vel[axis], p_rec, 24 + axis * 8)

                # Advance along the velocity vector (dt == 1).
                for axis in range(3):
                    b.fadd(f_pos[axis], f_pos[axis], f_vel[axis])

                # Reflect at the six walls.
                for axis in range(3):
                    past_low = b.newlabel("wlo")
                    done = b.newlabel("wdone")
                    with b.itemps(1) as t:
                        b.flt(t, f_pos[axis], f_zero)
                        b.bnez(t, past_low)
                        b.flt(t, f_lim[axis], f_pos[axis])
                        b.beqz(t, done)
                        # pos > limit: fold back off the far wall.
                        b.fsub(f_pos[axis], f_2lim[axis], f_pos[axis])
                        b.fneg(f_vel[axis], f_vel[axis])
                        b.j(done)
                        b.label(past_low)
                        b.fneg(f_pos[axis], f_pos[axis])
                        b.fneg(f_vel[axis], f_vel[axis])
                        b.label(done)

                # Reflect off the rectangular object (all axes inside).
                miss_obj = b.newlabel("noobj")
                with b.itemps(1) as t:
                    for axis in range(3):
                        b.fle(t, f_pos[axis], f_ob_lo[axis])
                        b.bnez(t, miss_obj)
                        b.fle(t, f_ob_hi[axis], f_pos[axis])
                        b.bnez(t, miss_obj)
                for axis in range(3):
                    b.fneg(f_vel[axis], f_vel[axis])
                b.label(miss_obj)

                # Store the particle back.
                for axis in range(3):
                    b.fsd(f_pos[axis], p_rec, axis * 8)
                    b.fsd(f_vel[axis], p_rec, 24 + axis * 8)

                # Update the shared space-array cell (unprotected RMW,
                # as in the original MP3D), then chase the cell's
                # reservoir pointer and update the reservoir record too.
                # The reservoir load's address comes from a load off the
                # bouncing cell line, forming the dependent read-miss
                # chains the paper identifies in MP3D (§4.1.3: one read
                # miss determining the address of the next).
                with b.itemps(4) as (ix, iy, iz, t2):
                    b.cvtfi(ix, f_pos[0])
                    b.cvtfi(iy, f_pos[1])
                    b.cvtfi(iz, f_pos[2])
                    # Clamp indices into [0, n) -- pos == limit maps out.
                    for idx, bound in ((ix, nx), (iy, ny), (iz, nz)):
                        with b.itemps(1) as t:
                            b.li(t, bound - 1)
                            b.slti(t2, idx, bound)
                            with b.if_cmp("eq", t2, b.zero):
                                b.mov(idx, t)
                    b.muli(t2, ix, ny)
                    b.add(t2, t2, iy)
                    b.muli(t2, t2, nz)
                    b.add(t2, t2, iz)
                    b.muli(t2, t2, _CELL_BYTES)
                    b.add(t2, t2, r_cells)
                    with b.itemps(2) as (p, c):
                        b.lw(p, t2, 4)       # reservoir pointer
                        b.lw(c, t2, 0)       # cell population count
                        b.addi(c, c, 1)
                        b.sw(c, t2, 0)
                        b.lw(c, p, 0)        # dependent reservoir access
                        b.addi(c, c, 1)
                        b.sw(c, p, 0)
                b.addi(local, local, 1)

        # Fold the per-step count into the lock-protected global counter.
        b.lock(r_lockaddr)
        with b.itemps(1) as g:
            b.lw(g, r_lockaddr, 4)
            b.add(g, g, local)
            b.sw(g, r_lockaddr, 4)
        b.unlock(r_lockaddr)
        b.li(r_bar, bases["barriers"] + 4)
        b.barrier(r_bar)

    b.halt()
    return b.build()


def build(
    n_procs: int = 16,
    n_particles: int = 1600,
    steps: int = 5,
    grid: tuple[int, int, int] = (16, 8, 8),
    seed: int = 7,
) -> Workload:
    """Build the MP3D workload.

    Args:
        n_procs: number of processors.
        n_particles: particle count (the paper uses 10,000).
        steps: timesteps (the paper uses 5).
        grid: space-array dimensions (the paper uses 64x8x8).
        seed: RNG seed for initial positions/velocities.
    """
    nx, ny, nz = grid
    if n_particles < n_procs:
        raise ValueError("need at least one particle per processor")
    rng = np.random.default_rng(seed)
    dims = (float(nx), float(ny), float(nz))
    pos0 = rng.uniform(0.0, 1.0, size=(n_particles, 3)) * np.array(dims)
    vel0 = rng.uniform(-0.9, 0.9, size=(n_particles, 3))
    # A rectangular object sitting in the front third of the tunnel.
    obstacle = (
        nx * 0.3, nx * 0.45,
        ny * 0.25, ny * 0.75,
        nz * 0.25, nz * 0.75,
    )

    n_cells = nx * ny * nz
    layout = SegmentAllocator()
    bases = {
        "particles": layout.alloc("particles", n_particles * _PARTICLE_BYTES),
        "cells": layout.alloc("cells", n_cells * _CELL_BYTES),
        "reservoirs": layout.alloc_words("reservoirs", n_cells),
        "global": layout.alloc_words("global", 4),
        "barriers": layout.alloc_words("barriers", 2),
    }

    memory = SharedMemory()
    for p in range(n_particles):
        rec = bases["particles"] + p * _PARTICLE_BYTES
        for axis in range(3):
            memory.write_double(rec + axis * 8, float(pos0[p, axis]))
            memory.write_double(rec + 24 + axis * 8, float(vel0[p, axis]))
    # Each cell points at its reservoir record; the pointers are shuffled
    # so a reservoir address is only known by loading it.
    resv_perm = rng.permutation(n_cells)
    for cell in range(n_cells):
        memory.write_word(
            bases["cells"] + cell * _CELL_BYTES + 4,
            bases["reservoirs"] + int(resv_perm[cell]) * 4,
        )

    programs = [
        _thread_program(
            me, n_procs, n_particles, steps, grid, obstacle, bases
        )
        for me in range(n_procs)
    ]

    exp_pos, exp_vel = _reference_particles(
        pos0, vel0, steps, dims, obstacle
    )

    def verify(mem: SharedMemory) -> None:
        for p in range(n_particles):
            rec = bases["particles"] + p * _PARTICLE_BYTES
            for axis in range(3):
                got_pos = mem.read_double(rec + axis * 8)
                got_vel = mem.read_double(rec + 24 + axis * 8)
                if got_pos != exp_pos[p, axis] or got_vel != exp_vel[p, axis]:
                    raise AssertionError(
                        f"MP3D particle {p} axis {axis} mismatch: "
                        f"pos {got_pos} vs {exp_pos[p, axis]}, "
                        f"vel {got_vel} vs {exp_vel[p, axis]}"
                    )
        # The lock-protected global counter is exact.
        total_moves = mem.read_word(bases["global"] + 4)
        expected_moves = n_particles * steps
        if total_moves != expected_moves:
            raise AssertionError(
                f"MP3D move counter {total_moves} != {expected_moves} "
                f"(lock-protected accumulation lost updates)"
            )
        # The racy space array and its reservoirs may lose updates (as
        # the original MP3D does); they must never exceed the true count
        # and should stay close to it.
        for name, stride, offset in (
            ("cells", _CELL_BYTES, 0), ("reservoirs", 4, 0),
        ):
            total = sum(
                mem.read_word(bases[name] + i * stride + offset)
                for i in range(nx * ny * nz)
            )
            if total > expected_moves:
                raise AssertionError(
                    f"MP3D {name} counters overcounted: {total} > "
                    f"{expected_moves}"
                )
            if total < expected_moves * 0.9:
                raise AssertionError(
                    f"MP3D {name} counters lost too many updates: "
                    f"{total} << {expected_moves}"
                )

    return Workload(
        name="mp3d",
        programs=programs,
        memory=memory,
        layout=layout,
        verify=verify,
        params={
            "n_procs": n_procs,
            "n_particles": n_particles,
            "steps": steps,
            "grid": grid,
            "seed": seed,
        },
    )
