"""Shared scaffolding for the five benchmark applications.

Every application module exposes a ``build(...)`` function returning a
:class:`Workload`: the per-thread programs, the pre-initialised shared
memory, and a verifier that checks the *functional* result of the parallel
execution against an independent pure-Python reference.  The verifier is
what makes the applications trustworthy workloads rather than synthetic
instruction soup: LU really decomposes its matrix, OCEAN really relaxes
its grid, PTHOR really settles its circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..isa import Program
from ..mem import SegmentAllocator, SharedMemory


@dataclass
class Workload:
    """A ready-to-run parallel application.

    Attributes:
        name: application name ("mp3d", "lu", ...).
        programs: one sealed program per processor.
        memory: shared memory pre-initialised with the input data.
        layout: the segment allocator used to lay out shared data (kept so
            verifiers and tests can find structures by name).
        verify: callable taking the post-run :class:`SharedMemory`;
            raises ``AssertionError`` on functional mismatch.
        params: the scale parameters the workload was built with.
    """

    name: str
    programs: list[Program]
    memory: SharedMemory
    layout: SegmentAllocator
    verify: Callable[[SharedMemory], None]
    params: dict = field(default_factory=dict)

    @property
    def n_procs(self) -> int:
        return len(self.programs)

    def static_instructions(self) -> int:
        return sum(len(p) for p in self.programs)


def owner_of(index: int, n_procs: int) -> int:
    """Interleaved static assignment: element ``index`` belongs to CPU."""
    return index % n_procs


def first_owned(start: int, me: int, n_procs: int) -> int:
    """Smallest ``j >= start`` with ``j % n_procs == me``."""
    offset = (me - start) % n_procs
    return start + offset
