"""The five SPLASH-style benchmark applications (paper §3.3)."""

from . import locus, lu, mp3d, ocean, pthor
from .common import Workload, first_owned, owner_of
from .registry import APP_NAMES, build_app

__all__ = [
    "APP_NAMES",
    "Workload",
    "build_app",
    "first_owned",
    "locus",
    "lu",
    "mp3d",
    "ocean",
    "owner_of",
    "pthor",
]
