"""LOCUS — standard-cell global router (paper §3.3).

Models LocusRoute's computational core: wires are routed over a shared
*cost array* that records how many wires pass through each routing cell.
Processors grab wires from a lock-protected central work pile; for each
wire they evaluate candidate routes (the two L-shaped bends between the
endpoints), pick the cheaper one by summing the cost-array cells along
each candidate, and then record the chosen route by incrementing those
cells.

As in the original LocusRoute, the cost-array increments are *not* lock
protected — the occasional lost update only perturbs route quality, never
correctness — so the cost array is the shared, write-hot structure that
produces this application's communication misses.  The work-pile lock is
the only lock (the paper reports 356 locks against 3.3M instructions —
locking is rare), and one barrier ends the run.

Verification uses order-independent invariants plus per-processor private
counters: every wire is routed exactly once, every recorded choice is a
valid route id, and the lock-free cost array never exceeds (and stays
close to) the exact total of routed cells.
"""

from __future__ import annotations

import numpy as np

from ..asm import AsmBuilder
from ..isa import Program
from ..mem import SegmentAllocator, SharedMemory
from .common import Workload

_WIRE_BYTES = 16  # x1, y1, x2, y2 -- one cache line per wire

#: Jog positions of the Z-shaped candidate routes, as fractions of the
#: horizontal span (numerator, denominator).
_Z_FRACTIONS = ((1, 4), (1, 2), (3, 4))


def _thread_program(
    me: int,
    n_procs: int,
    n_wires: int,
    cols: int,
    bases: dict[str, int],
) -> Program:
    b = AsmBuilder(f"locus.t{me}")

    r_grid = b.ireg("grid")
    r_wires = b.ireg("wires")
    r_choice = b.ireg("choice")
    r_work = b.ireg("work")       # lock word; the counter sits at +4
    r_nwires = b.ireg("nwires")
    b.li(r_grid, bases["grid"])
    b.li(r_wires, bases["wires"])
    b.li(r_choice, bases["choice"])
    b.li(r_work, bases["work"])
    b.li(r_nwires, n_wires)

    r_total = b.ireg("total")     # cells this processor incremented
    b.li(r_total, 0)

    x1 = b.ireg("x1")
    y1 = b.ireg("y1")
    x2 = b.ireg("x2")
    y2 = b.ireg("y2")
    wid = b.ireg("wid")

    def cell_addr(dest, x_reg, y_reg):
        """dest = &grid[y * cols + x]."""
        b.muli(dest, y_reg, cols)
        b.add(dest, dest, x_reg)
        b.muli(dest, dest, 4)
        b.add(dest, dest, r_grid)

    def step_reg(dest, src_a, src_b):
        """dest = +1 / -1 stepping from src_a towards src_b."""
        b.li(dest, 1)
        with b.if_cmp("gt", src_a, src_b):
            b.li(dest, -1)

    def sum_span(acc, fixed, moving, end, horizontal: bool):
        """acc += cost of cells from (moving..end) exclusive of `end`.

        ``horizontal`` selects whether ``moving`` is the x coordinate.
        Walks toward ``end`` and stops before it (the corner/endpoint is
        accounted by the caller exactly once).
        """
        with b.itemps(3) as (cur, stp, addr):
            b.mov(cur, moving)
            step_reg(stp, moving, end)
            with b.while_cmp("ne", cur, end):
                if horizontal:
                    cell_addr(addr, cur, fixed)
                else:
                    cell_addr(addr, fixed, cur)
                with b.itemps(1) as c:
                    b.lw(c, addr, 0)
                    b.add(acc, acc, c)
                b.add(cur, cur, stp)

    def mark_span(fixed, moving, end, horizontal: bool):
        """Increment cells from ``moving`` toward ``end`` (exclusive)."""
        with b.itemps(3) as (cur, stp, addr):
            b.mov(cur, moving)
            step_reg(stp, moving, end)
            with b.while_cmp("ne", cur, end):
                if horizontal:
                    cell_addr(addr, cur, fixed)
                else:
                    cell_addr(addr, fixed, cur)
                with b.itemps(1) as c:
                    b.lw(c, addr, 0)
                    b.addi(c, c, 1)
                    b.sw(c, addr, 0)
                b.addi(r_total, r_total, 1)
                b.add(cur, cur, stp)

    def mark_cell(x_reg, y_reg):
        with b.itemps(1) as addr:
            cell_addr(addr, x_reg, y_reg)
            with b.itemps(1) as c:
                b.lw(c, addr, 0)
                b.addi(c, c, 1)
                b.sw(c, addr, 0)
            b.addi(r_total, r_total, 1)

    loop = b.label("fetch")
    done = b.newlabel("done")
    skip2 = b.newlabel("skip2")

    # ---- grab the next two wires from the lock-protected work pile -----
    # Fetching in pairs halves the pressure on the central work lock, the
    # way LocusRoute amortises its task-queue locking.
    b.lock(r_work)
    b.lw(wid, r_work, 4)
    with b.itemps(1) as t:
        b.addi(t, wid, 2)
        b.sw(t, r_work, 4)
    b.unlock(r_work)
    b.branch("ge", wid, r_nwires, done)
    b.jal("route")
    b.addi(wid, wid, 1)
    b.branch("ge", wid, r_nwires, skip2)
    b.jal("route")
    b.label(skip2)
    b.j(loop)

    # ---- subroutine: route the wire whose id is in ``wid`` -------------
    b.label("route")
    with b.itemps(1) as p_wire:
        b.muli(p_wire, wid, _WIRE_BYTES)
        b.add(p_wire, p_wire, r_wires)
        b.lw(x1, p_wire, 0)
        b.lw(y1, p_wire, 4)
        b.lw(x2, p_wire, 8)
        b.lw(y2, p_wire, 12)

    # ---- evaluate the candidate routes -------------------------------------
    # Like LocusRoute, several routes per two-pin segment are costed: the
    # two L-shaped bends plus Z-shaped routes with intermediate jogs at
    # 1/4, 1/2 and 3/4 of the horizontal span.  All candidates have equal
    # geometric length (|dx| + |dy| + 1 cells); they differ only in the
    # congestion they cross.
    costs = [b.ireg(f"cost{i}") for i in range(2 + len(_Z_FRACTIONS))]
    jogs = [b.ireg(f"jog{i}") for i in range(len(_Z_FRACTIONS))]
    for reg in costs:
        b.li(reg, 0)
    # Route 0 (L, horizontal first): along y1 then vertical at x2.
    sum_span(costs[0], y1, x1, x2, horizontal=True)
    sum_span(costs[0], x2, y1, y2, horizontal=False)
    # Route 1 (L, vertical first): vertical at x1 then along y2.
    sum_span(costs[1], x1, y1, y2, horizontal=False)
    sum_span(costs[1], y2, x1, x2, horizontal=True)
    # Z routes: jog at x1 + (x2-x1) * num / den.
    for z, (num, den) in enumerate(_Z_FRACTIONS):
        xm = jogs[z]
        with b.itemps(1) as t:
            b.sub(t, x2, x1)
            b.muli(t, t, num)
            with b.itemps(1) as d:
                b.li(d, den)
                b.div(t, t, d)
            b.add(xm, x1, t)
        sum_span(costs[2 + z], y1, x1, xm, horizontal=True)
        sum_span(costs[2 + z], xm, y1, y2, horizontal=False)
        sum_span(costs[2 + z], y2, xm, x2, horizontal=True)
    # Every candidate ends on the endpoint cell (x2, y2); add it once each.
    with b.itemps(2) as (addr, c):
        cell_addr(addr, x2, y2)
        b.lw(c, addr, 0)
        for reg in costs:
            b.add(reg, reg, c)

    # ---- pick the cheapest candidate (ties pick the lowest id) ----------
    best = b.ireg("best")
    bestcost = b.ireg("bestcost")
    b.li(best, 0)
    b.mov(bestcost, costs[0])
    for i in range(1, len(costs)):
        with b.if_cmp("lt", costs[i], bestcost):
            b.li(best, i)
            b.mov(bestcost, costs[i])

    with b.itemps(1) as p_choice:
        b.muli(p_choice, wid, 4)
        b.add(p_choice, p_choice, r_choice)
        b.sw(best, p_choice, 0)

    # ---- commit the chosen route --------------------------------------------
    wrote = b.newlabel("wrote")
    commit_labels = [b.newlabel(f"commit{i}") for i in range(len(costs))]
    with b.itemps(1) as t:
        for i in range(1, len(costs)):
            b.li(t, i)
            b.branch("eq", best, t, commit_labels[i])
    # Route 0.
    mark_span(y1, x1, x2, horizontal=True)
    mark_span(x2, y1, y2, horizontal=False)
    mark_cell(x2, y2)
    b.j(wrote)
    # Route 1.
    b.label(commit_labels[1])
    mark_span(x1, y1, y2, horizontal=False)
    mark_span(y2, x1, x2, horizontal=True)
    mark_cell(x2, y2)
    b.j(wrote)
    # Z routes.
    for z in range(len(_Z_FRACTIONS)):
        b.label(commit_labels[2 + z])
        mark_span(y1, x1, jogs[z], horizontal=True)
        mark_span(jogs[z], y1, y2, horizontal=False)
        mark_span(y2, jogs[z], x2, horizontal=True)
        mark_cell(x2, y2)
        if z != len(_Z_FRACTIONS) - 1:
            b.j(wrote)
    b.label(wrote)
    b.jr()

    b.label(done)
    # Publish this processor's exact routed-cell count.
    with b.itemps(1) as p_priv:
        b.li(p_priv, bases["private"] + me * 16)
        b.sw(r_total, p_priv, 0)
    with b.itemps(1) as r_bar:
        b.li(r_bar, bases["barriers"])
        b.barrier(r_bar)
    b.halt()
    return b.build()


def build(
    n_procs: int = 16,
    n_wires: int = 256,
    rows: int = 20,
    cols: int = 192,
    seed: int = 23,
) -> Workload:
    """Build the LOCUS workload.

    Args:
        n_procs: number of processors.
        n_wires: wires to route (the paper's circuit has 1266).
        rows: cost-array rows (the paper uses a 481x18 array).
        cols: cost-array columns.
        seed: RNG seed for wire endpoints.
    """
    if n_wires % 2:
        raise ValueError("n_wires must be even (wires are fetched in pairs)")
    rng = np.random.default_rng(seed)
    x1 = rng.integers(0, cols, size=n_wires)
    y1 = rng.integers(0, rows, size=n_wires)
    # Mostly-horizontal wires, like standard-cell channels.
    span = rng.integers(16, max(17, (5 * cols) // 6), size=n_wires)
    x2 = np.clip(x1 + rng.choice([-1, 1], size=n_wires) * span, 0, cols - 1)
    y2 = rng.integers(0, rows, size=n_wires)

    layout = SegmentAllocator()
    bases = {
        "grid": layout.alloc_words("grid", rows * cols),
        "wires": layout.alloc("wires", n_wires * _WIRE_BYTES),
        "choice": layout.alloc_words("choice", n_wires),
        "work": layout.alloc_words("work", 4),
        "private": layout.alloc("private", n_procs * 16),
        "barriers": layout.alloc_words("barriers", 1),
    }

    memory = SharedMemory()
    for w in range(n_wires):
        rec = bases["wires"] + w * _WIRE_BYTES
        memory.write_word(rec + 0, int(x1[w]))
        memory.write_word(rec + 4, int(y1[w]))
        memory.write_word(rec + 8, int(x2[w]))
        memory.write_word(rec + 12, int(y2[w]))
        # Choices start at -1 so "routed exactly once" is checkable.
        memory.write_word(bases["choice"] + w * 4, -1)

    programs = [
        _thread_program(me, n_procs, n_wires, cols, bases)
        for me in range(n_procs)
    ]

    def path_len(w: int) -> int:
        return abs(int(x2[w]) - int(x1[w])) + abs(int(y2[w]) - int(y1[w])) + 1

    def verify(mem: SharedMemory) -> None:
        # Work pile handed out each wire pair exactly once, then one
        # sentinel fetch (of two) per processor.
        counter = mem.read_word(bases["work"] + 4)
        if counter != n_wires + 2 * n_procs:
            raise AssertionError(
                f"LOCUS work counter {counter} != {n_wires + 2 * n_procs}"
            )
        total_cells = 0
        n_routes = 2 + len(_Z_FRACTIONS)
        for w in range(n_wires):
            choice = mem.read_word(bases["choice"] + w * 4)
            if not 0 <= choice < n_routes:
                raise AssertionError(
                    f"LOCUS wire {w} has invalid choice {choice}"
                )
            total_cells += path_len(w)
        private_sum = sum(
            mem.read_word(bases["private"] + p * 16)
            for p in range(n_procs)
        )
        if private_sum != total_cells:
            raise AssertionError(
                f"LOCUS private counters {private_sum} != {total_cells}"
            )
        grid_sum = sum(
            mem.read_word(bases["grid"] + i * 4)
            for i in range(rows * cols)
        )
        if grid_sum > total_cells:
            raise AssertionError(
                f"LOCUS cost array overcounts: {grid_sum} > {total_cells}"
            )
        if grid_sum < total_cells * 0.9:
            raise AssertionError(
                f"LOCUS cost array lost too many updates: "
                f"{grid_sum} << {total_cells}"
            )

    return Workload(
        name="locus",
        programs=programs,
        memory=memory,
        layout=layout,
        verify=verify,
        params={
            "n_procs": n_procs,
            "n_wires": n_wires,
            "rows": rows,
            "cols": cols,
            "seed": seed,
        },
    )
