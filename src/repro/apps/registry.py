"""Application registry: build any of the five benchmarks by name.

Three size presets are provided:

* ``tiny``  — seconds-scale runs for unit/integration tests;
* ``default`` — the sizes used by the experiment harness (reduced from
  the paper's, see DESIGN.md for the scaling argument);
* ``large`` — closer to paper scale, for patient machines.
"""

from __future__ import annotations

from typing import Callable

from . import locus, lu, mp3d, ocean, pthor
from .common import Workload

APP_NAMES = ("mp3d", "lu", "pthor", "locus", "ocean")

_BUILDERS: dict[str, Callable[..., Workload]] = {
    "mp3d": mp3d.build,
    "lu": lu.build,
    "pthor": pthor.build,
    "locus": locus.build,
    "ocean": ocean.build,
}

_PRESETS: dict[str, dict[str, dict]] = {
    "tiny": {
        "mp3d": {"n_particles": 160, "steps": 2, "grid": (8, 4, 4)},
        "lu": {"n": 24},
        "pthor": {"n_elements": 300, "n_inputs": 32, "clocks": 2,
                  "window": 60},
        "locus": {"n_wires": 64, "rows": 12, "cols": 48},
        "ocean": {"n": 20, "steps": 2},
    },
    "default": {
        "mp3d": {},
        "lu": {},
        "pthor": {},
        "locus": {},
        "ocean": {},
    },
    "large": {
        "mp3d": {"n_particles": 10000, "grid": (64, 8, 8)},
        "lu": {"n": 200},
        "pthor": {"n_elements": 11000, "n_inputs": 256, "clocks": 5,
                  "window": 120},
        "locus": {"n_wires": 1266, "rows": 18, "cols": 481},
        "ocean": {"n": 98},
    },
}


def build_app(
    name: str,
    n_procs: int = 16,
    preset: str = "default",
    **overrides,
) -> Workload:
    """Build application ``name`` at a given size preset.

    Any keyword argument of the application's ``build`` function can be
    overridden explicitly.
    """
    if name not in _BUILDERS:
        raise ValueError(
            f"unknown application {name!r}; choose from {APP_NAMES}"
        )
    if preset not in _PRESETS:
        raise ValueError(
            f"unknown preset {preset!r}; choose from {sorted(_PRESETS)}"
        )
    kwargs = dict(_PRESETS[preset][name])
    kwargs.update(overrides)
    return _BUILDERS[name](n_procs=n_procs, **kwargs)
