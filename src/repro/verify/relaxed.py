"""Model-aware operational engine with per-processor store buffers.

The Tango executor in :mod:`repro.tango.executor` is *functionally
sequentially consistent*: one global store, accesses performed atomically
in virtual-time order.  Its recorded executions therefore satisfy every
model's axioms — which makes it a regression oracle, but useless for
demonstrating that relaxed models genuinely admit more behaviours.

:class:`RelaxedEngine` closes that gap.  It executes the same programs
against the same functional :class:`~repro.mem.memory.SharedMemory` and
:class:`~repro.sync.primitives.SyncManager`, but gives every processor a
FIFO *store buffer* whose visibility rules come straight from the
consistency model's ``requires`` matrix:

* an instruction of memory class ``cls`` may not issue while the buffer
  is non-empty and ``model.requires(WRITE, cls)`` holds — so SC drains
  before every access, PC lets reads (and acquires) slip past buffered
  writes, WO drains only at synchronization, and RC drains only at
  releases;
* buffered stores drain one at a time, in FIFO order when the model
  orders W->W (SC/PC) and oldest-per-location otherwise (WO/RC) — the
  per-location restriction is cache coherence, which every model keeps;
* a load first snoops its own buffer (store-to-load forwarding, youngest
  matching entry) before reading the global store;
* every buffered store draws a random *drain latency* (a variable miss
  penalty): it becomes eligible to drain only after that many scheduler
  steps.  Without this, back-to-back stores become drainable nearly
  simultaneously and the tell-tale relaxed windows (message passing's
  flag-before-data) are vanishingly rare; with it, one line's miss can
  take much longer than another's, exactly the mechanism the paper's
  relaxed models exploit.

A seeded scheduler picks uniformly among all enabled actions (issue one
instruction on some processor, or drain one buffered store), so running
a litmus program across many seeds explores many legal interleavings and
drain timings.  Every execution is recorded through an
:class:`~repro.verify.recorder.ExecutionRecorder`; buffered stores claim
their program-order slot at issue and their coherence-order slot at
drain, which is exactly the split the axiomatic checker needs.

**Out-of-order issue** (``ooo=True``) models a dynamically scheduled
processor on top of the store buffers: each thread decodes ahead into a
small window of consecutive loads/stores (decode stops at ALU, branch,
synchronization, halt, or a register dependence on a pending windowed
load) and the scheduler may issue *any* window entry whose issue is not
ordered after an earlier unissued entry by the model's ``requires``
matrix or by a same-address dependence.  Windowed events claim their
program-order slot at decode and resolve values at issue, so under
WO/RC the engine generates the load-load and load-store reorderings
(litmus ``lb`` (1,1), ``iriw`` (1,0,1,0)) that in-order issue can never
expose, while under SC/PC the ``requires`` gate degenerates the window
to program order.
"""

from __future__ import annotations

import random

from ..consistency.models import ConsistencyModel, get_model
from ..isa import MemClass, Op, mem_class
from ..mem import SharedMemory
from ..sync import SyncManager
from ..tango.interp import ThreadState, execute_instruction
from .recorder import ExecutionRecorder

_READ = int(MemClass.READ)
_WRITE = int(MemClass.WRITE)
_ACQUIRE = int(MemClass.ACQUIRE)
_RELEASE = int(MemClass.RELEASE)
_BARRIER = int(MemClass.BARRIER)


class RelaxedExecutionError(Exception):
    """Deadlock or runaway execution inside the relaxed engine."""


class _BufferedStore:
    """One store sitting in a write buffer, awaiting drain."""

    __slots__ = ("event", "addr", "wide", "value", "ready_at")

    def __init__(self, event, addr, wide, value, ready_at) -> None:
        self.event = event
        self.addr = addr
        self.wide = wide
        self.value = value
        self.ready_at = ready_at

    @property
    def key(self):
        return (self.addr, self.wide)


class _WindowEntry:
    """One decoded-but-unissued load/store in an OOO decode window.

    ``ready_at`` is the step the entry becomes eligible to issue; loads
    draw a random issue latency at decode (a variable cache miss, the
    same mechanism as the buffered stores' drain latency) so a slow load
    can genuinely slip behind younger accesses of its own thread.
    """

    __slots__ = (
        "event", "is_store", "addr", "wide", "value", "rd", "ready_at"
    )

    def __init__(
        self, event, is_store, addr, wide, value, rd, ready_at
    ) -> None:
        self.event = event
        self.is_store = is_store
        self.addr = addr
        self.wide = wide
        self.value = value
        self.rd = rd
        self.ready_at = ready_at

    @property
    def key(self):
        return (self.addr, self.wide)

    @property
    def cls(self) -> int:
        return _WRITE if self.is_store else _READ


class RelaxedEngine:
    """Executes programs under a consistency model with store buffers."""

    def __init__(
        self,
        programs,
        memory: SharedMemory | None = None,
        model="SC",
        seed: int = 0,
        recorder: ExecutionRecorder | None = None,
        max_steps: int = 200_000,
        drain_latency_max: int = 16,
        ooo: bool = False,
        ooo_window: int = 4,
    ) -> None:
        if not isinstance(model, ConsistencyModel):
            model = get_model(model)
        self.model = model
        self.memory = memory if memory is not None else SharedMemory()
        self.recorder = recorder if recorder is not None else ExecutionRecorder()
        self.recorder.bind(len(programs))
        self.max_steps = max_steps
        self._lat_max = drain_latency_max
        self._rng = random.Random(seed)
        self.states = [
            ThreadState(tid=tid, program=prog.seal())
            for tid, prog in enumerate(programs)
        ]
        self.sync = SyncManager(len(programs))
        self._buffers: list[list[_BufferedStore]] = [[] for _ in programs]
        #: tid -> ("lock"|"event"|"barrier", addr, pc) while blocked.
        self._blocked: dict[int, tuple[str, int, int]] = {}
        self.steps = 0
        # The issue gate per memory class: may this class issue while
        # stores are buffered?  NONE (ALU/branch) always may.
        self._gated = {
            int(c): model.requires(MemClass.WRITE, c)
            for c in (
                MemClass.READ, MemClass.WRITE, MemClass.ACQUIRE,
                MemClass.RELEASE, MemClass.BARRIER,
            )
        }
        self._gated[int(MemClass.NONE)] = False
        self._fifo_drain = model.requires(MemClass.WRITE, MemClass.WRITE)
        self.ooo = ooo
        self._ooo_window = max(1, int(ooo_window))
        #: per-thread decoded-but-unissued loads/stores (OOO mode only).
        self._windows: list[list[_WindowEntry]] = [[] for _ in programs]
        # Issue-order matrix between window entries (data classes only).
        self._order = {
            (c, d): model.requires(MemClass(c), MemClass(d))
            for c in (_READ, _WRITE)
            for d in (_READ, _WRITE)
        }

    # -- scheduling ----------------------------------------------------------

    def _issuable(self, tid: int) -> bool:
        state = self.states[tid]
        if state.halted or tid in self._blocked:
            return False
        if self._windows[tid]:
            # OOO: everything that is not a windowed load/store executes
            # in order, only after the decode window has fully issued.
            return False
        if not self._buffers[tid]:
            return True
        op = state.program.instructions[state.pc].op
        return not self._gated[int(mem_class(op))]

    # -- OOO decode window ---------------------------------------------------

    def _fill_window(self, tid: int) -> None:
        """Decode ahead into the window: consecutive loads/stores only.

        Decode stops at any non-data instruction and at a register
        dependence on a pending windowed load (RAW through a register,
        or WAW on its destination): addresses and store values are read
        from the register file at decode, so they must not depend on a
        value that has not issued yet.
        """
        state = self.states[tid]
        if state.halted or tid in self._blocked:
            return
        window = self._windows[tid]
        while len(window) < self._ooo_window:
            instr = state.program.instructions[state.pc]
            op = instr.op
            if op is Op.LW or op is Op.FLD:
                is_store, wide = False, op is Op.FLD
            elif op is Op.SW or op is Op.FSD:
                is_store, wide = True, op is Op.FSD
            else:
                return
            pending_rds = {
                e.rd for e in window
                if not e.is_store and e.rd is not None and e.rd != 0
            }
            srcs = (instr.rs1, instr.rs2) if is_store else (instr.rs1,)
            if any(r in pending_rds for r in srcs):
                return
            if not is_store and instr.rd in pending_rds:
                return
            addr = state.regs[instr.rs1] + instr.imm
            if is_store:
                event = self.recorder.begin(
                    tid, state.pc, int(op), _WRITE, addr,
                    value=state.regs[instr.rs2], wide=wide,
                )
                # A store's timing randomness is its drain latency; it
                # may enter the buffer immediately.
                entry = _WindowEntry(
                    event, True, addr, wide, state.regs[instr.rs2],
                    None, self.steps,
                )
            else:
                event = self.recorder.begin(
                    tid, state.pc, int(op), _READ, addr, wide=wide
                )
                entry = _WindowEntry(
                    event, False, addr, wide, None, instr.rd,
                    self.steps + self._rng.randint(0, self._lat_max),
                )
            window.append(entry)
            state.pc += 1
            state.instructions_executed += 1

    def _window_candidates(self, tid: int) -> list[int]:
        """Window indices allowed to issue next, ignoring readiness.

        An entry may issue unless an earlier unissued entry is ordered
        before it by the model (``requires``), targets the same
        location, or — via the store-buffer gate — unless buffered
        stores must perform first under this model.
        """
        window = self._windows[tid]
        if not window:
            return []
        buffered = bool(self._buffers[tid])
        order = self._order
        out = []
        for i, entry in enumerate(window):
            if buffered and self._gated[entry.cls]:
                continue
            key = entry.key
            cls = entry.cls
            if all(
                not order[(earlier.cls, cls)] and earlier.key != key
                for earlier in window[:i]
            ):
                out.append(i)
        return out

    def _window_issuable(self, tid: int) -> list[int]:
        window = self._windows[tid]
        now = self.steps
        return [
            i for i in self._window_candidates(tid)
            if window[i].ready_at <= now
        ]

    def _issue(self, tid: int, idx: int) -> None:
        """Issue one window entry: perform a load / buffer a store."""
        entry = self._windows[tid].pop(idx)
        if entry.is_store:
            self._buffers[tid].append(
                _BufferedStore(
                    entry.event, entry.addr, entry.wide, entry.value,
                    self.steps + self._rng.randint(0, self._lat_max),
                )
            )
            return
        forwarded = None
        for buffered in reversed(self._buffers[tid]):
            if buffered.key == entry.key:
                forwarded = buffered
                break
        if forwarded is not None:
            value = forwarded.value
            self.recorder.perform_read(
                entry.event, value, rf_event=forwarded.event
            )
        else:
            if entry.wide:
                value = self.memory.read_double(entry.addr)
            else:
                value = self.memory.read_word(entry.addr)
            self.recorder.perform_read(entry.event, value)
        if entry.rd is not None and entry.rd != 0:
            self.states[tid].regs[entry.rd] = value

    def _drain_candidates(self, tid: int) -> list[int]:
        """Buffer indices allowed to drain next, ignoring readiness."""
        buffer = self._buffers[tid]
        if not buffer:
            return []
        if self._fifo_drain:
            return [0]
        # Per-location FIFO (coherence): only the oldest store to each
        # location is a candidate.
        seen: set = set()
        indices = []
        for i, entry in enumerate(buffer):
            if entry.key not in seen:
                indices.append(i)
                seen.add(entry.key)
        return indices

    def _drainable(self, tid: int) -> list[int]:
        buffer = self._buffers[tid]
        now = self.steps
        return [
            i for i in self._drain_candidates(tid)
            if buffer[i].ready_at <= now
        ]

    def run(self):
        """Execute to completion; returns the recorded event log."""
        n = len(self.states)
        while True:
            if self.ooo:
                for tid in range(n):
                    self._fill_window(tid)
            if (
                all(s.halted for s in self.states)
                and not any(self._buffers)
                and not any(self._windows)
            ):
                break
            actions = [
                ("exec", tid, 0)
                for tid in range(n)
                if self._issuable(tid)
            ]
            if self.ooo:
                actions.extend(
                    ("issue", tid, idx)
                    for tid in range(n)
                    for idx in self._window_issuable(tid)
                )
            actions.extend(
                ("drain", tid, idx)
                for tid in range(n)
                for idx in self._drainable(tid)
            )
            if not actions:
                # No issuable instruction, ready window entry, or ready
                # drain.  If accesses are merely waiting out their issue/
                # drain latency, fast-forward to the earliest readiness;
                # otherwise it is a deadlock.
                pending = [
                    self._buffers[tid][i].ready_at
                    for tid in range(n)
                    for i in self._drain_candidates(tid)
                ]
                if self.ooo:
                    pending.extend(
                        self._windows[tid][i].ready_at
                        for tid in range(n)
                        for i in self._window_candidates(tid)
                    )
                if pending:
                    self.steps = max(self.steps, min(pending))
                    continue
                blocked = self.sync.blocked_threads()
                raise RelaxedExecutionError(
                    f"deadlock under {self.model.name}: "
                    f"blocked={blocked or self._blocked}"
                )
            if self.steps >= self.max_steps:
                raise RelaxedExecutionError(
                    f"exceeded {self.max_steps} steps under "
                    f"{self.model.name}"
                )
            kind, tid, idx = actions[self._rng.randrange(len(actions))]
            self.steps += 1
            if kind == "drain":
                self._drain(tid, idx)
            elif kind == "issue":
                self._issue(tid, idx)
            else:
                self._exec(tid)
        return self.recorder.log()

    # -- actions -------------------------------------------------------------

    def _drain(self, tid: int, idx: int) -> None:
        entry = self._buffers[tid].pop(idx)
        if entry.wide:
            self.memory.write_double(entry.addr, entry.value)
        else:
            self.memory.write_word(entry.addr, entry.value)
        self.recorder.complete(entry.event)

    def _exec(self, tid: int) -> None:
        state = self.states[tid]
        instr = state.program.instructions[state.pc]
        op = instr.op
        if op is Op.HALT:
            state.halted = True
            return
        if op is Op.LW or op is Op.FLD:
            self._load(state, instr, wide=op is Op.FLD)
            return
        if op is Op.SW or op is Op.FSD:
            self._store(state, instr, wide=op is Op.FSD)
            return
        cls = mem_class(op)
        if cls is not MemClass.NONE:
            self._sync_op(state, instr, op)
            return
        execute_instruction(state, self.memory)

    def _load(self, state: ThreadState, instr, wide: bool) -> None:
        addr = state.regs[instr.rs1] + instr.imm
        op = Op.FLD if wide else Op.LW
        key = (addr, wide)
        forwarded = None
        for entry in reversed(self._buffers[state.tid]):
            if entry.key == key:
                forwarded = entry
                break
        if forwarded is not None:
            value = forwarded.value
            self.recorder.record(
                state.tid, state.pc, int(op), _READ, addr,
                value=value, wide=wide, rf_event=forwarded.event,
            )
        else:
            if wide:
                value = self.memory.read_double(addr)
            else:
                value = self.memory.read_word(addr)
            self.recorder.record(
                state.tid, state.pc, int(op), _READ, addr,
                value=value, wide=wide,
            )
        if instr.rd is not None and instr.rd != 0:
            state.regs[instr.rd] = value
        state.pc += 1
        state.instructions_executed += 1

    def _store(self, state: ThreadState, instr, wide: bool) -> None:
        addr = state.regs[instr.rs1] + instr.imm
        value = state.regs[instr.rs2]
        op = Op.FSD if wide else Op.SW
        event = self.recorder.begin(
            state.tid, state.pc, int(op), _WRITE, addr,
            value=value, wide=wide,
        )
        self._buffers[state.tid].append(
            _BufferedStore(
                event, addr, wide, value,
                self.steps + self._rng.randint(0, self._lat_max),
            )
        )
        state.pc += 1
        state.instructions_executed += 1

    def _sync_op(self, state: ThreadState, instr, op: Op) -> None:
        tid = state.tid
        addr = state.regs[instr.rs1]
        now = self.steps
        if op is Op.LOCK:
            if self.sync.acquire_lock(addr, tid, now):
                self._complete_sync(state, int(op), _ACQUIRE, addr)
            else:
                self._blocked[tid] = ("lock", addr, state.pc)
        elif op is Op.UNLOCK:
            wakeup = self.sync.release_lock(addr, tid, now)
            self._complete_sync(state, int(op), _RELEASE, addr)
            if wakeup is not None:
                self._wake(wakeup.tid, Op.LOCK, _ACQUIRE)
        elif op is Op.EVWAIT:
            if self.sync.event_wait(addr, tid, now):
                self._complete_sync(state, int(op), _ACQUIRE, addr)
            else:
                self._blocked[tid] = ("event", addr, state.pc)
        elif op is Op.EVSET:
            wakeups = self.sync.event_set(addr, tid, now)
            self._complete_sync(state, int(op), _RELEASE, addr)
            for wakeup in wakeups:
                self._wake(wakeup.tid, Op.EVWAIT, _ACQUIRE)
        elif op is Op.EVCLEAR:
            self.sync.event_clear(addr)
            self._complete_sync(state, int(op), _RELEASE, addr)
        elif op is Op.BARRIER:
            wakeups = self.sync.barrier_arrive(addr, tid, now)
            if wakeups is None:
                self._blocked[tid] = ("barrier", addr, state.pc)
            else:
                for wakeup in wakeups:
                    if wakeup.tid == tid:
                        self._complete_sync(
                            state, int(op), _BARRIER, addr
                        )
                    else:
                        self._wake(wakeup.tid, Op.BARRIER, _BARRIER)
        else:  # pragma: no cover - mem_class keeps this unreachable
            raise RelaxedExecutionError(f"unhandled sync op {op!r}")

    def _complete_sync(
        self, state: ThreadState, op: int, cls: int, addr: int
    ) -> None:
        self.recorder.record(state.tid, state.pc, op, cls, addr)
        state.pc += 1
        state.instructions_executed += 1

    def _wake(self, tid: int, op: Op, cls: int) -> None:
        kind, addr, pc = self._blocked.pop(tid)
        state = self.states[tid]
        self.recorder.record(tid, pc, int(op), cls, addr)
        state.pc = pc + 1
        state.instructions_executed += 1
