"""Model-aware operational engine with per-processor store buffers.

The Tango executor in :mod:`repro.tango.executor` is *functionally
sequentially consistent*: one global store, accesses performed atomically
in virtual-time order.  Its recorded executions therefore satisfy every
model's axioms — which makes it a regression oracle, but useless for
demonstrating that relaxed models genuinely admit more behaviours.

:class:`RelaxedEngine` closes that gap.  It executes the same programs
against the same functional :class:`~repro.mem.memory.SharedMemory` and
:class:`~repro.sync.primitives.SyncManager`, but gives every processor a
FIFO *store buffer* whose visibility rules come straight from the
consistency model's ``requires`` matrix:

* an instruction of memory class ``cls`` may not issue while the buffer
  is non-empty and ``model.requires(WRITE, cls)`` holds — so SC drains
  before every access, PC lets reads (and acquires) slip past buffered
  writes, WO drains only at synchronization, and RC drains only at
  releases;
* buffered stores drain one at a time, in FIFO order when the model
  orders W->W (SC/PC) and oldest-per-location otherwise (WO/RC) — the
  per-location restriction is cache coherence, which every model keeps;
* a load first snoops its own buffer (store-to-load forwarding, youngest
  matching entry) before reading the global store;
* every buffered store draws a random *drain latency* (a variable miss
  penalty): it becomes eligible to drain only after that many scheduler
  steps.  Without this, back-to-back stores become drainable nearly
  simultaneously and the tell-tale relaxed windows (message passing's
  flag-before-data) are vanishingly rare; with it, one line's miss can
  take much longer than another's, exactly the mechanism the paper's
  relaxed models exploit.

A seeded scheduler picks uniformly among all enabled actions (issue one
instruction on some processor, or drain one buffered store), so running
a litmus program across many seeds explores many legal interleavings and
drain timings.  Every execution is recorded through an
:class:`~repro.verify.recorder.ExecutionRecorder`; buffered stores claim
their program-order slot at issue and their coherence-order slot at
drain, which is exactly the split the axiomatic checker needs.
"""

from __future__ import annotations

import random

from ..consistency.models import ConsistencyModel, get_model
from ..isa import MemClass, Op, mem_class
from ..mem import SharedMemory
from ..sync import SyncManager
from ..tango.interp import ThreadState, execute_instruction
from .recorder import ExecutionRecorder

_READ = int(MemClass.READ)
_WRITE = int(MemClass.WRITE)
_ACQUIRE = int(MemClass.ACQUIRE)
_RELEASE = int(MemClass.RELEASE)
_BARRIER = int(MemClass.BARRIER)


class RelaxedExecutionError(Exception):
    """Deadlock or runaway execution inside the relaxed engine."""


class _BufferedStore:
    """One store sitting in a write buffer, awaiting drain."""

    __slots__ = ("event", "addr", "wide", "value", "ready_at")

    def __init__(self, event, addr, wide, value, ready_at) -> None:
        self.event = event
        self.addr = addr
        self.wide = wide
        self.value = value
        self.ready_at = ready_at

    @property
    def key(self):
        return (self.addr, self.wide)


class RelaxedEngine:
    """Executes programs under a consistency model with store buffers."""

    def __init__(
        self,
        programs,
        memory: SharedMemory | None = None,
        model="SC",
        seed: int = 0,
        recorder: ExecutionRecorder | None = None,
        max_steps: int = 200_000,
        drain_latency_max: int = 16,
    ) -> None:
        if not isinstance(model, ConsistencyModel):
            model = get_model(model)
        self.model = model
        self.memory = memory if memory is not None else SharedMemory()
        self.recorder = recorder if recorder is not None else ExecutionRecorder()
        self.recorder.bind(len(programs))
        self.max_steps = max_steps
        self._lat_max = drain_latency_max
        self._rng = random.Random(seed)
        self.states = [
            ThreadState(tid=tid, program=prog.seal())
            for tid, prog in enumerate(programs)
        ]
        self.sync = SyncManager(len(programs))
        self._buffers: list[list[_BufferedStore]] = [[] for _ in programs]
        #: tid -> ("lock"|"event"|"barrier", addr, pc) while blocked.
        self._blocked: dict[int, tuple[str, int, int]] = {}
        self.steps = 0
        # The issue gate per memory class: may this class issue while
        # stores are buffered?  NONE (ALU/branch) always may.
        self._gated = {
            int(c): model.requires(MemClass.WRITE, c)
            for c in (
                MemClass.READ, MemClass.WRITE, MemClass.ACQUIRE,
                MemClass.RELEASE, MemClass.BARRIER,
            )
        }
        self._gated[int(MemClass.NONE)] = False
        self._fifo_drain = model.requires(MemClass.WRITE, MemClass.WRITE)

    # -- scheduling ----------------------------------------------------------

    def _issuable(self, tid: int) -> bool:
        state = self.states[tid]
        if state.halted or tid in self._blocked:
            return False
        if not self._buffers[tid]:
            return True
        op = state.program.instructions[state.pc].op
        return not self._gated[int(mem_class(op))]

    def _drain_candidates(self, tid: int) -> list[int]:
        """Buffer indices allowed to drain next, ignoring readiness."""
        buffer = self._buffers[tid]
        if not buffer:
            return []
        if self._fifo_drain:
            return [0]
        # Per-location FIFO (coherence): only the oldest store to each
        # location is a candidate.
        seen: set = set()
        indices = []
        for i, entry in enumerate(buffer):
            if entry.key not in seen:
                indices.append(i)
                seen.add(entry.key)
        return indices

    def _drainable(self, tid: int) -> list[int]:
        buffer = self._buffers[tid]
        now = self.steps
        return [
            i for i in self._drain_candidates(tid)
            if buffer[i].ready_at <= now
        ]

    def run(self):
        """Execute to completion; returns the recorded event log."""
        while True:
            if all(s.halted for s in self.states) and not any(
                self._buffers
            ):
                break
            actions = [
                ("exec", tid, 0)
                for tid in range(len(self.states))
                if self._issuable(tid)
            ]
            actions.extend(
                ("drain", tid, idx)
                for tid in range(len(self.states))
                for idx in self._drainable(tid)
            )
            if not actions:
                # No issuable instruction and no ready drain.  If stores
                # are merely waiting out their drain latency, fast-forward
                # to the earliest readiness; otherwise it is a deadlock.
                pending = [
                    self._buffers[tid][i].ready_at
                    for tid in range(len(self.states))
                    for i in self._drain_candidates(tid)
                ]
                if pending:
                    self.steps = max(self.steps, min(pending))
                    continue
                blocked = self.sync.blocked_threads()
                raise RelaxedExecutionError(
                    f"deadlock under {self.model.name}: "
                    f"blocked={blocked or self._blocked}"
                )
            if self.steps >= self.max_steps:
                raise RelaxedExecutionError(
                    f"exceeded {self.max_steps} steps under "
                    f"{self.model.name}"
                )
            kind, tid, idx = actions[self._rng.randrange(len(actions))]
            self.steps += 1
            if kind == "drain":
                self._drain(tid, idx)
            else:
                self._exec(tid)
        return self.recorder.log()

    # -- actions -------------------------------------------------------------

    def _drain(self, tid: int, idx: int) -> None:
        entry = self._buffers[tid].pop(idx)
        if entry.wide:
            self.memory.write_double(entry.addr, entry.value)
        else:
            self.memory.write_word(entry.addr, entry.value)
        self.recorder.complete(entry.event)

    def _exec(self, tid: int) -> None:
        state = self.states[tid]
        instr = state.program.instructions[state.pc]
        op = instr.op
        if op is Op.HALT:
            state.halted = True
            return
        if op is Op.LW or op is Op.FLD:
            self._load(state, instr, wide=op is Op.FLD)
            return
        if op is Op.SW or op is Op.FSD:
            self._store(state, instr, wide=op is Op.FSD)
            return
        cls = mem_class(op)
        if cls is not MemClass.NONE:
            self._sync_op(state, instr, op)
            return
        execute_instruction(state, self.memory)

    def _load(self, state: ThreadState, instr, wide: bool) -> None:
        addr = state.regs[instr.rs1] + instr.imm
        op = Op.FLD if wide else Op.LW
        key = (addr, wide)
        forwarded = None
        for entry in reversed(self._buffers[state.tid]):
            if entry.key == key:
                forwarded = entry
                break
        if forwarded is not None:
            value = forwarded.value
            self.recorder.record(
                state.tid, state.pc, int(op), _READ, addr,
                value=value, wide=wide, rf_event=forwarded.event,
            )
        else:
            if wide:
                value = self.memory.read_double(addr)
            else:
                value = self.memory.read_word(addr)
            self.recorder.record(
                state.tid, state.pc, int(op), _READ, addr,
                value=value, wide=wide,
            )
        if instr.rd is not None and instr.rd != 0:
            state.regs[instr.rd] = value
        state.pc += 1
        state.instructions_executed += 1

    def _store(self, state: ThreadState, instr, wide: bool) -> None:
        addr = state.regs[instr.rs1] + instr.imm
        value = state.regs[instr.rs2]
        op = Op.FSD if wide else Op.SW
        event = self.recorder.begin(
            state.tid, state.pc, int(op), _WRITE, addr,
            value=value, wide=wide,
        )
        self._buffers[state.tid].append(
            _BufferedStore(
                event, addr, wide, value,
                self.steps + self._rng.randint(0, self._lat_max),
            )
        )
        state.pc += 1
        state.instructions_executed += 1

    def _sync_op(self, state: ThreadState, instr, op: Op) -> None:
        tid = state.tid
        addr = state.regs[instr.rs1]
        now = self.steps
        if op is Op.LOCK:
            if self.sync.acquire_lock(addr, tid, now):
                self._complete_sync(state, int(op), _ACQUIRE, addr)
            else:
                self._blocked[tid] = ("lock", addr, state.pc)
        elif op is Op.UNLOCK:
            wakeup = self.sync.release_lock(addr, tid, now)
            self._complete_sync(state, int(op), _RELEASE, addr)
            if wakeup is not None:
                self._wake(wakeup.tid, Op.LOCK, _ACQUIRE)
        elif op is Op.EVWAIT:
            if self.sync.event_wait(addr, tid, now):
                self._complete_sync(state, int(op), _ACQUIRE, addr)
            else:
                self._blocked[tid] = ("event", addr, state.pc)
        elif op is Op.EVSET:
            wakeups = self.sync.event_set(addr, tid, now)
            self._complete_sync(state, int(op), _RELEASE, addr)
            for wakeup in wakeups:
                self._wake(wakeup.tid, Op.EVWAIT, _ACQUIRE)
        elif op is Op.EVCLEAR:
            self.sync.event_clear(addr)
            self._complete_sync(state, int(op), _RELEASE, addr)
        elif op is Op.BARRIER:
            wakeups = self.sync.barrier_arrive(addr, tid, now)
            if wakeups is None:
                self._blocked[tid] = ("barrier", addr, state.pc)
            else:
                for wakeup in wakeups:
                    if wakeup.tid == tid:
                        self._complete_sync(
                            state, int(op), _BARRIER, addr
                        )
                    else:
                        self._wake(wakeup.tid, Op.BARRIER, _BARRIER)
        else:  # pragma: no cover - mem_class keeps this unreachable
            raise RelaxedExecutionError(f"unhandled sync op {op!r}")

    def _complete_sync(
        self, state: ThreadState, op: int, cls: int, addr: int
    ) -> None:
        self.recorder.record(state.tid, state.pc, op, cls, addr)
        state.pc += 1
        state.instructions_executed += 1

    def _wake(self, tid: int, op: Op, cls: int) -> None:
        kind, addr, pc = self._blocked.pop(tid)
        state = self.states[tid]
        self.recorder.record(tid, pc, int(op), cls, addr)
        state.pc = pc + 1
        state.instructions_executed += 1
