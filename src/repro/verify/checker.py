"""Axiomatic memory-model checker over recorded executions.

Given an :class:`~repro.verify.events.EventLog` and a consistency model
from :mod:`repro.consistency.models`, the checker builds the
happens-before graph the model's axioms dictate and verifies it is
acyclic (Roy et al.-style polynomial-time post-hoc verification):

* **program order**, restricted to the pairs the model's
  ``requires(earlier, later)`` matrix actually orders (SC keeps all of
  them; PC drops W->R; WO/RC keep only orderings around synchronization);
* **per-location program order** between data accesses of one processor
  to one location (cache coherence forbids reordering same-address
  accesses under every model);
* **reads-from** (``rf``): the write a read observed precedes the read;
* **synchronizes-with** (``sw``): the release that handed a lock/event
  over precedes the acquire that received it;
* **coherence order** (``co``): the global performing order of writes to
  one location;
* **from-reads** (``fr``): a read precedes the coherence-successor of
  the write it observed (and a read of the initial value precedes every
  write to the location).

Barrier arrivals of one episode are fused through a virtual episode node
so that everything program-ordered before *any* arrival happens-before
everything after *any* arrival, without ordering the arrivals themselves
against each other.

Each event owns two graph nodes (``in`` = 2*gid, ``out`` = 2*gid + 1)
joined by an internal edge; ordering edges run ``out(a) -> in(b)``.  The
split is what lets the barrier fusion avoid spurious 2-cycles among the
arrivals of an episode.

A cycle means the execution is impossible under the model; the checker
reports it with per-event PCs and the relation labels along the cycle.

To keep graphs near-linear in the event count, program-order edges are
*subsume-reduced*: per thread, a pending list is kept per memory class,
and when an event of class ``d`` orders pending events of class ``c``
(``requires(c, d)``), the pending list is cleared iff ``d`` subsumes
``c`` — i.e. every class that ``c`` would order a future event against,
``d`` orders too, so reachability through ``d`` replaces the direct
edges.  This preserves the transitive closure exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..consistency.models import ConsistencyModel, get_model
from ..isa import MemClass
from .events import EventLog, MemEvent

_READ = int(MemClass.READ)
_WRITE = int(MemClass.WRITE)
_ACQUIRE = int(MemClass.ACQUIRE)
_BARRIER = int(MemClass.BARRIER)
_CLASSES = (_READ, _WRITE, _ACQUIRE, int(MemClass.RELEASE), _BARRIER)

#: Label of the internal in->out edge of one event (hidden in reports).
_SLOT = "slot"


@dataclass(slots=True)
class Violation:
    """One way the execution contradicts the model (or the protocol)."""

    kind: str  # "cycle" | "value" | "coherence-audit"
    message: str
    #: For cycles: ``(description, outgoing relation label)`` per event
    #: around the cycle, in order.
    cycle: list = field(default_factory=list)

    def format(self) -> str:
        lines = [f"{self.kind}: {self.message}"]
        for desc, label in self.cycle:
            lines.append(f"    {desc}  --[{label}]-->")
        if self.cycle:
            lines.append(f"    ... back to {self.cycle[0][0]}")
        return "\n".join(lines)


@dataclass(slots=True)
class CheckResult:
    """Outcome of checking one execution against one model."""

    model: str
    n_events: int
    n_edges: int
    violations: list[Violation]

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        head = (
            f"[{self.model}] {self.n_events} events, "
            f"{self.n_edges} hb edges: "
        )
        if self.ok:
            return head + "consistent"
        body = "\n".join(v.format() for v in self.violations)
        return head + f"{len(self.violations)} violation(s)\n" + body


def _subsumes(matrix, d: int, c: int) -> bool:
    """True if class ``d`` orders every future class that ``c`` orders."""
    return all(matrix[(c, x)] <= matrix[(d, x)] for x in _CLASSES)


class _Graph:
    """Happens-before graph with labeled edges and cycle extraction."""

    def __init__(self, n_events: int) -> None:
        # Nodes 2*g / 2*g+1 are event g's in/out; virtual nodes follow.
        self.adj: list[list[tuple[int, str]]] = [
            [] for _ in range(2 * n_events)
        ]
        self.n_edges = 0

    def new_virtual(self) -> int:
        self.adj.append([])
        return len(self.adj) - 1

    def edge(self, src: int, dst: int, label: str) -> None:
        self.adj[src].append((dst, label))
        self.n_edges += 1

    def relate(self, a: MemEvent, b: MemEvent, label: str) -> None:
        """Order event ``a`` entirely before event ``b``."""
        self.edge(2 * a.gid + 1, 2 * b.gid, label)

    def find_cycle(self):
        """Return one cycle as ``[(node, label_to_next), ...]`` or None."""
        adj = self.adj
        color = bytearray(len(adj))  # 0 white, 1 gray, 2 black
        for start in range(len(adj)):
            if color[start]:
                continue
            stack = [(start, 0)]
            path = [(start, None)]
            color[start] = 1
            while stack:
                node, i = stack[-1]
                edges = adj[node]
                if i < len(edges):
                    stack[-1] = (node, i + 1)
                    dst, label = edges[i]
                    if color[dst] == 0:
                        color[dst] = 1
                        stack.append((dst, 0))
                        path.append((dst, label))
                    elif color[dst] == 1:
                        j = next(
                            k for k, (n, _) in enumerate(path) if n == dst
                        )
                        nodes = [n for n, _ in path[j:]]
                        # label entering path[k] is path[k][1]; rotate so
                        # each node pairs with the label it *emits*.
                        labels = [lab for _, lab in path[j + 1:]] + [label]
                        return list(zip(nodes, labels))
                else:
                    color[node] = 2
                    stack.pop()
                    path.pop()
        return None


def build_graph(log: EventLog, model: ConsistencyModel) -> _Graph:
    """Construct the model's happens-before graph for the log."""
    events = log.events
    graph = _Graph(len(events))
    for ev in events:
        graph.edge(2 * ev.gid, 2 * ev.gid + 1, _SLOT)

    matrix = {
        (int(c), int(d)): model.requires(MemClass(c), MemClass(d))
        for c in _CLASSES
        for d in _CLASSES
    }
    subsumes = {
        (d, c): _subsumes(matrix, d, c) for d in _CLASSES for c in _CLASSES
    }
    po_label = f"po[{model.name}]"

    barrier_groups: dict[tuple[int, int], list[MemEvent]] = {}
    for stream in log.threads():
        pending: dict[int, list[MemEvent]] = {c: [] for c in _CLASSES}
        last_at_loc: dict[tuple[int, bool], MemEvent] = {}
        for ev in stream:
            d = ev.cls
            for c in _CLASSES:
                if matrix[(c, d)] and pending[c]:
                    for src in pending[c]:
                        graph.relate(src, ev, po_label)
                    if subsumes[(d, c)]:
                        pending[c].clear()
            pending[d].append(ev)
            # Same-location data accesses stay in program order under
            # every model (coherence), independent of the matrix.
            if d == _READ or d == _WRITE:
                prev = last_at_loc.get(ev.key)
                if prev is not None:
                    graph.relate(prev, ev, "po-loc")
                last_at_loc[ev.key] = ev
            if d == _BARRIER:
                barrier_groups.setdefault(
                    (ev.addr, ev.episode), []
                ).append(ev)

    # Barrier episodes: fuse all arrivals through a virtual node.
    for group in barrier_groups.values():
        v = graph.new_virtual()
        for ev in group:
            graph.edge(2 * ev.gid, v, "bar-in")
            graph.edge(v, 2 * ev.gid + 1, "bar-out")

    # Reads-from, synchronizes-with.
    for ev in events:
        if ev.rf >= 0:
            src = events[ev.rf]
            graph.relate(src, ev, "rf" if ev.cls == _READ else "sw")

    # Coherence order and from-reads.
    writes_by_key = log.writes_by_key()
    co_index: dict[int, tuple[list[MemEvent], int]] = {}
    for writes in writes_by_key.values():
        for i, w in enumerate(writes):
            co_index[w.gid] = (writes, i)
            if i:
                graph.relate(writes[i - 1], w, "co")
    for ev in events:
        if ev.cls != _READ:
            continue
        if ev.rf >= 0:
            entry = co_index.get(ev.rf)
            if entry is not None:
                writes, i = entry
                if i + 1 < len(writes):
                    graph.relate(ev, writes[i + 1], "fr")
        else:
            writes = writes_by_key.get(ev.key)
            if writes:
                graph.relate(ev, writes[0], "fr-init")
    return graph


def _describe_node(node: int, events: list[MemEvent]) -> str:
    if node < 2 * len(events):
        return events[node // 2].describe()
    return "barrier-episode"


def _render_cycle(cycle, events: list[MemEvent]) -> list[tuple[str, str]]:
    """Collapse in/out node pairs; one ``(description, label)`` per hop."""
    rendered = []
    for node, label in cycle:
        if label == _SLOT:
            continue  # internal edge: same event, skip the duplicate node
        rendered.append((_describe_node(node, events), label))
    return rendered


def check_execution(log: EventLog, model) -> CheckResult:
    """Verify one recorded execution against one consistency model.

    ``model`` may be a name ("sc", "rc", ...) or a
    :class:`~repro.consistency.models.ConsistencyModel`.
    """
    if not isinstance(model, ConsistencyModel):
        model = get_model(model)
    violations: list[Violation] = []

    for msg in log.audit_violations:
        violations.append(Violation(kind="coherence-audit", message=msg))

    # Reads-from value sanity: a read must see the value its rf wrote.
    # rf = -1 (initial contents) is not checkable here — applications
    # pre-initialize SharedMemory before the recorded run begins.
    events = log.events
    for ev in events:
        if ev.cls != _READ or ev.rf < 0:
            continue
        src = events[ev.rf]
        if src.key != ev.key:
            violations.append(Violation(
                kind="value",
                message=(
                    f"rf crosses locations: {ev.describe()} "
                    f"reads from {src.describe()}"
                ),
            ))
        elif (
            ev.value is not None
            and src.value is not None
            and ev.value != src.value
        ):
            violations.append(Violation(
                kind="value",
                message=(
                    f"read observed {ev.value!r} but its writer stored "
                    f"{src.value!r}: {ev.describe()} <- {src.describe()}"
                ),
            ))

    graph = build_graph(log, model)
    cycle = graph.find_cycle()
    if cycle is not None:
        rendered = _render_cycle(cycle, events)
        violations.append(Violation(
            kind="cycle",
            message=(
                f"happens-before cycle through {len(rendered)} events "
                f"under {model.name}"
            ),
            cycle=rendered,
        ))
    return CheckResult(
        model=model.name,
        n_events=len(events),
        n_edges=graph.n_edges,
        violations=violations,
    )


def check_all_models(log: EventLog, names=("SC", "PC", "WO", "RC")):
    """Check one log against several models; dict name -> CheckResult."""
    return {name: check_execution(log, name) for name in names}
