"""Memory-consistency verification: recorder, axiomatic checker, litmus.

Three layers (see ISSUE/ROADMAP and the paper's correctness concerns):

* :mod:`repro.verify.events` / :mod:`repro.verify.recorder` — the
  opt-in execution recorder threaded through the Tango executor and the
  coherence protocol;
* :mod:`repro.verify.checker` — the polynomial-time axiomatic checker
  that builds each model's happens-before graph and reports cycles;
* :mod:`repro.verify.relaxed` / :mod:`repro.verify.litmus` /
  :mod:`repro.verify.harness` — the model-aware store-buffer engine,
  the litmus-test catalog, and the app/litmus harnesses behind
  ``python -m repro verify``.
"""

from .checker import (
    CheckResult,
    Violation,
    check_all_models,
    check_execution,
)
from .events import EventLog, MemEvent
from .harness import (
    AppVerifyResult,
    tango_crosscheck,
    verify_app,
    verify_apps,
)
from .litmus import (
    ALL_MODELS,
    CATALOG,
    LitmusResult,
    LitmusTest,
    format_litmus_report,
    run_litmus,
    verify_litmus,
)
from .recorder import ExecutionRecorder
from .relaxed import RelaxedEngine, RelaxedExecutionError

__all__ = [
    "ALL_MODELS",
    "AppVerifyResult",
    "CATALOG",
    "CheckResult",
    "EventLog",
    "ExecutionRecorder",
    "LitmusResult",
    "LitmusTest",
    "MemEvent",
    "RelaxedEngine",
    "RelaxedExecutionError",
    "Violation",
    "check_all_models",
    "check_execution",
    "format_litmus_report",
    "run_litmus",
    "tango_crosscheck",
    "verify_app",
    "verify_apps",
    "verify_litmus",
]
