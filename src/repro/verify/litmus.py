"""Litmus-test catalog and harness for the consistency checker.

Each litmus test is a tiny multi-threaded program written with
:class:`~repro.asm.AsmBuilder`, annotated with the outcomes each
consistency model forbids and the relaxed outcome we expect the
model-aware engine to actually expose.  The harness runs a test across
many seeded schedules of the :class:`~repro.verify.relaxed.RelaxedEngine`
and asserts three things per (test, model) pair:

1. no forbidden outcome ever appears operationally;
2. the axiomatic checker accepts every recorded execution under the
   model that produced it (the engine and the axioms agree);
3. when a relaxed model exposes its tell-tale outcome, re-checking that
   same execution under SC yields a happens-before **cycle** — the
   printable proof that the outcome is genuinely non-SC.

The catalog (addresses on distinct cache lines throughout):

======  ==========================  ============================  =====================
name    shape                       forbidden (outcome / models)  relaxed demo
======  ==========================  ============================  =====================
sb      store buffering             (0,0) under SC                PC/WO/RC observe it
mp      message passing             (0,) under SC, PC             WO/RC observe it
lb      load buffering              (1,1) under SC, PC            WO/RC with ``ooo``
                                                                  issue; never with
                                                                  in-order issue
iriw    independent reads of        (1,0,1,0) under SC, PC        WO/RC with ``ooo``
        independent writes                                        issue (load-load
                                                                  reordering); never
                                                                  with in-order issue
inc     lock-protected increment    any total != n, all models    none (locks restore
                                                                  order under RC)
======  ==========================  ============================  =====================

``run_litmus(..., ooo=True)`` switches the engine to out-of-order issue
(a decode-ahead window over loads/stores, gated by the model's
``requires`` matrix), which is what makes the ``lb`` and ``iriw``
relaxed outcomes actually generable under WO/RC — and provably non-SC
via the recorded execution's happens-before cycle.  Under SC and PC the
window degenerates to program order, so the forbidden sets still hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..asm import AsmBuilder
from ..consistency.models import ConsistencyModel, get_model
from ..service.pool import run_jobs
from .checker import check_execution
from .relaxed import RelaxedEngine

#: Data/sync variables, each on its own cache line.
X = 0x1000
Y = 0x1040
LOCK_ADDR = 0x2000
COUNTER = 0x2080

#: Threads in the lock-protected increment test.
INC_THREADS = 4

#: Below this many schedules, a missing expected-relaxed outcome is not
#: reported (too few interleavings to demand the behaviour shows up).
MIN_SCHEDULES_FOR_EXPECT = 50

#: Cap on distinct violation messages kept per (test, model) run.
_MAX_VIOLATIONS = 8

ALL_MODELS = ("SC", "PC", "WO", "RC")


# -- program builders --------------------------------------------------------


def _build_sb():
    """Store buffering: each thread stores its flag, loads the other's."""
    programs, observers = [], []
    for tid, (mine, other) in enumerate(((X, Y), (Y, X))):
        b = AsmBuilder(f"sb_t{tid}")
        a_mine = b.ireg("a_mine")
        a_other = b.ireg("a_other")
        one = b.ireg("one")
        r = b.ireg("r")
        b.la(a_mine, mine)
        b.la(a_other, other)
        b.li(one, 1)
        b.sw(one, a_mine)
        b.lw(r, a_other)
        b.halt()
        programs.append(b.build())
        observers.append(("reg", tid, int(r)))
    return programs, observers


def _build_mp():
    """Message passing: write data then flag; spin on flag, read data."""
    b0 = AsmBuilder("mp_writer")
    a_data = b0.ireg("a_data")
    a_flag = b0.ireg("a_flag")
    v = b0.ireg("v")
    b0.la(a_data, X)
    b0.la(a_flag, Y)
    b0.li(v, 42)
    b0.sw(v, a_data)
    b0.li(v, 1)
    b0.sw(v, a_flag)
    b0.halt()

    b1 = AsmBuilder("mp_reader")
    a_data = b1.ireg("a_data")
    a_flag = b1.ireg("a_flag")
    r_flag = b1.ireg("r_flag")
    r_data = b1.ireg("r_data")
    b1.la(a_data, X)
    b1.la(a_flag, Y)
    spin = b1.label(b1.newlabel("spin"))
    b1.lw(r_flag, a_flag)
    b1.beqz(r_flag, spin)
    b1.lw(r_data, a_data)
    b1.halt()
    return [b0.build(), b1.build()], [("reg", 1, int(r_data))]


def _build_lb():
    """Load buffering: each thread loads its flag then stores the other's."""
    programs, observers = [], []
    for tid, (mine, other) in enumerate(((X, Y), (Y, X))):
        b = AsmBuilder(f"lb_t{tid}")
        a_mine = b.ireg("a_mine")
        a_other = b.ireg("a_other")
        one = b.ireg("one")
        r = b.ireg("r")
        b.la(a_mine, mine)
        b.la(a_other, other)
        b.li(one, 1)
        b.lw(r, a_mine)
        b.sw(one, a_other)
        b.halt()
        programs.append(b.build())
        observers.append(("reg", tid, int(r)))
    return programs, observers


def _build_iriw():
    """IRIW: two writers, two readers scanning in opposite orders."""
    programs, observers = [], []
    for tid, addr in ((0, X), (1, Y)):
        b = AsmBuilder(f"iriw_w{tid}")
        a = b.ireg("a")
        one = b.ireg("one")
        b.la(a, addr)
        b.li(one, 1)
        b.sw(one, a)
        b.halt()
        programs.append(b.build())
    for tid, (first, second) in ((2, (X, Y)), (3, (Y, X))):
        b = AsmBuilder(f"iriw_r{tid}")
        a1 = b.ireg("a1")
        a2 = b.ireg("a2")
        r1 = b.ireg("r1")
        r2 = b.ireg("r2")
        b.la(a1, first)
        b.la(a2, second)
        b.lw(r1, a1)
        b.lw(r2, a2)
        b.halt()
        programs.append(b.build())
        observers.append(("reg", tid, int(r1)))
        observers.append(("reg", tid, int(r2)))
    return programs, observers


def _build_inc():
    """Lock-protected increment: n threads bump one counter under a lock."""
    programs = []
    for tid in range(INC_THREADS):
        b = AsmBuilder(f"inc_t{tid}")
        a_lock = b.ireg("a_lock")
        a_ctr = b.ireg("a_ctr")
        r = b.ireg("r")
        b.la(a_lock, LOCK_ADDR)
        b.la(a_ctr, COUNTER)
        b.lock(a_lock)
        b.lw(r, a_ctr)
        b.addi(r, r, 1)
        b.sw(r, a_ctr)
        b.unlock(a_lock)
        b.halt()
        programs.append(b.build())
    return programs, [("mem", COUNTER, False)]


# -- catalog -----------------------------------------------------------------


@dataclass(frozen=True)
class LitmusTest:
    """One litmus program plus its per-model outcome annotations."""

    name: str
    title: str
    build: Callable
    outcome: str  # what the observed tuple means, for reports/docs
    #: model name -> outcomes that must never appear under that model.
    forbidden: dict = field(default_factory=dict)
    #: model name -> outcome the engine is expected to actually expose
    #: (given enough schedules) — the demonstration that the model is
    #: genuinely weaker.
    expect_observed: dict = field(default_factory=dict)
    #: Additional expectations that only hold under out-of-order issue
    #: (merged over ``expect_observed`` when ``ooo=True``).
    expect_observed_ooo: dict = field(default_factory=dict)
    #: The tell-tale relaxed outcome: when observed under a non-SC model,
    #: the harness re-checks that execution under SC and records the
    #: happens-before cycle as proof.
    demo_outcome: tuple | None = None
    #: If set, *any* other outcome is a violation under every model.
    expected_only: tuple | None = None
    notes: str = ""


CATALOG: dict[str, LitmusTest] = {
    t.name: t
    for t in (
        LitmusTest(
            name="sb",
            title="store buffering",
            build=_build_sb,
            outcome="(r0, r1) — each thread's read of the other's flag",
            forbidden={"SC": frozenset({(0, 0)})},
            expect_observed={m: (0, 0) for m in ("PC", "WO", "RC")},
            demo_outcome=(0, 0),
            notes="reads bypass the write buffer under PC/WO/RC",
        ),
        LitmusTest(
            name="mp",
            title="message passing",
            build=_build_mp,
            outcome="(data) read after the flag was observed set",
            forbidden={
                "SC": frozenset({(0,)}),
                "PC": frozenset({(0,)}),
            },
            expect_observed={m: (0,) for m in ("WO", "RC")},
            demo_outcome=(0,),
            notes="WO/RC drain buffered stores out of order across lines",
        ),
        LitmusTest(
            name="lb",
            title="load buffering",
            build=_build_lb,
            outcome="(r0, r1) — each thread's read of its own flag",
            forbidden={
                "SC": frozenset({(1, 1)}),
                "PC": frozenset({(1, 1)}),
            },
            expect_observed_ooo={m: (1, 1) for m in ("WO", "RC")},
            demo_outcome=(1, 1),
            notes=(
                "(1,1) needs load-store reordering: in-order issue never "
                "generates it; ooo issue exposes it under WO/RC"
            ),
        ),
        LitmusTest(
            name="iriw",
            title="independent reads of independent writes",
            build=_build_iriw,
            outcome="(t2.x, t2.y, t3.y, t3.x) as scanned by each reader",
            forbidden={
                "SC": frozenset({(1, 0, 1, 0)}),
                "PC": frozenset({(1, 0, 1, 0)}),
            },
            expect_observed_ooo={m: (1, 0, 1, 0) for m in ("WO", "RC")},
            demo_outcome=(1, 0, 1, 0),
            notes=(
                "stores are multi-copy atomic here, so (1,0,1,0) needs "
                "each reader's loads reordered — ooo issue under WO/RC"
            ),
        ),
        LitmusTest(
            name="inc",
            title="lock-protected increment",
            build=_build_inc,
            outcome=f"final counter after {INC_THREADS} increments",
            expected_only=(INC_THREADS,),
            notes="locks restore atomicity under every model incl. RC",
        ),
    )
}


# -- harness -----------------------------------------------------------------


@dataclass
class LitmusResult:
    """Outcome of running one litmus test under one model."""

    test: str
    model: str
    schedules: int
    outcomes: dict  # outcome tuple -> occurrence count
    violations: list[str]
    #: Formatted SC happens-before cycle proving the observed relaxed
    #: outcome is non-SC (None when no demo outcome appeared).
    demo_cycle: str | None = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        status = "ok" if self.ok else "FAIL"
        outs = ", ".join(
            f"{o}x{n}"
            for o, n in sorted(self.outcomes.items(), key=lambda kv: kv[0])
        )
        lines = [
            f"[{self.test}/{self.model}] {status} "
            f"({self.schedules} schedules): {outs}"
        ]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


def _observe(engine: RelaxedEngine, observers) -> tuple:
    out = []
    for kind, a, b in observers:
        if kind == "reg":
            out.append(engine.states[a].regs[b])
        else:  # ("mem", addr, wide)
            if b:
                out.append(engine.memory.read_double(a))
            else:
                out.append(engine.memory.read_word(a))
    return tuple(out)


def run_litmus(
    test, model="SC", schedules: int = 200, seed: int = 0,
    ooo: bool = False,
) -> LitmusResult:
    """Run one litmus test across many schedules under one model.

    ``ooo`` switches the engine to out-of-order issue, enabling the
    reorderings (and expectations) that need a dynamically scheduled
    processor; the forbidden sets are enforced either way.
    """
    if isinstance(test, str):
        test = CATALOG[test]
    if not isinstance(model, ConsistencyModel):
        model = get_model(model)
    name = model.name
    forbidden = test.forbidden.get(name, frozenset())
    outcomes: dict[tuple, int] = {}
    violations: list[str] = []
    demo_cycle = None

    def flag(message: str) -> None:
        if message not in violations and len(violations) < _MAX_VIOLATIONS:
            violations.append(message)

    for s in range(schedules):
        programs, observers = test.build()
        engine = RelaxedEngine(
            programs, model=model, seed=seed + s, ooo=ooo
        )
        log = engine.run()
        outcome = _observe(engine, observers)
        outcomes[outcome] = outcomes.get(outcome, 0) + 1

        if outcome in forbidden:
            flag(
                f"forbidden outcome {outcome} appeared under {name} "
                f"(seed {seed + s})"
            )
        if test.expected_only is not None and outcome != test.expected_only:
            flag(
                f"outcome {outcome} != required {test.expected_only} "
                f"(seed {seed + s})"
            )
        result = check_execution(log, model)
        if not result.ok:
            flag(
                f"checker rejected an execution the {name} engine "
                f"produced (seed {seed + s}):\n{result.format()}"
            )
        if (
            demo_cycle is None
            and name != "SC"
            and test.demo_outcome is not None
            and outcome == test.demo_outcome
        ):
            sc_result = check_execution(log, "SC")
            cyc = next(
                (v for v in sc_result.violations if v.kind == "cycle"), None
            )
            if cyc is None:
                flag(
                    f"demo outcome {outcome} should be cyclic under SC "
                    f"but the checker accepted it (seed {seed + s})"
                )
            else:
                demo_cycle = cyc.format()

    expectations = dict(test.expect_observed)
    if ooo:
        expectations.update(test.expect_observed_ooo)
    expected = expectations.get(name)
    if (
        expected is not None
        and schedules >= MIN_SCHEDULES_FOR_EXPECT
        and expected not in outcomes
    ):
        flag(
            f"expected relaxed outcome {expected} never appeared in "
            f"{schedules} schedules under {name}"
        )
    return LitmusResult(
        test=test.name,
        model=name,
        schedules=schedules,
        outcomes=outcomes,
        violations=violations,
        demo_cycle=demo_cycle,
    )


def _litmus_job(job) -> LitmusResult:
    name, model, schedules, seed, ooo = job
    return run_litmus(name, model, schedules=schedules, seed=seed, ooo=ooo)


def verify_litmus(
    names=None,
    models=ALL_MODELS,
    schedules: int = 200,
    seed: int = 0,
    jobs: int = 1,
    ooo: bool = False,
) -> list[LitmusResult]:
    """Run (a subset of) the catalog across models; list of results."""
    if names is None:
        names = tuple(CATALOG)
    jobs_list = [
        (name, model, schedules, seed, ooo)
        for name in names
        for model in models
    ]
    # Supervised fan-out: a crashed or hung worker is restarted and the
    # (deterministic, seeded) litmus job retried rather than aborting
    # the sweep.
    return run_jobs(
        _litmus_job,
        [(job,) for job in jobs_list],
        jobs=jobs,
        labels=[f"litmus:{name}/{model}" for name, model, *_ in jobs_list],
    )


def format_litmus_report(results: list[LitmusResult]) -> str:
    """Render harness results, including the first SC cycle proof."""
    lines = [r.format() for r in results]
    demo = next((r for r in results if r.demo_cycle), None)
    if demo is not None:
        lines.append("")
        lines.append(
            f"relaxed outcome witnessed under {demo.model} "
            f"({demo.test}); the same execution is provably non-SC:"
        )
        lines.append(demo.demo_cycle)
    return "\n".join(lines)
