"""Memory-event logs: the execution witness the axiomatic checker consumes.

A *memory event* is one performed memory or synchronization operation of
one simulated processor: a data load or store (with its effective address
and the value transferred), or a synchronization access (lock acquire /
release, event wait / set / clear, barrier episode).  An
:class:`EventLog` is the global record of one execution:

* per-processor **program-order** streams (the ``po`` index within each
  thread);
* the global **completion order** (the ``completed`` sequence number —
  the order in which operations became visible to the whole machine);
* the **reads-from** relation (``rf``: which write a read observed, or
  -1 for a location's initial value), and for acquires the
  *synchronizes-with* source (the release that granted the primitive);
* barrier **episodes** (all arrivals of one barrier generation share an
  ``episode`` number, so the checker can order everything before the
  episode ahead of everything after it);
* the stream of cache-coherence protocol events (installs, upgrades,
  invalidations, downgrades, evictions) observed by the recorder's
  hooks in :mod:`repro.mem.coherence` and :mod:`repro.mem.cache`.

Events deliberately store opcodes and memory classes as plain ints: logs
of multi-million-instruction runs stay compact, and worker processes can
ship them back through a pickle without dragging enum objects along.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import MemClass, Op


@dataclass(slots=True)
class MemEvent:
    """One performed memory/synchronization operation.

    Attributes:
        gid: global creation index (issue order across all threads).
        tid: issuing processor.
        po: program-order index within the thread's event stream.
        pc: static instruction index of the operation.
        op: opcode, as ``int(Op.*)``.
        cls: consistency classification, as ``int(MemClass.*)``.
        addr: effective byte address (data address or sync variable).
        wide: True for 8-byte double accesses (doubles and words live in
            disjoint stores, so ``(addr, wide)`` is the coherence key).
        value: value read or written; ``None`` for synchronization ops.
        completed: global completion sequence number (-1 while a store
            sits unperformed in a relaxed-engine write buffer).
        rf: for reads, the ``gid`` of the write whose value was observed
            (-1 = the location's initial contents); for acquires, the
            ``gid`` of the release that granted the primitive (-1 = the
            primitive was free/never released before).
        episode: barrier generation number (-1 for non-barrier events).
    """

    gid: int
    tid: int
    po: int
    pc: int
    op: int
    cls: int
    addr: int
    wide: bool = False
    value: object = None
    completed: int = -1
    rf: int = -1
    episode: int = -1

    @property
    def key(self) -> tuple[int, bool]:
        """Coherence key: address plus width class."""
        return (self.addr, self.wide)

    def describe(self) -> str:
        """Compact human-readable rendering for violation reports."""
        val = "" if self.value is None else f"={self.value!r}"
        return (
            f"t{self.tid}#{self.po} pc={self.pc} {Op(self.op).name} "
            f"{self.addr:#x}{val} [{MemClass(self.cls).name}]"
        )


@dataclass
class EventLog:
    """The complete memory-event record of one execution."""

    n_threads: int
    events: list[MemEvent] = field(default_factory=list)
    #: Coherence-protocol events, in observation order:
    #: ``(kind, cpu, line, extra)`` with kind one of install / upgrade /
    #: invalidate / downgrade / evict.
    coherence: list[tuple] = field(default_factory=list)
    #: Single-writer/multiple-reader violations found while mirroring the
    #: coherence events (empty for a correct protocol).
    audit_violations: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def threads(self) -> list[list[MemEvent]]:
        """Per-thread program-order event streams."""
        streams: list[list[MemEvent]] = [[] for _ in range(self.n_threads)]
        for ev in self.events:
            streams[ev.tid].append(ev)
        for stream in streams:
            stream.sort(key=lambda e: e.po)
        return streams

    def writes_by_key(self) -> dict[tuple[int, bool], list[MemEvent]]:
        """Per-location write lists in completion (coherence) order."""
        write = int(MemClass.WRITE)
        by_key: dict[tuple[int, bool], list[MemEvent]] = {}
        for ev in self.events:
            if ev.cls == write and ev.completed >= 0:
                by_key.setdefault(ev.key, []).append(ev)
        for writes in by_key.values():
            writes.sort(key=lambda e: e.completed)
        return by_key
