"""Execution recorder: the opt-in hook that captures memory-event logs.

An :class:`ExecutionRecorder` is handed to
:class:`~repro.tango.executor.TangoExecutor` (or to the model-aware
:class:`~repro.verify.relaxed.RelaxedEngine`) before a run.  The executor
calls :meth:`record` for every performed load, store and synchronization
operation; the relaxed engine additionally uses the :meth:`begin` /
:meth:`complete` pair so a buffered store can occupy its program-order
slot at issue time but take its place in the global coherence order only
when it drains.

The recorder also registers itself as the coherence listener of the
:class:`~repro.mem.coherence.CoherentMemorySystem`, mirroring every
protocol transition (install / upgrade / invalidate / downgrade / evict)
into a directory-style shadow state and auditing the single-writer /
multiple-reader invariant as the events stream in.  A protocol bug
therefore surfaces as an ``audit_violations`` entry even when the
ordering axioms still hold.

One recorder records exactly one execution; build a fresh one per run.
"""

from __future__ import annotations

from ..isa import MemClass
from ..mem.cache import EXCLUSIVE, MODIFIED, SHARED
from .events import EventLog, MemEvent

#: Sentinel for "derive reads-from automatically from the global store".
AUTO_RF = object()

_READ = int(MemClass.READ)
_WRITE = int(MemClass.WRITE)
_ACQUIRE = int(MemClass.ACQUIRE)
_RELEASE = int(MemClass.RELEASE)
_BARRIER = int(MemClass.BARRIER)

_STATE_NAMES = {SHARED: "S", EXCLUSIVE: "E", MODIFIED: "M"}


class RecorderError(Exception):
    """Raised on recorder misuse (reuse across runs, bad bindings)."""


class ExecutionRecorder:
    """Captures the global memory-event log of one execution."""

    def __init__(self) -> None:
        self.events: list[MemEvent] = []
        self.coherence: list[tuple] = []
        self.audit_violations: list[str] = []
        self._n_threads = 0
        self._po: list[int] = []
        self._completed = 0
        #: (addr, wide) -> gid of the last write that performed globally.
        self._last_write: dict[tuple[int, bool], int] = {}
        #: sync addr -> gid of the last completed release-class event.
        self._last_release: dict[int, int] = {}
        #: barrier addr -> completed arrival count (drives episodes).
        self._barrier_done: dict[int, int] = {}
        #: line -> {cpu: MESI state}: the coherence mirror for the audit.
        self._mirror: dict[int, dict[int, int]] = {}

    # -- lifecycle -----------------------------------------------------------

    def bind(self, n_threads: int) -> None:
        """Size the per-thread program-order counters (executor calls)."""
        if self._n_threads and self._n_threads != n_threads:
            raise RecorderError(
                "recorder already bound to a different run; "
                "use one recorder per execution"
            )
        self._n_threads = n_threads
        if len(self._po) < n_threads:
            self._po.extend([0] * (n_threads - len(self._po)))

    def log(self) -> EventLog:
        """The captured execution witness."""
        return EventLog(
            n_threads=self._n_threads,
            events=self.events,
            coherence=self.coherence,
            audit_violations=self.audit_violations,
        )

    # -- event capture -------------------------------------------------------

    def begin(
        self,
        tid: int,
        pc: int,
        op: int,
        cls: int,
        addr: int,
        value: object = None,
        wide: bool = False,
    ) -> MemEvent:
        """Create an event in program order without completing it.

        Used by the relaxed engine for stores entering a write buffer:
        the event claims its program-order slot now, and joins the global
        coherence order in :meth:`complete` when the store drains.
        """
        ev = MemEvent(
            gid=len(self.events), tid=tid, po=self._po[tid], pc=pc,
            op=op, cls=cls, addr=addr, wide=wide, value=value,
        )
        self._po[tid] += 1
        self.events.append(ev)
        return ev

    def complete(self, ev: MemEvent) -> None:
        """Mark the event globally performed (visible to all processors)."""
        ev.completed = self._completed
        self._completed += 1
        cls = ev.cls
        if cls == _WRITE:
            self._last_write[ev.key] = ev.gid
        elif cls == _RELEASE:
            self._last_release[ev.addr] = ev.gid
        elif cls == _BARRIER:
            done = self._barrier_done.get(ev.addr, 0)
            ev.episode = done // self._n_threads
            self._barrier_done[ev.addr] = done + 1

    def perform_read(
        self, ev: MemEvent, value: object, rf_event: object = AUTO_RF
    ) -> None:
        """Resolve and complete a read that claimed its slot earlier.

        Used by the relaxed engine's out-of-order issue mode: a load in
        the decode window owns its program-order slot from :meth:`begin`,
        but observes its value (and reads-from edge) only when it issues,
        possibly after younger accesses of the same thread.
        """
        ev.value = value
        if rf_event is AUTO_RF:
            ev.rf = self._last_write.get(ev.key, -1)
        elif rf_event is not None:
            ev.rf = rf_event.gid  # type: ignore[union-attr]
        self.complete(ev)

    def record(
        self,
        tid: int,
        pc: int,
        op: int,
        cls: int,
        addr: int,
        value: object = None,
        wide: bool = False,
        rf_event: object = AUTO_RF,
    ) -> MemEvent:
        """Record an operation that issues and performs atomically.

        This is the Tango executor's path (its functional host performs
        every access against the shared store in virtual-time order), and
        the relaxed engine's path for loads and synchronization.  For
        reads, ``rf_event`` may name the forwarding store explicitly;
        by default the reads-from edge points at the last write that
        performed globally on the same location.
        """
        ev = self.begin(tid, pc, op, cls, addr, value, wide)
        if cls == _READ:
            if rf_event is AUTO_RF:
                ev.rf = self._last_write.get(ev.key, -1)
            elif rf_event is not None:
                ev.rf = rf_event.gid  # type: ignore[union-attr]
        elif cls == _ACQUIRE:
            ev.rf = self._last_release.get(addr, -1)
        self.complete(ev)
        return ev

    # -- coherence listener (installed by CoherentMemorySystem) --------------

    def coherence_event(self, kind: str, cpu: int, line: int, extra) -> None:
        """Observe one protocol transition and audit the SWMR invariant.

        ``extra`` is the installed state for ``install``, and the dirty
        flag for ``invalidate`` / ``downgrade`` / ``evict``.
        """
        self.coherence.append((kind, cpu, line, extra))
        holders = self._mirror.setdefault(line, {})
        if kind == "install":
            holders[cpu] = extra
            self._audit_line(line, holders)
        elif kind == "upgrade":
            if holders.get(cpu) != SHARED:
                self._flag(
                    f"cpu {cpu} upgraded line {line:#x} it held as "
                    f"{_STATE_NAMES.get(holders.get(cpu), 'I')}"
                )
            holders[cpu] = MODIFIED
            self._audit_line(line, holders)
        elif kind == "invalidate" or kind == "evict":
            holders.pop(cpu, None)
        elif kind == "downgrade":
            if cpu in holders:
                holders[cpu] = SHARED

    def _audit_line(self, line: int, holders: dict[int, int]) -> None:
        owners = [c for c, s in holders.items() if s in (MODIFIED, EXCLUSIVE)]
        if len(owners) > 1 or (owners and len(holders) > 1):
            self._flag(
                f"SWMR violated on line {line:#x}: "
                + ", ".join(
                    f"cpu{c}={_STATE_NAMES[s]}"
                    for c, s in sorted(holders.items())
                )
            )

    def _flag(self, message: str) -> None:
        self.audit_violations.append(message)
