"""Whole-application verification through the recorded Tango executor.

The Tango host performs every access against the single functional store
in virtual-time order, so its recorded executions are sequentially
consistent by construction — every model's axioms must accept them, and
the coherence-event audit must stay clean.  Running the five benchmark
applications through the checker is therefore a *regression oracle*: a
future executor or protocol change that silently reorders or corrupts
events turns up as a happens-before cycle, an rf value mismatch, or an
SWMR audit entry.

The litmus cross-check at the bottom runs a litmus program on the Tango
executor (rather than the relaxed engine) for the same reason: the
resulting log must pass under *every* model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps import build_app
from ..service.pool import run_jobs
from ..tango.executor import MultiprocessorConfig, TangoExecutor
from .checker import CheckResult, check_execution
from .litmus import ALL_MODELS, CATALOG
from .recorder import ExecutionRecorder


@dataclass
class AppVerifyResult:
    """Per-application verification outcome across models."""

    app: str
    n_events: int
    n_coherence_events: int
    checks: dict[str, CheckResult]
    functional_ok: bool

    @property
    def ok(self) -> bool:
        return self.functional_ok and all(
            c.ok for c in self.checks.values()
        )

    def format(self) -> str:
        status = "ok" if self.ok else "FAIL"
        models = ", ".join(
            f"{name}={'ok' if c.ok else 'FAIL'}"
            for name, c in self.checks.items()
        )
        lines = [
            f"[{self.app}] {status}: {self.n_events} events, "
            f"{self.n_coherence_events} coherence events, "
            f"functional={'ok' if self.functional_ok else 'FAIL'}, "
            f"{models}"
        ]
        for check in self.checks.values():
            if not check.ok:
                lines.append(check.format())
        return "\n".join(lines)


def verify_app(
    app: str,
    models=ALL_MODELS,
    n_procs: int = 8,
    preset: str = "tiny",
    miss_penalty: int = 50,
    compiled: bool = True,
) -> AppVerifyResult:
    """Record one application run and check it against ``models``."""
    workload = build_app(app, n_procs=n_procs, preset=preset)
    recorder = ExecutionRecorder()
    config = MultiprocessorConfig(
        n_cpus=n_procs, miss_penalty=miss_penalty, trace_cpus=()
    )
    executor = TangoExecutor(
        workload.programs,
        config,
        memory=workload.memory,
        compiled=compiled,
        recorder=recorder,
    )
    result = executor.run()
    functional_ok = True
    try:
        workload.verify(result.memory)
    except AssertionError:
        functional_ok = False
    log = recorder.log()
    checks = {name: check_execution(log, name) for name in models}
    return AppVerifyResult(
        app=app,
        n_events=len(log),
        n_coherence_events=len(log.coherence),
        checks=checks,
        functional_ok=functional_ok,
    )


def _app_job(job) -> AppVerifyResult:
    app, models, n_procs, preset, miss_penalty = job
    return verify_app(
        app, models=models, n_procs=n_procs, preset=preset,
        miss_penalty=miss_penalty,
    )


def verify_apps(
    apps,
    models=ALL_MODELS,
    n_procs: int = 8,
    preset: str = "tiny",
    miss_penalty: int = 50,
    jobs: int = 1,
) -> list[AppVerifyResult]:
    """Verify several applications, optionally across worker processes.

    The fan-out runs on the supervised pool: a worker that dies or
    wedges is restarted and its application retried, so one bad run
    cannot abort the whole verification sweep.
    """
    job_list = [
        (app, tuple(models), n_procs, preset, miss_penalty) for app in apps
    ]
    return run_jobs(
        _app_job,
        [(job,) for job in job_list],
        jobs=jobs,
        labels=[f"verify:{job[0]}" for job in job_list],
    )


def tango_crosscheck(test) -> dict[str, CheckResult]:
    """Run a litmus test on the (SC-atomic) Tango executor.

    The recorded log must be accepted by every model — the relaxed
    outcomes only exist in the model-aware engine.
    """
    if isinstance(test, str):
        test = CATALOG[test]
    programs, _ = test.build()
    recorder = ExecutionRecorder()
    config = MultiprocessorConfig(
        n_cpus=len(programs), trace_cpus=()
    )
    TangoExecutor(programs, config, recorder=recorder).run()
    log = recorder.log()
    return {name: check_execution(log, name) for name in ALL_MODELS}
