"""Multiple hardware contexts — the competitive technique of §5.

The paper's discussion names multiple-context processors (APRIL, HEP,
MASA, Weber & Gupta) as an alternative way to hide memory latency: keep
K register contexts resident and switch to another context whenever the
current one misses in the cache, instead of looking ahead within one
instruction stream.

This model makes the comparison concrete.  A blocking-read, in-order
processor holds K contexts (each fed by the trace of a *different*
processor of the same multiprocessor run — the natural source of
independent streams).  On a read miss or synchronization stall the
processor pays a fixed context-switch penalty and resumes the next ready
context; a context whose miss is outstanding becomes ready again when the
miss completes.  Writes are buffered (release consistency on the host,
like the trace generator), so only read/synchronization stalls trigger
switches.

The figure of merit mirrors the paper's: how much of the aggregate
read-stall time does context interleaving hide, as a function of K and of
the switch penalty — to be placed alongside the DS window sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
import heapq

from ..isa import MemClass
from ..tango import Trace
from .requests import MemRequest, drive
from .results import ExecutionBreakdown


@dataclass
class MultiContextConfig:
    """Knobs of the multiple-context processor."""

    #: Cycles lost on every context switch (register-bank swap, pipeline
    #: refill).  The April paper assumes ~10 cycles; 0 models an ideal
    #: zero-overhead switch (HEP-style).
    switch_penalty: int = 4


class MultiContextProcessor:
    """Switch-on-miss interleaving of K blocking-read contexts."""

    def __init__(
        self,
        traces: list[Trace],
        config: MultiContextConfig | None = None,
    ) -> None:
        if not traces:
            raise ValueError("need at least one context")
        self.traces = traces
        self.config = config or MultiContextConfig()

    def run(self, label: str | None = None) -> ExecutionBreakdown:
        """Simulate until every context's trace is exhausted."""
        return drive(self.steps(label=label))

    def steps(self, label: str | None = None):
        """The multicontext timing loop as a resumable stepper.

        Suspends at every read miss (the answer re-times it through
        whatever serves the request — the trace's baked stall standalone,
        the shared fabric under co-simulation).  Synchronization stays
        replayed from the trace's baked waits: with K contexts
        multiplexed onto one request stream, a context parked on an
        unresolved cross-processor wait would block its siblings, so the
        live-sync mode is reserved for the single-context models.
        """
        switch_penalty = self.config.switch_penalty
        k = len(self.traces)
        positions = [0] * k
        # Columnar views: the run loop reads only these four fields.
        mc_cols = [tr.mem_class for tr in self.traces]
        stall_cols = [tr.stall for tr in self.traces]
        wait_cols = [tr.wait for tr in self.traces]
        addr_cols = [tr.addr for tr in self.traces]
        #: contexts ready to run now (FIFO round-robin order).
        ready = list(range(k))
        #: min-heap of (wakeup_time, context) for stalled contexts.
        sleeping: list[tuple[int, int]] = []

        t = 0
        busy = sync = read = write = other = 0
        switches = 0

        while ready or sleeping:
            if not ready:
                # Every context is waiting on memory: idle until the
                # first wakeup.  This exposed time is the latency the
                # technique failed to hide; attribute it by the class of
                # the access the woken context stalled on.
                wake_t, ctx = heapq.heappop(sleeping)
                idle = max(0, wake_t - t)
                pos = positions[ctx]
                cls = mc_cols[ctx][pos - 1]
                if cls in (MemClass.ACQUIRE, MemClass.BARRIER):
                    sync += idle
                else:
                    read += idle
                t = max(t, wake_t)
                if pos < len(self.traces[ctx]):
                    ready.append(ctx)
                while sleeping and sleeping[0][0] <= t:
                    _, other_ctx = heapq.heappop(sleeping)
                    if positions[other_ctx] < len(self.traces[other_ctx]):
                        ready.append(other_ctx)
                continue

            ctx = ready.pop(0)
            mc = mc_cols[ctx]
            stalls = stall_cols[ctx]
            waits = wait_cols[ctx]
            addrs = addr_cols[ctx]
            pos = positions[ctx]
            n = len(mc)

            # Run the context until it stalls or finishes.
            stalled = False
            while pos < n:
                cls = mc[pos]
                stall = stalls[pos] + waits[pos]
                if cls == MemClass.READ and stalls[pos] > 0:
                    # A read miss: re-time it at the cycle the access
                    # begins (the coming t + 1).
                    lat = yield MemRequest(
                        addrs[pos], False, t + 1, stalls[pos]
                    )
                    stall = lat + waits[pos]
                pos += 1
                busy += 1
                t += 1
                if cls == MemClass.NONE:
                    continue
                if cls == MemClass.WRITE or cls == MemClass.RELEASE:
                    continue  # buffered; latency hidden on this host
                if stall == 0:
                    continue
                # Read miss or synchronization: switch away.
                heapq.heappush(sleeping, (t + stall, ctx))
                stalled = True
                break
            positions[ctx] = pos

            # Collect any contexts whose stalls completed meanwhile.
            while sleeping and sleeping[0][0] <= t:
                _, other_ctx = heapq.heappop(sleeping)
                if positions[other_ctx] < len(self.traces[other_ctx]):
                    ready.append(other_ctx)

            if stalled and switch_penalty and ready:
                # Pay the switch cost only when actually resuming another
                # context ('other': mechanism overhead, not memory time).
                other += switch_penalty
                t += switch_penalty
                switches += 1

        total_instructions = sum(len(tr) for tr in self.traces)
        return ExecutionBreakdown(
            label=label or f"MC-k{k}-p{switch_penalty}",
            busy=busy, sync=sync, read=read, write=write, other=other,
            instructions=total_instructions,
            extras={"switches": switches, "contexts": k},
        )


def simulate_multicontext(
    traces: list[Trace],
    switch_penalty: int = 4,
    label: str | None = None,
) -> ExecutionBreakdown:
    """Convenience wrapper around :class:`MultiContextProcessor`."""
    return MultiContextProcessor(
        traces, MultiContextConfig(switch_penalty=switch_penalty)
    ).run(label=label)
