"""BASE — the fully serial in-order reference processor.

The left-most column of every graph in the paper's Figure 3: an in-order
processor that completes each operation before initiating the next one.
There is no overlap of any kind, so execution time is simply the sum of
one cycle per instruction plus every memory stall and every
synchronization wait, and the breakdown attribution is exact by
construction.
"""

from __future__ import annotations

from ..isa import MemClass
from ..tango import Trace
from .results import ExecutionBreakdown

_MC_READ = int(MemClass.READ)
_MC_WRITE = int(MemClass.WRITE)
_MC_ACQUIRE = int(MemClass.ACQUIRE)
_MC_RELEASE = int(MemClass.RELEASE)
_MC_BARRIER = int(MemClass.BARRIER)


def simulate_base(
    trace: Trace, label: str = "BASE", network=None
) -> ExecutionBreakdown:
    """Run the BASE model over a trace (columnar: flat-int iteration).

    With a :class:`repro.net.ContentionNetwork` attached, each miss's
    latency is re-timed through the interconnect at the cycle the
    serial processor reaches it, instead of using the trace's baked
    stall (which then only marks hit/miss).
    """
    sync = 0
    read = 0
    write = 0
    if network is not None:
        return _simulate_base_network(trace, label, network)
    for cls, stall, wait in zip(trace.mem_class, trace.stall, trace.wait):
        if cls == _MC_READ:
            read += stall
        elif cls == _MC_WRITE or cls == _MC_RELEASE:
            # Releases are folded into write time, as in the paper.
            write += stall
        elif cls == _MC_ACQUIRE or cls == _MC_BARRIER:
            sync += wait + stall
    return ExecutionBreakdown(
        label=label,
        busy=len(trace),
        sync=sync,
        read=read,
        write=write,
        instructions=len(trace),
    )


def _simulate_base_network(
    trace: Trace, label: str, network
) -> ExecutionBreakdown:
    """BASE with per-miss network timing: one access at a time, each
    re-timed at the cycle it begins, so the unloaded network sees the
    serial processor's widely spaced requests."""
    cpu = trace.cpu
    replay = network.replay_miss
    sync = 0
    read = 0
    write = 0
    t = 0
    for cls, stall, wait, addr in zip(
        trace.mem_class, trace.stall, trace.wait, trace.addr
    ):
        t += 1
        if cls == _MC_READ:
            if stall:
                lat = replay(cpu, addr, False, t)
                read += lat
                t += lat
        elif cls == _MC_WRITE:
            if stall:
                lat = replay(cpu, addr, True, t)
                write += lat
                t += lat
        elif cls == _MC_RELEASE:
            # Sync-variable access latency is not a coherence miss.
            write += stall
            t += stall
        elif cls == _MC_ACQUIRE or cls == _MC_BARRIER:
            sync += wait + stall
            # The trace can carry a negative wait (a wakeup granted
            # before this processor's virtual time); the accounting
            # keeps it, but the network clock must not run backwards.
            if wait + stall > 0:
                t += wait + stall
    return ExecutionBreakdown(
        label=label,
        busy=len(trace),
        sync=sync,
        read=read,
        write=write,
        instructions=len(trace),
    )
