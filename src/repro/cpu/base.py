"""BASE — the fully serial in-order reference processor.

The left-most column of every graph in the paper's Figure 3: an in-order
processor that completes each operation before initiating the next one.
There is no overlap of any kind, so execution time is simply the sum of
one cycle per instruction plus every memory stall and every
synchronization wait, and the breakdown attribution is exact by
construction.

The timing loop lives in :func:`base_stepper`, a resumable stepper
(:mod:`repro.cpu.requests`): it suspends at every miss and every
acquire, so the same model runs standalone (:func:`simulate_base`
drives it with the trace's baked latencies or a private network) and
under the co-simulation engine, where the answers come from the shared
fabric and from other processors' progress.
"""

from __future__ import annotations

from ..isa import MemClass
from ..tango import Trace
from .requests import MemRequest, ReleaseNotify, SyncRequest, drive
from .results import ExecutionBreakdown

_MC_READ = int(MemClass.READ)
_MC_WRITE = int(MemClass.WRITE)
_MC_ACQUIRE = int(MemClass.ACQUIRE)
_MC_RELEASE = int(MemClass.RELEASE)
_MC_BARRIER = int(MemClass.BARRIER)


def base_stepper(
    trace: Trace, label: str = "BASE", clamp_time: bool = False
):
    """The BASE timing loop as a resumable stepper.

    One access at a time: each miss is requested at the cycle the serial
    processor reaches it.  With ``clamp_time`` set the clock never runs
    backwards on a negative sync wait (a wakeup granted before this
    processor's virtual time) — the network-replay behaviour; without it
    the accounting matches the closed-form fixed-penalty sums.
    """
    cpu = trace.cpu
    sync = 0
    read = 0
    write = 0
    t = 0
    ordinal = 0
    for cls, stall, wait, addr in zip(
        trace.mem_class, trace.stall, trace.wait, trace.addr
    ):
        t += 1
        if cls == _MC_READ:
            if stall:
                lat = yield MemRequest(addr, False, t, stall)
                read += lat
                t += lat
        elif cls == _MC_WRITE:
            if stall:
                lat = yield MemRequest(addr, True, t, stall)
                write += lat
                t += lat
        elif cls == _MC_RELEASE:
            # Sync-variable access latency is not a coherence miss.
            write += stall
            t += stall
            yield ReleaseNotify(cpu, ordinal, t, addr)
            ordinal += 1
        elif cls == _MC_ACQUIRE or cls == _MC_BARRIER:
            w = yield SyncRequest(cpu, ordinal, cls, t, wait, stall, addr)
            ordinal += 1
            sync += w + stall
            # The trace can carry a negative wait; the accounting keeps
            # it, but a stateful network's clock must not run backwards.
            if not clamp_time or w + stall > 0:
                t += w + stall
    return ExecutionBreakdown(
        label=label,
        busy=len(trace),
        sync=sync,
        read=read,
        write=write,
        instructions=len(trace),
    )


def simulate_base(
    trace: Trace, label: str = "BASE", network=None
) -> ExecutionBreakdown:
    """Run the BASE model over a trace by driving its stepper.

    With a :class:`repro.net.ContentionNetwork` attached, each miss's
    latency is re-timed through the interconnect at the cycle the
    serial processor reaches it, instead of using the trace's baked
    stall (which then only marks hit/miss).
    """
    stepper = base_stepper(
        trace, label=label, clamp_time=network is not None
    )
    return drive(stepper, network=network, cpu=trace.cpu)
