"""BASE — the fully serial in-order reference processor.

The left-most column of every graph in the paper's Figure 3: an in-order
processor that completes each operation before initiating the next one.
There is no overlap of any kind, so execution time is simply the sum of
one cycle per instruction plus every memory stall and every
synchronization wait, and the breakdown attribution is exact by
construction.
"""

from __future__ import annotations

from ..isa import MemClass
from ..tango import Trace
from .results import ExecutionBreakdown


def simulate_base(trace: Trace, label: str = "BASE") -> ExecutionBreakdown:
    """Run the BASE model over a trace."""
    busy = 0
    sync = 0
    read = 0
    write = 0
    for record in trace:
        busy += 1
        cls = record.mem_class
        if cls == MemClass.READ:
            read += record.stall
        elif cls == MemClass.WRITE or cls == MemClass.RELEASE:
            # Releases are folded into write time, as in the paper.
            write += record.stall
        elif cls == MemClass.ACQUIRE or cls == MemClass.BARRIER:
            sync += record.wait + record.stall
    return ExecutionBreakdown(
        label=label,
        busy=busy,
        sync=sync,
        read=read,
        write=write,
        instructions=len(trace),
    )
