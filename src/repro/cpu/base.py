"""BASE — the fully serial in-order reference processor.

The left-most column of every graph in the paper's Figure 3: an in-order
processor that completes each operation before initiating the next one.
There is no overlap of any kind, so execution time is simply the sum of
one cycle per instruction plus every memory stall and every
synchronization wait, and the breakdown attribution is exact by
construction.
"""

from __future__ import annotations

from ..isa import MemClass
from ..tango import Trace
from .results import ExecutionBreakdown

_MC_READ = int(MemClass.READ)
_MC_WRITE = int(MemClass.WRITE)
_MC_ACQUIRE = int(MemClass.ACQUIRE)
_MC_RELEASE = int(MemClass.RELEASE)
_MC_BARRIER = int(MemClass.BARRIER)


def simulate_base(trace: Trace, label: str = "BASE") -> ExecutionBreakdown:
    """Run the BASE model over a trace (columnar: flat-int iteration)."""
    sync = 0
    read = 0
    write = 0
    for cls, stall, wait in zip(trace.mem_class, trace.stall, trace.wait):
        if cls == _MC_READ:
            read += stall
        elif cls == _MC_WRITE or cls == _MC_RELEASE:
            # Releases are folded into write time, as in the paper.
            write += stall
        elif cls == _MC_ACQUIRE or cls == _MC_BARRIER:
            sync += wait + stall
    return ExecutionBreakdown(
        label=label,
        busy=len(trace),
        sync=sync,
        read=read,
        write=write,
        instructions=len(trace),
    )
