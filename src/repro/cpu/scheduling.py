"""Compiler-style read scheduling — the paper's named future work.

Sections 5 and 7 of the paper point at an alternative to out-of-order
hardware: *"compiler rescheduling may allow dynamic processors with small
windows or statically scheduled processors with non-blocking reads to
effectively hide read latency"* by moving loads away from the first use
of their value.

This module implements that idea as a trace transformation.  Within each
dynamic basic block (a run of instructions between control transfers —
the region a simple list scheduler can reorder), every load is hoisted as
far toward the top of the block as its dependences allow:

* it cannot move above an instruction that writes one of its source
  registers (true dependence on the address computation);
* it cannot move above an instruction that reads or writes its own
  destination register (anti/output dependence — a compiler has already
  allocated registers here);
* it cannot move above a store or synchronization operation to preserve
  the memory model visible to other processors (a conservative compiler
  barrier, matching what a correct scheduler for SC/PC must do; under RC
  a data store could be crossed, but staying conservative keeps one
  transformation valid for every model);
* the hoist distance is capped (``max_hoist``), modelling the scheduler's
  limited scope.

The transformed trace is then run through the SS processor (static
scheduling, non-blocking reads): the load-to-use distance the compiler
created is exactly what SS converts into hidden latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import MemClass, is_control
from ..tango import Trace, TraceRecord


@dataclass
class ScheduleStats:
    """What the pass did, for reporting and tests."""

    loads_seen: int = 0
    loads_moved: int = 0
    total_hoist: int = 0

    @property
    def average_hoist(self) -> float:
        return self.total_hoist / self.loads_moved if self.loads_moved \
            else 0.0


def _blocks(records: list[TraceRecord]):
    """Split the dynamic trace into scheduler regions.

    A region ends at any control transfer (taken or not: the compiler
    schedules within static basic blocks, and a branch instruction ends
    one), at synchronization, and at stores (conservative memory
    barrier).  The boundary instruction belongs to the region it ends.
    """
    start = 0
    for i, record in enumerate(records):
        cls = record.mem_class
        boundary = (
            is_control(record.op)
            or cls == MemClass.WRITE
            or cls in (MemClass.ACQUIRE, MemClass.RELEASE,
                       MemClass.BARRIER)
        )
        if boundary:
            yield start, i + 1
            start = i + 1
    if start < len(records):
        yield start, len(records)


def schedule_reads_early(
    trace: Trace,
    max_hoist: int = 32,
) -> tuple[Trace, ScheduleStats]:
    """Hoist loads toward their region tops; returns a new trace.

    The returned trace preserves per-region instruction multisets and all
    register dependences, so the functional execution is unchanged; only
    the *order* (and therefore the overlap available to a non-blocking
    processor) differs.
    """
    records = list(trace.records)
    stats = ScheduleStats()
    for start, end in _blocks(records):
        region = records[start:end]
        for i in range(len(region)):
            record = region[i]
            if record.mem_class != MemClass.READ:
                continue
            stats.loads_seen += 1
            srcs = {r for r in (record.rs1, record.rs2) if r > 0}
            dest = record.rd
            j = i
            while j > 0 and (i - j) < max_hoist:
                above = region[j - 1]
                # Within a region only plain instructions and other loads
                # occur (stores/sync/branches end regions); loads may
                # cross each other -- the compiler defines program order.
                if above.rd > 0 and (
                    above.rd in srcs or above.rd == dest
                ):
                    break  # true or output dependence
                if dest > 0 and dest in (above.rs1, above.rs2):
                    break  # anti dependence
                j -= 1
            if j < i:
                region.insert(j, region.pop(i))
                stats.loads_moved += 1
                stats.total_hoist += i - j
        records[start:end] = region
    return Trace.from_records(records, cpu=trace.cpu), stats
