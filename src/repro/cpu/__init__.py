"""Trace-driven processor models: BASE, SSBR, SS, and DS.

The four architectures of the paper's §4.1, all consuming the annotated
traces produced by :mod:`repro.tango`:

* ``BASE`` — in-order, no overlap at all (the normalisation reference);
* ``SSBR`` — statically scheduled, blocking reads, 16-deep write buffer;
* ``SS`` — statically scheduled, non-blocking reads (stall at first use);
* ``DS`` — dynamically scheduled with a reorder-buffer window of 16-256.

Use :func:`simulate` with a :class:`ProcessorConfig` for a uniform entry
point, or call the per-model functions directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..consistency import ConsistencyModel, get_model
from ..tango import Trace
from .base import base_stepper, simulate_base
from .ds import (
    BranchTargetBuffer,
    DSConfig,
    DSProcessor,
    simulate_ds,
    simulate_ds_fast,
)
from .multicontext import (
    MultiContextConfig,
    MultiContextProcessor,
    simulate_multicontext,
)
from .requests import MemRequest, ReleaseNotify, SyncRequest, drive
from .scheduling import ScheduleStats, schedule_reads_early
from .results import ExecutionBreakdown
from .static import (
    WriteBuffer,
    simulate_ss,
    simulate_ssbr,
    ss_stepper,
    ssbr_stepper,
)
from .static_fast import (
    simulate_base_fast,
    simulate_ss_fast,
    simulate_ssbr_fast,
)


# Process-wide default for ProcessorConfig.engine, so one switch (the
# CLI's global --engine flag) retargets every config built afterwards.
# Configs are built before any process-pool fan-out and pickle the
# resolved value with them, so workers inherit the choice.
DEFAULT_ENGINE = "fast"


@dataclass
class ProcessorConfig:
    """Uniform description of one processor/consistency configuration.

    Attributes:
        kind: "base", "ssbr", "ss" or "ds".
        model: consistency model name ("SC", "PC", "WO", "RC"); ignored
            for "base".
        window: reorder-buffer size for the DS processor.
        issue_width: instructions decoded/retired per cycle (DS only).
        perfect_bp: perfect branch prediction (DS only, Figure 4).
        ignore_deps: ignore register data dependences (DS only, Figure 4).
        ds: extra knobs forwarded into :class:`DSConfig`.
        engine: "fast" (default) runs the vectorized/event-driven
            engines of :mod:`repro.cpu.static_fast` and
            :mod:`repro.cpu.ds.event_engine`; "reference" runs the
            scalar oracles.  Results are byte-identical either way —
            the choice only affects throughput.
    """

    kind: str = "ds"
    model: str = "RC"
    window: int = 64
    issue_width: int = 1
    perfect_bp: bool = False
    ignore_deps: bool = False
    ds: dict = field(default_factory=dict)
    engine: str = field(default_factory=lambda: DEFAULT_ENGINE)

    def label(self) -> str:
        if self.kind == "base":
            return "BASE"
        name = f"{self.kind.upper()}-{self.model.upper()}"
        if self.kind == "ds":
            name += f"-w{self.window}"
            if self.issue_width != 1:
                name += f"-i{self.issue_width}"
            if self.perfect_bp:
                name += "-pbp"
            if self.ignore_deps:
                name += "-nodep"
        return name


def simulate(
    trace: Trace, config: ProcessorConfig, network=None, probe=None
) -> ExecutionBreakdown:
    """Run the configured processor model over ``trace``.

    ``network`` (a :class:`repro.net.ContentionNetwork`) re-times every
    miss through a contended interconnect at the cycle the model issues
    it; None keeps the trace's baked fixed-penalty stalls.  ``probe``
    (a :class:`repro.obs.Probe`) collects occupancy histograms, retire
    spans (DS), and the resulting breakdown; results are byte-identical
    with or without one.
    """
    kind = config.kind.lower()
    engine = config.engine.lower()
    if engine not in ("fast", "reference"):
        raise ValueError(f"unknown engine {config.engine!r}")
    fast = engine == "fast"
    if kind == "base":
        run_base = simulate_base_fast if fast else simulate_base
        breakdown = run_base(trace, label=config.label(), network=network)
    else:
        model = get_model(config.model)
        if kind == "ssbr":
            run_ssbr = simulate_ssbr_fast if fast else simulate_ssbr
            breakdown = run_ssbr(
                trace, model, label=config.label(), network=network,
                probe=probe,
            )
        elif kind == "ss":
            run_ss = simulate_ss_fast if fast else simulate_ss
            breakdown = run_ss(
                trace, model, label=config.label(), network=network,
                probe=probe,
            )
        elif kind == "ds":
            ds_kwargs = dict(config.ds)
            if network is not None:
                ds_kwargs["network"] = network
            ds_config = DSConfig(
                window=config.window,
                issue_width=config.issue_width,
                perfect_branch_prediction=config.perfect_bp,
                ignore_data_dependences=config.ignore_deps,
                **ds_kwargs,
            )
            run_ds = simulate_ds_fast if fast else simulate_ds
            breakdown = run_ds(
                trace, model, ds_config, label=config.label(), probe=probe
            )
        else:
            raise ValueError(f"unknown processor kind {config.kind!r}")
    if probe is not None and probe.enabled:
        probe.publish_breakdown(breakdown)
    return breakdown


__all__ = [
    "BranchTargetBuffer",
    "ConsistencyModel",
    "DSConfig",
    "DSProcessor",
    "ExecutionBreakdown",
    "MemRequest",
    "MultiContextConfig",
    "MultiContextProcessor",
    "ProcessorConfig",
    "ReleaseNotify",
    "ScheduleStats",
    "SyncRequest",
    "base_stepper",
    "drive",
    "schedule_reads_early",
    "simulate_multicontext",
    "ss_stepper",
    "ssbr_stepper",
    "WriteBuffer",
    "simulate",
    "simulate_base",
    "simulate_base_fast",
    "simulate_ds",
    "simulate_ds_fast",
    "simulate_ss",
    "simulate_ss_fast",
    "simulate_ssbr",
    "simulate_ssbr_fast",
]
