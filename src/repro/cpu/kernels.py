"""Shared numpy passes over trace columns (the fast-path kernels).

The fast engines in :mod:`repro.cpu.static_fast` and
:mod:`repro.cpu.ds.event_engine` owe their speed to a simple split:
everything that depends only on the *trace contents* (not on simulated
time) is precomputed here in batch, and the remaining time-dependent
work runs event-driven over the handful of rows that can actually stall.

Three kernels:

* :func:`mem_event_rows` — the row indices carrying a memory class,
  selected with one vectorized compare instead of a per-row branch;
* :func:`control_mispredicts` — the full branch-prediction outcome
  column.  BTB state evolves only on control rows, in trace order,
  independent of simulated time, so the per-decode predict/update pair
  of the scalar engine collapses into one linear pass done up front;
* :func:`reg_use_rows` — for each architectural register, the sorted
  row indices that read it.  The SS model uses this to turn "stall at
  first use of a pending load" into a bounded ``searchsorted`` window
  instead of a per-row operand check;
* :func:`producer_rows` — for each row and each source operand, the
  most recent earlier row writing that register.  Renaming through the
  reorder buffer links a consumer to the *last* writer at decode, and
  decode order equals trace order, so the DS engine's ``last_writer``
  dict collapses into one ``searchsorted`` per register done up front.
"""

from __future__ import annotations

import numpy as np

from ..isa import Op, is_control

#: Opcode-indexed control-flow table as a numpy mask source.
_N_OPS = max(Op) + 1
_IS_CONTROL_NP = np.zeros(_N_OPS, dtype=bool)
for _op in Op:
    _IS_CONTROL_NP[_op] = is_control(_op)

_OP_MEMBER = [None] * _N_OPS
for _op in Op:
    _OP_MEMBER[_op] = _op


def mem_event_rows(mem_class_col: np.ndarray) -> np.ndarray:
    """Row indices whose memory class is not NONE, ascending."""
    return np.nonzero(mem_class_col)[0]


def control_mispredicts(
    op_col: np.ndarray,
    pc_col: np.ndarray,
    next_pc_col: np.ndarray,
    btb,
) -> np.ndarray:
    """Predict every control row through ``btb``, returning a full-length
    boolean column: True where fetch would stall on a misprediction.

    Replays exactly the predict/update sequence the scalar DS engine
    performs at decode (decode order == trace order), including the BTB's
    sentinel outcomes: -2 (direct jump, always correct) and -1 (indirect
    target miss, always wrong).
    """
    n = len(op_col)
    misp = np.zeros(n, dtype=bool)
    ctrl = np.nonzero(_IS_CONTROL_NP[op_col])[0]
    if not ctrl.size:
        return misp
    ops = op_col[ctrl].tolist()
    pcs = pc_col[ctrl].tolist()
    next_pcs = next_pc_col[ctrl].tolist()
    rows = ctrl.tolist()
    predict = btb.predict
    update = btb.update
    members = _OP_MEMBER
    for k in range(len(rows)):
        op = members[ops[k]]
        pc = pcs[k]
        next_pc = next_pcs[k]
        fallthrough = pc + 1
        prediction = predict(op, pc, fallthrough)
        if prediction == -2:
            correct = True
        elif prediction == -1:
            correct = False
        else:
            correct = prediction == next_pc
        update(op, pc, next_pc != fallthrough, next_pc)
        if not correct:
            misp[rows[k]] = True
    return misp


def reg_use_rows(
    rs1_col: np.ndarray, rs2_col: np.ndarray
) -> dict[int, np.ndarray]:
    """Map each register id (>= 0) to the ascending row indices reading
    it via rs1 or rs2.  A row reading the same register twice appears
    twice; consumers tolerate duplicates."""
    n = len(rs1_col)
    rows = np.arange(n, dtype=np.int64)
    regs = np.concatenate(
        [rs1_col.astype(np.int64), rs2_col.astype(np.int64)]
    )
    both_rows = np.concatenate([rows, rows])
    mask = regs >= 0
    regs = regs[mask]
    both_rows = both_rows[mask]
    if not regs.size:
        return {}
    order = np.lexsort((both_rows, regs))
    regs = regs[order]
    both_rows = both_rows[order]
    cuts = np.nonzero(np.diff(regs))[0] + 1
    starts = np.concatenate([[0], cuts])
    ends = np.concatenate([cuts, [len(regs)]])
    return {
        int(regs[s]): both_rows[s:e]
        for s, e in zip(starts.tolist(), ends.tolist())
    }


def producer_rows(
    rd_col: np.ndarray, rs1_col: np.ndarray, rs2_col: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """For each row, the most recent *earlier* row writing each source
    register (-1 when the operand is absent, register 0, or never
    written before).  Register 0 is hardwired zero on both sides,
    matching the scalar engine's ``src > 0`` / ``rd > 0`` guards."""
    n = len(rd_col)
    prod1 = np.full(n, -1, dtype=np.int64)
    prod2 = np.full(n, -1, dtype=np.int64)
    rd = rd_col.astype(np.int64)
    write_rows = np.nonzero(rd > 0)[0]
    if not write_rows.size:
        return prod1, prod2
    write_regs = rd[write_rows]
    for reg in np.unique(write_regs).tolist():
        writers = write_rows[write_regs == reg]
        for src_col, prod in ((rs1_col, prod1), (rs2_col, prod2)):
            uses = np.nonzero(src_col == reg)[0]
            if not uses.size:
                continue
            pos = np.searchsorted(writers, uses, side="left") - 1
            prod[uses] = np.where(pos >= 0, writers[pos], -1)
    return prod1, prod2
