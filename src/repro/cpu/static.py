"""Statically scheduled processors: SSBR and SS (paper §4.1).

Two in-order models sharing a consistency-aware write buffer:

* **SSBR** — blocking reads.  The processor stalls for every read miss.
  Writes go to a 16-deep write buffer whose behaviour the consistency
  model governs: under SC the buffer must drain before a read may be
  serviced and writes retire serially; under PC reads bypass pending
  writes but buffered writes still retire one at a time (serialized miss
  latencies — the source of OCEAN's write-buffer-full stalls); under
  WO/RC buffered writes retire overlapped, so the buffer almost never
  fills.
* **SS** — non-blocking reads.  A read miss does not stall the processor;
  the stall is deferred to the first *use* of the return value
  (per-register ready times).  A 16-deep read buffer bounds outstanding
  reads.  Under SC and PC reads are still serialized with respect to
  previous reads, so only the read-to-use distance is hidden — which is
  why the paper finds SS barely improves on SSBR without compiler
  rescheduling.

Both models retire exactly one instruction per cycle plus stalls, so
``busy`` equals the instruction count and the attribution identity
``total == busy + sync + read + write`` is exact.
"""

from __future__ import annotations

from collections import deque

from ..consistency import ConsistencyModel
from ..isa import MemClass
from ..tango import Trace
from .requests import MemRequest, ReleaseNotify, SyncRequest, drive
from .results import ExecutionBreakdown

WRITE_BUFFER_DEPTH = 16
READ_BUFFER_DEPTH = 16

_MC_NONE = int(MemClass.NONE)
_MC_READ = int(MemClass.READ)
_MC_WRITE = int(MemClass.WRITE)
_MC_RELEASE = int(MemClass.RELEASE)
_MC_BARRIER = int(MemClass.BARRIER)


class WriteBuffer:
    """A FIFO write buffer with consistency-governed retirement.

    Entries are (perform_time, free_time, addr).  ``perform_time`` is when
    the write becomes visible; ``free_time`` is when the FIFO slot frees
    (entries free in order).  Under serializing models (SC, PC) a write
    may not begin its memory access until the previous write performed;
    under overlapping models (WO, RC) writes pipeline.
    """

    def __init__(self, model: ConsistencyModel,
                 depth: int = WRITE_BUFFER_DEPTH) -> None:
        self.model = model
        self.depth = depth
        self._entries: deque[tuple[int, int]] = deque()  # (free, addr)
        self._pending_addrs: dict[int, int] = {}
        self.last_perform = 0
        self.last_free = 0

    def _drain(self, now: int) -> None:
        while self._entries and self._entries[0][0] <= now:
            _, addr = self._entries.popleft()
            if addr >= 0:
                count = self._pending_addrs.get(addr, 0) - 1
                if count <= 0:
                    self._pending_addrs.pop(addr, None)
                else:
                    self._pending_addrs[addr] = count

    def push(self, now: int, stall: int, addr: int = -1,
             perform_floor: int = 0) -> tuple[int, int]:
        """Buffer a write issued at ``now``.

        ``perform_floor`` is the earliest the write may perform (used for
        releases that must wait for prior accesses).  Returns
        ``(new_now, full_stall)`` — the cycles the processor stalled
        because the buffer was full.
        """
        self._drain(now)
        full_stall = 0
        if len(self._entries) >= self.depth:
            wait_until = self._entries[0][0]
            full_stall = wait_until - now
            now = wait_until
            self._drain(now)
        if self.model.writes_overlap:
            perform = max(now, perform_floor) + stall
        else:
            perform = max(now, self.last_perform, perform_floor) + stall
        self.last_perform = max(self.last_perform, perform)
        free = max(perform, self.last_free)
        self.last_free = free
        self._entries.append((free, addr))
        if addr >= 0:
            self._pending_addrs[addr] = self._pending_addrs.get(addr, 0) + 1
        return now, full_stall

    def holds_addr(self, addr: int, now: int) -> bool:
        self._drain(now)
        return addr in self._pending_addrs

    def drain_time(self) -> int:
        """Time at which every buffered write has performed and freed."""
        return self.last_free if self._entries else 0


def _buffer_histogram(probe, name: str, capacity: int):
    """The occupancy histogram for ``name``, or None when unprobed."""
    if probe is None or not probe.metrics.enabled:
        return None
    from ..obs.metrics import occupancy_bounds

    return probe.metrics.histogram(name, occupancy_bounds(capacity))


def ssbr_stepper(
    trace: Trace,
    model: ConsistencyModel,
    label: str | None = None,
    write_buffer_depth: int = WRITE_BUFFER_DEPTH,
    clamp_time: bool = False,
    probe=None,
):
    """The SSBR timing loop as a resumable stepper.

    Suspends at every miss (the answer re-times it) and every acquire
    (the answer is the wait), and announces each release's perform time.
    ``clamp_time`` keeps the clock from running backwards on a negative
    sync wait — the behaviour required when a stateful network consumes
    the request times.  ``probe`` samples write-buffer depth per push;
    it never alters timing.
    """
    cpu = trace.cpu
    buf = WriteBuffer(model, write_buffer_depth)
    wb_hist = _buffer_histogram(
        probe, "static.write_buffer_depth", write_buffer_depth
    )
    t = 0
    busy = sync = read = write = 0
    last_release_perform = 0
    ordinal = 0
    for cls, stall, wait, addr in zip(
        trace.mem_class, trace.stall, trace.wait, trace.addr
    ):
        t += 1
        busy += 1
        if cls == _MC_NONE:
            continue
        if cls == _MC_READ:
            if not model.reads_bypass_writes:
                drained = buf.drain_time()
                if drained > t:
                    write += drained - t
                    t = drained
            if stall and not buf.holds_addr(addr, t):
                stall = yield MemRequest(addr, False, t, stall)
                read += stall
                t += stall
        elif cls == _MC_WRITE or cls == _MC_RELEASE:
            floor = 0
            if cls == _MC_RELEASE and model.name in ("WO", "RC"):
                # A release may not perform before prior accesses; reads
                # already completed (blocking), writes via the buffer's
                # serialization floor.
                floor = buf.last_perform
            if stall and cls == _MC_WRITE:
                stall = yield MemRequest(addr, True, t, stall)
            t, full_stall = buf.push(
                t, stall, addr, perform_floor=floor
            )
            write += full_stall
            if wb_hist is not None:
                wb_hist.observe(len(buf._entries))
            if cls == _MC_RELEASE:
                last_release_perform = max(
                    last_release_perform, buf.last_perform
                )
                # The buffered release performs at the buffer's (now
                # maximal) perform time, possibly in this cpu's future.
                yield ReleaseNotify(cpu, ordinal, buf.last_perform, addr)
                ordinal += 1
        else:  # acquire or barrier
            if cls == _MC_BARRIER or not model.reads_bypass_writes:
                drained = buf.drain_time()
                if drained > t:
                    write += drained - t
                    t = drained
            elif (
                model.requires(MemClass.RELEASE, MemClass.ACQUIRE)
                and last_release_perform > t
            ):
                # WO keeps sync accesses ordered among themselves; RCpc
                # lets an acquire bypass a pending release.
                write += last_release_perform - t
                t = last_release_perform
            w = yield SyncRequest(cpu, ordinal, cls, t, wait, stall, addr)
            ordinal += 1
            sync += w + stall
            # A negative wait (wakeup granted before this processor's
            # virtual time) is kept in the accounting, but under a
            # network the clock must not run backwards.
            if not clamp_time or w + stall > 0:
                t += w + stall
    # Final drain so configurations are comparable end-to-end.
    drained = buf.drain_time()
    if drained > t:
        write += drained - t
        t = drained
    return ExecutionBreakdown(
        label=label or f"SSBR-{model.name}",
        busy=busy, sync=sync, read=read, write=write,
        instructions=len(trace),
    )


def simulate_ssbr(
    trace: Trace,
    model: ConsistencyModel,
    label: str | None = None,
    write_buffer_depth: int = WRITE_BUFFER_DEPTH,
    network=None,
    probe=None,
) -> ExecutionBreakdown:
    """Run the SSBR (static scheduling, blocking reads) model.

    With ``network`` set, every miss (the trace's baked stall marks
    hit/miss) is re-timed through the interconnect at the cycle the
    access begins, so miss latency varies with load.  Drives
    :func:`ssbr_stepper` to completion.
    """
    stepper = ssbr_stepper(
        trace, model, label=label,
        write_buffer_depth=write_buffer_depth,
        clamp_time=network is not None, probe=probe,
    )
    return drive(stepper, network=network, cpu=trace.cpu)


def ss_stepper(
    trace: Trace,
    model: ConsistencyModel,
    label: str | None = None,
    write_buffer_depth: int = WRITE_BUFFER_DEPTH,
    read_buffer_depth: int = READ_BUFFER_DEPTH,
    clamp_time: bool = False,
    probe=None,
):
    """The SS timing loop as a resumable stepper (see
    :func:`ssbr_stepper` for the protocol).  A read miss is requested at
    its *start* cycle — after read serialization under SC/PC — which may
    lie ahead of the processor's own clock."""
    cpu = trace.cpu
    buf = WriteBuffer(model, write_buffer_depth)
    wb_hist = _buffer_histogram(
        probe, "static.write_buffer_depth", write_buffer_depth
    )
    rb_hist = _buffer_histogram(
        probe, "static.read_buffer_depth", read_buffer_depth
    )
    reg_ready: dict[int, int] = {}
    outstanding: deque[int] = deque()  # perform times of pending reads
    t = 0
    busy = sync = read = write = 0
    last_read_perform = 0
    last_release_perform = 0
    ordinal = 0
    serialize_reads = model.name in ("SC", "PC")

    def all_reads_done() -> int:
        return max(outstanding) if outstanding else 0

    for cls, stall, wait, addr, rs1, rs2, rd in zip(
        trace.mem_class, trace.stall, trace.wait, trace.addr,
        trace.rs1, trace.rs2, trace.rd,
    ):
        t += 1
        busy += 1
        # Operand availability: only loads produce late values on an
        # in-order machine, so operand waits are read stalls.
        avail = t
        if rs1 >= 0:
            avail = max(avail, reg_ready.get(rs1, 0))
        if rs2 >= 0:
            avail = max(avail, reg_ready.get(rs2, 0))
        if avail > t:
            read += avail - t
            t = avail
        if cls == _MC_NONE:
            continue
        if cls == _MC_READ:
            while outstanding and outstanding[0] <= t:
                outstanding.popleft()
            if len(outstanding) >= read_buffer_depth:
                stall_until = outstanding[0]
                read += stall_until - t
                t = stall_until
                while outstanding and outstanding[0] <= t:
                    outstanding.popleft()
            start = t
            if not model.reads_bypass_writes:
                start = max(start, buf.drain_time())
                if start > t:
                    write += start - t
                    t = start
            if serialize_reads and last_read_perform > start:
                # SC/PC: this read may not begin until the previous read
                # performed; the processor itself does not stall.
                start = last_read_perform
            if stall and not buf.holds_addr(addr, t):
                stall = yield MemRequest(addr, False, start, stall)
                perform = start + stall
            else:
                perform = start
            last_read_perform = max(last_read_perform, perform)
            if perform > t:
                outstanding.append(perform)
                if rb_hist is not None:
                    rb_hist.observe(len(outstanding))
                if rd >= 0:
                    reg_ready[rd] = perform
        elif cls == _MC_WRITE or cls == _MC_RELEASE:
            floor = 0
            if cls == _MC_RELEASE and model.name in ("WO", "RC"):
                floor = max(buf.last_perform, all_reads_done())
            if stall and cls == _MC_WRITE:
                stall = yield MemRequest(addr, True, t, stall)
            t, full_stall = buf.push(
                t, stall, addr, perform_floor=floor
            )
            write += full_stall
            if wb_hist is not None:
                wb_hist.observe(len(buf._entries))
            if cls == _MC_RELEASE:
                last_release_perform = max(
                    last_release_perform, buf.last_perform
                )
                yield ReleaseNotify(cpu, ordinal, buf.last_perform, addr)
                ordinal += 1
        else:  # acquire or barrier
            if cls == _MC_BARRIER or not model.reads_bypass_writes:
                reads_done = all_reads_done()
                if reads_done > t:
                    read += reads_done - t
                    t = reads_done
                drained = buf.drain_time()
                if drained > t:
                    write += drained - t
                    t = drained
            elif (
                model.requires(MemClass.RELEASE, MemClass.ACQUIRE)
                and last_release_perform > t
            ):
                write += last_release_perform - t
                t = last_release_perform
            elif serialize_reads and last_read_perform > t:
                read += last_read_perform - t
                t = last_read_perform
            w = yield SyncRequest(cpu, ordinal, cls, t, wait, stall, addr)
            ordinal += 1
            sync += w + stall
            # A negative wait (wakeup granted before this processor's
            # virtual time) is kept in the accounting, but under a
            # network the clock must not run backwards.
            if not clamp_time or w + stall > 0:
                t += w + stall
            outstanding.clear()
    reads_done = all_reads_done()
    if reads_done > t:
        read += reads_done - t
        t = reads_done
    drained = buf.drain_time()
    if drained > t:
        write += drained - t
        t = drained
    return ExecutionBreakdown(
        label=label or f"SS-{model.name}",
        busy=busy, sync=sync, read=read, write=write,
        instructions=len(trace),
    )


def simulate_ss(
    trace: Trace,
    model: ConsistencyModel,
    label: str | None = None,
    write_buffer_depth: int = WRITE_BUFFER_DEPTH,
    read_buffer_depth: int = READ_BUFFER_DEPTH,
    network=None,
    probe=None,
) -> ExecutionBreakdown:
    """Run the SS (static scheduling, non-blocking reads) model.

    ``network`` re-times each miss at the cycle its access begins, and
    ``probe`` samples write-/read-buffer depths (see
    :func:`simulate_ssbr`).  Drives :func:`ss_stepper` to completion.
    """
    stepper = ss_stepper(
        trace, model, label=label,
        write_buffer_depth=write_buffer_depth,
        read_buffer_depth=read_buffer_depth,
        clamp_time=network is not None, probe=probe,
    )
    return drive(stepper, network=network, cpu=trace.cpu)
