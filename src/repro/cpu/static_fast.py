"""Event-driven fast path for the static models (BASE, SSBR and SS).

Byte-identical reimplementations of :mod:`repro.cpu.base` and
:mod:`repro.cpu.static`, built on two observations about the in-order
machines:

1. Only rows that touch memory can move simulated time by anything other
   than the unconditional ``t += 1; busy += 1`` — and while the write
   buffer is *clean* (every entry freed at or before the current time),
   even most memory rows are no-ops: a hit read checks a drained buffer,
   and a hit write pushes an entry that performs and frees instantly.
   The truly *sparse* events are misses, releases, and synchronization.

2. Between processed events, ``t`` advances exactly one cycle per row,
   so the simulated time of any skipped row is recoverable in closed
   form.  Skipped hit-writes are folded lazily: when the next real event
   arrives, the buffer state is reconstructed as if the last skipped
   write had just been pushed, which is exactly what the scalar model's
   lazy drain would have left behind.  Under SC/PC the last skipped
   hit-read folds into ``last_read_perform`` the same way.

Whenever the clean-buffer invariant breaks — a write miss leaves
``last_free > t``, serialization leaves ``last_perform > t``, or a
negative synchronization wait jumps time backwards — the loop drops into
*dense* mode and runs the exact scalar body over every memory row until
the buffer is clean again.

For SS, rows that can stall on a pending register (operand use of an
outstanding load), reads forced by SC/PC read serialization, and reads
that may find the read buffer full are discovered dynamically: each is
bounded by a ``perform - t`` window (t advances at least one cycle per
row), so candidate rows come from ``bisect`` over precomputed sorted
index lists and merge into the event stream through small heaps.  A
synchronization row that moves ``t`` backwards re-arms the windows.

All trace-derived indices (event rows, per-register use lists, last
write/read scans) depend only on the trace contents, so they are built
once and memoised on ``trace.fastpath_cache`` — a consistency-model
sweep over one trace pays for them once.

Probed runs (buffer-depth histograms observe *every* push) delegate to
the scalar implementations so the histograms stay exact; results are
byte-identical either way.  The scalar implementations remain the
differential oracle — see ``tests/test_fastpath.py``.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from collections import deque

import numpy as np

from ..consistency import ConsistencyModel
from ..isa import MemClass
from ..tango import Trace
from .kernels import mem_event_rows, reg_use_rows
from .results import ExecutionBreakdown
from .static import (
    READ_BUFFER_DEPTH,
    WRITE_BUFFER_DEPTH,
    WriteBuffer,
    _buffer_histogram,
    simulate_ss,
    simulate_ssbr,
)

_MC_NONE = int(MemClass.NONE)
_MC_READ = int(MemClass.READ)
_MC_WRITE = int(MemClass.WRITE)
_MC_ACQUIRE = int(MemClass.ACQUIRE)
_MC_RELEASE = int(MemClass.RELEASE)
_MC_BARRIER = int(MemClass.BARRIER)


class _TraceIndex:
    """Model-independent derived indices of one trace, computed once.

    Everything here is a function of the trace columns alone — event row
    numbers, sparse-event positions, last-write/last-read scans, sorted
    per-register use lists — so one instance serves every consistency
    model, network, and static model run over the same trace.
    """

    __slots__ = (
        "n", "ev_l", "n_ev", "cls_l", "stall_l", "wait_l", "addr_l",
        "rd_l", "rs1_l", "rs2_l", "sp_l", "n_sp", "write_pos_l",
        "read_posm_l", "read_rows_l", "read_pos_l", "pos_of_row",
        "users", "ds",
    )

    def __init__(self, trace: Trace) -> None:
        #: Lazily attached repro.cpu.ds.event_engine._DSIndex.
        self.ds = None
        self.n = n = len(trace)
        cols = trace.np_columns()
        rd_np, rs1_np, rs2_np = cols[3], cols[4], cols[5]
        addr_np, stall_np, wait_np, mc_np = cols[6], cols[7], cols[8], cols[9]
        ev = mem_event_rows(mc_np)
        n_ev = len(ev)
        mc_ev = mc_np[ev]
        stall_ev = stall_np[ev]
        self.ev_l = ev.tolist()
        self.n_ev = n_ev
        self.cls_l = mc_ev.tolist()
        self.stall_l = stall_ev.tolist()
        self.wait_l = wait_np[ev].tolist()
        self.addr_l = addr_np[ev].tolist()
        self.rd_l = rd_np[ev].tolist()
        self.rs1_l = rs1_np.tolist()
        self.rs2_l = rs2_np.tolist()
        # Sparse events: anything that can observably change state while
        # the write buffer is clean — misses, releases, sync.
        self.sp_l = np.nonzero(
            (stall_ev > 0) | (mc_ev >= _MC_ACQUIRE)
        )[0].tolist()
        self.n_sp = len(self.sp_l)
        positions = np.arange(n_ev)
        # Position of the last write / last read at or before each
        # position, for the lazy folds over skipped clean rows.
        self.write_pos_l = np.maximum.accumulate(
            np.where(mc_ev == _MC_WRITE, positions, -1)
        ).tolist()
        self.read_posm_l = np.maximum.accumulate(
            np.where(mc_ev == _MC_READ, positions, -1)
        ).tolist()
        read_pos = np.nonzero(mc_ev == _MC_READ)[0]
        self.read_pos_l = read_pos.tolist()
        self.read_rows_l = ev[read_pos].tolist()
        pos_of_row = np.full(n, -1, dtype=np.int64)
        pos_of_row[ev] = positions
        self.pos_of_row = pos_of_row.tolist()
        self.users = {
            reg: rows.tolist()
            for reg, rows in reg_use_rows(rs1_np, rs2_np).items()
        }


def _trace_index(trace: Trace) -> _TraceIndex:
    idx = trace.fastpath_cache
    if idx is None or idx.n != len(trace):
        idx = _TraceIndex(trace)
        trace.fastpath_cache = idx
    return idx


def simulate_base_fast(
    trace: Trace, label: str = "BASE", network=None
) -> ExecutionBreakdown:
    """BASE as pure column arithmetic (drop-in for ``simulate_base``).

    Without a network the breakdown is three masked sums.  With one, the
    replay calls must still happen serially at the exact cycles the
    scalar model issues them (the network is stateful), so only the
    non-memory rows are skipped.
    """
    n = len(trace)
    if n and network is None:
        cols = trace.np_columns()
        stall_np, wait_np, mc_np = cols[7], cols[8], cols[9]
        stall64 = stall_np.astype(np.int64)
        read = int(stall64[mc_np == _MC_READ].sum())
        write = int(
            stall64[(mc_np == _MC_WRITE) | (mc_np == _MC_RELEASE)].sum()
        )
        sync_mask = (mc_np == _MC_ACQUIRE) | (mc_np == _MC_BARRIER)
        sync = int(stall64[sync_mask].sum() + wait_np[sync_mask].sum())
        return ExecutionBreakdown(
            label=label, busy=n, sync=sync, read=read, write=write,
            instructions=n,
        )
    sync = read = write = 0
    if n:
        cpu = trace.cpu
        replay = network.replay_miss
        idx = _trace_index(trace)
        ev_l, cls_l = idx.ev_l, idx.cls_l
        stall_l, wait_l, addr_l = idx.stall_l, idx.wait_l, idx.addr_l
        t = 0
        prev = -1
        for p in range(idx.n_ev):
            i = ev_l[p]
            t += i - prev
            prev = i
            cls = cls_l[p]
            stall = stall_l[p]
            if cls == _MC_READ:
                if stall:
                    lat = replay(cpu, addr_l[p], False, t)
                    read += lat
                    t += lat
            elif cls == _MC_WRITE:
                if stall:
                    lat = replay(cpu, addr_l[p], True, t)
                    write += lat
                    t += lat
            elif cls == _MC_RELEASE:
                write += stall
                t += stall
            else:  # acquire or barrier
                wait = wait_l[p]
                sync += wait + stall
                if wait + stall > 0:
                    t += wait + stall
    return ExecutionBreakdown(
        label=label, busy=n, sync=sync, read=read, write=write,
        instructions=n,
    )


def _fold_skipped_writes(buf: WriteBuffer, tau: int, addr: int) -> None:
    """Reconstruct the buffer as the scalar model would have left it after
    a run of skipped clean hit-writes whose last one was to ``addr`` at
    time ``tau``: one live entry, ``last_perform == last_free == tau``.
    (The earlier skipped writes were already drained by that push.)"""
    buf.last_perform = tau
    buf.last_free = tau
    buf._entries.append((tau, addr))
    if addr >= 0:
        buf._pending_addrs[addr] = buf._pending_addrs.get(addr, 0) + 1


def simulate_ssbr_fast(
    trace: Trace,
    model: ConsistencyModel,
    label: str | None = None,
    write_buffer_depth: int = WRITE_BUFFER_DEPTH,
    network=None,
    probe=None,
) -> ExecutionBreakdown:
    """SSBR over sparse events only (drop-in for ``simulate_ssbr``)."""
    if _buffer_histogram(
        probe, "static.write_buffer_depth", write_buffer_depth
    ) is not None:
        # Depth histograms observe every push; keep them exact.
        return simulate_ssbr(
            trace, model, label=label,
            write_buffer_depth=write_buffer_depth,
            network=network, probe=probe,
        )
    cpu = trace.cpu
    buf = WriteBuffer(model, write_buffer_depth)
    n = len(trace)
    t = 0
    busy = n  # one busy cycle per retired row, unconditionally
    sync = read = write = 0
    last_release_perform = 0
    bypass = model.reads_bypass_writes
    wo_rc = model.name in ("WO", "RC")
    req_rel_acq = model.requires(MemClass.RELEASE, MemClass.ACQUIRE)
    if n:
        idx = _trace_index(trace)
        ev_l, cls_l, stall_l = idx.ev_l, idx.cls_l, idx.stall_l
        wait_l, addr_l, sp_l = idx.wait_l, idx.addr_l, idx.sp_l
        write_pos_l = idx.write_pos_l
        n_ev, n_sp = idx.n_ev, idx.n_sp
        pos = 0   # first unprocessed event position (dense cursor)
        si = 0    # sparse cursor
        prev = -1
        while True:
            if buf.last_free > t or buf.last_perform > t:
                # Dirty buffer: every memory row matters until it drains.
                if pos >= n_ev:
                    break
                p = pos
            else:
                while si < n_sp and sp_l[si] < pos:
                    si += 1
                if si >= n_sp:
                    break
                p = sp_l[si]
                si += 1
                if p > pos:
                    lwp = write_pos_l[p - 1]
                    if lwp >= pos:
                        # Fold the skipped clean hit-writes at linear
                        # time: each skipped row advanced t by one.
                        _fold_skipped_writes(
                            buf, t + (ev_l[lwp] - prev), addr_l[lwp]
                        )
            i = ev_l[p]
            t += i - prev
            prev = i
            pos = p + 1
            cls = cls_l[p]
            stall = stall_l[p]
            if cls == _MC_READ:
                if not bypass:
                    drained = buf.drain_time()
                    if drained > t:
                        write += drained - t
                        t = drained
                if stall and not buf.holds_addr(addr_l[p], t):
                    if network is not None:
                        stall = network.replay_miss(cpu, addr_l[p], False, t)
                    read += stall
                    t += stall
            elif cls == _MC_WRITE or cls == _MC_RELEASE:
                floor = 0
                if cls == _MC_RELEASE and wo_rc:
                    floor = buf.last_perform
                if network is not None and stall and cls == _MC_WRITE:
                    stall = network.replay_miss(cpu, addr_l[p], True, t)
                t, full_stall = buf.push(
                    t, stall, addr_l[p], perform_floor=floor
                )
                write += full_stall
                if cls == _MC_RELEASE:
                    last_release_perform = max(
                        last_release_perform, buf.last_perform
                    )
            else:  # acquire or barrier
                wait = wait_l[p]
                if cls == _MC_BARRIER or not bypass:
                    drained = buf.drain_time()
                    if drained > t:
                        write += drained - t
                        t = drained
                elif req_rel_acq and last_release_perform > t:
                    write += last_release_perform - t
                    t = last_release_perform
                sync += wait + stall
                if network is None or wait + stall > 0:
                    t += wait + stall
        # Rows after the last processed event advance time one cycle
        # each; trailing clean hit-writes free before the end of trace,
        # so the final drain below sees them already retired.
        t += (n - 1) - prev
    drained = buf.drain_time()
    if drained > t:
        write += drained - t
        t = drained
    return ExecutionBreakdown(
        label=label or f"SSBR-{model.name}",
        busy=busy, sync=sync, read=read, write=write,
        instructions=n,
    )


def simulate_ss_fast(
    trace: Trace,
    model: ConsistencyModel,
    label: str | None = None,
    write_buffer_depth: int = WRITE_BUFFER_DEPTH,
    read_buffer_depth: int = READ_BUFFER_DEPTH,
    network=None,
    probe=None,
) -> ExecutionBreakdown:
    """SS over sparse + dynamically discovered events (drop-in for
    ``simulate_ss``)."""
    if (
        _buffer_histogram(
            probe, "static.write_buffer_depth", write_buffer_depth
        ) is not None
        or _buffer_histogram(
            probe, "static.read_buffer_depth", read_buffer_depth
        ) is not None
    ):
        return simulate_ss(
            trace, model, label=label,
            write_buffer_depth=write_buffer_depth,
            read_buffer_depth=read_buffer_depth,
            network=network, probe=probe,
        )
    cpu = trace.cpu
    buf = WriteBuffer(model, write_buffer_depth)
    n = len(trace)
    reg_ready: dict[int, int] = {}
    outstanding: deque[int] = deque()
    t = 0
    busy = n
    sync = read = write = 0
    last_read_perform = 0
    last_release_perform = 0
    serialize_reads = model.name in ("SC", "PC")
    bypass = model.reads_bypass_writes
    wo_rc = model.name in ("WO", "RC")
    req_rel_acq = model.requires(MemClass.RELEASE, MemClass.ACQUIRE)
    if n:
        idx = _trace_index(trace)
        ev_l, cls_l, stall_l = idx.ev_l, idx.cls_l, idx.stall_l
        wait_l, addr_l, rd_l = idx.wait_l, idx.addr_l, idx.rd_l
        rs1_l, rs2_l, sp_l = idx.rs1_l, idx.rs2_l, idx.sp_l
        write_pos_l, read_posm_l = idx.write_pos_l, idx.read_posm_l
        read_rows_l, read_pos_l = idx.read_rows_l, idx.read_pos_l
        pos_of_row, users = idx.pos_of_row, idx.users
        n_ev, n_sp = idx.n_ev, idx.n_sp
        # Non-memory rows that may stall on a pending register.
        dyn: list[int] = []
        # Event-array positions forced to run their full body: memory
        # rows with a possibly-pending operand, reads inside an SC/PC
        # serialization window, reads that may find the buffer full.
        forced: list[int] = []
        # Highest read row already pushed to ``forced`` by a window —
        # overlapping serialization windows re-arm only the new tail.
        forced_hi = -1
        # Registers with possibly-pending ready times (backjump re-arm).
        armed: dict[int, int] = {}

        def arm(reg: int, perform: int, row: int) -> None:
            # Only the FIRST use inside the stall window can block:
            # processing it advances t to at least ``perform``, after
            # which every later use of the register sees a ready value.
            # (A backward time jump re-arms, so the window re-opens.)
            armed[reg] = perform
            use = users.get(reg)
            if use is None:
                return
            lo = bisect_right(use, row)
            if lo >= len(use):
                return
            j = use[lo]
            if j > row + (perform - t):
                return
            pj = pos_of_row[j]
            if pj >= 0:
                heapq.heappush(forced, pj)
            else:
                heapq.heappush(dyn, j)

        def arm_reads(row: int, horizon: int) -> None:
            """Force full processing of read rows in (row, row+horizon]."""
            nonlocal forced_hi
            end = row + horizon
            if end <= forced_hi:
                return
            lo = bisect_right(read_rows_l, max(row, forced_hi))
            hi = bisect_right(read_rows_l, end)
            for fp in read_pos_l[lo:hi]:
                heapq.heappush(forced, fp)
            forced_hi = end

        pos = 0
        si = 0
        prev = -1
        n_reads = len(read_rows_l)

        def next_sparse_row() -> int:
            nonlocal si
            while si < n_sp and sp_l[si] < pos:
                si += 1
            return ev_l[sp_l[si]] if si < n_sp else n

        def fold_to(row: int) -> None:
            """Consume the skipped clean positions whose row precedes
            ``row``: reconstruct the buffer after their last hit-write
            and (under SC/PC) the serialization point after their last
            hit-read, both at linear time — every skipped row advances
            ``t`` exactly one cycle from ``(prev, t)``."""
            nonlocal pos, last_read_perform
            lo = pos
            while pos < n_ev and ev_l[pos] < row:
                pos += 1
            if pos == lo:
                return
            lwp = write_pos_l[pos - 1]
            if lwp >= lo:
                _fold_skipped_writes(
                    buf, t + (ev_l[lwp] - prev), addr_l[lwp]
                )
            if serialize_reads:
                lrpp = read_posm_l[pos - 1]
                if lrpp >= lo:
                    tau = t + (ev_l[lrpp] - prev)
                    if tau > last_read_perform:
                        last_read_perform = tau

        while True:
            while dyn and dyn[0] <= prev:
                heapq.heappop(dyn)
            while forced and ev_l[forced[0]] <= prev:
                heapq.heappop(forced)
            dense = buf.last_free > t or buf.last_perform > t
            if dense:
                p = pos if pos < n_ev else -1
            else:
                while si < n_sp and sp_l[si] < pos:
                    si += 1
                p = sp_l[si] if si < n_sp else -1
                if forced and (p < 0 or ev_l[forced[0]] < ev_l[p]):
                    p = forced[0]
            nxt_m = ev_l[p] if p >= 0 else n
            nxt_d = dyn[0] if dyn else n
            if nxt_m >= n and nxt_d >= n:
                break
            if nxt_d < nxt_m:
                # A non-memory row that may stall on a pending operand.
                i = heapq.heappop(dyn)
                if not dense and pos < n_ev and ev_l[pos] < i:
                    fold_to(i)
                t += i - prev
                prev = i
                avail = t
                r = rs1_l[i]
                if r >= 0:
                    v = reg_ready.get(r, 0)
                    if v > avail:
                        avail = v
                r = rs2_l[i]
                if r >= 0:
                    v = reg_ready.get(r, 0)
                    if v > avail:
                        avail = v
                if avail > t:
                    read += avail - t
                    t = avail
                continue
            # A memory row (dense walk, sparse event, or forced row).
            i = ev_l[p]
            if not dense:
                if p > pos:
                    fold_to(i)
                if si < n_sp and sp_l[si] == p:
                    si += 1
            t += i - prev
            prev = i
            pos = p + 1
            avail = t
            r = rs1_l[i]
            if r >= 0:
                v = reg_ready.get(r, 0)
                if v > avail:
                    avail = v
            r = rs2_l[i]
            if r >= 0:
                v = reg_ready.get(r, 0)
                if v > avail:
                    avail = v
            if avail > t:
                read += avail - t
                t = avail
            cls = cls_l[p]
            stall = stall_l[p]
            if cls == _MC_READ:
                while outstanding and outstanding[0] <= t:
                    outstanding.popleft()
                if len(outstanding) >= read_buffer_depth:
                    stall_until = outstanding[0]
                    read += stall_until - t
                    t = stall_until
                    while outstanding and outstanding[0] <= t:
                        outstanding.popleft()
                start = t
                if not bypass:
                    start = max(start, buf.drain_time())
                    if start > t:
                        write += start - t
                        t = start
                if serialize_reads and last_read_perform > start:
                    start = last_read_perform
                if stall and not buf.holds_addr(addr_l[p], t):
                    if network is not None:
                        stall = network.replay_miss(
                            cpu, addr_l[p], False, start
                        )
                    perform = start + stall
                else:
                    perform = start
                last_read_perform = max(last_read_perform, perform)
                if perform > t:
                    outstanding.append(perform)
                    rd = rd_l[p]
                    if rd >= 0:
                        reg_ready[rd] = perform
                        arm(rd, perform, i)
                    if len(outstanding) >= read_buffer_depth:
                        arm_reads(i, max(outstanding) - t)
                if serialize_reads and last_read_perform > t:
                    if buf.last_free > t or buf.last_perform > t:
                        # Dense mode visits every read anyway; the
                        # window only needs covering past the drain.
                        arm_reads(i, last_read_perform - t)
                    else:
                        # Chain walk: process the serialization window's
                        # reads inline — each hit read in the window
                        # starts at last_read_perform, so they chain
                        # back-to-back until the window closes, the
                        # read buffer fills (jumping t forward), or
                        # another event interleaves.
                        ri = bisect_right(read_rows_l, i)
                        while last_read_perform > t and ri < n_reads:
                            rrow = read_rows_l[ri]
                            if t + (rrow - prev) >= last_read_perform:
                                break  # window closes before this read
                            while dyn and dyn[0] <= prev:
                                heapq.heappop(dyn)
                            while forced and ev_l[forced[0]] <= prev:
                                heapq.heappop(forced)
                            if (
                                rrow >= next_sparse_row()
                                or (dyn and dyn[0] < rrow)
                                or (forced and ev_l[forced[0]] < rrow)
                            ):
                                break  # another event comes first
                            rp = read_pos_l[ri]
                            ri += 1
                            if ev_l[pos] < rrow:
                                fold_to(rrow)
                            t += rrow - prev
                            prev = rrow
                            pos = rp + 1
                            avail = t
                            r = rs1_l[rrow]
                            if r >= 0:
                                v = reg_ready.get(r, 0)
                                if v > avail:
                                    avail = v
                            r = rs2_l[rrow]
                            if r >= 0:
                                v = reg_ready.get(r, 0)
                                if v > avail:
                                    avail = v
                            if avail > t:
                                read += avail - t
                                t = avail
                            while outstanding and outstanding[0] <= t:
                                outstanding.popleft()
                            if len(outstanding) >= read_buffer_depth:
                                stall_until = outstanding[0]
                                read += stall_until - t
                                t = stall_until
                                while outstanding and outstanding[0] <= t:
                                    outstanding.popleft()
                            start = t
                            if not bypass:
                                start = max(start, buf.drain_time())
                                if start > t:
                                    write += start - t
                                    t = start
                            if last_read_perform > start:
                                start = last_read_perform
                            # Non-sparse rows are hits (stall == 0).
                            perform = start
                            if perform > last_read_perform:
                                last_read_perform = perform
                            if perform > t:
                                outstanding.append(perform)
                                rd = rd_l[rp]
                                if rd >= 0:
                                    reg_ready[rd] = perform
                                    arm(rd, perform, rrow)
                                if len(outstanding) >= read_buffer_depth:
                                    arm_reads(rrow, max(outstanding) - t)
                        if last_read_perform > t:
                            arm_reads(prev, last_read_perform - t)
            elif cls == _MC_WRITE or cls == _MC_RELEASE:
                floor = 0
                if cls == _MC_RELEASE and wo_rc:
                    floor = max(
                        buf.last_perform,
                        max(outstanding) if outstanding else 0,
                    )
                if network is not None and stall and cls == _MC_WRITE:
                    stall = network.replay_miss(cpu, addr_l[p], True, t)
                t, full_stall = buf.push(
                    t, stall, addr_l[p], perform_floor=floor
                )
                write += full_stall
                if cls == _MC_RELEASE:
                    last_release_perform = max(
                        last_release_perform, buf.last_perform
                    )
            else:  # acquire or barrier
                wait = wait_l[p]
                if cls == _MC_BARRIER or not bypass:
                    reads_done = max(outstanding) if outstanding else 0
                    if reads_done > t:
                        read += reads_done - t
                        t = reads_done
                    drained = buf.drain_time()
                    if drained > t:
                        write += drained - t
                        t = drained
                elif req_rel_acq and last_release_perform > t:
                    write += last_release_perform - t
                    t = last_release_perform
                elif serialize_reads and last_read_perform > t:
                    read += last_read_perform - t
                    t = last_read_perform
                sync += wait + stall
                if network is None or wait + stall > 0:
                    t += wait + stall
                    if wait + stall < 0:
                        # Time jumped backwards: monotone-t windows no
                        # longer bound later rows; re-arm everything
                        # still pending from here.
                        for reg in list(armed):
                            perform = armed[reg]
                            if (
                                perform <= t
                                or reg_ready.get(reg, 0) != perform
                            ):
                                del armed[reg]
                            else:
                                arm(reg, perform, i)
                        if serialize_reads and last_read_perform > t:
                            arm_reads(i, last_read_perform - t)
                outstanding.clear()
        t += (n - 1) - prev
    reads_done = max(outstanding) if outstanding else 0
    if reads_done > t:
        read += reads_done - t
        t = reads_done
    drained = buf.drain_time()
    if drained > t:
        write += drained - t
        t = drained
    return ExecutionBreakdown(
        label=label or f"SS-{model.name}",
        busy=busy, sync=sync, read=read, write=write,
        instructions=n,
    )
