"""Execution-time breakdown — the quantity every figure in the paper plots.

The paper's Figures 3 and 4 report, per configuration, execution time
decomposed into four components (normalised to the BASE processor):

* **busy** — cycles retiring useful instructions;
* **sync** — cycles stalled on acquire synchronization (locks, event
  waits, barriers), including both contention/imbalance wait and the sync
  variable's access latency;
* **read** — cycles stalled on read (load) latency;
* **write** — cycles stalled on write latency, *including release
  operations* (the paper folds releases into write miss time).

Every processor model in :mod:`repro.cpu` returns an
:class:`ExecutionBreakdown`; the components always sum to ``total``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Canonical execution-time components, in stacked-bar order.  Every
#: consumer — table headers, bar segments, metrics names, profile
#: reports — renders from this one table so labels can never drift
#: between :mod:`repro.cpu.results` and :mod:`repro.experiments.report`.
COMPONENTS = ("busy", "sync", "read", "write", "other")

#: One-character bar glyph per component (ASCII stacked bars).
COMPONENT_GLYPHS = {
    "busy": "#",
    "sync": "S",
    "read": "R",
    "write": "W",
    "other": ".",
}


@dataclass
class ExecutionBreakdown:
    """Cycle counts of one trace-driven processor simulation."""

    label: str = ""
    busy: int = 0
    sync: int = 0
    read: int = 0
    write: int = 0
    #: Residual scheduling stall not attributable to the above (dependence
    #: bubbles at the reorder-buffer head, end-of-trace drain).  Kept
    #: separate for honesty; it is small for every configuration.
    other: int = 0
    instructions: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.busy + self.sync + self.read + self.write + self.other

    def components(self) -> dict[str, int]:
        """Raw cycle count per canonical component."""
        return {comp: getattr(self, comp) for comp in COMPONENTS}

    def normalized_to(self, base: "ExecutionBreakdown") -> dict[str, float]:
        """Component percentages of this run relative to ``base.total``."""
        scale = 100.0 / base.total if base.total else 0.0
        out = {comp: getattr(self, comp) * scale for comp in COMPONENTS}
        out["total"] = self.total * scale
        return out

    def read_latency_hidden_vs(self, base: "ExecutionBreakdown") -> float:
        """Fraction of the BASE read stall this run eliminated (0..1)."""
        if base.read == 0:
            return 0.0
        return max(0.0, min(1.0, 1.0 - self.read / base.read))

    def __str__(self) -> str:
        return (
            f"{self.label or 'run'}: total={self.total} busy={self.busy} "
            f"sync={self.sync} read={self.read} write={self.write} "
            f"other={self.other}"
        )
