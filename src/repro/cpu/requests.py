"""The resumable-stepper protocol shared by every processor model.

Each CPU model exposes its timing loop as a *stepper*: a generator that
runs the model forward and suspends at every point where the outside
world owes it an answer, yielding a request object and receiving the
answer via ``send()``:

* :class:`MemRequest` — a cache miss is about to access memory at a
  known cycle.  The answer is the miss latency in cycles.  Standalone
  replay answers with ``network.replay_miss(...)`` (or the trace's baked
  stall when there is no network); the co-simulation engine
  (:mod:`repro.cosim`) serves it on the *shared* fabric, so concurrent
  misses from other processors queue ahead of it.
* :class:`SyncRequest` — an acquire-type operation (lock acquire,
  barrier) is ready to wait.  The answer is the wait in cycles.  Replay
  answers with the trace's baked wait; the co-simulation engine's live
  mode resolves it against the *other processors'* progress using the
  recorded synchronization schedule.
* :class:`ReleaseNotify` — a release-type operation (unlock, event set
  or clear) performed at the given cycle.  Informational: the answer is
  ``None``; the co-simulation engine uses it to resolve cross-processor
  wait edges.

A stepper terminates by returning its
:class:`~repro.cpu.results.ExecutionBreakdown` (surfaced as
``StopIteration.value``).  :func:`drive` replays a stepper to completion
standalone — it is the engine behind the scalar reference simulators, so
the stepper *is* the timing model, not a copy of it.
"""

from __future__ import annotations


class MemRequest:
    """A miss about to begin its memory access at cycle ``time``.

    ``stall`` is the trace's baked latency (the fixed-penalty answer);
    ``is_write`` distinguishes read misses from write/upgrade misses.
    Only issued for actual misses (``stall > 0``).
    """

    __slots__ = ("addr", "is_write", "time", "stall")

    def __init__(self, addr: int, is_write: bool, time: int,
                 stall: int) -> None:
        self.addr = addr
        self.is_write = is_write
        self.time = time
        self.stall = stall


class SyncRequest:
    """An acquire-type operation waiting at cycle ``time``.

    ``cpu`` is the trace's processor id and ``ordinal`` the operation's
    index among this processor's synchronization-class trace rows
    (acquire, release, barrier share one counter) — together they key
    the recorded :class:`~repro.sync.schedule.SyncSchedule`.  ``wait``
    is the baked wait (the replay answer); ``stall`` the sync-variable
    access latency, which stays with the caller.
    """

    __slots__ = ("cpu", "ordinal", "cls", "time", "wait", "stall", "addr")

    def __init__(self, cpu: int, ordinal: int, cls: int, time: int,
                 wait: int, stall: int, addr: int) -> None:
        self.cpu = cpu
        self.ordinal = ordinal
        self.cls = cls
        self.time = time
        self.wait = wait
        self.stall = stall
        self.addr = addr


class ReleaseNotify:
    """A release-type operation performed at cycle ``time`` (answer: None)."""

    __slots__ = ("cpu", "ordinal", "time", "addr")

    def __init__(self, cpu: int, ordinal: int, time: int,
                 addr: int) -> None:
        self.cpu = cpu
        self.ordinal = ordinal
        self.time = time
        self.addr = addr


def drive(stepper, network=None, cpu: int = 0):
    """Run a stepper to completion standalone; returns its breakdown.

    Memory requests are answered by ``network.replay_miss`` at the cycle
    the model issued them (the trace's baked stall when ``network`` is
    None); sync requests are answered with the trace's baked wait.  This
    is exactly the pre-stepper behaviour of the scalar simulators, which
    now delegate here.
    """
    try:
        req = next(stepper)
        while True:
            kind = type(req)
            if kind is MemRequest:
                if network is not None:
                    ans = network.replay_miss(
                        cpu, req.addr, req.is_write, req.time
                    )
                else:
                    ans = req.stall
            elif kind is SyncRequest:
                ans = req.wait
            else:  # ReleaseNotify
                ans = None
            req = stepper.send(ans)
    except StopIteration as stop:
        return stop.value
