"""Branch target buffer with 2-bit counters (paper §3.1).

The paper's processor uses a 2048-entry, 4-way set-associative branch
target buffer [Lee & Smith] for dynamic branch prediction.  Each entry
holds the branch pc, its most recent target, and a 2-bit saturating
counter.  A conditional branch that misses in the BTB is predicted
not-taken; an indirect jump that misses is a misprediction by definition
(its target is unknown at decode).  Replacement is LRU within a set.

The same model serves two places: inside the dynamically scheduled
processor, and standalone to produce Table 3's prediction statistics.
"""

from __future__ import annotations

from ...isa import Op, is_cond_branch


class BtbEntry:
    __slots__ = ("pc", "target", "counter")

    def __init__(self, pc: int, target: int, counter: int) -> None:
        self.pc = pc
        self.target = target
        self.counter = counter


class BranchTargetBuffer:
    """2048-entry 4-way BTB with 2-bit saturating counters."""

    def __init__(self, entries: int = 2048, assoc: int = 4) -> None:
        if entries % assoc:
            raise ValueError("entries must be a multiple of associativity")
        self.assoc = assoc
        self.num_sets = entries // assoc
        # Each set is a list ordered MRU-first.
        self._sets: list[list[BtbEntry]] = [
            [] for _ in range(self.num_sets)
        ]

    def _lookup(self, pc: int) -> BtbEntry | None:
        ways = self._sets[pc % self.num_sets]
        for entry in ways:
            if entry.pc == pc:
                return entry
        return None

    def predict(self, op: Op, pc: int, fallthrough: int) -> int:
        """Predicted next pc for the control instruction at ``pc``."""
        entry = self._lookup(pc)
        if is_cond_branch(op):
            if entry is not None and entry.counter >= 2:
                return entry.target
            return fallthrough
        if op is Op.JR:
            if entry is not None:
                return entry.target
            return -1  # unknown target: necessarily mispredicted
        # Direct jumps (J/JAL) have their target in the instruction.
        return -2  # sentinel meaning "always correct"

    def update(self, op: Op, pc: int, taken: bool, target: int) -> None:
        """Record the actual outcome of the branch at ``pc``."""
        ways = self._sets[pc % self.num_sets]
        entry = self._lookup(pc)
        if entry is None:
            if not taken and is_cond_branch(op):
                # Not-taken branches are not allocated; the default
                # prediction already covers them.
                return
            entry = BtbEntry(pc, target, 2 if taken else 1)
            ways.insert(0, entry)
            if len(ways) > self.assoc:
                ways.pop()
            return
        if is_cond_branch(op):
            if taken:
                entry.counter = min(3, entry.counter + 1)
                entry.target = target
            else:
                entry.counter = max(0, entry.counter - 1)
        else:
            entry.target = target
        # LRU bump.
        ways.remove(entry)
        ways.insert(0, entry)


def predicted_correctly(
    btb: BranchTargetBuffer,
    op: Op,
    pc: int,
    next_pc: int,
) -> bool:
    """Predict-then-update convenience; True if the prediction was right.

    ``next_pc`` is the actual dynamic successor from the trace.
    """
    fallthrough = pc + 1
    prediction = btb.predict(op, pc, fallthrough)
    taken = next_pc != fallthrough
    if op in (Op.J, Op.JAL):
        correct = True
    elif prediction == -2:
        correct = True
    elif prediction == -1:
        correct = False
    else:
        correct = prediction == next_pc
    btb.update(op, pc, taken, next_pc)
    return correct
