"""Event-driven fast path for the dynamically scheduled processor.

A byte-identical reimplementation of :class:`repro.cpu.ds.engine.
DSProcessor` built on the same split as :mod:`repro.cpu.static_fast`:
everything that depends only on the *trace contents* is precomputed in
batch, and the cycle loop runs on flat per-row state instead of heap
objects.

* **Decode-side kernels.**  Decode order equals trace order regardless
  of timing, so the three stateful per-decode computations of the
  reference engine collapse into batch passes done once per trace: the
  full branch-prediction outcome column
  (:func:`repro.cpu.kernels.control_mispredicts` replays the BTB), the
  producer row of each source operand
  (:func:`repro.cpu.kernels.producer_rows` replaces the ``last_writer``
  dict), and per-row FU class / store-like / contended-acquire tables.

* **Flat state.**  The reorder-buffer entry *is* its row number: the
  ROB collapses to two integers (head row, fetch row), and all mutable
  per-entry fields (``complete_time``, ``ready_time``, ``performed``,
  ``issued``, pending-source counts) become row-indexed lists and
  bytearrays.  No ``_Entry`` is ever allocated.

* **Cheap events.**  Single-cycle completions — FU results, cache-hit
  loads, clean store performs; the overwhelming majority of events —
  are always due exactly one cycle after issue, so they ride a plain
  list swapped each cycle instead of the event heap; the heap only
  carries miss latencies and acquire head-waits.  Processing order of
  same-cycle completions does not affect any outcome (flags and
  wake-ups commute), so the split is exact.  Phases whose inputs are
  empty (FU issue, the memory port) are skipped with one check, and
  the per-class ready heaps are scanned through a nonempty bitmask.

Everything observable is preserved cycle for cycle: the breakdown
(busy/sync/read/write/other and the cycle count in ``extras``), the
order and arguments of stateful ``network.replay_miss`` calls, probe
histograms and retire spans (with lane handles cached instead of
re-looked-up per retirement).  The reference engine remains the
differential oracle — see ``tests/test_fastpath.py``.

Runs that collect per-miss statistics delegate to the reference engine,
which exposes them on the processor object.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from heapq import heappop, heappush

import numpy as np

from ...consistency import ConsistencyModel
from ...tango import Trace
from ..kernels import control_mispredicts, producer_rows
from ..results import ExecutionBreakdown
from ..static_fast import _trace_index
from .btb import BranchTargetBuffer
from .engine import (
    _ACQ,
    _compact,
    _COMPACT_FLOOR,
    _FU_LOAD_STORE,
    _FU_VAL,
    _MEM_CLASSES,
    _OP_MEMBER,
    _STORE_LIKE,
    DSConfig,
    simulate_ds,
)

_MC_READ = 1
_MC_WRITE = 2
_N_CLS = max(_MEM_CLASSES) + 1
_N_FU = max(_FU_VAL) + 1
_FU_NP = np.array(_FU_VAL, dtype=np.int64)
_OP_NAME = [op.name if op is not None else "" for op in _OP_MEMBER]
_HUGE = 1 << 60


class _DSIndex:
    """Trace-derived tables for the DS fast path, computed once.

    Attached to the shared per-trace cache
    (:class:`repro.cpu.static_fast._TraceIndex`), so one instance serves
    every consistency model, window size, and network over the same
    trace.  Branch-prediction outcome columns are cached per BTB shape.
    """

    __slots__ = (
        "n", "op_l", "fu_l", "cls_l", "stall_l", "wait_l", "addr_l",
        "prod1_l", "prod2_l", "store_like_l", "acq_wait_l", "_misp",
    )

    def __init__(self, trace: Trace) -> None:
        self.n = len(trace)
        cols = trace.np_columns()
        op_np, rd_np, rs1_np, rs2_np = cols[0], cols[3], cols[4], cols[5]
        addr_np, stall_np, wait_np, mc_np = (
            cols[6], cols[7], cols[8], cols[9],
        )
        self.op_l = op_np.tolist()
        self.fu_l = _FU_NP[op_np].tolist()
        self.cls_l = mc_np.tolist()
        self.stall_l = stall_np.tolist()
        self.wait_l = wait_np.tolist()
        self.addr_l = addr_np.tolist()
        prod1, prod2 = producer_rows(rd_np, rs1_np, rs2_np)
        self.prod1_l = prod1.tolist()
        self.prod2_l = prod2.tolist()
        store_like = np.zeros(_N_CLS, dtype=bool)
        store_like[list(_STORE_LIKE)] = True
        acq = np.zeros(_N_CLS, dtype=bool)
        acq[list(_ACQ)] = True
        self.store_like_l = store_like[mc_np].tolist()
        self.acq_wait_l = (acq[mc_np] & (wait_np > 0)).tolist()
        self._misp = {}

    def mispredicts(self, trace: Trace, entries: int, assoc: int) -> list:
        """Full-length misprediction column for one BTB shape."""
        key = (entries, assoc)
        misp = self._misp.get(key)
        if misp is None:
            cols = trace.np_columns()
            misp = control_mispredicts(
                cols[0], cols[1], cols[2],
                BranchTargetBuffer(entries, assoc),
            ).tolist()
            self._misp[key] = misp
        return misp


def _ds_index(trace: Trace) -> _DSIndex:
    shared = _trace_index(trace)
    idx = shared.ds
    if idx is None or idx.n != len(trace):
        idx = _DSIndex(trace)
        shared.ds = idx
    return idx


def simulate_ds_fast(
    trace: Trace,
    model: ConsistencyModel,
    config: DSConfig | None = None,
    label: str | None = None,
    probe=None,
) -> ExecutionBreakdown:
    """Drop-in fast replacement for :func:`repro.cpu.ds.simulate_ds`."""
    cfg = config or DSConfig()
    if cfg.collect_miss_stats:
        # Miss statistics live on the DSProcessor object; callers that
        # want them construct the reference engine directly anyway.
        return simulate_ds(trace, model, cfg, label=label, probe=probe)

    idx = _ds_index(trace)
    n = idx.n
    window = cfg.window
    store_depth = cfg.resolved_store_depth()
    iw = cfg.issue_width
    ignore_deps = cfg.ignore_data_dependences
    speculative = cfg.speculative_loads
    prefetch = cfg.prefetch
    network = cfg.network
    net_cpu = trace.cpu

    op_l = idx.op_l
    fu_l = idx.fu_l
    cls_l = idx.cls_l
    stall_l = idx.stall_l
    wait_l = idx.wait_l
    addr_l = idx.addr_l
    prod1_l = idx.prod1_l
    prod2_l = idx.prod2_l
    store_like_l = idx.store_like_l
    acq_wait_l = idx.acq_wait_l
    if cfg.perfect_branch_prediction:
        misp_l = bytes(n)
    else:
        misp_l = idx.mispredicts(trace, cfg.btb_entries, cfg.btb_assoc)

    # Observability (mirrors the reference engine, with the per-retire
    # track()/f-string lookups hoisted into a lane-handle cache).
    probe = probe if probe is not None and probe.enabled else None
    rob_hist = sb_hist = None
    tracer = None
    span_cat = None
    lanes = None
    retire_t = None
    if probe is not None:
        if probe.metrics.enabled:
            from ...obs.metrics import occupancy_bounds

            rob_hist = probe.metrics.histogram(
                "ds.rob_occupancy", occupancy_bounds(window)
            )
            sb_hist = probe.metrics.histogram(
                "ds.store_buffer_depth", occupancy_bounds(store_depth)
            )
            # Histogram state is commutative (bucket counts/sum/max), so
            # the hot loop bumps flat per-occupancy weight arrays and the
            # instruments are flushed once after the run — same snapshot,
            # no per-cycle bisect/method-call cost.
            rob_occ = [0] * (window + 2)
            sb_occ = [0] * (store_depth + 2)
        tracer = probe.tracer
        if tracer is not None:
            from ...obs.tracer import CAT_CPU, CAT_MEM, CAT_SYNC

            span_cat = [CAT_CPU] * _N_CLS
            for cls in _MEM_CLASSES:
                span_cat[cls] = CAT_SYNC if cls in _ACQ or (
                    cls == 4  # RELEASE
                ) else CAT_MEM
            lanes = [None] * window
            proc_name = f"ds-cpu{net_cpu}"
            track = tracer.track
            events_append = tracer.events.append
            # With no network sharing the tracer, retire spans are the
            # only events and the only span-budget consumers, and every
            # row retires in program order — so the hot loop just stores
            # each row's retire cycle and the span dicts are built in
            # one pass at the end.  A network interleaves miss spans and
            # budget consumption mid-run, so spans stay inline then.
            if network is None:
                retire_t = [0] * n
    spans_dropped = 0

    blockers_l = [()] * _N_CLS
    for cls in _MEM_CLASSES:
        blockers_l[cls] = tuple(
            earlier for earlier in _MEM_CLASSES
            if model.requires(earlier, cls)
        )

    # ---- flat per-row state --------------------------------------------
    complete_t = [-1] * n
    ready_t = [-1] * n
    decode_t = [0] * n
    performed = bytearray(n)
    issued = bytearray(n)
    pending = bytearray(n)
    has_deps = bytearray(n)              # gate for the dependent lists
    deps_l: list = [None] * n            # producer row -> dependent rows
    hw_start: dict[int, int] = {}        # contended acquires only

    t = 0
    fetch_i = 0
    rob_head = 0                          # ROB = rows [rob_head, fetch_i)
    fetch_stalled = -1
    events: list[tuple[int, int]] = []    # heap: misses / head-waits only
    due_next: list[int] = []              # completions due at due_t
    due_t = 0
    lsu_ready: list[int] = []             # idx-sorted loads/acquires
    fu_ready: list[list[int]] = [[] for _ in range(_N_FU)]
    fu_heaps = tuple(fu_ready)
    fu_mask = 0                           # bit f set iff fu_ready[f]
    # Preset bookkeeping: a decoded non-memory op whose operands are
    # ready by t+1, whose class has no ready or dep-deferred older op,
    # and whose prediction was correct provably issues at t+1 and
    # completes at t+2; its completion time is written at decode and it
    # never touches the ready heaps or the event queues.  The phantom
    # issue still consumes the class's t+1 slot (fu_taken_gen), and
    # dep-deferred ops per class are counted (fu_pending) to disable
    # the proof while an older op could wake in between.
    fu_pending = [0] * _N_FU
    fu_taken_gen = [-1] * _N_FU
    store_buffer: list[int] = []
    store_head = 0
    sb_tail = 0                           # == len(store_buffer)
    store_scan = 0                        # first possibly-unissued slot
    uq: list[deque[int]] = [deque() for _ in range(_N_CLS)]
    pending_stores: dict[int, deque[int]] = {}
    frontier_val = [0] * _N_CLS
    frontier_gen = [-1] * _N_CLS
    rejected_gen = [-1] * _N_CLS

    busy = sync = read = write = other = 0
    ev_t = _HUGE                          # events[0][0], cached

    # The helper binds its state through default arguments, not a
    # closure: a closure would turn every captured name into a cell
    # variable and tax each access in the cycle loop below.
    def blocked(
        own: str, h: int,
        issued=issued, blockers_l=blockers_l, cls_l=cls_l, uq=uq,
        performed=performed,
    ) -> str:
        if issued[h]:
            return own
        best = h
        best_cls = -1
        for earlier in blockers_l[cls_l[h]]:
            dq = uq[earlier]
            while dq and performed[dq[0]]:
                dq.popleft()
            if dq and dq[0] < best:
                best = dq[0]
                best_cls = earlier
        if best_cls < 0:
            return own
        if best_cls in _STORE_LIKE:
            return "write"
        if best_cls in _ACQ:
            return "sync"
        return "read"

    streak_ok = iw == 1

    # ---- main cycle loop ------------------------------------------------
    while True:
        # Steady-state streak: while no event is pending, every ready
        # queue and the store buffer are empty, and fetch is running,
        # a cycle is exactly "decode one preset-eligible op, retire the
        # head" — commit both without touching the phase machinery.
        # Any condition the proof needs (dependence, memory class,
        # misprediction, class contention) breaks to the general loop,
        # which re-enters the streak on the next cycle.
        if streak_ok:
            while (
                ev_t > t
                and not due_next
                and not fu_mask
                and not lsu_ready
                and store_scan >= sb_tail  # no unissued store wants the port
                and fetch_stalled < 0
                and rob_head < fetch_i < n
                and fetch_i - rob_head < window
            ):
                i = fetch_i
                if cls_l[i] or misp_l[i]:
                    break
                h = rob_head
                if store_like_l[h]:
                    break
                hc = complete_t[h]
                if hc < 0 or hc > t:
                    break
                if cls_l[h] >= 3 and not performed[h]:
                    break
                p = prod1_l[i]
                if p >= 0:
                    ct = complete_t[p]
                    if ct < 0 or (ct > t and store_like_l[p]):
                        break
                p = prod2_l[i]
                if p >= 0:
                    ct = complete_t[p]
                    if ct < 0 or (ct > t and store_like_l[p]):
                        break
                fu = fu_l[i]
                if fu == _FU_LOAD_STORE or fu_pending[fu]:
                    break
                decode_t[i] = t
                ready_t[i] = t + 1
                complete_t[i] = t + 2
                fu_taken_gen[fu] = t + 1
                fetch_i = i + 1
                if tracer is not None:
                    if retire_t is not None:
                        retire_t[h] = t
                    elif probe.span_budget > 0:
                        probe.span_budget -= 1
                        lane = h % window
                        handle = lanes[lane]
                        if handle is None:
                            handle = lanes[lane] = track(
                                proc_name, f"lane{lane}"
                            )
                        ev = {
                            "name": _OP_NAME[op_l[h]],
                            "cat": span_cat[cls_l[h]], "ph": "X",
                            "ts": decode_t[h], "dur": t + 1 - decode_t[h],
                            "pid": handle[0], "tid": handle[1],
                        }
                        if cls_l[h]:
                            ev["args"] = {
                                "addr": addr_l[h], "stall": stall_l[h],
                            }
                        events_append(ev)
                    else:
                        spans_dropped += 1
                rob_head = h + 1
                busy += 1
                if rob_hist is not None:
                    rob_occ[fetch_i - rob_head] += 1
                    sb_occ[sb_tail - store_head] += 1
                t += 1

        progressed = False

        # Phase 1: completions / performs whose time has come.  The
        # due-next bucket first, then the heap; same-cycle order is
        # immaterial (see module docstring).
        if due_next and due_t <= t:
            done, due_next = due_next, []
            etime = due_t
            for i in done:
                progressed = True
                if complete_t[i] < 0:
                    complete_t[i] = etime
                if acq_wait_l[i] and hw_start.get(i, -1) < 0:
                    continue
                if cls_l[i] and not performed[i]:
                    performed[i] = 1
                    if store_like_l[i]:
                        dq = pending_stores.get(addr_l[i])
                        if dq:
                            while dq and performed[dq[0]]:
                                dq.popleft()
                            if not dq:
                                del pending_stores[addr_l[i]]
                if fetch_stalled == i:
                    fetch_stalled = -1
                if has_deps[i]:
                    has_deps[i] = 0
                    for j in deps_l[i]:
                        p = pending[j] - 1
                        pending[j] = p
                        if not p:
                            # Inlined wake(j, etime) — dependent wakes
                            # are the hot edge of every miss return.
                            ready_t[j] = etime
                            if store_like_l[j]:
                                complete_t[j] = etime
                            else:
                                fu = fu_l[j]
                                if fu == _FU_LOAD_STORE:
                                    insort(lsu_ready, j)
                                else:
                                    fu_pending[fu] -= 1
                                    heappush(fu_ready[fu], j)
                                    fu_mask |= 1 << fu
        if ev_t <= t:
            while events and events[0][0] <= t:
                etime, i = heappop(events)
                progressed = True
                if complete_t[i] < 0:
                    complete_t[i] = etime
                if acq_wait_l[i] and hw_start.get(i, -1) < 0:
                    continue
                if cls_l[i] and not performed[i]:
                    performed[i] = 1
                    if store_like_l[i]:
                        dq = pending_stores.get(addr_l[i])
                        if dq:
                            while dq and performed[dq[0]]:
                                dq.popleft()
                            if not dq:
                                del pending_stores[addr_l[i]]
                if fetch_stalled == i:
                    fetch_stalled = -1
                if has_deps[i]:
                    has_deps[i] = 0
                    for j in deps_l[i]:
                        p = pending[j] - 1
                        pending[j] = p
                        if not p:
                            # Inlined wake(j, etime) — dependent wakes
                            # are the hot edge of every miss return.
                            ready_t[j] = etime
                            if store_like_l[j]:
                                complete_t[j] = etime
                            else:
                                fu = fu_l[j]
                                if fu == _FU_LOAD_STORE:
                                    insort(lsu_ready, j)
                                else:
                                    fu_pending[fu] -= 1
                                    heappush(fu_ready[fu], j)
                                    fu_mask |= 1 << fu
            ev_t = events[0][0] if events else _HUGE

        # Drop performed stores from the buffer head.
        if store_head < sb_tail:
            while store_head < sb_tail and performed[store_buffer[store_head]]:
                store_head += 1
                progressed = True
            if store_head > _COMPACT_FLOOR:
                shift = store_head
                store_head = _compact(store_buffer, store_head)
                if store_head == 0:
                    sb_tail -= shift
                    store_scan -= shift

        # Phase 2: issue to functional units (bitmask = nonempty heaps).
        if fu_mask:
            m = fu_mask
            while m:
                low = m & -m
                m ^= low
                f = low.bit_length() - 1
                if fu_taken_gen[f] == t:
                    continue  # slot claimed by a preset issue this cycle
                heap = fu_heaps[f]
                started = 0
                while heap and started < iw and ready_t[heap[0]] <= t:
                    due_next.append(heappop(heap))
                    progressed = True
                    started += 1
                if not heap:
                    fu_mask ^= low
            if due_next:
                due_t = t + 1

        # Phase 2b: the memory port.  Issued stores stay in the buffer
        # until performed but never become candidates again, so the
        # candidate scan starts from a persistent pointer.
        if store_scan < store_head:
            store_scan = store_head
        while store_scan < sb_tail and (
            issued[store_buffer[store_scan]]
            or performed[store_buffer[store_scan]]
        ):
            store_scan += 1
        if lsu_ready or store_scan < sb_tail:
            port_i = -1
            port_pos = -1
            n_rejected = 0
            for pos, i in enumerate(lsu_ready):
                if ready_t[i] > t:
                    continue
                cls = cls_l[i]
                if speculative and cls == _MC_READ:
                    port_i = i
                    port_pos = pos
                    break
                if rejected_gen[cls] == t:
                    continue
                if frontier_gen[cls] == t:
                    frontier = frontier_val[cls]
                else:
                    frontier = _HUGE
                    for earlier in blockers_l[cls]:
                        dq = uq[earlier]
                        while dq and performed[dq[0]]:
                            dq.popleft()
                        if dq and dq[0] < frontier:
                            frontier = dq[0]
                    frontier_val[cls] = frontier
                    frontier_gen[cls] = t
                if i <= frontier:
                    port_i = i
                    port_pos = pos
                    break
                rejected_gen[cls] = t
                n_rejected += 1
                if n_rejected == 3:
                    break
            store_i = -1
            if store_scan < sb_tail:
                i = store_buffer[store_scan]
                cls = cls_l[i]
                if frontier_gen[cls] == t:
                    frontier = frontier_val[cls]
                else:
                    frontier = _HUGE
                    for earlier in blockers_l[cls]:
                        dq = uq[earlier]
                        while dq and performed[dq[0]]:
                            dq.popleft()
                        if dq and dq[0] < frontier:
                            frontier = dq[0]
                    frontier_val[cls] = frontier
                    frontier_gen[cls] = t
                if i <= frontier:
                    store_i = i

            if port_i >= 0 and (store_i < 0 or port_i < store_i):
                i = port_i
                del lsu_ready[port_pos]
                stall = stall_l[i]
                forwarded = False
                if pending_stores and cls_l[i] == _MC_READ:
                    dq = pending_stores.get(addr_l[i])
                    if dq:
                        while dq and performed[dq[0]]:
                            dq.popleft()
                        if not dq:
                            del pending_stores[addr_l[i]]
                    if dq and dq[0] < i:
                        forwarded = True
                if forwarded:
                    latency = 1
                else:
                    if (
                        network is not None
                        and stall > 0
                        and cls_l[i] == _MC_READ
                    ):
                        stall = network.replay_miss(
                            net_cpu, addr_l[i], False, t
                        )
                    if prefetch and stall > 0 and ready_t[i] >= 0:
                        stall = max(0, stall - max(0, t - ready_t[i]))
                    latency = 1 + stall
                if latency == 1:  # hit or forwarded: due next cycle
                    due_next.append(i)
                    due_t = t + 1
                else:
                    heappush(events, (t + latency, i))
                    if t + latency < ev_t:
                        ev_t = t + latency
                issued[i] = 1
                progressed = True
            elif store_i >= 0:
                i = store_i
                issued[i] = 1
                store_scan += 1
                stall = stall_l[i]
                if (
                    network is not None
                    and stall > 0
                    and cls_l[i] == _MC_WRITE
                ):
                    stall = network.replay_miss(net_cpu, addr_l[i], True, t)
                if prefetch and stall > 0 and ready_t[i] >= 0:
                    stall = max(0, stall - max(0, t - ready_t[i]))
                if stall:
                    heappush(events, (t + 1 + stall, i))
                    if t + 1 + stall < ev_t:
                        ev_t = t + 1 + stall
                else:
                    due_next.append(i)
                    due_t = t + 1
                progressed = True

        # Phase 3: decode up to issue_width instructions.
        decoded = 0
        while (
            decoded < iw
            and fetch_i < n
            and fetch_i - rob_head < window
            and fetch_stalled < 0
        ):
            i = fetch_i
            cls = cls_l[i]
            decode_t[i] = t
            fetch_i = i + 1
            decoded += 1
            progressed = True
            if cls:
                uq[cls].append(i)
                if store_like_l[i] and addr_l[i] >= 0:
                    a = addr_l[i]
                    dq = pending_stores.get(a)
                    if dq is None:
                        pending_stores[a] = dq = deque()
                    dq.append(i)
            ps = 0
            if not ignore_deps:
                # A producer with a known *future* completion time is a
                # preset op finishing at most at t+1, so this consumer
                # is still ready at t+1; only unknown completions and
                # store-like producers (which wake dependents at their
                # perform, not their completion) defer the consumer.
                p = prod1_l[i]
                if p >= 0:
                    ct = complete_t[p]
                    if ct < 0 or (ct > t and store_like_l[p]):
                        ps = 1
                        if has_deps[p]:
                            deps_l[p].append(i)
                        else:
                            has_deps[p] = 1
                            deps_l[p] = [i]
                p = prod2_l[i]
                if p >= 0:
                    ct = complete_t[p]
                    if ct < 0 or (ct > t and store_like_l[p]):
                        ps += 1
                        if has_deps[p]:
                            deps_l[p].append(i)
                        else:
                            has_deps[p] = 1
                            deps_l[p] = [i]
                pending[i] = ps
            if ps == 0:
                # Inlined wake(i, t + 1) — the per-instruction hot path.
                ready_t[i] = t + 1
                if store_like_l[i]:
                    complete_t[i] = t + 1
                else:
                    fu = fu_l[i]
                    if fu == _FU_LOAD_STORE:
                        lsu_ready.append(i)  # i is the largest row yet
                    elif (
                        cls == 0
                        and iw == 1
                        and not fu_ready[fu]
                        and not fu_pending[fu]
                        and not misp_l[i]
                    ):
                        # Preset: ready at t+1, class idle and no older
                        # op can wake before then, single issue slot is
                        # free -> issues at t+1, completes at t+2.
                        complete_t[i] = t + 2
                        fu_taken_gen[fu] = t + 1
                    else:
                        heappush(fu_ready[fu], i)
                        fu_mask |= 1 << fu
            elif not store_like_l[i]:
                fu = fu_l[i]
                if fu != _FU_LOAD_STORE:
                    fu_pending[fu] += 1
            if misp_l[i]:
                fetch_stalled = i
                break

        # Phase 4: retire in order.
        retired = 0
        stall_reason = None
        while retired < iw and rob_head < fetch_i:
            h = rob_head
            cls = cls_l[h]
            if store_like_l[h]:
                ct = complete_t[h]
                if ct < 0 or ct > t:
                    stall_reason = "other"
                    break
                if sb_tail - store_head >= store_depth:
                    stall_reason = "write"
                    break
                store_buffer.append(h)
                sb_tail += 1
            elif cls >= 3 and not performed[h]:  # ACQUIRE or BARRIER
                ct = complete_t[h]
                if acq_wait_l[h] and 0 <= ct <= t and (
                    hw_start.get(h, -1) < 0
                ):
                    hw_start[h] = t
                    heappush(events, (t + wait_l[h], h))
                    if t + wait_l[h] < ev_t:
                        ev_t = t + wait_l[h]
                    stall_reason = "sync"
                else:
                    stall_reason = blocked("sync", h)
                break
            else:
                ct = complete_t[h]
                if ct < 0 or ct > t:
                    if cls == _MC_READ:
                        stall_reason = blocked("read", h)
                    elif cls >= 3:
                        stall_reason = blocked("sync", h)
                    else:
                        stall_reason = "other"
                    break
            if tracer is not None:
                if retire_t is not None:
                    retire_t[h] = t
                elif probe.span_budget > 0:
                    probe.span_budget -= 1
                    lane = h % window
                    handle = lanes[lane]
                    if handle is None:
                        handle = lanes[lane] = track(
                            proc_name, f"lane{lane}"
                        )
                    ev = {
                        "name": _OP_NAME[op_l[h]], "cat": span_cat[cls],
                        "ph": "X", "ts": decode_t[h],
                        "dur": t + 1 - decode_t[h],
                        "pid": handle[0], "tid": handle[1],
                    }
                    if cls:
                        ev["args"] = {
                            "addr": addr_l[h], "stall": stall_l[h],
                        }
                    events_append(ev)
                else:
                    spans_dropped += 1
            rob_head = h + 1
            retired += 1
            progressed = True

        # ---- attribution and time advance -------------------------------
        if retired:
            busy += 1
            if rob_hist is not None:
                rob_occ[fetch_i - rob_head] += 1
                sb_occ[sb_tail - store_head] += 1
            t += 1
            continue

        if fetch_i >= n and rob_head >= fetch_i and store_head >= sb_tail:
            break

        if stall_reason is None:
            if rob_head < fetch_i:
                stall_reason = "other"
            elif store_head < sb_tail:
                stall_reason = "write"  # draining the store buffer
            else:
                stall_reason = "other"

        if progressed:
            cycles = 1
        else:
            # Idle jump.  Preset ops have no events, so the horizon is
            # the earliest of: the event heap, the ROB head's known
            # future completion (it enables a retire), and t+1 if any
            # ready heap is nonempty (a claim-deferred op issues then).
            next_t = ev_t
            if fu_mask and t + 1 < next_t:
                next_t = t + 1
            if rob_head < fetch_i:
                hc = complete_t[rob_head]
                if t < hc < next_t:
                    next_t = hc
            if next_t >= _HUGE:
                cycles = 1
            else:
                cycles = next_t - t if next_t > t + 1 else 1
        if stall_reason == "read":
            read += cycles
        elif stall_reason == "sync":
            sync += cycles
        elif stall_reason == "write":
            write += cycles
        else:
            other += cycles
        if rob_hist is not None:
            rob_occ[fetch_i - rob_head] += cycles
            sb_occ[sb_tail - store_head] += cycles
        t += cycles

    if retire_t is not None and n:
        budget = probe.span_budget
        emit_n = n if n <= budget else budget
        probe.span_budget = budget - emit_n
        spans_dropped += n - emit_n
        # Rows retire in program order, so lanes are first used in
        # ascending order — pre-allocating them here emits the same
        # thread-name metadata, in the same order, as the inline path.
        handles = [
            track(proc_name, f"lane{lane}")
            for lane in range(emit_n if emit_n < window else window)
        ]
        for h in range(emit_n):
            pid, tid = handles[h % window]
            cls = cls_l[h]
            dt = decode_t[h]
            ev = {
                "name": _OP_NAME[op_l[h]], "cat": span_cat[cls],
                "ph": "X", "ts": dt, "dur": retire_t[h] + 1 - dt,
                "pid": pid, "tid": tid,
            }
            if cls:
                ev["args"] = {"addr": addr_l[h], "stall": stall_l[h]}
            events_append(ev)
    if rob_hist is not None:
        for occ, weight in enumerate(rob_occ):
            if weight:
                rob_hist.observe(occ, weight)
        for occ, weight in enumerate(sb_occ):
            if weight:
                sb_hist.observe(occ, weight)
    if spans_dropped:
        probe.metrics.counter("trace.spans_dropped").inc(spans_dropped)
    return ExecutionBreakdown(
        label=label or f"DS-{model.name}-w{window}",
        busy=busy, sync=sync, read=read, write=write, other=other,
        instructions=n,
        extras={"cycles": t},
    )
