"""The dynamically scheduled (Johnson-style) out-of-order processor."""

from .btb import BranchTargetBuffer, predicted_correctly
from .engine import DSConfig, DSProcessor, simulate_ds

__all__ = [
    "BranchTargetBuffer",
    "DSConfig",
    "DSProcessor",
    "predicted_correctly",
    "simulate_ds",
]
