"""The dynamically scheduled (Johnson-style) out-of-order processor."""

from .btb import BranchTargetBuffer, predicted_correctly
from .engine import DSConfig, DSProcessor, simulate_ds
from .event_engine import simulate_ds_fast

__all__ = [
    "BranchTargetBuffer",
    "DSConfig",
    "DSProcessor",
    "predicted_correctly",
    "simulate_ds",
    "simulate_ds_fast",
]
