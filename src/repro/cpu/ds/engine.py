"""The dynamically scheduled processor (paper §3.1, after Johnson).

A cycle-level, trace-driven model of the paper's out-of-order core:

* a **reorder buffer** (the "lookahead window", 16–256 entries) into
  which decoded instructions enter in program order and from which they
  retire in program order (FIFO retirement, as the paper assumes);
* **register renaming** through the reorder buffer: an instruction's
  operands link directly to the producing in-flight entry, so WAR/WAW
  hazards never stall anything and only true dependences delay issue;
* **reservation stations / functional units** — one unit per class
  (integer ALU, shifter, branch, load/store port, FP add/mul/div/cvt),
  all single-cycle, each able to start one operation per cycle, with
  out-of-order issue within each class;
* **dynamic branch prediction** via a 2048-entry 4-way BTB with 2-bit
  counters, and **speculative execution**: instructions past a predicted
  branch enter the window immediately; a misprediction stalls fetch until
  the branch executes (the trace contains only the correct path, so
  wrong-path work is modelled as lost fetch slots, the standard
  trace-driven treatment);
* a **lockup-free cache** behind a single port (at most one memory
  operation issued per cycle, arbitrary outstanding misses);
* a **store buffer** with read bypassing and dependence checking: loads
  may issue past buffered stores and forward a pending same-address
  value; stores issue to memory only after retiring from the reorder
  buffer, and only when the consistency model's constraints allow.

The consistency model enters exactly once: a memory/synchronization
operation may begin its access only when every earlier operation whose
class the model orders before it has *performed*.

Execution-time attribution: one cycle is "busy" when an instruction
retires (retire bandwidth equals decode bandwidth, so busy == instruction
count at single issue); every other cycle is attributed to the reorder
buffer head's blocking reason — an unperformed load is read stall, an
unperformed acquire/barrier is synchronization stall, a store stuck on a
full store buffer is write stall, and the rare dependence/drain bubble is
"other".

The inner loop runs on flat ints: the trace is consumed column-wise
(:meth:`repro.tango.trace.Trace.columns`), opcode properties come from
tables indexed by opcode value, and the consistency matrix is folded
into per-class blocker tuples once per run.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

from ...consistency import ConsistencyModel
from ...isa import FuClass, MemClass, Op, fu_class, is_control
from ...tango import Trace
from ..requests import MemRequest, ReleaseNotify, SyncRequest, drive
from ..results import ExecutionBreakdown
from .btb import BranchTargetBuffer

_MC_NONE = int(MemClass.NONE)
_MC_READ = int(MemClass.READ)
_MC_WRITE = int(MemClass.WRITE)
_MC_RELEASE = int(MemClass.RELEASE)

_MEM_CLASSES = tuple(int(cls) for cls in (
    MemClass.READ,
    MemClass.WRITE,
    MemClass.ACQUIRE,
    MemClass.RELEASE,
    MemClass.BARRIER,
))

_ACQ = (int(MemClass.ACQUIRE), int(MemClass.BARRIER))
_STORE_LIKE = (int(MemClass.WRITE), int(MemClass.RELEASE))

# Opcode-indexed property tables (the per-decode fast path).
_N_OPS = max(Op) + 1
_OP_MEMBER = [None] * _N_OPS
_FU_VAL = [0] * _N_OPS
_IS_CONTROL = [False] * _N_OPS
for _op in Op:
    _OP_MEMBER[_op] = _op
    _FU_VAL[_op] = fu_class(_op).value
    _IS_CONTROL[_op] = is_control(_op)
_FU_LOAD_STORE = FuClass.LOAD_STORE.value

#: Head-indexed lists (the store buffer, the reorder buffer) consume
#: entries by advancing an index; the dead prefix is physically freed
#: only once it outgrows both this floor and the live suffix, keeping
#: the amortised cost O(1) per entry.
_COMPACT_FLOOR = 64


def _compact(buf: list, head: int) -> int:
    """Free ``buf``'s consumed prefix when it dominates; returns the new
    head index.  Purely memory management: simulated results are
    identical at any threshold (pinned by ``tests/test_cpu_ds.py``)."""
    if head > _COMPACT_FLOOR and head > len(buf) - head:
        del buf[:head]
        return 0
    return head


@dataclass
class DSConfig:
    """Configuration of the dynamically scheduled processor."""

    window: int = 64
    issue_width: int = 1
    #: Store buffer entries; ``None`` sizes it with the window (the paper
    #: notes the DS processor uses a larger write buffer than the static
    #: processors' 16 entries).
    store_buffer_depth: int | None = None
    perfect_branch_prediction: bool = False
    ignore_data_dependences: bool = False
    btb_entries: int = 2048
    btb_assoc: int = 4
    #: Collect per-read-miss issue-delay samples (§4.1.3 analysis).
    collect_miss_stats: bool = False
    #: [8]-style non-binding prefetch: a memory operation whose issue is
    #: delayed by consistency constraints starts fetching its line as
    #: soon as its address is known; by actual issue time, part (or all)
    #: of the miss latency has already elapsed.
    prefetch: bool = False
    #: [8]-style speculative load execution: loads issue regardless of
    #: consistency constraints (rollback on a detected violation is
    #: assumed rare and free, as in the reference); stores and
    #: synchronization stay constrained, and retirement order still
    #: provides the memory model's guarantees.
    speculative_loads: bool = False
    #: Optional repro.net.ContentionNetwork.  When set, every miss (the
    #: trace's baked stall marks hit/miss) is re-timed through the
    #: interconnect at the cycle the memory port actually issues it —
    #: the lockup-free cache's overlapped misses then genuinely queue
    #: on the node's injection link and at hot directory home nodes.
    network: object | None = None

    def resolved_store_depth(self) -> int:
        return self.window if self.store_buffer_depth is None else (
            self.store_buffer_depth
        )


class _Entry:
    """One reorder-buffer entry (all fields are flat ints)."""

    __slots__ = (
        "idx", "op", "fu", "mem_cls", "addr", "stall", "wait",
        "decode_time", "ready_time", "complete_time", "performed",
        "pending_srcs", "dependents", "issued",
        "needs_head_wait", "head_wait_start", "sync_ordinal",
    )

    def __init__(
        self, idx: int, op: int, fu: int, mem_cls: int,
        addr: int, stall: int, wait: int, decode_time: int,
    ) -> None:
        self.idx = idx
        self.op = op
        self.fu = fu
        self.mem_cls = mem_cls
        self.addr = addr
        self.stall = stall
        self.wait = wait
        self.decode_time = decode_time
        self.ready_time = -1          # operands not yet resolved
        self.complete_time = -1       # not yet executed
        self.performed = False
        self.pending_srcs = 0
        self.dependents = None
        self.issued = False
        # Acquire contention/imbalance wait cannot be hidden by lookahead
        # (it is another processor's release time): it is charged only
        # once the acquire reaches the reorder-buffer head.  The sync
        # variable's *access latency* remains overlappable.
        self.needs_head_wait = mem_cls in _ACQ and wait > 0
        self.head_wait_start = -1
        self.sync_ordinal = -1


class _UnperformedTracker:
    """Earliest unperformed memory operation per class.

    Decode adds entries in program order, so each class queue is already
    idx-sorted: a plain deque with lazy head cleanup on the entry's own
    ``performed`` flag replaces the seed's heap + tombstone set.
    """

    def __init__(self) -> None:
        self._queues: list[deque[_Entry]] = [
            deque() for _ in range(max(_MEM_CLASSES) + 1)
        ]

    def add(self, cls: int, entry: _Entry) -> None:
        self._queues[cls].append(entry)

    def frontier(self, cls: int) -> int:
        """Smallest unperformed idx of class ``cls`` (or a huge number)."""
        dq = self._queues[cls]
        while dq and dq[0].performed:
            dq.popleft()
        return dq[0].idx if dq else 1 << 60

    def blocking_frontier(self, blockers: tuple[int, ...]) -> int:
        """An op blocked by the given classes may issue only if its
        program index is below this frontier."""
        frontier = 1 << 60
        queues = self._queues
        for earlier in blockers:
            dq = queues[earlier]
            while dq and dq[0].performed:
                dq.popleft()
            if dq:
                f = dq[0].idx
                if f < frontier:
                    frontier = f
        return frontier


class DSProcessor:
    """Trace-driven simulation of the dynamically scheduled core."""

    def __init__(
        self,
        trace: Trace,
        model: ConsistencyModel,
        config: DSConfig | None = None,
        probe=None,
    ) -> None:
        self.trace = trace
        self.model = model
        self.config = config or DSConfig()
        #: optional repro.obs.Probe — occupancy histograms + retire spans;
        #: purely observational, never alters timing.
        self.probe = probe if probe is not None and probe.enabled else None
        self.btb = BranchTargetBuffer(
            self.config.btb_entries, self.config.btb_assoc
        )
        #: Issue-delay (decode -> memory issue) of each read miss, and the
        #: dynamic distance between consecutive read misses, collected when
        #: config.collect_miss_stats is set.
        self.read_miss_issue_delays: list[int] = []
        self.read_miss_distances: list[int] = []

    def run(self, label: str | None = None) -> ExecutionBreakdown:
        """Drive :meth:`steps` to completion (standalone replay)."""
        return drive(
            self.steps(label=label),
            network=self.config.network,
            cpu=self.trace.cpu,
        )

    def steps(self, label: str | None = None, live_sync: bool = False):
        """The DS timing loop as a resumable stepper.

        Suspends at every miss the memory port issues (the answer
        re-times it); with ``live_sync`` it also suspends each acquire
        reaching the reorder-buffer head (the answer is the wait,
        resolved from the other processors' actual progress) and
        announces each release's perform time, instead of using the
        trace's baked waits.
        """
        cfg = self.config
        model = self.model
        (col_op, col_pc, col_next_pc, col_rd, col_rs1, col_rs2,
         col_addr, col_stall, col_wait, col_mc) = self.trace.columns()
        n = len(col_op)
        window = cfg.window
        store_depth = cfg.resolved_store_depth()
        ignore_deps = cfg.ignore_data_dependences
        perfect_bp = cfg.perfect_branch_prediction
        net_cpu = self.trace.cpu
        sync_ordinal = 0

        # Observability (all optional; None keeps the loop probe-free).
        probe = self.probe
        rob_hist = sb_hist = None
        tracer = None
        span_cat = None
        if probe is not None:
            if probe.metrics.enabled:
                from ...obs.metrics import occupancy_bounds

                rob_hist = probe.metrics.histogram(
                    "ds.rob_occupancy", occupancy_bounds(window)
                )
                sb_hist = probe.metrics.histogram(
                    "ds.store_buffer_depth", occupancy_bounds(store_depth)
                )
            tracer = probe.tracer
            if tracer is not None:
                from ...obs.tracer import (
                    CAT_CPU, CAT_MEM, CAT_SYNC,
                )

                # Per-class span category: sync classes, plain memory,
                # and non-memory instructions.
                span_cat = [CAT_CPU] * (max(_MEM_CLASSES) + 1)
                for cls in _MEM_CLASSES:
                    span_cat[cls] = CAT_SYNC if cls in _ACQ or (
                        cls == int(MemClass.RELEASE)
                    ) else CAT_MEM
                # Lane handles are a pure function of idx % window;
                # resolve each once instead of re-formatting the name
                # and re-hashing it in the tracer on every retirement.
                lanes = [None] * window
                proc_name = f"ds-cpu{net_cpu}"
        spans_dropped = 0

        # Fold the consistency matrix into per-class blocker tuples: the
        # classes an operation of each class must wait for.
        blockers = {
            cls: tuple(
                earlier for earlier in _MEM_CLASSES
                if model.requires(earlier, cls)
            )
            for cls in _MEM_CLASSES
        }

        t = 0
        fetch_i = 0
        fetch_stalled_on: _Entry | None = None
        rob: list[_Entry] = []        # used as a deque via head index
        rob_head = 0
        last_writer: dict[int, _Entry] = {}
        events: list[tuple[int, int, _Entry]] = []  # (time, idx, entry)
        lsu_ready: list[_Entry] = []  # loads/acquires, kept sorted by idx
        fu_ready: list[list[tuple[int, _Entry]]] = [
            [] for _ in range(max(fu.value for fu in FuClass) + 1)
        ]
        fu_heaps = tuple(fu_ready)
        # Per-cycle caches, generation-stamped with the cycle number so no
        # dict/set is allocated inside the loop (t is unique per
        # iteration: every pass advances it by at least one).
        n_cls = max(_MEM_CLASSES) + 1
        frontier_val = [0] * n_cls
        frontier_gen = [-1] * n_cls
        rejected_gen = [-1] * n_cls
        unperformed = _UnperformedTracker()
        store_buffer: list[_Entry] = []
        store_head = 0
        # addr -> deque of unperformed store-like entries in program
        # order; heads are popped lazily once performed, so the front is
        # always the earliest possibly-unperformed store to that address.
        pending_stores: dict[int, deque[_Entry]] = {}

        busy = sync = read = write = other = 0
        last_miss_seen_idx = -1

        def blocked_reason(head: _Entry, own: str) -> str:
            """Attribute a stalled, un-issued memory head to the class of
            the earlier operation blocking it (the paper charges, e.g.,
            SC's write serialization to write time even though the
            visible symptom is a load that cannot issue)."""
            if head.issued:
                return own
            best_idx = head.idx
            best_cls = None
            for earlier in blockers[head.mem_cls]:
                f = unperformed.frontier(earlier)
                if f < best_idx:
                    best_idx = f
                    best_cls = earlier
            if best_cls is None:
                return own
            if best_cls in _STORE_LIKE:
                return "write"
            if best_cls in _ACQ:
                return "sync"
            return "read"

        def wake(entry: _Entry, time: int) -> None:
            """Operands resolved at ``time``; queue for issue."""
            entry.ready_time = time
            if entry.mem_cls in _STORE_LIKE:
                # Stores need no functional unit before retirement; the
                # address generation is folded into readiness.
                entry.complete_time = time
            elif entry.fu == _FU_LOAD_STORE:
                # Loads and acquire-type sync ops queue for the port.
                lo, hi = 0, len(lsu_ready)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if lsu_ready[mid].idx < entry.idx:
                        lo = mid + 1
                    else:
                        hi = mid
                lsu_ready.insert(lo, entry)
            else:
                heapq.heappush(fu_ready[entry.fu], (entry.idx, entry))

        def schedule(entry: _Entry, time: int) -> None:
            heapq.heappush(events, (time, entry.idx, entry))

        # ---- main cycle loop ------------------------------------------------
        while True:
            progressed = False

            # Phase 1: completions / performs whose time has come.
            while events and events[0][0] <= t:
                etime, _, entry = heapq.heappop(events)
                progressed = True
                if entry.complete_time < 0:
                    entry.complete_time = etime
                if entry.needs_head_wait and entry.head_wait_start < 0:
                    # Access completion of a contended acquire; the
                    # head-wait (and hence "performed") comes later.
                    continue
                if entry.mem_cls != _MC_NONE and not entry.performed:
                    entry.performed = True
                    if entry.mem_cls in _STORE_LIKE:
                        dq = pending_stores.get(entry.addr)
                        if dq:
                            while dq and dq[0].performed:
                                dq.popleft()
                            if not dq:
                                del pending_stores[entry.addr]
                        if live_sync and entry.mem_cls == _MC_RELEASE:
                            yield ReleaseNotify(
                                net_cpu, entry.sync_ordinal, etime,
                                entry.addr,
                            )
                if fetch_stalled_on is entry:
                    fetch_stalled_on = None
                if entry.dependents:
                    for dep in entry.dependents:
                        dep.pending_srcs -= 1
                        if dep.pending_srcs == 0:
                            wake(dep, etime)
                    entry.dependents = None

            # Drop performed stores from the buffer head.
            while store_head < len(store_buffer) and (
                store_buffer[store_head].performed
            ):
                store_head += 1
                progressed = True
            store_head = _compact(store_buffer, store_head)

            # Phase 2: issue to functional units.  Each class starts up to
            # issue_width operations per cycle (the multi-issue processor
            # has correspondingly more units); the memory port stays
            # single regardless (phase 2b).
            for heap in fu_heaps:
                if not heap:
                    continue
                started = 0
                while (
                    heap
                    and started < cfg.issue_width
                    and heap[0][1].ready_time <= t
                ):
                    _, entry = heapq.heappop(heap)
                    # Single-cycle latency: result available next cycle.
                    schedule(entry, t + 1)
                    progressed = True
                    started += 1

            # Phase 2b: the memory port — one access per cycle, chosen as
            # the oldest admissible among ready loads/acquires and
            # unissued buffered stores.
            port_candidate: _Entry | None = None
            candidate_pos = -1
            n_rejected = 0
            for pos, entry in enumerate(lsu_ready):
                if entry.ready_time > t:
                    continue
                cls = entry.mem_cls
                if (
                    cfg.speculative_loads
                    and cls == _MC_READ
                ):
                    # Speculative load execution: issue past constraints.
                    port_candidate = entry
                    candidate_pos = pos
                    break
                if rejected_gen[cls] == t:
                    # The list is idx-sorted, so once the oldest ready op
                    # of a class is blocked, every younger one is too.
                    continue
                if frontier_gen[cls] == t:
                    frontier = frontier_val[cls]
                else:
                    frontier = unperformed.blocking_frontier(blockers[cls])
                    frontier_val[cls] = frontier
                    frontier_gen[cls] = t
                # The op's own index is in the unperformed tracker, so
                # equality means "no EARLIER blocker" and must admit it.
                if entry.idx <= frontier:
                    port_candidate = entry
                    candidate_pos = pos
                    break
                rejected_gen[cls] = t
                n_rejected += 1
                if n_rejected == 3:
                    break
            store_candidate: _Entry | None = None
            for i in range(store_head, len(store_buffer)):
                entry = store_buffer[i]
                if entry.issued or entry.performed:
                    continue
                cls = entry.mem_cls
                if frontier_gen[cls] == t:
                    frontier = frontier_val[cls]
                else:
                    frontier = unperformed.blocking_frontier(blockers[cls])
                    frontier_val[cls] = frontier
                    frontier_gen[cls] = t
                if entry.idx <= frontier:
                    store_candidate = entry
                break  # only the oldest unissued store is considered

            if port_candidate is not None and (
                store_candidate is None
                or port_candidate.idx < store_candidate.idx
            ):
                entry = port_candidate
                lsu_ready.pop(candidate_pos)
                stall = entry.stall
                forwarded = False
                if entry.mem_cls == _MC_READ:
                    dq = pending_stores.get(entry.addr)
                    if dq:
                        while dq and dq[0].performed:
                            dq.popleft()
                        if not dq:
                            del pending_stores[entry.addr]
                    if dq and dq[0].idx < entry.idx:
                        forwarded = True  # store buffer forwards the value
                    elif cfg.collect_miss_stats and entry.stall > 0:
                        self.read_miss_issue_delays.append(
                            t - entry.decode_time
                        )
                if forwarded:
                    latency = 1
                else:
                    if stall > 0 and entry.mem_cls == _MC_READ:
                        # Re-time the miss at actual issue: this is where
                        # overlapped misses from the lockup-free cache
                        # contend on the network and at directories.
                        stall = yield MemRequest(
                            entry.addr, False, t, stall
                        )
                    if cfg.prefetch and stall > 0 and entry.ready_time >= 0:
                        # Non-binding prefetch started when the address
                        # became known; the remaining latency has shrunk.
                        stall = max(0, stall - max(0, t - entry.ready_time))
                    latency = 1 + stall
                schedule(entry, t + latency)
                entry.issued = True
                progressed = True
            elif store_candidate is not None:
                entry = store_candidate
                entry.issued = True
                stall = entry.stall
                if stall > 0 and entry.mem_cls == _MC_WRITE:
                    stall = yield MemRequest(entry.addr, True, t, stall)
                if cfg.prefetch and stall > 0 and entry.ready_time >= 0:
                    stall = max(0, stall - max(0, t - entry.ready_time))
                schedule(entry, t + 1 + stall)
                progressed = True

            # Phase 3: decode up to issue_width instructions.
            decoded = 0
            while (
                decoded < cfg.issue_width
                and fetch_i < n
                and (len(rob) - rob_head) < window
                and fetch_stalled_on is None
            ):
                i = fetch_i
                op = col_op[i]
                cls = col_mc[i]
                stall = col_stall[i]
                entry = _Entry(
                    i, op, _FU_VAL[op], cls,
                    col_addr[i], stall, col_wait[i], t,
                )
                fetch_i += 1
                decoded += 1
                progressed = True
                rob.append(entry)
                if cls != _MC_NONE:
                    unperformed.add(cls, entry)
                    if live_sync and (cls in _ACQ or cls == _MC_RELEASE):
                        # Ordinals key the recorded sync schedule; every
                        # acquire waits at the head so its live wait can
                        # be queried even when the baked wait was zero.
                        entry.sync_ordinal = sync_ordinal
                        sync_ordinal += 1
                        if cls in _ACQ:
                            entry.needs_head_wait = True
                    if cls in _STORE_LIKE and entry.addr >= 0:
                        dq = pending_stores.get(entry.addr)
                        if dq is None:
                            pending_stores[entry.addr] = dq = deque()
                        dq.append(entry)
                    if cfg.collect_miss_stats and (
                        cls == _MC_READ and stall > 0
                    ):
                        if last_miss_seen_idx >= 0:
                            self.read_miss_distances.append(
                                i - last_miss_seen_idx
                            )
                        last_miss_seen_idx = i

                if not ignore_deps:
                    src = col_rs1[i]
                    if src > 0:  # register 0 is hardwired zero
                        producer = last_writer.get(src)
                        if producer is not None and (
                            producer.complete_time < 0
                            or producer.complete_time > t
                        ):
                            entry.pending_srcs += 1
                            if producer.dependents is None:
                                producer.dependents = []
                            producer.dependents.append(entry)
                    src = col_rs2[i]
                    if src > 0:
                        producer = last_writer.get(src)
                        if producer is not None and (
                            producer.complete_time < 0
                            or producer.complete_time > t
                        ):
                            entry.pending_srcs += 1
                            if producer.dependents is None:
                                producer.dependents = []
                            producer.dependents.append(entry)
                    rd = col_rd[i]
                    if rd > 0:
                        last_writer[rd] = entry

                if entry.pending_srcs == 0:
                    wake(entry, t + 1)

                if _IS_CONTROL[op] and not perfect_bp:
                    op_member = _OP_MEMBER[op]
                    pc = col_pc[i]
                    next_pc = col_next_pc[i]
                    fallthrough = pc + 1
                    prediction = self.btb.predict(
                        op_member, pc, fallthrough
                    )
                    taken = next_pc != fallthrough
                    if prediction == -2:
                        correct = True
                    elif prediction == -1:
                        correct = False
                    else:
                        correct = prediction == next_pc
                    self.btb.update(op_member, pc, taken, next_pc)
                    if not correct:
                        fetch_stalled_on = entry
                        break

            # Phase 4: retire in order (bandwidth == issue width).
            retired = 0
            stall_reason = None
            sync_requery = False
            while retired < cfg.issue_width and rob_head < len(rob):
                head = rob[rob_head]
                cls = head.mem_cls
                if cls in _STORE_LIKE:
                    if head.complete_time < 0 or head.complete_time > t:
                        stall_reason = "other"
                        break
                    if len(store_buffer) - store_head >= store_depth:
                        stall_reason = "write"
                        break
                    store_buffer.append(head)
                elif cls in _ACQ and not head.performed:
                    # The access latency may already have been overlapped;
                    # the contention wait is charged serially from the
                    # moment the acquire reaches the head.
                    if (
                        head.needs_head_wait
                        and 0 <= head.complete_time <= t
                        and head.head_wait_start < 0
                    ):
                        if live_sync:
                            w = yield SyncRequest(
                                net_cpu, head.sync_ordinal, cls, t,
                                head.wait, head.stall, head.addr,
                            )
                            if w < 0:
                                # Unresolved: the enabling release has not
                                # yet performed on the co-simulated
                                # timeline.  Keep cycling (our own store
                                # buffer must stay live — parking the
                                # whole stepper here can deadlock two
                                # processors on each other's buffered
                                # releases) and re-query next cycle.
                                stall_reason = "sync"
                                sync_requery = True
                                break
                        else:
                            w = head.wait
                        head.head_wait_start = t
                        if w > 0:
                            schedule(head, t + w)
                            stall_reason = "sync"
                        else:
                            # A live wait resolved to zero: perform now
                            # and let retirement proceed this cycle.
                            head.performed = True
                            if fetch_stalled_on is head:
                                fetch_stalled_on = None
                            if head.dependents:
                                for dep in head.dependents:
                                    dep.pending_srcs -= 1
                                    if dep.pending_srcs == 0:
                                        wake(dep, t)
                                head.dependents = None
                            continue
                    else:
                        stall_reason = blocked_reason(head, "sync")
                    break
                elif head.complete_time < 0 or head.complete_time > t:
                    if cls == _MC_READ:
                        stall_reason = blocked_reason(head, "read")
                    elif cls in _ACQ:
                        stall_reason = blocked_reason(head, "sync")
                    else:
                        stall_reason = "other"
                    break
                if tracer is not None:
                    # One complete span per retired instruction, laned by
                    # idx % window: entry idx+window can only decode after
                    # idx retires, so spans on a lane never overlap and
                    # the trace nests cleanly in Perfetto.
                    if probe.span_budget > 0:
                        probe.span_budget -= 1
                        lane = head.idx % window
                        handle = lanes[lane]
                        if handle is None:
                            handle = lanes[lane] = tracer.track(
                                proc_name, f"lane{lane}"
                            )
                        pid, tid = handle
                        args = None
                        if cls != _MC_NONE:
                            args = {"addr": head.addr, "stall": head.stall}
                        tracer.complete(
                            _OP_MEMBER[head.op].name, span_cat[cls],
                            pid, tid, head.decode_time,
                            t + 1 - head.decode_time, args=args,
                        )
                    else:
                        spans_dropped += 1
                rob_head += 1
                retired += 1
                progressed = True
            rob_head = _compact(rob, rob_head)

            # ---- attribution and time advance -------------------------------
            if retired:
                busy += 1
                if rob_hist is not None:
                    rob_hist.observe(len(rob) - rob_head)
                    sb_hist.observe(len(store_buffer) - store_head)
                t += 1
                continue

            done = (
                fetch_i >= n
                and rob_head >= len(rob)
                and store_head >= len(store_buffer)
            )
            if done:
                break

            if stall_reason is None:
                if rob_head < len(rob):
                    stall_reason = "other"
                elif store_head < len(store_buffer):
                    stall_reason = "write"  # draining the store buffer
                else:
                    stall_reason = "other"

            if progressed or sync_requery or not events:
                # An unresolved live sync query pins the advance to one
                # cycle: the grant can arrive before the next local event.
                cycles = 1
            else:
                # Nothing can change until the next event: jump.
                next_t = events[0][0]
                cycles = max(1, next_t - t)
            if stall_reason == "read":
                read += cycles
            elif stall_reason == "sync":
                sync += cycles
            elif stall_reason == "write":
                write += cycles
            else:
                other += cycles
            if rob_hist is not None:
                # Occupancy weighted by the cycles spent in this state.
                rob_hist.observe(len(rob) - rob_head, cycles)
                sb_hist.observe(len(store_buffer) - store_head, cycles)
            t += cycles

        if spans_dropped:
            probe.metrics.counter("trace.spans_dropped").inc(spans_dropped)
        return ExecutionBreakdown(
            label=label or f"DS-{model.name}-w{window}",
            busy=busy, sync=sync, read=read, write=write, other=other,
            instructions=n,
            extras={"cycles": t},
        )


def simulate_ds(
    trace: Trace,
    model: ConsistencyModel,
    config: DSConfig | None = None,
    label: str | None = None,
    probe=None,
) -> ExecutionBreakdown:
    """Convenience wrapper around :class:`DSProcessor`."""
    return DSProcessor(trace, model, config, probe=probe).run(label=label)
