"""Distributed spans and the cross-process trace stitcher.

:class:`Span` is the unit of distributed tracing: a named wall-clock
interval tagged with the trace id it belongs to, its own span id, and
its parent's span id.  Each process records the spans it owns —
the client its submit span, the daemon queue-wait and sweep spans, the
supervisor per-attempt spans, each worker its run and engine spans —
and ships them out-of-band:

* in-process, into a bounded thread-safe :class:`SpanSink`;
* cross-process, as JSONL side files (:func:`write_spans` /
  :func:`read_spans`) keyed by trace id and pid, **never** inside the
  result payloads — simulation outputs stay byte-identical whether
  tracing is on or off.

:func:`stitch` folds any bag of spans back into ONE Chrome
``trace_event`` document (via :class:`~repro.obs.tracer.ChromeTracer`)
that loads in Perfetto and passes
:func:`~repro.obs.tracer.validate_trace`.  Timestamps are microseconds
since the earliest span.  Both endpoints are rounded *independently*
(``dur = round(end) - round(start)``, not ``round(end - start)``):
rounding is monotonic, so intervals that nest in float seconds still
nest in integer microseconds and adjacent siblings never overlap —
which is exactly the invariant ``validate_trace`` checks per track.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path

from .tracer import ChromeTracer

#: Category tag for service-layer spans (client/queue/pool).
CAT_SERVICE = "service"

_FIELDS = (
    "trace_id", "span_id", "parent_id", "name", "cat",
    "process", "thread", "start", "end",
)


@dataclass
class Span:
    """One node of a distributed trace: a wall-clock interval."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    process: str
    thread: str
    start: float
    end: float
    cat: str = CAT_SERVICE
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        out = {name: getattr(self, name) for name in _FIELDS}
        if self.args:
            out["args"] = self.args
        return out

    @classmethod
    def from_dict(cls, data: dict) -> Span:
        return cls(
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            name=data["name"],
            cat=data.get("cat", CAT_SERVICE),
            process=data["process"],
            thread=data.get("thread", "main"),
            start=float(data["start"]),
            end=float(data["end"]),
            args=dict(data.get("args") or {}),
        )


class SpanSink:
    """Thread-safe bounded collector for finished spans.

    The daemon holds one sink for the spans it records in-process;
    :meth:`spans` filters by trace id for the ``/v1/trace/{id}``
    endpoint.  The bound keeps a long-lived daemon from growing without
    limit — when full, the oldest half is dropped (recent traces are
    the ones still being queried).
    """

    def __init__(self, capacity: int = 20000) -> None:
        if capacity < 2:
            raise ValueError("span sink capacity must be >= 2")
        self.capacity = capacity
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self.dropped = 0

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            if len(self._spans) > self.capacity:
                drop = len(self._spans) // 2
                del self._spans[:drop]
                self.dropped += drop

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def spans(self, trace_id: str | None = None) -> list[Span]:
        with self._lock:
            snapshot = list(self._spans)
        if trace_id is None:
            return snapshot
        return [s for s in snapshot if s.trace_id == trace_id]


def write_spans(path, spans) -> None:
    """Append spans to a JSONL side file (parent dirs created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as f:
        for span in spans:
            f.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")


def read_spans(path, trace_id: str | None = None) -> list[Span]:
    """Load spans from a JSONL file or every ``*.jsonl`` in a directory.

    Corrupt lines are skipped (a worker may have died mid-write); an
    absent path is simply an empty trace.
    """
    path = Path(path)
    if not path.exists():
        return []
    files = sorted(path.glob("*.jsonl")) if path.is_dir() else [path]
    spans: list[Span] = []
    for file in files:
        try:
            text = file.read_text()
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                span = Span.from_dict(json.loads(line))
            except (ValueError, KeyError, TypeError):
                continue
            if trace_id is None or span.trace_id == trace_id:
                spans.append(span)
    return spans


def stitch(spans, other_data: dict | None = None) -> dict:
    """Fold spans from any number of processes into one Chrome trace.

    Raises ``ValueError`` on duplicate span ids (two spans claiming the
    same identity means the collection step double-counted a file).
    Returns the parsed trace dict — callers serialize with
    ``json.dumps`` or hand it straight to ``validate_trace``.
    """
    spans = list(spans)
    seen: dict[str, Span] = {}
    for span in spans:
        other = seen.get(span.span_id)
        if other is not None:
            raise ValueError(
                f"duplicate span id {span.span_id!r} "
                f"({other.name!r} vs {span.name!r})"
            )
        seen[span.span_id] = span
        if span.end < span.start:
            raise ValueError(
                f"span {span.span_id!r} ({span.name!r}) ends before "
                f"it starts"
            )
    tracer = ChromeTracer()
    if spans:
        t0 = min(span.start for span in spans)
        ordered = sorted(
            spans,
            key=lambda s: (
                s.process, s.thread, s.start, -s.duration, s.span_id,
            ),
        )
        for span in ordered:
            pid, tid = tracer.track(span.process, span.thread)
            ts = round((span.start - t0) * 1e6)
            dur = max(0, round((span.end - t0) * 1e6) - ts)
            args = {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "trace_id": span.trace_id,
            }
            if span.args:
                args.update(span.args)
            tracer.complete(
                span.name, span.cat, pid, tid, ts, dur, args=args,
            )
    trace_ids = sorted({span.trace_id for span in spans})
    meta = {
        "clock": "wall-clock microseconds since first span",
        "trace_ids": trace_ids,
        "span_count": len(spans),
        **(other_data or {}),
    }
    return tracer.to_dict(meta)
