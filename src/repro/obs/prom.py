"""Prometheus text-format (0.0.4) encoder for the metrics registry.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` as the plain-text
exposition format every Prometheus-compatible scraper understands —
``GET /v1/metrics?format=prom`` on the simulation daemon serves it.

Mapping rules:

* names are sanitized (``daemon.queue_depth`` →
  ``repro_daemon_queue_depth``) and prefixed ``repro_``;
* :class:`~repro.obs.metrics.Counter` → ``counter`` with the
  conventional ``_total`` suffix;
* :class:`~repro.obs.metrics.Gauge` → ``gauge``;
* :class:`~repro.obs.metrics.Histogram` → ``histogram`` with
  *cumulative* ``_bucket{le="..."}`` series (the registry's buckets
  are per-bucket counts), plus ``_sum`` and ``_count``;
* :class:`~repro.obs.metrics.Reservoir` time series have no Prometheus
  equivalent and are skipped (scrape the JSON endpoint for them).

Instruments sharing a family name but differing in labels are grouped
under a single ``# TYPE`` header, as the format requires.
"""

from __future__ import annotations

import re

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Prefix for every exported metric family.
PROM_PREFIX = "repro_"

#: Content type of the text exposition format.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def prom_name(name: str) -> str:
    """Sanitize a registry name into a Prometheus metric family name."""
    return PROM_PREFIX + _NAME_SANITIZE.sub("_", name)


def _escape(value) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _labels(pairs: dict) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{_NAME_SANITIZE.sub("_", k)}="{_escape(pairs[k])}"'
        for k in sorted(pairs)
    )
    return "{" + inner + "}"


def _number(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _counter_lines(name: str, insts: list) -> list[str]:
    lines = [f"# TYPE {name}_total counter"]
    for inst in insts:
        lines.append(
            f"{name}_total{_labels(inst.labels)} {_number(inst.value)}"
        )
    return lines


def _gauge_lines(name: str, insts: list) -> list[str]:
    lines = [f"# TYPE {name} gauge"]
    for inst in insts:
        lines.append(f"{name}{_labels(inst.labels)} {_number(inst.value)}")
    return lines


def _histogram_lines(name: str, insts: list) -> list[str]:
    lines = [f"# TYPE {name} histogram"]
    for inst in insts:
        cumulative = 0
        for bound, count in zip(inst.bounds, inst.counts):
            cumulative += count
            labels = _labels({**inst.labels, "le": _number(bound)})
            lines.append(f"{name}_bucket{labels} {cumulative}")
        labels = _labels({**inst.labels, "le": "+Inf"})
        lines.append(f"{name}_bucket{labels} {inst.count}")
        lines.append(
            f"{name}_sum{_labels(inst.labels)} {_number(inst.total)}"
        )
        lines.append(f"{name}_count{_labels(inst.labels)} {inst.count}")
    return lines


_RENDERERS = {
    Counter: _counter_lines,
    Gauge: _gauge_lines,
    Histogram: _histogram_lines,
}


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text format (trailing newline kept)."""
    families: dict[tuple[str, type], list] = {}
    for inst in registry.instruments():
        kind = type(inst)
        if kind not in _RENDERERS:
            continue
        families.setdefault((prom_name(inst.name), kind), []).append(inst)
    lines: list[str] = []
    for (name, kind), insts in sorted(
        families.items(), key=lambda item: item[0][0]
    ):
        lines.extend(_RENDERERS[kind](name, insts))
    return "\n".join(lines) + ("\n" if lines else "")
