"""Trace context: the identity a job carries across process boundaries.

A :class:`TraceContext` is a ``(trace_id, span_id)`` pair.  The trace id
names the whole distributed operation (one batch submission, however
many shards / retries / workers it fans out to); the span id names one
node in that operation's tree.  The client mints the root context,
serialises it into the ``X-Repro-Trace`` HTTP header (or a batch job
payload), and every layer downstream — queue, supervisor, worker,
engine — records its own child spans under the same trace id.

Wire format (header value and payload field alike)::

    <trace_id:16 hex>-<span_id:8 hex>

Ids come from :func:`os.urandom`, so concurrently minted contexts never
collide and no cross-process coordination is needed.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass

#: HTTP header carrying the serialized context.
HEADER = "X-Repro-Trace"

_WIRE_RE = re.compile(r"^([0-9a-f]{16})-([0-9a-f]{8})$")


def _hex(n_bytes: int) -> str:
    return os.urandom(n_bytes).hex()


@dataclass(frozen=True)
class TraceContext:
    """One node of a distributed trace (see module doc)."""

    trace_id: str
    span_id: str

    @classmethod
    def mint(cls) -> TraceContext:
        """A fresh root context with random trace and span ids."""
        return cls(trace_id=_hex(8), span_id=_hex(4))

    @classmethod
    def parse(cls, value: str) -> TraceContext:
        """Parse the wire format; raises ``ValueError`` on junk."""
        m = _WIRE_RE.match(value.strip().lower())
        if not m:
            raise ValueError(
                f"bad trace header {value!r}; expected "
                "<16 hex>-<8 hex>"
            )
        return cls(trace_id=m.group(1), span_id=m.group(2))

    def header(self) -> str:
        """The wire form, suitable for the ``X-Repro-Trace`` header."""
        return f"{self.trace_id}-{self.span_id}"

    def child(self) -> TraceContext:
        """A new span under the same trace."""
        return TraceContext(trace_id=self.trace_id, span_id=_hex(4))

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "parent_id": self.span_id}
