"""``python -m repro profile`` — one instrumented run, fully reported.

Profiles one application under one processor model / window / network
combination:

1. the application's Tango trace comes from the shared
   :class:`~repro.experiments.runner.TraceStore` (generated on first
   use, cached after);
2. the chosen processor kind is replayed under **all four consistency
   models** (fresh network each, contention-style) for the
   stall-attribution table;
3. the primary (kind, model) run is replayed once more with a
   :class:`~repro.obs.Probe` attached, filling occupancy histograms
   (reorder buffer, store buffer, per-link queues), miss-latency
   distributions, and — with tracing on — per-instruction retire spans
   plus network transaction spans;
4. everything lands under ``results/profiles/<run-id>/``: a Perfetto-
   loadable ``trace.json`` (opt-in), a deterministic ``metrics.json``,
   and a ``manifest.json`` recording config, git revision and timings.

The trace and metrics files are byte-identical across repeated runs of
the same configuration; only the manifest carries wall-clock data.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..cpu import ProcessorConfig, simulate
from ..net import build_network
from .manifest import build_manifest, validate_manifest, write_manifest
from .metrics import MetricsRegistry, format_histogram
from .probe import Probe
from .tracer import ChromeTracer, validate_trace

#: Consistency models swept for the stall-attribution table.
PROFILE_MODELS = ("SC", "PC", "WO", "RC")

#: Histograms rendered in the occupancy section, with display titles.
_OCCUPANCY_HISTS = (
    ("ds.rob_occupancy", "reorder-buffer occupancy (cycles-weighted)"),
    ("ds.store_buffer_depth", "store-buffer depth (cycles-weighted)"),
    ("static.write_buffer_depth", "write-buffer depth (per push)"),
    ("static.read_buffer_depth", "read-buffer depth (per issue)"),
    ("net.miss_latency", "network miss latency (cycles)"),
)


@dataclass
class ProfileResult:
    """Everything one profile run produced."""

    app: str
    config: dict
    report: str
    out_dir: Path
    outputs: dict[str, Path] = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


def _processor_config(
    kind: str, model: str, window: int, engine: str | None = None
) -> ProcessorConfig:
    if engine is None:
        return ProcessorConfig(kind=kind, model=model, window=window)
    return ProcessorConfig(
        kind=kind, model=model, window=window, engine=engine
    )


def _fresh_network(network: str, store):
    return build_network(network, store.n_procs, store.line_size)


def run_profile(
    app: str,
    store,
    kind: str = "ds",
    model: str = "RC",
    window: int = 64,
    network: str = "ideal",
    engine: str | None = None,
    trace: bool = True,
    metrics: bool = True,
    out_dir: Path | str = "results/profiles",
    command: str = "",
) -> ProfileResult:
    """Profile ``app`` and write trace/metrics/manifest under ``out_dir``.

    ``store`` is a :class:`~repro.experiments.runner.TraceStore`
    (it pins processor count, miss penalty, preset and cache dir).
    ``engine`` selects the simulation engine (``fast``/``reference``;
    None resolves the process default) and is recorded in the run
    manifest, which :func:`~repro.obs.manifest.validate_manifest`
    requires.  ``trace``/``metrics`` gate the two instrumentation
    channels; the report always renders (from an in-memory registry).
    Returns a :class:`ProfileResult`; ``errors`` carries any
    trace/manifest validation failures.
    """
    from .. import cpu

    kind = kind.lower()
    model = model.upper()
    engine = (engine or cpu.DEFAULT_ENGINE).lower()
    timings: dict[str, float] = {}

    t0 = time.perf_counter()
    run = store.get(app)
    timings["trace_generation"] = time.perf_counter() - t0

    # -- stall attribution per consistency class -----------------------
    t0 = time.perf_counter()
    if kind == "base":
        sweep = [simulate(
            run.trace, _processor_config("base", "RC", window, engine),
            network=_fresh_network(network, store),
        )]
    else:
        sweep = [
            simulate(
                run.trace, _processor_config(kind, m, window, engine),
                network=_fresh_network(network, store),
            )
            for m in PROFILE_MODELS
        ]
    timings["model_sweep"] = time.perf_counter() - t0

    # -- the instrumented primary run ----------------------------------
    t0 = time.perf_counter()
    registry = MetricsRegistry(enabled=True)
    tracer = ChromeTracer() if trace else None
    probe = Probe(metrics=registry, tracer=tracer)
    net = _fresh_network(network, store)
    if net is not None:
        net.attach_probe(probe)
    primary_cfg = _processor_config(
        kind, "RC" if kind == "base" else model, window, engine
    )
    primary = simulate(run.trace, primary_cfg, network=net, probe=probe)
    if net is not None:
        net.publish(registry, prefix="net")
        series = registry.reservoir("net.miss_latency_series")
        for i, lat in enumerate(net.latencies):
            series.sample(i, lat)
    # Host (trace generator) statistics and timeline from the cached run.
    probe.publish_run_stats(run.stats)
    if tracer is not None:
        probe.trace_host_timeline(run.trace, store.trace_cpu)
    timings["instrumented_run"] = time.perf_counter() - t0

    # -- outputs -------------------------------------------------------
    run_id = f"{app}-{kind}-{model.lower()}-{network}-w{window}"
    out_dir = Path(out_dir) / run_id
    out_dir.mkdir(parents=True, exist_ok=True)
    config = {
        "app": app,
        "kind": kind,
        "model": model,
        "window": window,
        "network": network,
        "engine": engine,
        "n_procs": store.n_procs,
        "miss_penalty": store.miss_penalty,
        "preset": store.preset,
        "trace": trace,
        "metrics": metrics,
    }
    errors: list[str] = []
    outputs: dict[str, Path] = {}

    t0 = time.perf_counter()
    if tracer is not None:
        trace_path = out_dir / "trace.json"
        tracer.write(trace_path, other_data={"run_id": run_id})
        outputs["trace"] = trace_path
        errors += [
            f"trace: {e}"
            for e in validate_trace(json.loads(trace_path.read_text()))
        ]
    if metrics:
        metrics_path = out_dir / "metrics.json"
        metrics_path.write_text(json.dumps(
            registry.snapshot(), sort_keys=True, indent=1,
        ) + "\n")
        outputs["metrics"] = metrics_path
    manifest_path = out_dir / "manifest.json"
    manifest = build_manifest(
        command or f"python -m repro profile {app}",
        config, timings | {"write": time.perf_counter() - t0}, outputs,
    )
    write_manifest(manifest_path, manifest)
    outputs["manifest"] = manifest_path
    errors += [
        f"manifest: {e}"
        for e in validate_manifest(json.loads(manifest_path.read_text()))
    ]

    report = _format_report(
        run_id, run, sweep, primary, registry, net, tracer, outputs
    )
    return ProfileResult(
        app=app, config=config, report=report, out_dir=out_dir,
        outputs=outputs, errors=errors,
    )


def _format_report(
    run_id, run, sweep, primary, registry, net, tracer, outputs
) -> str:
    from ..experiments.report import format_breakdowns, format_table

    lines = [f"profile {run_id}"]
    lines.append("")
    lines.append(format_breakdowns(
        "stall attribution per consistency class (percent of BASE)",
        sweep, run.base,
    ))

    for name, title in _OCCUPANCY_HISTS:
        hist = registry.get(name)
        if hist is not None and hist.count:
            lines.append("")
            lines.append(title)
            lines.append(format_histogram(hist))

    if net is not None:
        links = net.link_summary()
        lines.append("")
        lines.append(format_table(
            ["hops", "queue mean", "queue max", "busiest link"],
            [[links["samples"], float(links["mean_depth"]),
              links["max_depth"], links["busiest_link"]]],
            title="link queueing",
            float_fmt="{:.2f}",
        ))

    if tracer is not None:
        lines.append("")
        lines.append(f"trace: {len(tracer)} events")
    lines.append("")
    lines.append("outputs:")
    for label, path in sorted(outputs.items()):
        lines.append(f"  {label}: {path}")
    return "\n".join(lines)
