"""Metrics registry: counters, gauges, histograms, time-series reservoirs.

The single sink every simulator layer publishes observability data into
(the paper's Figures 3/4 decompose *aggregate* time; the registry keeps
the time-resolved signals that explain those aggregates — ROB occupancy,
store-buffer depth, per-link queue lengths, miss-latency distributions).

Two design rules keep the hot paths honest:

* **Opt-in**: a disabled :class:`MetricsRegistry` hands out shared no-op
  instruments whose recording methods do nothing, so call sites may hold
  an instrument unconditionally; the truly hot loops additionally guard
  with ``if probe is not None`` and skip even the no-op call.
* **Determinism**: every instrument is plain integer/float arithmetic in
  registration order — snapshots of two identical runs are identical,
  which the trace/metrics determinism tests rely on.
"""

from __future__ import annotations

from bisect import bisect_left

#: Default histogram bucket upper bounds (cycles / latencies).
LATENCY_BOUNDS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000)

#: Histogram bucket upper bounds for wall-clock durations in seconds
#: (service-layer job wait/run latencies).
SECONDS_BOUNDS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
)


def label_key(name: str, labels: dict | None) -> str:
    """The registry key for an instrument: ``name{k="v",...}``.

    Unlabeled instruments keep the bare name, so every pre-existing
    call site (and ``snapshot()`` consumer) is unchanged.  Label pairs
    are sorted, so ``{"a": 1, "b": 2}`` and ``{"b": 2, "a": 1}``
    address the same instrument.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{labels[k]}"' for k in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def occupancy_bounds(capacity: int) -> tuple[int, ...]:
    """Power-of-two bucket bounds for an occupancy in ``0..capacity``."""
    bounds = [0]
    b = 1
    while b < capacity:
        bounds.append(b)
        b *= 2
    bounds.append(capacity)
    return tuple(bounds)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.labels: dict = {}
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self):
        return self.value


class Gauge:
    """A point-in-time value (last write wins, or inc/dec deltas).

    The delta form serves level-style signals maintained from several
    call sites — e.g. the service daemon's queue depth, bumped on
    submit and dropped on dispatch.
    """

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.labels: dict = {}
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, n=1) -> None:
        self.value += n

    def dec(self, n=1) -> None:
        self.value -= n

    def snapshot(self):
        return self.value


class Histogram:
    """Fixed-bucket histogram with sum/count/max.

    ``bounds`` are inclusive upper bucket bounds; one overflow bucket
    catches everything above the last bound.  ``observe(v, n)`` records
    a value with a weight, so per-cycle occupancies can be accumulated
    from the event-driven models' multi-cycle jumps.
    """

    __slots__ = (
        "name", "labels", "bounds", "counts", "total", "count", "max",
    )

    def __init__(self, name: str, bounds=LATENCY_BOUNDS) -> None:
        self.name = name
        self.labels: dict = {}
        self.bounds = tuple(sorted(bounds))
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.count = 0
        self.max = 0

    def observe(self, value, n: int = 1) -> None:
        self.counts[bisect_left(self.bounds, value)] += n
        self.total += value * n
        self.count += n
        if value > self.max:
            self.max = value

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the bucket bound covering rank q."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def snapshot(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
            "max": self.max,
            "mean": round(self.mean(), 3),
        }


class Reservoir:
    """Bounded time series with deterministic stride decimation.

    Keeps at most ``capacity`` ``(t, value)`` samples.  When full, every
    other retained sample is dropped and the keep-stride doubles, so an
    arbitrarily long run degrades into an evenly thinned series instead
    of overflowing — and identically for identical runs.
    """

    __slots__ = (
        "name", "labels", "capacity", "times", "values",
        "_stride", "_seen",
    )

    def __init__(self, name: str, capacity: int = 1024) -> None:
        if capacity < 2:
            raise ValueError("reservoir capacity must be >= 2")
        self.name = name
        self.labels: dict = {}
        self.capacity = capacity
        self.times: list[int] = []
        self.values: list = []
        self._stride = 1
        self._seen = 0

    def sample(self, t: int, value) -> None:
        keep = self._seen % self._stride == 0
        self._seen += 1
        if not keep:
            return
        self.times.append(t)
        self.values.append(value)
        if len(self.times) >= self.capacity:
            self.times = self.times[::2]
            self.values = self.values[::2]
            self._stride *= 2

    def snapshot(self) -> dict:
        return {
            "t": list(self.times),
            "v": list(self.values),
            "stride": self._stride,
            "seen": self._seen,
        }


class _NullInstrument:
    """Shared do-nothing instrument handed out by a disabled registry."""

    __slots__ = ()
    name = "<disabled>"
    labels: dict = {}
    value = 0
    total = 0
    count = 0
    max = 0

    def inc(self, n: int = 1) -> None:
        pass

    def dec(self, n: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value, n: int = 1) -> None:
        pass

    def sample(self, t: int, value) -> None:
        pass

    def mean(self) -> float:
        return 0.0

    def quantile(self, q: float) -> float:
        return 0.0

    def snapshot(self):
        return None


_NULL = _NullInstrument()


class MetricsRegistry:
    """Named instruments, one namespace per run.

    ``MetricsRegistry(enabled=False)`` is the near-zero-cost no-op form:
    every factory returns the shared null instrument and
    :meth:`snapshot` is empty.  Re-requesting a name returns the same
    instrument; requesting it as a different kind is an error.

    Instruments may carry **labels** (``labels={"state": "busy"}``):
    each distinct label set is its own instrument under the family
    ``name``, keyed (and snapshotted) as ``name{state="busy"}`` — the
    form the Prometheus encoder in :mod:`repro.obs.prom` groups back
    into one metric family.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, kind, *args, labels=None):
        if not self.enabled:
            return _NULL
        key = label_key(name, labels)
        inst = self._instruments.get(key)
        if inst is None:
            inst = kind(name, *args)
            if labels:
                inst.labels = dict(labels)
            self._instruments[key] = inst
        elif type(inst) is not kind:
            raise TypeError(
                f"metric {key!r} already registered as "
                f"{type(inst).__name__}, not {kind.__name__}"
            )
        return inst

    def counter(self, name: str, labels: dict | None = None) -> Counter:
        return self._get(name, Counter, labels=labels)

    def gauge(self, name: str, labels: dict | None = None) -> Gauge:
        return self._get(name, Gauge, labels=labels)

    def histogram(
        self, name: str, bounds=LATENCY_BOUNDS,
        labels: dict | None = None,
    ) -> Histogram:
        return self._get(name, Histogram, bounds, labels=labels)

    def reservoir(
        self, name: str, capacity: int = 1024,
        labels: dict | None = None,
    ) -> Reservoir:
        return self._get(name, Reservoir, capacity, labels=labels)

    def get(self, name: str, labels: dict | None = None):
        """The registered instrument, or None."""
        return self._instruments.get(label_key(name, labels))

    def instruments(self) -> list:
        """Every registered instrument, sorted by key (stable order)."""
        return [
            self._instruments[key] for key in sorted(self._instruments)
        ]

    def snapshot(self) -> dict:
        """JSON-serializable dump of every instrument, grouped by kind."""
        out: dict[str, dict] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "reservoirs": {},
        }
        group = {
            Counter: "counters",
            Gauge: "gauges",
            Histogram: "histograms",
            Reservoir: "reservoirs",
        }
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            out[group[type(inst)]][name] = inst.snapshot()
        return out


#: Shared disabled registry for callers that want "metrics or nothing".
NULL_REGISTRY = MetricsRegistry(enabled=False)


def format_histogram(hist: Histogram, width: int = 40) -> str:
    """ASCII rendition of a histogram (one bar per bucket)."""
    lines = []
    peak = max(hist.counts) if hist.count else 0
    bounds = [str(b) for b in hist.bounds] + [f">{hist.bounds[-1]}"]
    label_w = max(len(b) for b in bounds)
    for bound, count in zip(bounds, hist.counts):
        bar = "#" * (round(width * count / peak) if peak else 0)
        lines.append(f"  <= {bound.rjust(label_w)}  {bar} {count}")
    lines.append(
        f"  (count {hist.count}, mean {hist.mean():.1f}, max {hist.max})"
    )
    return "\n".join(lines)
