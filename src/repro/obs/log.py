"""Structured JSONL logging for the service layer.

One log line per event, each a self-contained JSON object::

    {"ts": 1754556000.123, "mono": 12.345678, "level": "info",
     "event": "queue.accepted", "job": "9f2c...", "trace": "ab31..."}

Design points:

* **stdlib only** — a thin wrapper over an opened text stream, not the
  ``logging`` module, so there is no global handler state to collide
  with embedding applications;
* **contextual binding** — :meth:`JsonLogger.bind` returns a child
  logger whose extra fields (run / trace / job ids) ride on every
  subsequent line, which is how one request stays correlated across
  daemon, queue, pool and worker events;
* **two clocks** — every line carries the wall clock (``ts``, unix
  seconds, for humans and cross-host correlation) and the monotonic
  clock (``mono``, for exact in-process deltas that survive NTP
  steps);
* **opt-in** — the shared :data:`NULL_LOG` swallows everything, so
  call sites hold a logger unconditionally, exactly like the metrics
  registry's null instruments.

Writes are line-atomic under a lock shared by all children, so threads
(and the daemon's HTTP handler pool) can log concurrently.
"""

from __future__ import annotations

import json
import threading
import time

LEVELS = ("debug", "info", "warning", "error")

_LEVEL_RANK = {name: rank for rank, name in enumerate(LEVELS)}


class JsonLogger:
    """Leveled JSONL logger writing to one text stream (see module doc)."""

    def __init__(
        self,
        stream=None,
        *,
        level: str = "info",
        fields: dict | None = None,
        _shared: dict | None = None,
    ) -> None:
        if level not in _LEVEL_RANK:
            raise ValueError(
                f"unknown log level {level!r}; choose from {LEVELS}"
            )
        self.level = level
        self._rank = _LEVEL_RANK[level]
        self._fields = dict(fields or {})
        # Stream, lock and the owned-file handle live in state shared
        # by every child bind(), so close() closes for all of them.
        self._shared = _shared if _shared is not None else {
            "stream": stream,
            "lock": threading.Lock(),
            "owns": False,
        }

    @classmethod
    def to_path(cls, path, *, level: str = "info") -> JsonLogger:
        """A logger appending to ``path`` (parent dirs created)."""
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        logger = cls(path.open("a", buffering=1), level=level)
        logger._shared["owns"] = True
        return logger

    @property
    def enabled(self) -> bool:
        return self._shared["stream"] is not None

    def bind(self, **fields) -> JsonLogger:
        """A child logger with ``fields`` merged onto every line."""
        return JsonLogger(
            level=self.level,
            fields={**self._fields, **fields},
            _shared=self._shared,
        )

    def log(self, level: str, event: str, **fields) -> None:
        stream = self._shared["stream"]
        if stream is None or _LEVEL_RANK.get(level, 99) < self._rank:
            return
        record = {
            "ts": round(time.time(), 6),
            "mono": round(time.monotonic(), 6),
            "level": level,
            "event": event,
            **self._fields,
            **fields,
        }
        line = json.dumps(record, sort_keys=False, default=str)
        with self._shared["lock"]:
            try:
                stream.write(line + "\n")
            except (OSError, ValueError):
                pass  # logging must never take the service down

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)

    def close(self) -> None:
        with self._shared["lock"]:
            stream = self._shared["stream"]
            self._shared["stream"] = None
            if stream is not None and self._shared["owns"]:
                try:
                    stream.close()
                except OSError:
                    pass


#: Shared disabled logger for callers that want "logging or nothing".
NULL_LOG = JsonLogger()
