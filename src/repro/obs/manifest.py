"""Machine-readable run manifests for profiled runs.

Every ``python -m repro profile`` invocation writes a ``manifest.json``
next to its trace/metrics outputs recording exactly what produced them:
the resolved configuration, the git revision, wall-clock timings per
phase, and the emitted files with sizes.  The manifest is metadata — it
carries timestamps and timings and is *not* required to be
deterministic; the trace and metrics files are.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from pathlib import Path

MANIFEST_SCHEMA = "repro-profile-manifest/1"

#: Keys a valid manifest must carry.
REQUIRED_FIELDS = (
    "schema", "created", "command", "config", "timings", "outputs",
    "python", "platform",
)


def git_revision(repo_dir: Path | str | None = None) -> str | None:
    """The current git commit hash, or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir or Path(__file__).resolve().parents[3],
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def build_manifest(
    command: str,
    config: dict,
    timings: dict,
    outputs: dict[str, Path | str],
) -> dict:
    """Assemble a manifest dict (outputs annotated with on-disk sizes)."""
    out_entries = {}
    for label, path in sorted(outputs.items()):
        path = Path(path)
        entry = {"path": str(path)}
        if path.exists():
            entry["bytes"] = path.stat().st_size
        out_entries[label] = entry
    return {
        "schema": MANIFEST_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "command": command,
        "git_revision": git_revision(),
        "config": config,
        "timings": {k: round(v, 4) for k, v in timings.items()},
        "outputs": out_entries,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }


def write_manifest(path: Path | str, manifest: dict) -> None:
    Path(path).write_text(json.dumps(manifest, indent=2) + "\n")


def validate_manifest(obj) -> list[str]:
    """Schema-check a parsed manifest; returns problems (empty == ok)."""
    errors = []
    if not isinstance(obj, dict):
        return ["manifest is not an object"]
    for field in REQUIRED_FIELDS:
        if field not in obj:
            errors.append(f"missing field {field!r}")
    if obj.get("schema") not in (None, MANIFEST_SCHEMA):
        errors.append(
            f"unknown schema {obj.get('schema')!r} != {MANIFEST_SCHEMA!r}"
        )
    for name in ("config", "timings", "outputs"):
        if name in obj and not isinstance(obj[name], dict):
            errors.append(f"{name} is not an object")
    config = obj.get("config")
    if isinstance(config, dict):
        # A run is not reproducible without knowing which simulation
        # engine and interconnect backend produced it.  Batch manifests
        # record the swept set as "networks" (plural).
        if "engine" not in config:
            errors.append("config missing 'engine'")
        if "network" not in config and "networks" not in config:
            errors.append("config missing 'network' (or 'networks')")
    for label, entry in (obj.get("outputs") or {}).items():
        if not isinstance(entry, dict) or "path" not in entry:
            errors.append(f"output {label!r} has no path")
    return errors
