"""Structured event tracer emitting Chrome ``trace_event`` JSON.

Every instrumented run can dump a timeline that loads directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``:

* **complete events** (``ph: "X"``) — per-instruction lifecycle spans
  (decode → issue → execute → perform → retire) on the processor-model
  tracks, and per-transaction miss spans on the network tracks;
* **instant events** (``ph: "i"``) — coherence invalidations, network
  hops, synchronization operations;
* **counter events** (``ph: "C"``) — ROB occupancy, store-buffer depth,
  per-link queue depth over time.

Track identity is allocated through :meth:`ChromeTracer.track`, which
hands out ``(pid, tid)`` pairs in registration order and emits the
process/thread-name metadata Perfetto uses for labels.  Because all
simulator state is deterministic and tracks are allocated in
deterministic order, :meth:`dumps` output is byte-identical across
repeated runs of the same configuration — a property the test suite
asserts.

Timestamps are simulated processor *cycles*, written 1:1 into the
microsecond field the format requires (so "1 µs" in the UI is one
cycle).
"""

from __future__ import annotations

import json

#: Event categories used by the simulator layers.
CAT_CPU = "cpu"
CAT_MEM = "mem"
CAT_NET = "net"
CAT_SYNC = "sync"

#: Keys every non-metadata event must carry (trace_event JSON schema).
REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


class ChromeTracer:
    """Collects trace events and serializes them as trace_event JSON."""

    def __init__(self) -> None:
        self.events: list[dict] = []
        self._meta: list[dict] = []
        self._tracks: dict[tuple[str, str], tuple[int, int]] = {}
        self._processes: dict[str, int] = {}
        self._thread_counts: dict[str, int] = {}

    # -- track allocation ----------------------------------------------

    def track(self, process: str, thread: str = "main") -> tuple[int, int]:
        """The ``(pid, tid)`` of a named track, allocated on first use."""
        key = (process, thread)
        ids = self._tracks.get(key)
        if ids is not None:
            return ids
        pid = self._processes.get(process)
        if pid is None:
            pid = len(self._processes) + 1
            self._processes[process] = pid
            self._meta.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": process},
            })
        tid = self._thread_counts.get(process, 0)
        self._thread_counts[process] = tid + 1
        self._meta.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": thread},
        })
        ids = (pid, tid)
        self._tracks[key] = ids
        return ids

    # -- event emission ------------------------------------------------

    def complete(
        self, name: str, cat: str, pid: int, tid: int,
        ts: int, dur: int, args: dict | None = None,
    ) -> None:
        """A span ``[ts, ts + dur)`` on one track."""
        ev = {
            "name": name, "cat": cat, "ph": "X",
            "ts": ts, "dur": dur, "pid": pid, "tid": tid,
        }
        if args:
            ev["args"] = args
        self.events.append(ev)

    def instant(
        self, name: str, cat: str, pid: int, tid: int,
        ts: int, args: dict | None = None,
    ) -> None:
        ev = {
            "name": name, "cat": cat, "ph": "i", "s": "t",
            "ts": ts, "pid": pid, "tid": tid,
        }
        if args:
            ev["args"] = args
        self.events.append(ev)

    def counter(
        self, name: str, pid: int, ts: int, values: dict
    ) -> None:
        self.events.append({
            "name": name, "ph": "C", "ts": ts, "pid": pid, "tid": 0,
            "args": dict(values),
        })

    # -- serialization -------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def to_dict(self, other_data: dict | None = None) -> dict:
        return {
            "traceEvents": self._meta + self.events,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "simulated cycles (1 cycle == 1us field unit)",
                **(other_data or {}),
            },
        }

    def dumps(self, other_data: dict | None = None) -> str:
        """Deterministic JSON: sorted keys, fixed separators."""
        return json.dumps(
            self.to_dict(other_data), sort_keys=True,
            separators=(",", ":"),
        )

    def write(self, path, other_data: dict | None = None) -> None:
        with open(path, "w") as f:
            f.write(self.dumps(other_data))
            f.write("\n")


def validate_trace(obj) -> list[str]:
    """Schema-check a parsed trace_event JSON document.

    Returns a list of human-readable problems (empty == valid):

    * the top level must be ``{"traceEvents": [...]}``;
    * every event needs ``name/ph/ts/pid/tid`` with sane types,
      complete events additionally a non-negative ``dur``;
    * complete events on one ``(pid, tid)`` track must be properly
      nested — a span may contain later spans but never partially
      overlap one (in-order tracks are sequential; the DS reorder-lane
      assignment guarantees it for out-of-order spans).
    """
    errors: list[str] = []
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        return ["top level is not an object with a traceEvents list"]
    events = obj["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    spans: dict[tuple, list[tuple[int, int]]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {i} is not an object")
            continue
        ph = ev.get("ph")
        if ph == "M":
            continue
        for key in REQUIRED_KEYS:
            if key not in ev:
                errors.append(f"event {i} missing {key!r}")
        if not isinstance(ev.get("ts", 0), (int, float)):
            errors.append(f"event {i} has non-numeric ts")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"event {i} ({ev.get('name')}): bad dur")
            else:
                spans.setdefault(
                    (ev.get("pid"), ev.get("tid")), []
                ).append((ev.get("ts", 0), dur))
        elif ph not in ("i", "I", "C", "b", "e", "n"):
            errors.append(f"event {i} has unknown phase {ph!r}")
        if len(errors) > 32:
            errors.append("... (truncated)")
            return errors
    for track, track_spans in spans.items():
        track_spans.sort(key=lambda s: (s[0], -s[1]))
        stack: list[int] = []  # enclosing span end times
        for ts, dur in track_spans:
            while stack and ts >= stack[-1]:
                stack.pop()
            if stack and ts + dur > stack[-1]:
                errors.append(
                    f"track {track}: span [{ts}, {ts + dur}) partially "
                    f"overlaps one ending at {stack[-1]}"
                )
                if len(errors) > 32:
                    errors.append("... (truncated)")
                    return errors
                continue
            stack.append(ts + dur)
    return errors
