"""Unified observability layer: metrics registry, tracing, profiling.

One opt-in, cross-cutting instrumentation surface for every simulator
layer (memory system, interconnect, processor models, the Tango
executor):

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms
  and bounded time-series reservoirs; disabled registries hand out
  shared no-op instruments so instrumented call sites cost nearly
  nothing when observability is off;
* :class:`ChromeTracer` — structured event traces in Chrome
  ``trace_event`` JSON, loadable in Perfetto, deterministic for a fixed
  configuration;
* :class:`Probe` — the bundle of both that the simulators accept
  (always optional); simulation results are byte-identical with or
  without one;
* :func:`run_profile` — the ``python -m repro profile`` entry point:
  one instrumented run reported as occupancy histograms, stall
  attribution, and trace + machine-readable manifest on disk.

The fleet tier builds on the same primitives: :class:`TraceContext`
(distributed trace identity propagated via the ``X-Repro-Trace``
header), :class:`Span`/:class:`SpanSink`/:func:`stitch` (cross-process
span collection folded into one Perfetto timeline),
:class:`JsonLogger` (structured JSONL logs with trace/job correlation)
and :func:`render_prometheus` (metrics in Prometheus text format).
"""

from .context import HEADER as TRACE_HEADER
from .context import TraceContext
from .log import LEVELS as LOG_LEVELS
from .log import NULL_LOG, JsonLogger
from .manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    git_revision,
    validate_manifest,
    write_manifest,
)
from .metrics import (
    LATENCY_BOUNDS,
    SECONDS_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    Reservoir,
    format_histogram,
    label_key,
    occupancy_bounds,
)
from .probe import Probe
from .profile import PROFILE_MODELS, ProfileResult, run_profile
from .prom import PROM_CONTENT_TYPE, prom_name, render_prometheus
from .spans import (
    CAT_SERVICE,
    Span,
    SpanSink,
    read_spans,
    stitch,
    write_spans,
)
from .tracer import (
    CAT_CPU,
    CAT_MEM,
    CAT_NET,
    CAT_SYNC,
    ChromeTracer,
    validate_trace,
)

__all__ = [
    "CAT_CPU",
    "CAT_MEM",
    "CAT_NET",
    "CAT_SERVICE",
    "CAT_SYNC",
    "ChromeTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLogger",
    "LATENCY_BOUNDS",
    "LOG_LEVELS",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "NULL_LOG",
    "NULL_REGISTRY",
    "PROFILE_MODELS",
    "PROM_CONTENT_TYPE",
    "Probe",
    "ProfileResult",
    "Reservoir",
    "SECONDS_BOUNDS",
    "Span",
    "SpanSink",
    "TRACE_HEADER",
    "TraceContext",
    "build_manifest",
    "format_histogram",
    "git_revision",
    "label_key",
    "occupancy_bounds",
    "prom_name",
    "read_spans",
    "render_prometheus",
    "run_profile",
    "stitch",
    "validate_manifest",
    "validate_trace",
    "write_manifest",
    "write_spans",
]
