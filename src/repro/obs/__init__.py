"""Unified observability layer: metrics registry, tracing, profiling.

One opt-in, cross-cutting instrumentation surface for every simulator
layer (memory system, interconnect, processor models, the Tango
executor):

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms
  and bounded time-series reservoirs; disabled registries hand out
  shared no-op instruments so instrumented call sites cost nearly
  nothing when observability is off;
* :class:`ChromeTracer` — structured event traces in Chrome
  ``trace_event`` JSON, loadable in Perfetto, deterministic for a fixed
  configuration;
* :class:`Probe` — the bundle of both that the simulators accept
  (always optional); simulation results are byte-identical with or
  without one;
* :func:`run_profile` — the ``python -m repro profile`` entry point:
  one instrumented run reported as occupancy histograms, stall
  attribution, and trace + machine-readable manifest on disk.
"""

from .manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    git_revision,
    validate_manifest,
    write_manifest,
)
from .metrics import (
    LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    Reservoir,
    format_histogram,
    occupancy_bounds,
)
from .probe import Probe
from .profile import PROFILE_MODELS, ProfileResult, run_profile
from .tracer import (
    CAT_CPU,
    CAT_MEM,
    CAT_NET,
    CAT_SYNC,
    ChromeTracer,
    validate_trace,
)

__all__ = [
    "CAT_CPU",
    "CAT_MEM",
    "CAT_NET",
    "CAT_SYNC",
    "ChromeTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BOUNDS",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "PROFILE_MODELS",
    "Probe",
    "ProfileResult",
    "Reservoir",
    "build_manifest",
    "format_histogram",
    "git_revision",
    "occupancy_bounds",
    "run_profile",
    "validate_manifest",
    "validate_trace",
    "write_manifest",
]
