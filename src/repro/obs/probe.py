"""The instrumentation probe threaded through the simulator layers.

A :class:`Probe` bundles one :class:`~repro.obs.metrics.MetricsRegistry`
and an optional :class:`~repro.obs.tracer.ChromeTracer` and is accepted
(always optionally, default ``None``) by:

* :class:`repro.tango.TangoExecutor` — publishes per-CPU run statistics
  and cache/coherence counters after the run, reconstructs the traced
  processors' host timelines for the tracer;
* :class:`repro.mem.CoherentMemorySystem` — per-miss latency histograms
  and coherence-event counters (miss paths only; hits stay untouched);
* :class:`repro.net.ContentionNetwork` — per-transaction network spans,
  per-hop queue-wait events, link-queue-depth publication;
* every CPU model in :mod:`repro.cpu` — occupancy histograms, stall
  attribution, per-instruction pipeline spans (DS).

Simulation results are byte-identical with a probe attached or not: the
probe only *observes*.  The hot loops guard every probe touch with an
``is None`` check, so the disabled path costs one pointer comparison on
slow paths and nothing at all on the fast paths (see the ≤2% guard in
``benchmarks/test_perf_smoke.py``).
"""

from __future__ import annotations

from ..isa import MemClass, Op
from .metrics import LATENCY_BOUNDS, MetricsRegistry
from .tracer import CAT_CPU, CAT_MEM, CAT_SYNC, ChromeTracer

_MC_READ = int(MemClass.READ)
_MC_WRITE = int(MemClass.WRITE)
_MC_ACQUIRE = int(MemClass.ACQUIRE)
_MC_RELEASE = int(MemClass.RELEASE)
_MC_BARRIER = int(MemClass.BARRIER)

_OP_NAME = {int(op): op.name for op in Op}

#: CpuStats fields published as ``tango.cpu<N>.<field>`` counters.
_CPU_STAT_FIELDS = (
    "busy_cycles", "reads", "writes", "read_misses", "write_misses",
    "read_stall_cycles", "write_stall_cycles", "locks", "unlocks",
    "barriers", "wait_events", "set_events", "acquire_wait_cycles",
    "acquire_access_cycles", "release_access_cycles", "cond_branches",
)


class Probe:
    """Metrics + tracing sink handed to the simulator layers."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        tracer: ChromeTracer | None = None,
        span_limit: int = 50_000,
        hop_limit: int = 20_000,
    ) -> None:
        self.metrics = (
            metrics if metrics is not None
            else MetricsRegistry(enabled=False)
        )
        self.tracer = tracer
        #: Remaining per-instruction span / per-hop event budgets; once
        #: exhausted further events are counted, not emitted (the caps
        #: are reported, never silent — see ``trace.spans_dropped``).
        self.span_budget = span_limit if tracer is not None else 0
        self.hop_budget = hop_limit if tracer is not None else 0
        # (process, group) -> per-lane busy-until times, for laning
        # overlapping spans (e.g. a DS core's concurrent misses) onto
        # properly nesting tracks.
        self._lanes: dict[tuple[str, str], list[int]] = {}
        m = self.metrics
        self._read_miss_lat = m.histogram(
            "mem.read_miss_latency", LATENCY_BOUNDS
        )
        self._write_miss_lat = m.histogram(
            "mem.write_miss_latency", LATENCY_BOUNDS
        )

    @property
    def enabled(self) -> bool:
        return self.metrics.enabled or self.tracer is not None

    def span_track(
        self, process: str, group: str, start: int, end: int
    ) -> tuple[int, int]:
        """A ``(pid, tid)`` whose lane is free over ``[start, end)``.

        Concurrent spans of one group (overlapped misses from a
        lockup-free cache) land on separate lanes, so every lane's
        spans are disjoint and the trace nests cleanly.
        """
        lanes = self._lanes.setdefault((process, group), [])
        for i, busy_until in enumerate(lanes):
            if start >= busy_until:
                lanes[i] = end
                return self.tracer.track(process, f"{group}.{i}")
        lanes.append(end)
        return self.tracer.track(process, f"{group}.{len(lanes) - 1}")

    # -- memory-system taps (CoherentMemorySystem) ---------------------

    def on_miss(self, cpu: int, is_write: bool, stall: int, now: int) -> None:
        """One cache miss resolved with latency ``stall`` at ``now``."""
        if is_write:
            self._write_miss_lat.observe(stall)
        else:
            self._read_miss_lat.observe(stall)

    def on_coherence(self, kind: str, cpu: int, line: int, extra) -> None:
        """A protocol event (install/upgrade/invalidate/downgrade/evict)."""
        self.metrics.counter(f"coherence.{kind}").inc()

    # -- publication helpers -------------------------------------------

    def publish_run(self, result) -> None:
        """Publish an executor :class:`~repro.tango.RunResult`."""
        self.publish_run_stats(result.stats)
        self.publish_cache_stats(result.memsys)
        network = getattr(result.memsys, "network", None)
        if network is not None:
            network.publish(self.metrics, prefix="tango.net")
        if self.tracer is not None:
            for cpu, trace in sorted(result.traces.items()):
                self.trace_host_timeline(trace, cpu)

    def publish_run_stats(self, stats) -> None:
        """Per-CPU executor counters (works on cached RunStats too)."""
        m = self.metrics
        for cpu_stats in stats.cpus:
            prefix = f"tango.cpu{cpu_stats.cpu}"
            for fld in _CPU_STAT_FIELDS:
                m.counter(f"{prefix}.{fld}").inc(getattr(cpu_stats, fld))
            m.gauge(f"{prefix}.end_time").set(cpu_stats.end_time)
        m.gauge("tango.total_cycles").set(stats.total_cycles)

    def publish_cache_stats(self, memsys) -> None:
        for cpu, cache in enumerate(memsys.caches):
            cache.stats.publish(self.metrics, prefix=f"cache.cpu{cpu}")
        memsys.total_stats().publish(self.metrics, prefix="cache.total")

    def publish_breakdown(self, breakdown) -> None:
        """One CPU model's execution-time decomposition."""
        from ..cpu.results import COMPONENTS

        m = self.metrics
        prefix = f"breakdown.{breakdown.label}"
        for comp in COMPONENTS:
            m.counter(f"{prefix}.{comp}").inc(getattr(breakdown, comp))
        m.counter(f"{prefix}.instructions").inc(breakdown.instructions)

    # -- host (trace-generator) timeline -------------------------------

    def trace_host_timeline(self, trace, cpu: int) -> None:
        """Reconstruct the in-order host processor's timeline.

        The Tango host executes one instruction per cycle plus the
        recorded read/sync stalls (write latency is hidden by the host's
        write buffer), so the per-instruction span schedule is recovered
        from the trace columns after the run — no hot-path hooks needed.
        Negative sync waits (wakeups granted before this processor's
        virtual time) render as zero-wait spans.
        Spans beyond the probe's budget are counted as dropped.
        """
        tracer = self.tracer
        if tracer is None:
            return
        pid, tid = tracer.track(f"tango-cpu{cpu}", "host pipeline")
        dropped = 0
        t = 0
        for op, addr, stall, wait, cls in zip(
            trace.op, trace.addr, trace.stall, trace.wait, trace.mem_class
        ):
            dur = 1
            if cls == _MC_READ:
                dur += stall
            elif cls == _MC_ACQUIRE or cls == _MC_BARRIER:
                # Write/release latency is hidden on the host; acquire
                # latency and (non-negative) contention wait are not.
                dur += stall + max(0, wait)
            if self.span_budget <= 0:
                dropped += 1
                t += dur
                continue
            self.span_budget -= 1
            args = None
            if cls != 0:
                args = {"addr": addr, "stall": stall}
                if wait:
                    args["wait"] = wait
            cat = CAT_SYNC if cls >= _MC_ACQUIRE else (
                CAT_MEM if cls else CAT_CPU
            )
            tracer.complete(
                _OP_NAME.get(op, f"op{op}"), cat, pid, tid, t, dur,
                args=args,
            )
            t += dur
        if dropped:
            self.metrics.counter("trace.spans_dropped").inc(dropped)
