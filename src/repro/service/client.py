"""HTTP client and multi-endpoint shard dispatcher for the daemon.

:class:`DaemonClient` is a stdlib (urllib) JSON client for one daemon
endpoint — submit, poll, fetch results — used by the ``submit`` and
``watch`` CLI subcommands and by ``batch --endpoint``.

:func:`dispatch` is the scale-out path: it expands a request grid
*locally*, partitions the deduplicated jobs with the deterministic
:func:`repro.service.jobs.shard`, submits one explicit-jobs shard per
daemon endpoint, waits for all of them, and merges the per-shard
results back into grid order.  Because sharding is contiguous and
order-preserving, the merged rows are identical to what a single
endpoint (or a local batch) would have produced for the same grid.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import asdict, dataclass, field

from ..obs.context import HEADER as TRACE_HEADER
from .errors import ServiceError
from .jobs import shard, sweep_from_request
from .queue import JOB_CANCELLED, JOB_DONE, JOB_FAILED

#: Submission states a poll loop treats as final.
TERMINAL_STATES = (JOB_DONE, JOB_FAILED, JOB_CANCELLED)


class ClientError(ServiceError):
    """An HTTP request to a daemon failed.

    ``status`` is the HTTP status (0 for transport errors) and
    ``retry_after`` carries the backpressure hint of a 429, so callers
    can implement polite retry without parsing messages.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int = 0,
        body: dict | None = None,
    ) -> None:
        self.status = status
        self.body = body or {}
        self.retry_after = self.body.get("retry_after")
        super().__init__(message)


class DaemonClient:
    """JSON-over-HTTP client for one daemon endpoint."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(
        self, method: str, path: str, payload=None, headers=None,
    ) -> dict:
        data = None
        headers = {"Accept": "application/json", **(headers or {})}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers,
            method=method,
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read() or b"{}")
            except (json.JSONDecodeError, OSError):
                body = {}
            raise ClientError(
                f"{method} {path} -> {exc.code}: "
                f"{body.get('error', exc.reason)}",
                status=exc.code, body=body,
            ) from exc
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise ClientError(
                f"{method} {self.base_url}{path} unreachable: {exc}"
            ) from exc

    # -- API -----------------------------------------------------------

    def submit(self, payload: dict, trace=None) -> dict:
        """POST /v1/jobs; returns ``{"id", "state", "deduped", ...}``.

        ``trace`` (a :class:`~repro.obs.context.TraceContext`) rides
        along as the ``X-Repro-Trace`` header, enrolling the daemon's
        spans for this submission in the client's distributed trace.
        """
        headers = (
            {TRACE_HEADER: trace.header()} if trace is not None else None
        )
        return self._request("POST", "/v1/jobs", payload, headers=headers)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def results(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/results/{job_id}")

    def trace_spans(self, trace_id: str) -> list:
        """GET /v1/trace/{id}; the daemon's spans as
        :class:`~repro.obs.spans.Span` objects."""
        from ..obs.spans import Span

        body = self._request("GET", f"/v1/trace/{trace_id}")
        return [Span.from_dict(item) for item in body.get("spans", [])]

    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def wait(
        self,
        job_id: str,
        timeout: float | None = None,
        interval: float = 0.2,
        on_poll=None,
    ) -> dict:
        """Poll until the submission reaches a terminal state."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            job = self.job(job_id)
            if on_poll is not None:
                on_poll(job)
            if job.get("state") in TERMINAL_STATES:
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise ClientError(
                    f"timed out waiting for job {job_id} "
                    f"(last state {job.get('state')!r})",
                    body=job,
                )
            time.sleep(interval)


@dataclass
class DispatchReport:
    """Outcome of one sharded dispatch across several endpoints."""

    jobs: list                        # expanded SweepJobs, grid order
    shards: list[dict] = field(default_factory=list)
    results: list[dict] = field(default_factory=list)  # merged rows
    trace_id: str | None = None
    spans: list = field(default_factory=list)  # merged Span objects

    @property
    def ok(self) -> bool:
        return all(s["state"] == JOB_DONE for s in self.shards)

    def format_summary(self) -> str:
        lines = [
            f"dispatched {len(self.jobs)} jobs across "
            f"{len(self.shards)} endpoint(s)"
        ]
        for entry in self.shards:
            lines.append(
                f"  {entry['endpoint']:<28} {entry['id']} "
                f"{entry['state']} ({entry['n_subruns']} sub-runs)"
            )
        return "\n".join(lines)


def dispatch(
    endpoints: list[str],
    payload: dict,
    *,
    timeout: float | None = None,
    interval: float = 0.2,
    client_factory=DaemonClient,
    trace=None,
) -> DispatchReport:
    """Shard a grid request across daemon endpoints and merge results.

    The grid is expanded and deduplicated locally, partitioned with the
    deterministic contiguous :func:`~repro.service.jobs.shard`, and
    each shard is submitted to its endpoint as an explicit job list.
    All shards are submitted before any wait, so the daemons overlap.

    ``trace`` (a :class:`~repro.obs.context.TraceContext`) is sent with
    *every* shard submission, so one trace id spans the whole fan-out;
    after all shards finish, each endpoint's spans are fetched and
    merged into ``report.spans`` ready for
    :func:`~repro.obs.spans.stitch`.
    """
    if not endpoints:
        raise ValueError("dispatch needs at least one endpoint")
    jobs = sweep_from_request(payload)
    priority = payload.get("priority", 0)
    parts = shard(jobs, len(endpoints))
    report = DispatchReport(
        jobs=jobs,
        trace_id=trace.trace_id if trace is not None else None,
    )

    clients = [client_factory(url) for url in endpoints]
    submissions: list[tuple[DaemonClient, str, str]] = []
    for client, part in zip(clients, parts):
        if not part:
            continue
        shard_payload = {
            "jobs": [asdict(job) for job in part],
            "priority": priority,
        }
        if trace is not None:
            accepted = client.submit(shard_payload, trace=trace)
        else:
            accepted = client.submit(shard_payload)
        submissions.append((client, client.base_url, accepted["id"]))

    by_label: dict[str, dict] = {}
    for client, endpoint, job_id in submissions:
        final = client.wait(job_id, timeout=timeout, interval=interval)
        report.shards.append({
            "endpoint": endpoint,
            "id": job_id,
            "state": final.get("state"),
            "n_subruns": final.get("n_subruns"),
            "queue_latency": final.get("queue_latency"),
        })
        for row in client.results(job_id).get("results", []):
            by_label[row["label"]] = row

    if trace is not None:
        for client, endpoint, _ in submissions:
            try:
                report.spans.extend(client.trace_spans(trace.trace_id))
            except ClientError:
                pass  # a dead endpoint loses its spans, not the run

    # Merge back into grid order.  Labels are unique across the
    # deduplicated expansion and shards are disjoint, so this is exact.
    report.results = [
        by_label[job.label()] for job in jobs if job.label() in by_label
    ]
    return report
