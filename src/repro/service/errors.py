"""Error types and failure records for the resilient service layer.

Every failure the supervised pool can observe — a worker killed by a
signal, a job running past its wall-clock budget, a payload that fails
its checksum, a plain Python exception — is normalised into a
:class:`JobFailure` record with the full per-attempt history, so a
sweep that degrades still produces a structured report instead of a
traceback.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Canonical failure reasons recorded per attempt.
REASON_CRASH = "crash"          # worker process died (e.g. SIGKILL)
REASON_TIMEOUT = "timeout"      # job exceeded its wall-clock budget
REASON_CORRUPT = "corrupt"      # payload checksum/unpickle mismatch
REASON_ERROR = "error"          # job raised a Python exception


class ServiceError(Exception):
    """Base class for service-layer errors."""


class ResultStoreError(ServiceError):
    """A result-store record failed validation (corrupt/foreign file)."""


class BatchInterrupted(ServiceError):
    """The pool was shut down by SIGINT/SIGTERM before completing."""


@dataclass
class AttemptFailure:
    """One failed attempt of one job."""

    attempt: int
    reason: str          # one of the REASON_* constants
    detail: str          # exception repr / timeout budget / checksum info
    backoff: float       # seconds waited before the next attempt (0 if none)

    def to_dict(self) -> dict:
        return {
            "attempt": self.attempt,
            "reason": self.reason,
            "detail": self.detail,
            "backoff": round(self.backoff, 4),
        }


@dataclass
class JobFailure:
    """A job that exhausted its attempts (quarantined)."""

    index: int
    label: str
    attempts: int
    history: list[AttemptFailure] = field(default_factory=list)

    @property
    def reason(self) -> str:
        """The final attempt's failure reason."""
        return self.history[-1].reason if self.history else "unknown"

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "attempts": self.attempts,
            "reason": self.reason,
            "history": [h.to_dict() for h in self.history],
        }

    def format(self) -> str:
        steps = "; ".join(
            f"#{h.attempt} {h.reason}: {h.detail}" for h in self.history
        )
        return (
            f"[{self.label}] FAILED after {self.attempts} attempts"
            f" ({steps})"
        )


class JobsFailedError(ServiceError):
    """Raised by strict pool entry points when any job is quarantined.

    Carries the structured failure records so callers that *can* degrade
    gracefully (the batch runner) never need to re-parse a message.
    """

    def __init__(self, failures: list[JobFailure]) -> None:
        self.failures = failures
        lines = [f"{len(failures)} job(s) failed permanently:"]
        lines += [f.format() for f in failures]
        super().__init__("\n".join(lines))
