"""Supervised worker pool: the resilient replacement for raw process pools.

``concurrent.futures.ProcessPoolExecutor`` treats any worker death as a
``BrokenProcessPool`` and aborts the whole sweep; a hung worker stalls
it forever; a torn result pickle propagates as an opaque exception.
:class:`SupervisedPool` keeps the same "map a function over argument
tuples, results in submission order" contract but survives all three:

* **supervision** — every worker is a separate process with its *own*
  duplex pipe, so a worker killed mid-write can only corrupt its own
  channel (discarded on restart), never a shared queue lock; liveness
  is tracked via ``Process.is_alive`` plus a heartbeat thread in each
  worker, and dead workers are restarted automatically;
* **timeouts** — each job carries a wall-clock budget; a worker that
  exceeds it is SIGKILLed and replaced, and the job is retried;
* **retry with backoff** — failed attempts (crash / timeout / corrupt
  payload / exception) are retried up to ``max_attempts`` times with
  seeded exponential backoff + jitter; jobs that keep failing land on a
  quarantine list instead of aborting the sweep;
* **integrity** — workers send ``(payload, sha256)`` pairs computed
  over the pickled result; a mismatch (torn write, bit flip, chaos
  corruption) is a retryable failure, not silent bad data;
* **persistence** — :meth:`SupervisedPool.start` spawns the fleet
  eagerly and keeps it alive across :meth:`SupervisedPool.run` calls
  until :meth:`SupervisedPool.close`, so a long-lived daemon reuses
  warm worker processes (their module-level caches included) instead
  of paying a cold fork per request.

Results are collected by job index, so the output order — and, for
deterministic job functions, the output *bytes* — are identical to the
serial path regardless of scheduling, retries, or worker churn.
"""

from __future__ import annotations

import hashlib
import pickle
import random
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection, get_context

from ..obs.log import NULL_LOG
from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from .errors import (
    REASON_CORRUPT,
    REASON_CRASH,
    REASON_ERROR,
    REASON_TIMEOUT,
    AttemptFailure,
    BatchInterrupted,
    JobFailure,
    JobsFailedError,
    ServiceError,
)

#: How often worker heartbeat threads report in (seconds).
HEARTBEAT_INTERVAL = 0.5

#: Supervisor poll granularity (seconds) — bounds timeout detection lag.
_POLL = 0.05

STATE_PENDING = "pending"
STATE_RUNNING = "running"
STATE_RETRY = "retry-wait"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"

#: States a job can still leave.
_LIVE_STATES = (STATE_PENDING, STATE_RUNNING, STATE_RETRY)


def _digest(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def _worker_main(conn, chaos, hb_interval: float) -> None:
    """Worker loop: receive tasks, run them, send checksummed results.

    Runs in a child process.  SIGINT is ignored — shutdown is always
    driven by the supervisor (sentinel or SIGKILL), so a Ctrl-C at the
    terminal interrupts only the supervisor, which then tears the
    workers down within its grace period.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    send_lock = threading.Lock()
    stop = threading.Event()

    def _send(msg) -> None:
        with send_lock:
            conn.send(msg)

    def _beat() -> None:
        while not stop.wait(hb_interval):
            try:
                _send(("hb",))
            except (OSError, ValueError):
                return

    threading.Thread(target=_beat, daemon=True).start()
    try:
        while True:
            task = conn.recv()
            if task is None:
                return
            index, attempt, fn, args, kwargs = task
            _send(("start", index, attempt))
            try:
                if chaos is not None:
                    chaos.before(index, attempt)
                result = fn(*args, **(kwargs or {}))
                payload = pickle.dumps(result, pickle.HIGHEST_PROTOCOL)
                checksum = _digest(payload)
                if chaos is not None:
                    payload = chaos.after(index, attempt, payload)
                _send(("done", index, attempt, payload, checksum))
            except BaseException as exc:  # noqa: BLE001 — report, don't die
                detail = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
                _send(("error", index, attempt, detail))
    except (EOFError, OSError):
        return  # supervisor went away; nothing left to report to
    finally:
        stop.set()


@dataclass
class Job:
    """One unit of work plus its full supervision record."""

    index: int
    fn: object
    args: tuple
    kwargs: dict | None = None
    label: str = ""
    state: str = STATE_PENDING
    attempts: int = 0
    history: list[AttemptFailure] = field(default_factory=list)
    payload: bytes | None = None
    result: object = None

    def failure(self) -> JobFailure:
        return JobFailure(
            index=self.index,
            label=self.label or f"job{self.index}",
            attempts=self.attempts,
            history=list(self.history),
        )


class _Worker:
    """Supervisor-side handle for one worker process."""

    __slots__ = ("proc", "conn", "job", "started_at", "deadline", "last_hb")

    def __init__(self, ctx, chaos) -> None:
        ours, theirs = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main,
            args=(theirs, chaos, HEARTBEAT_INTERVAL),
            daemon=True,
        )
        self.proc.start()
        theirs.close()
        self.conn = ours
        self.job: Job | None = None
        self.started_at = 0.0
        self.deadline: float | None = None
        self.last_hb = time.monotonic()

    def dispatch(self, job: Job, timeout: float | None) -> None:
        now = time.monotonic()
        self.job = job
        self.started_at = now
        self.deadline = None if timeout is None else now + timeout
        self.conn.send((job.index, job.attempts, job.fn, job.args, job.kwargs))

    def exitcode(self):
        try:
            return self.proc.exitcode
        except ValueError:  # pragma: no cover — already closed
            return None

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        try:
            if self.proc.is_alive():
                self.proc.kill()
            self.proc.join(timeout=5)
        except ValueError:  # pragma: no cover — already closed
            pass

    def send_sentinel(self) -> None:
        try:
            self.conn.send(None)
        except (OSError, ValueError, BrokenPipeError):
            pass

    def join_within(self, deadline: float) -> None:
        """Join until ``deadline`` (monotonic); escalate to SIGKILL."""
        try:
            self.proc.join(
                timeout=max(0.0, deadline - time.monotonic())
            )
        except ValueError:  # pragma: no cover
            pass
        self.kill()


class SupervisedPool:
    """Run jobs across supervised worker processes (see module doc)."""

    def __init__(
        self,
        workers: int = 2,
        *,
        timeout: float | None = None,
        max_attempts: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        seed: int = 0,
        chaos=None,
        metrics: MetricsRegistry | None = None,
        log=None,
        grace: float = 5.0,
        install_signal_handlers: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.workers = workers
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.seed = seed
        self.chaos = chaos
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.log = log if log is not None else NULL_LOG
        self.grace = grace
        self.install_signal_handlers = install_signal_handlers
        self._interrupted: int | None = None
        self._fleet: list[_Worker] = []
        self._persistent = False
        try:
            self._ctx = get_context("fork")
        except ValueError:  # pragma: no cover — non-POSIX fallback
            self._ctx = get_context()

    # -- persistent fleet ----------------------------------------------

    def start(self) -> None:
        """Spawn the full worker fleet now and keep it across runs.

        After ``start()``, :meth:`run` reuses the same worker processes
        (restarting any that died between runs) and no longer tears
        them down on return; call :meth:`close` to shut the fleet down.
        """
        if self._persistent:
            return
        self._persistent = True
        self._fleet = [
            _Worker(self._ctx, self.chaos) for _ in range(self.workers)
        ]

    def close(self) -> None:
        """Tear a persistent fleet down within the shared grace budget."""
        fleet, self._fleet = self._fleet, []
        self._persistent = False
        deadline = time.monotonic() + self.grace
        for worker in fleet:
            try:
                worker.send_sentinel()
            except Exception:  # noqa: BLE001 — teardown must not raise
                pass
        for worker in fleet:
            try:
                worker.join_within(deadline)
            except Exception:  # noqa: BLE001
                pass

    # -- backoff -------------------------------------------------------

    def backoff_delay(self, index: int, attempt: int) -> float:
        """Seeded exponential backoff with jitter for a retry.

        ``attempt`` is the attempt that just failed (1-based).  The
        jitter RNG is keyed by (seed, job, attempt) so a rerun of the
        same sweep waits the exact same schedule.
        """
        rng = random.Random(self.seed * 1_000_003 + index * 1_009 + attempt)
        raw = self.backoff_base * (2 ** (attempt - 1))
        return min(self.backoff_cap, raw) * (0.5 + 0.5 * rng.random())

    # -- signal handling -----------------------------------------------

    def _install_signals(self):
        if not self.install_signal_handlers:
            return None
        if threading.current_thread() is not threading.main_thread():
            return None

        def _handler(signum, frame):  # noqa: ARG001
            self._interrupted = signum

        previous = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            previous[sig] = signal.signal(sig, _handler)
        return previous

    @staticmethod
    def _restore_signals(previous) -> None:
        if previous:
            for sig, handler in previous.items():
                signal.signal(sig, handler)

    # -- main loop -----------------------------------------------------

    def run(self, jobs: list[Job], on_update=None) -> list[Job]:
        """Run ``jobs`` until none is pending/running/retry-waiting.

        ``on_update(job)`` is invoked after every state change, letting
        the batch runner persist live status.  Raises
        :class:`BatchInterrupted` on SIGINT/SIGTERM (after tearing the
        workers down within the grace period); job-level failures are
        recorded on the jobs, never raised from here.
        """
        m = self.metrics
        log = self.log
        c_done = m.counter("service.jobs_done")
        c_retries = m.counter("service.retries")
        c_quarantined = m.counter("service.quarantined")
        c_restarts = m.counter("service.worker_restarts")
        c_timeouts = m.counter("service.timeouts")
        c_crashes = m.counter("service.crashes")
        c_corrupt = m.counter("service.corrupt_payloads")
        g_busy = m.gauge("service.workers", labels={"state": "busy"})
        g_idle = m.gauge("service.workers", labels={"state": "idle"})
        m.counter("service.jobs_total").inc(len(jobs))
        if self.chaos is not None:
            log.info("pool.chaos_enabled", chaos=type(self.chaos).__name__)

        notify = on_update or (lambda job: None)
        ready: list[Job] = [j for j in jobs if j.state == STATE_PENDING]
        retries: list[tuple[float, Job]] = []
        if not ready:
            return jobs

        self._interrupted = None
        n_workers = (
            self.workers if self._persistent
            else min(self.workers, len(ready))
        )
        # Backstop against a worker fleet dying in a loop outside any
        # job (every *job-attributed* death is already bounded by
        # max_attempts × jobs).
        restart_budget = 2 * n_workers + self.max_attempts * len(ready)
        fleet: list[_Worker] = []
        previous_signals = self._install_signals()

        def fail_attempt(worker: _Worker, reason: str, detail: str) -> None:
            job = worker.job
            worker.job = None
            if job is None:
                return
            if reason == REASON_TIMEOUT:
                c_timeouts.inc()
            elif reason == REASON_CRASH:
                c_crashes.inc()
            elif reason == REASON_CORRUPT:
                c_corrupt.inc()
            if job.attempts >= self.max_attempts:
                job.history.append(
                    AttemptFailure(job.attempts, reason, detail, 0.0)
                )
                job.state = STATE_FAILED
                c_quarantined.inc()
                log.error(
                    "pool.quarantined", job=job.label or job.index,
                    attempts=job.attempts, reason=reason, detail=detail,
                )
            else:
                delay = self.backoff_delay(job.index, job.attempts)
                job.history.append(
                    AttemptFailure(job.attempts, reason, detail, delay)
                )
                job.state = STATE_RETRY
                c_retries.inc()
                log.warning(
                    "pool.retry_scheduled", job=job.label or job.index,
                    attempt=job.attempts, reason=reason, detail=detail,
                    backoff=round(delay, 3),
                )
                retries.append((time.monotonic() + delay, job))
            notify(job)

        def replace(worker: _Worker) -> None:
            nonlocal restart_budget
            worker.kill()
            restart_budget -= 1
            idx = fleet.index(worker)
            if restart_budget >= 0:
                c_restarts.inc()
                log.warning(
                    "pool.worker_restart", budget_left=restart_budget,
                )
                fleet[idx] = _Worker(self._ctx, self.chaos)
            else:
                fleet.pop(idx)
                log.error("pool.restart_budget_exhausted")
                raise ServiceError(
                    "worker restart budget exhausted — aborting sweep"
                )

        try:
            if self._persistent:
                # Reuse the warm fleet; replace any worker that died
                # between runs (counted against this run's budget).
                fleet = self._fleet
                for i, worker in enumerate(fleet):
                    if not worker.proc.is_alive():
                        worker.kill()
                        restart_budget -= 1
                        fleet[i] = _Worker(self._ctx, self.chaos)
            else:
                fleet = [
                    _Worker(self._ctx, self.chaos)
                    for _ in range(n_workers)
                ]
            while any(j.state in _LIVE_STATES for j in jobs):
                if self._interrupted is not None:
                    raise BatchInterrupted(
                        f"interrupted by signal {self._interrupted}"
                    )
                busy = sum(1 for w in fleet if w.job is not None)
                g_busy.set(busy)
                g_idle.set(len(fleet) - busy)
                now = time.monotonic()

                # Promote retries whose backoff has elapsed.
                due = [r for r in retries if r[0] <= now]
                if due:
                    retries[:] = [r for r in retries if r[0] > now]
                    for _, job in sorted(due, key=lambda r: r[1].index):
                        job.state = STATE_PENDING
                        ready.append(job)

                # Dispatch ready jobs to idle live workers.
                for worker in fleet:
                    if not ready:
                        break
                    if worker.job is None and worker.proc.is_alive():
                        job = ready.pop(0)
                        job.attempts += 1
                        job.state = STATE_RUNNING
                        try:
                            worker.dispatch(job, self.timeout)
                        except (OSError, ValueError, BrokenPipeError):
                            worker.job = job  # attribute the failure
                            fail_attempt(
                                worker, REASON_CRASH,
                                "worker channel closed at dispatch",
                            )
                            replace(worker)
                        else:
                            notify(job)

                # Wait for traffic on any worker channel.
                conns = [
                    w.conn for w in fleet
                    if w.conn is not None and not w.conn.closed
                ]
                if conns:
                    for conn in connection.wait(conns, timeout=_POLL):
                        worker = next(
                            (w for w in fleet if w.conn is conn), None
                        )
                        if worker is not None:
                            self._drain(
                                worker, fail_attempt, c_done, notify
                            )
                else:
                    time.sleep(_POLL)

                now = time.monotonic()
                for worker in list(fleet):
                    if worker not in fleet:
                        continue
                    if (
                        worker.job is not None
                        and worker.deadline is not None
                        and now > worker.deadline
                    ):
                        # Hung (or just slow) past the wall clock: kill
                        # the worker, fail the attempt, restart.
                        worker.kill()
                        fail_attempt(
                            worker, REASON_TIMEOUT,
                            f"exceeded {self.timeout:.1f}s wall clock",
                        )
                        replace(worker)
                    elif not worker.proc.is_alive():
                        # Death (SIGKILL, segfault, interpreter abort).
                        code = worker.exitcode()
                        worker.kill()
                        if worker.job is not None:
                            fail_attempt(
                                worker, REASON_CRASH,
                                f"worker died (exitcode {code})",
                            )
                        replace(worker)
        except BatchInterrupted as exc:
            log.warning("pool.interrupted", detail=str(exc))
            for job in jobs:
                if job.state in _LIVE_STATES:
                    job.state = STATE_CANCELLED
                    notify(job)
            raise
        finally:
            g_busy.set(0)
            g_idle.set(len(fleet) if self._persistent else 0)
            self._restore_signals(previous_signals)
            if not self._persistent:
                # Shared grace budget: sentinel everyone first, then
                # give the whole fleet `grace` seconds before
                # SIGKILLing the stragglers — shutdown is bounded
                # regardless of fleet size or how wedged the workers
                # are.  A persistent fleet stays up until close().
                deadline = time.monotonic() + self.grace
                for worker in fleet:
                    try:
                        worker.send_sentinel()
                    except Exception:  # noqa: BLE001 — must not raise
                        pass
                for worker in fleet:
                    try:
                        worker.join_within(deadline)
                    except Exception:  # noqa: BLE001
                        pass
        return jobs

    # -- internals -----------------------------------------------------

    def _drain(self, worker: _Worker, fail_attempt, c_done, notify) -> None:
        """Consume every queued message from one worker channel."""
        while True:
            try:
                if worker.conn.closed or not worker.conn.poll():
                    return
                msg = worker.conn.recv()
            except (EOFError, OSError, pickle.UnpicklingError):
                # Channel torn (worker died mid-send).  Fail any job in
                # flight now so its retry isn't delayed; the liveness
                # sweep replaces the process.
                if worker.job is not None:
                    fail_attempt(worker, REASON_CRASH,
                                 "worker channel broke")
                try:
                    worker.conn.close()
                except OSError:
                    pass
                return
            kind = msg[0]
            if kind == "hb":
                worker.last_hb = time.monotonic()
            elif kind == "start":
                # The job left the worker's inbox; (re)base the
                # wall-clock budget at actual start of execution.
                if self.timeout is not None:
                    worker.deadline = time.monotonic() + self.timeout
            elif kind == "done":
                _, index, attempt, payload, checksum = msg
                job = worker.job
                if job is None or job.index != index:
                    continue  # stale message from a superseded attempt
                if _digest(payload) != checksum:
                    fail_attempt(
                        worker, REASON_CORRUPT, "payload checksum mismatch"
                    )
                    continue
                try:
                    result = pickle.loads(payload)
                except Exception as exc:  # noqa: BLE001
                    fail_attempt(
                        worker, REASON_CORRUPT,
                        f"payload failed to unpickle: {exc!r}",
                    )
                    continue
                job.result = result
                job.payload = payload
                job.state = STATE_DONE
                worker.job = None
                c_done.inc()
                self.log.debug(
                    "pool.job_done", job=job.label or job.index,
                    attempt=attempt,
                )
                notify(job)
            elif kind == "error":
                _, index, attempt, detail = msg
                job = worker.job
                if job is None or job.index != index:
                    continue
                fail_attempt(worker, REASON_ERROR, detail)


def run_jobs(
    fn,
    argtuples,
    jobs: int = 1,
    *,
    timeout: float | None = None,
    max_attempts: int = 2,
    seed: int = 0,
    chaos=None,
    metrics: MetricsRegistry | None = None,
    labels=None,
) -> list:
    """Map ``fn`` over ``argtuples`` with supervision; strict results.

    The drop-in replacement for the repo's former bare
    ``ProcessPoolExecutor`` fan-outs: ``jobs <= 1`` (or a single task)
    runs serially in-process with identical semantics, larger fan-outs
    go through :class:`SupervisedPool` with one automatic retry by
    default.  Results come back in submission order.  If any job
    exhausts its attempts, a :class:`JobsFailedError` carrying the
    structured failure records is raised — callers that want partial
    results use the pool (or the batch layer) directly.
    """
    argtuples = list(argtuples)
    if jobs <= 1 or len(argtuples) <= 1:
        return [fn(*args) for args in argtuples]
    job_list = [
        Job(
            index=i,
            fn=fn,
            args=tuple(args),
            label=(labels[i] if labels else f"{fn.__name__}[{i}]"),
        )
        for i, args in enumerate(argtuples)
    ]
    pool = SupervisedPool(
        workers=jobs,
        timeout=timeout,
        max_attempts=max_attempts,
        seed=seed,
        chaos=chaos,
        metrics=metrics,
    )
    pool.run(job_list)
    failures = [j.failure() for j in job_list if j.state != STATE_DONE]
    if failures:
        raise JobsFailedError(failures)
    return [j.result for j in job_list]
