"""Content-addressed result store with embedded checksums.

Extends the :class:`~repro.experiments.runner.TraceStore` contract —
atomic temp-file + rename writes, regenerate-on-corruption — to
arbitrary simulation results.  Records are addressed by a key derived
from three things:

* the **canonical config hash**: SHA-256 over the sorted-key JSON of
  the job's configuration dict, so two sweeps that spell the same
  sub-run differently (ordering, int vs str) still share one record;
* the on-disk **trace schema version**
  (:data:`repro.tango.trace.TRACE_FORMAT_VERSION`) — a schema bump
  invalidates every derived result;
* the **git revision** (from :mod:`repro.obs.manifest`) — results are
  only reused within the code that produced them.

Every record embeds a SHA-256 checksum over the pickled payload; a
load that fails the checksum (truncation, bit flip, foreign file) is
deleted and reported as a miss, so the caller transparently
regenerates — corrupt state can cost work, never correctness.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path

from ..obs.manifest import git_revision
from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..tango.trace import TRACE_FORMAT_VERSION
from .errors import ResultStoreError

RESULT_STORE_SCHEMA = "repro-result-store/1"


def canonical_config_blob(config: dict) -> str:
    """Deterministic JSON rendition of a config dict (sorted keys)."""
    try:
        return json.dumps(config, sort_keys=True, separators=(",", ":"))
    except TypeError as exc:
        raise ResultStoreError(
            f"config is not JSON-canonicalizable: {exc}"
        ) from exc


def result_key(
    config: dict,
    *,
    trace_version: int = TRACE_FORMAT_VERSION,
    git_rev: str | None = None,
) -> str:
    """The content address for one sub-run's result."""
    material = "|".join((
        RESULT_STORE_SCHEMA,
        f"trace-v{trace_version}",
        git_rev or "unknown",
        canonical_config_blob(config),
    ))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ResultStore:
    """On-disk content-addressed results, safe against torn writes."""

    def __init__(
        self,
        root: Path | str,
        *,
        git_rev: str | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.root = Path(root)
        # Resolved once so every key minted through this store instance
        # is consistent, even if HEAD moves mid-run.
        self.git_rev = git_rev if git_rev is not None else git_revision()
        m = metrics if metrics is not None else NULL_REGISTRY
        self._hits = m.counter("service.store_hits")
        self._misses = m.counter("service.store_misses")
        self._corrupt = m.counter("service.store_corrupt")

    def key(self, config: dict) -> str:
        return result_key(config, git_rev=self.git_rev)

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.res"

    # -- writes --------------------------------------------------------

    def put_bytes(
        self, key: str, payload: bytes, meta: dict | None = None
    ) -> Path:
        """Store an already-pickled payload under ``key`` atomically."""
        record = {
            "schema": RESULT_STORE_SCHEMA,
            "key": key,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "meta": meta or {},
            "payload": payload,
        }
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as f:
            pickle.dump(record, f, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        return path

    def put(self, key: str, obj, meta: dict | None = None) -> bytes:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self.put_bytes(key, payload, meta)
        return payload

    # -- reads ---------------------------------------------------------

    def get_bytes(self, key: str) -> bytes | None:
        """The stored payload bytes, or None (miss / quarantined file).

        Any validation failure — unreadable pickle, wrong schema, key
        mismatch, checksum mismatch — deletes the record and reports a
        miss: the caller regenerates, exactly like the trace cache.
        """
        path = self.path(key)
        try:
            with open(path, "rb") as f:
                record = pickle.load(f)
        except FileNotFoundError:
            self._misses.inc()
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError, TypeError, OSError):
            self._evict(path)
            return None
        if (
            not isinstance(record, dict)
            or record.get("schema") != RESULT_STORE_SCHEMA
            or record.get("key") != key
            or not isinstance(record.get("payload"), bytes)
            or hashlib.sha256(record["payload"]).hexdigest()
            != record.get("sha256")
        ):
            self._evict(path)
            return None
        self._hits.inc()
        return record["payload"]

    def get(self, key: str):
        payload = self.get_bytes(key)
        if payload is None:
            return None
        try:
            return pickle.loads(payload)
        except Exception:  # noqa: BLE001 — checksummed, so ~impossible
            self._evict(self.path(key))
            return None

    def meta(self, key: str) -> dict | None:
        """The metadata dict stored alongside a valid record, or None."""
        path = self.path(key)
        try:
            with open(path, "rb") as f:
                record = pickle.load(f)
        except (OSError, pickle.UnpicklingError, EOFError, ValueError):
            return None
        if isinstance(record, dict) and isinstance(
            record.get("meta"), dict
        ):
            return record["meta"]
        return None

    def _evict(self, path: Path) -> None:
        self._corrupt.inc()
        self._misses.inc()
        try:
            path.unlink()
        except OSError:
            pass

    def keys(self) -> list[str]:
        """Every key with a record file on disk (not validated)."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.stem for p in self.root.glob("??/*.res")
        )
