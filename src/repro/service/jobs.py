"""Sweep decomposition: config grid → deduplicated, shardable jobs.

A batch request is a grid — application × processor kind × consistency
model × window × network × miss penalty — but many grid points collapse
onto the same simulation: BASE ignores the consistency model and the
window, the static models (SSBR/SS) ignore the window.  Each grid point
is canonicalised into a :class:`SweepJob` whose ``config()`` dict drops
the irrelevant axes, so the scheduler dedupes identical sub-runs before
any worker starts and the content-addressed store dedupes them across
batches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps import APP_NAMES

#: ``cosim`` is the co-simulated DS multiprocessor (all processors on
#: one shared fabric, :mod:`repro.cosim`); it keeps both the model and
#: window axes, like ``ds``.
KINDS = ("base", "ssbr", "ss", "ds", "cosim")
MODELS = ("SC", "PC", "WO", "RC")
PRESETS = ("tiny", "default", "large")


@dataclass(frozen=True)
class SweepJob:
    """One canonical sub-run of a sweep."""

    app: str
    kind: str = "ds"
    model: str = "RC"
    window: int = 64
    network: str = "ideal"
    penalty: int = 50
    procs: int = 16
    preset: str = "default"
    engine: str = "fast"

    def config(self) -> dict:
        """The canonical, JSON-able config this job is addressed by.

        The ``engine`` knob is deliberately excluded: fast and
        reference engines are byte-identical by contract, so their
        results share one record.
        """
        return {
            "app": self.app,
            "kind": self.kind,
            "model": self.model if self.kind != "base" else "-",
            "window": self.window if self.kind in ("ds", "cosim") else 0,
            "network": self.network,
            "penalty": self.penalty,
            "procs": self.procs,
            "preset": self.preset,
        }

    def label(self) -> str:
        bits = [self.app, self.kind]
        if self.kind != "base":
            bits.append(self.model)
        if self.kind in ("ds", "cosim"):
            bits.append(f"w{self.window}")
        bits.append(self.network)
        bits.append(f"m{self.penalty}")
        return "/".join(bits)


def _validate_axes(
    apps, kinds, models, windows, networks, penalties,
    *, procs: int = 16, preset: str = "default",
) -> None:
    """Reject bad axis values with ``ValueError`` before any work runs."""
    from ..net import NETWORK_KINDS  # lazy: keep service imports light

    for app in apps:
        if app not in APP_NAMES:
            raise ValueError(f"unknown application {app!r}")
    for kind in kinds:
        if kind not in KINDS:
            raise ValueError(f"unknown processor kind {kind!r}")
    for model in models:
        if not isinstance(model, str) or model.upper() not in MODELS:
            raise ValueError(f"unknown consistency model {model!r}")
    for window in windows:
        if not isinstance(window, int) or window < 1:
            raise ValueError(f"bad window {window!r}")
    for network in networks:
        if network not in NETWORK_KINDS:
            raise ValueError(f"unknown network {network!r}")
    for penalty in penalties:
        if not isinstance(penalty, int) or penalty < 0:
            raise ValueError(f"bad miss penalty {penalty!r}")
    if not isinstance(procs, int) or procs < 1:
        raise ValueError(f"bad processor count {procs!r}")
    if preset not in PRESETS:
        raise ValueError(f"unknown preset {preset!r}")


def expand_grid(
    apps,
    kinds=("ds",),
    models=("RC",),
    windows=(64,),
    networks=("ideal",),
    penalties=(50,),
    *,
    procs: int = 16,
    preset: str = "default",
    engine: str = "fast",
) -> list[SweepJob]:
    """Expand a config grid into deduplicated jobs, in grid order.

    Raises ``ValueError`` for unknown axis values so a bad request
    fails before any worker is spawned.
    """
    _validate_axes(apps, kinds, models, windows, networks, penalties,
                   procs=procs, preset=preset)
    seen: dict[tuple, SweepJob] = {}
    for app in apps:
        for penalty in penalties:
            for network in networks:
                for kind in kinds:
                    for model in models:
                        for window in windows:
                            job = SweepJob(
                                app=app,
                                kind=kind,
                                model=model.upper(),
                                window=window,
                                network=network,
                                penalty=penalty,
                                procs=procs,
                                preset=preset,
                                engine=engine,
                            )
                            ckey = tuple(sorted(job.config().items()))
                            if ckey not in seen:
                                seen[ckey] = job
    return list(seen.values())


def shard(jobs: list, n_shards: int) -> list[list]:
    """Split jobs into at most ``n_shards`` contiguous shards.

    Deterministic: the same job list and shard count always produce the
    same partition — contiguous, order-preserving, disjoint slices that
    together are exactly the input (sizes differ by at most one, larger
    shards first).  The multi-endpoint dispatcher relies on this to
    merge per-shard results back into grid order.
    """
    n = max(1, min(n_shards, len(jobs)))
    size, extra = divmod(len(jobs), n)
    shards, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        shards.append(jobs[start:end])
        start = end
    return shards


#: Grid-axis fields of a submission request (plural, list-valued).
GRID_AXES = ("apps", "kinds", "models", "windows", "networks", "penalties")
#: Scalar fields shared by every job of a submission.
GRID_SCALARS = ("procs", "preset", "engine")


def sweep_from_request(payload: dict) -> list[SweepJob]:
    """Parse a ``POST /v1/jobs`` body into deduplicated sweep jobs.

    Two request shapes are accepted:

    * a **grid**: the batch CLI's axes as JSON lists plus scalars, e.g.
      ``{"apps": ["lu"], "kinds": ["base", "ds"], "windows": [64]}`` —
      omitted axes take the :class:`SweepJob` defaults, omitted
      ``apps`` means all applications;
    * an **explicit job list**: ``{"jobs": [{"app": "lu", "kind":
      "ds", ...}, ...]}`` — the form the shard dispatcher uses, since a
      shard of an expanded grid is generally not itself a grid.

    ``priority`` and ``trace`` are allowed alongside either shape
    (consumed by the queue, not here).  Raises ``ValueError`` on
    anything malformed so the HTTP layer can map it to a 400.
    """
    if not isinstance(payload, dict):
        raise ValueError("request body must be a JSON object")
    known = (
        set(GRID_AXES) | set(GRID_SCALARS) | {"jobs", "priority", "trace"}
    )
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(f"unknown request fields: {unknown}")

    if "jobs" in payload:
        mixed = sorted(set(payload) & set(GRID_AXES))
        if mixed:
            raise ValueError(
                f"request mixes explicit 'jobs' with grid axes {mixed}"
            )
        items = payload["jobs"]
        if not isinstance(items, list) or not items:
            raise ValueError("'jobs' must be a non-empty list")
        fields = set(SweepJob.__dataclass_fields__)
        seen: dict[tuple, SweepJob] = {}
        for item in items:
            if not isinstance(item, dict) or "app" not in item:
                raise ValueError("each job must be an object with 'app'")
            extra = sorted(set(item) - fields)
            if extra:
                raise ValueError(f"unknown job fields: {extra}")
            job = SweepJob(**{
                **item,
                "model": str(item.get("model", "RC")).upper(),
            })
            _validate_axes(
                (job.app,), (job.kind,), (job.model,), (job.window,),
                (job.network,), (job.penalty,),
                procs=job.procs, preset=job.preset,
            )
            ckey = tuple(sorted(job.config().items()))
            if ckey not in seen:
                seen[ckey] = job
        return list(seen.values())

    def _axis(name: str, default) -> tuple:
        values = payload.get(name, default)
        if not isinstance(values, (list, tuple)) or not values:
            raise ValueError(f"{name!r} must be a non-empty list")
        return tuple(values)

    return expand_grid(
        _axis("apps", list(APP_NAMES)),
        kinds=_axis("kinds", ["ds"]),
        models=tuple(
            str(m).upper() for m in _axis("models", ["RC"])
        ),
        windows=_axis("windows", [64]),
        networks=_axis("networks", ["ideal"]),
        penalties=_axis("penalties", [50]),
        procs=payload.get("procs", 16),
        preset=payload.get("preset", "default"),
        engine=payload.get("engine", "fast"),
    )
