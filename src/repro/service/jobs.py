"""Sweep decomposition: config grid → deduplicated, shardable jobs.

A batch request is a grid — application × processor kind × consistency
model × window × network × miss penalty — but many grid points collapse
onto the same simulation: BASE ignores the consistency model and the
window, the static models (SSBR/SS) ignore the window.  Each grid point
is canonicalised into a :class:`SweepJob` whose ``config()`` dict drops
the irrelevant axes, so the scheduler dedupes identical sub-runs before
any worker starts and the content-addressed store dedupes them across
batches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps import APP_NAMES

#: ``cosim`` is the co-simulated DS multiprocessor (all processors on
#: one shared fabric, :mod:`repro.cosim`); it keeps both the model and
#: window axes, like ``ds``.
KINDS = ("base", "ssbr", "ss", "ds", "cosim")
MODELS = ("SC", "PC", "WO", "RC")


@dataclass(frozen=True)
class SweepJob:
    """One canonical sub-run of a sweep."""

    app: str
    kind: str = "ds"
    model: str = "RC"
    window: int = 64
    network: str = "ideal"
    penalty: int = 50
    procs: int = 16
    preset: str = "default"
    engine: str = "fast"

    def config(self) -> dict:
        """The canonical, JSON-able config this job is addressed by.

        The ``engine`` knob is deliberately excluded: fast and
        reference engines are byte-identical by contract, so their
        results share one record.
        """
        return {
            "app": self.app,
            "kind": self.kind,
            "model": self.model if self.kind != "base" else "-",
            "window": self.window if self.kind in ("ds", "cosim") else 0,
            "network": self.network,
            "penalty": self.penalty,
            "procs": self.procs,
            "preset": self.preset,
        }

    def label(self) -> str:
        bits = [self.app, self.kind]
        if self.kind != "base":
            bits.append(self.model)
        if self.kind in ("ds", "cosim"):
            bits.append(f"w{self.window}")
        bits.append(self.network)
        bits.append(f"m{self.penalty}")
        return "/".join(bits)


def expand_grid(
    apps,
    kinds=("ds",),
    models=("RC",),
    windows=(64,),
    networks=("ideal",),
    penalties=(50,),
    *,
    procs: int = 16,
    preset: str = "default",
    engine: str = "fast",
) -> list[SweepJob]:
    """Expand a config grid into deduplicated jobs, in grid order.

    Raises ``ValueError`` for unknown axis values so a bad request
    fails before any worker is spawned.
    """
    for app in apps:
        if app not in APP_NAMES:
            raise ValueError(f"unknown application {app!r}")
    for kind in kinds:
        if kind not in KINDS:
            raise ValueError(f"unknown processor kind {kind!r}")
    for model in models:
        if model.upper() not in MODELS:
            raise ValueError(f"unknown consistency model {model!r}")
    for window in windows:
        if window < 1:
            raise ValueError(f"bad window {window!r}")
    for penalty in penalties:
        if penalty < 0:
            raise ValueError(f"bad miss penalty {penalty!r}")

    seen: dict[tuple, SweepJob] = {}
    for app in apps:
        for penalty in penalties:
            for network in networks:
                for kind in kinds:
                    for model in models:
                        for window in windows:
                            job = SweepJob(
                                app=app,
                                kind=kind,
                                model=model.upper(),
                                window=window,
                                network=network,
                                penalty=penalty,
                                procs=procs,
                                preset=preset,
                                engine=engine,
                            )
                            ckey = tuple(sorted(job.config().items()))
                            if ckey not in seen:
                                seen[ckey] = job
    return list(seen.values())


def shard(jobs: list, n_shards: int) -> list[list]:
    """Split jobs into at most ``n_shards`` contiguous shards."""
    n = max(1, min(n_shards, len(jobs)))
    size, extra = divmod(len(jobs), n)
    shards, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        shards.append(jobs[start:end])
        start = end
    return shards
