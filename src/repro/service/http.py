"""Stdlib HTTP front end for the simulation daemon.

A deliberately small JSON-over-HTTP surface on
``http.server.ThreadingHTTPServer`` — no third-party dependencies —
that adapts requests onto a :class:`~repro.service.daemon.Daemon`:

====== ===================== ==========================================
method path                  meaning
====== ===================== ==========================================
POST   ``/v1/jobs``          submit a sweep (grid or explicit-jobs
                             JSON); 202 accepted, 200 duplicate,
                             400 bad grid, 429 queue full (with
                             ``Retry-After``), 503 draining
GET    ``/v1/jobs/{id}``     submission state: per-sub-run states,
                             queued/started/finished timestamps,
                             queue latency
GET    ``/v1/results/{id}``  completed sub-run breakdowns
GET    ``/v1/trace/{id}``    every span this daemon holds for one
                             distributed trace id (JSON span list)
GET    ``/v1/healthz``       liveness + queue depth + job counts
GET    ``/v1/metrics``       the daemon's metrics-registry snapshot;
                             ``?format=prom`` serves Prometheus text
                             exposition format instead
====== ===================== ==========================================

An ``X-Repro-Trace: <trace_id>-<span_id>`` header on ``POST /v1/jobs``
(minted client-side via :class:`~repro.obs.context.TraceContext`)
enrols the submission in a distributed trace: the daemon's queue-wait,
sweep, attempt and worker spans are recorded under that trace id and
served back by ``GET /v1/trace/{id}``.

Handler threads only ever touch the daemon's thread-safe surface
(queue submit/lookup and the result store), so a slow simulation never
blocks health checks or status polls.
"""

from __future__ import annotations

import json
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..obs.context import HEADER as TRACE_HEADER
from ..obs.context import TraceContext
from ..obs.prom import PROM_CONTENT_TYPE, render_prometheus
from .queue import QueueClosed, QueueFull

#: Largest accepted request body (a grid request is tiny; an explicit
#: job list for a big shard still fits comfortably).
MAX_BODY_BYTES = 4 * 1024 * 1024


class DaemonHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one daemon instance."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, daemon) -> None:
        super().__init__(address, _Handler)
        self.sim_daemon = daemon


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-sim-daemon/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 — stdlib name
        """Route request logging to metrics instead of stderr."""
        self.server.sim_daemon.metrics.counter("daemon.http_requests").inc()

    def _send_json(
        self, code: int, obj: dict, headers: dict | None = None
    ) -> None:
        body = (json.dumps(obj, indent=2) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes | None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_json(413, {"error": "request body too large"})
            return None
        return self.rfile.read(length)

    # -- routes --------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 — stdlib contract
        daemon = self.server.sim_daemon
        if self.path.rstrip("/") != "/v1/jobs":
            self._send_json(404, {"error": f"no such route {self.path}"})
            return
        body = self._read_body()
        if body is None:
            return
        try:
            payload = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            self._send_json(400, {"error": f"invalid JSON: {exc}"})
            return
        header = self.headers.get(TRACE_HEADER)
        if header and isinstance(payload, dict):
            try:
                ctx = TraceContext.parse(header)
            except ValueError as exc:
                self._send_json(400, {"error": str(exc)})
                return
            payload.setdefault("trace", ctx.to_dict())
        try:
            job, created = daemon.submit(payload)
        except QueueFull as exc:
            self._send_json(
                429,
                {
                    "error": "queue full",
                    "queue_depth": exc.depth,
                    "retry_after": exc.retry_after,
                },
                headers={"Retry-After": f"{exc.retry_after:.0f}"},
            )
            return
        except QueueClosed:
            self._send_json(503, {"error": "daemon is draining"})
            return
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        self._send_json(
            202 if created else 200,
            {
                "id": job.id,
                "state": job.state,
                "n_subruns": len(job.sweep),
                "deduped": not created,
            },
        )

    def _send_text(self, code: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 — stdlib contract
        daemon = self.server.sim_daemon
        parsed = urllib.parse.urlsplit(self.path)
        query = urllib.parse.parse_qs(parsed.query)
        path = parsed.path.rstrip("/")
        if path == "/v1/healthz":
            self._send_json(200, daemon.healthz())
        elif path == "/v1/metrics":
            if query.get("format", [""])[0] == "prom":
                self._send_text(
                    200, render_prometheus(daemon.metrics),
                    PROM_CONTENT_TYPE,
                )
            else:
                self._send_json(200, daemon.metrics.snapshot())
        elif path.startswith("/v1/trace/"):
            trace_id = path.rsplit("/", 1)[1]
            spans = daemon.trace_spans(trace_id)
            self._send_json(200, {
                "trace_id": trace_id,
                "spans": [span.to_dict() for span in spans],
            })
        elif path.startswith("/v1/jobs/"):
            job = daemon.job(path.rsplit("/", 1)[1])
            if job is None:
                self._send_json(404, {"error": "unknown job id"})
            else:
                self._send_json(200, job.to_dict())
        elif path.startswith("/v1/results/"):
            results = daemon.results(path.rsplit("/", 1)[1])
            if results is None:
                self._send_json(404, {"error": "unknown job id"})
            else:
                self._send_json(200, results)
        else:
            self._send_json(404, {"error": f"no such route {self.path}"})


def make_server(
    daemon, host: str = "127.0.0.1", port: int = 0
) -> DaemonHTTPServer:
    """Bind the daemon's HTTP front end (port 0 = ephemeral)."""
    return DaemonHTTPServer((host, port), daemon)
