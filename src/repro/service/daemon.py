"""Persistent simulation daemon: warm pool + caches behind a job queue.

One :class:`Daemon` instance is the long-lived "front half" of the
service layer.  Where ``python -m repro batch`` pays a cold start per
invocation — fresh worker processes, empty in-memory trace caches — the
daemon keeps everything warm across requests:

* a **persistent** :class:`~repro.service.pool.SupervisedPool` (with
  ``--jobs > 1``): worker processes survive between submissions, so
  their process-level shared :class:`~repro.experiments.runner.TraceStore`
  caches do too;
* the scheduler's own warm trace/program stores (serial mode), shared
  across submissions via :func:`repro.experiments.runner.shared_store`;
* an in-memory **result byte cache** in front of the content-addressed
  :class:`~repro.service.store.ResultStore`.

Submissions arrive through :meth:`Daemon.submit` (the HTTP front end in
:mod:`repro.service.http` is a thin adapter over it) and are executed
one sweep at a time by a scheduler thread, priority-first.  Execution
is **identical to the batch path** — both funnel through
:func:`repro.service.batch.run_sweep_job` and store pickled payloads
under unchanged store keys — so a result computed by the daemon is
byte-for-byte the result a direct batch run would have produced.

Shutdown is bounded: :meth:`Daemon.stop` closes the queue (new
submissions are refused), cancels everything still waiting, lets the
in-flight submission drain within the shared grace period, then tears
the pool down.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from collections import OrderedDict
from dataclasses import asdict
from pathlib import Path

from ..obs.log import NULL_LOG
from ..obs.metrics import SECONDS_BOUNDS, MetricsRegistry
from ..obs.spans import Span, SpanSink, read_spans
from .batch import JobRecord, run_sweep_job, _sweep_worker
from .errors import REASON_ERROR, AttemptFailure, BatchInterrupted
from .jobs import SweepJob, sweep_from_request
from .pool import (
    STATE_DONE,
    STATE_PENDING,
    STATE_RETRY,
    STATE_RUNNING,
    Job,
    SupervisedPool,
)
from .queue import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_RUNNING,
    JobQueue,
    QueuedJob,
)
from .store import ResultStore

DEFAULT_DAEMON_DIR = Path("results") / "daemon"


def _validated_priority(payload: dict) -> int:
    priority = payload.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ValueError(f"priority must be an integer, got {priority!r}")
    return priority


class Daemon:
    """The persistent simulation service core (see module docstring).

    ``executor`` is a test seam: a callable ``(SweepJob) -> result``
    that replaces the real simulation, letting queue/HTTP lifecycle
    tests run without generating traces.
    """

    def __init__(
        self,
        *,
        store_dir: Path | str,
        cache_dir: Path | str | None = None,
        workers: int = 1,
        queue_depth: int = 64,
        timeout: float | None = None,
        max_attempts: int = 3,
        seed: int = 0,
        grace: float = 5.0,
        metrics: MetricsRegistry | None = None,
        log=None,
        span_dir: Path | str | None = None,
        executor=None,
        result_cache_size: int = 4096,
    ) -> None:
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(enabled=True)
        )
        self.log = log if log is not None else NULL_LOG
        self.queue = JobQueue(
            queue_depth, metrics=self.metrics, log=self.log
        )
        self.store = ResultStore(store_dir, metrics=self.metrics)
        self.cache_dir = str(cache_dir) if cache_dir else None
        # Side-channel span collection: the daemon's own spans live in
        # the in-memory sink; worker processes append theirs as JSONL
        # files under span_dir (a sibling of the store by default).
        self.spans = SpanSink()
        self.span_dir = (
            Path(span_dir) if span_dir
            else Path(store_dir).parent / "spans"
        )
        self.workers = workers
        self.grace = grace
        self.started_at = time.time()
        self._executor = executor
        self._result_cache: OrderedDict[str, bytes] = OrderedDict()
        self._result_cache_size = result_cache_size
        self._cache_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._pool: SupervisedPool | None = None
        if workers > 1:
            self._pool = SupervisedPool(
                workers=workers,
                timeout=timeout,
                max_attempts=max_attempts,
                seed=seed,
                metrics=self.metrics,
                log=self.log,
                grace=grace,
                install_signal_handlers=False,
            )
        m = self.metrics
        self._c_jobs_done = m.counter("daemon.jobs_done")
        self._c_jobs_failed = m.counter("daemon.jobs_failed")
        self._c_subruns = m.counter("daemon.subruns_done")
        self._c_cache_hits = m.counter("daemon.result_cache_hits")
        self._c_cache_misses = m.counter("daemon.result_cache_misses")
        self._h_wait = m.histogram(
            "daemon.job_wait_seconds", bounds=SECONDS_BOUNDS
        )
        self._h_run = m.histogram(
            "daemon.job_run_seconds", bounds=SECONDS_BOUNDS
        )

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Spawn the warm worker fleet and the scheduler thread."""
        if self._thread is not None:
            return
        if self._pool is not None:
            self._pool.start()
        self._thread = threading.Thread(
            target=self._loop, name="repro-daemon-scheduler", daemon=True
        )
        self._thread.start()
        self.log.info("daemon.started", workers=self.workers)

    def stop(self) -> list[QueuedJob]:
        """Drain and shut down within the shared grace period.

        New submissions are refused immediately; queued-but-unstarted
        submissions are cancelled; the in-flight submission gets the
        grace period to finish its current sub-runs before the pool is
        interrupted and torn down.  Returns the cancelled jobs.
        """
        self.log.info("daemon.stopping")
        cancelled = self.queue.close()
        self._stop.set()
        if self._thread is not None:
            self._thread.join(self.grace)
            if self._thread.is_alive() and self._pool is not None:
                # The scheduler is wedged inside a pool run: trip the
                # pool's interrupt flag so the run unwinds, then give
                # it one more bounded wait.
                self._pool._interrupted = -1
                self._thread.join(self.grace)
        if self._pool is not None:
            self._pool.close()
        self.log.info("daemon.stopped", cancelled=len(cancelled))
        return cancelled

    @property
    def draining(self) -> bool:
        return self.queue.closed

    # -- request surface (the HTTP layer is a thin adapter) ------------

    def submit(self, payload: dict) -> tuple[QueuedJob, bool]:
        """Accept one submission (grid or explicit-jobs JSON form).

        An optional ``trace`` field — ``{"trace_id", "parent_id"}``,
        minted client-side and carried by the ``X-Repro-Trace`` header
        in the HTTP layer — parents this submission's spans under the
        client's submit span.  Raises ``ValueError`` (bad request),
        :class:`QueueFull` (backpressure), or :class:`QueueClosed`
        (draining).
        """
        payload = dict(payload)
        trace = payload.pop("trace", None)
        if trace is not None and (
            not isinstance(trace, dict) or "trace_id" not in trace
        ):
            raise ValueError(
                "trace must be an object carrying 'trace_id'"
            )
        sweep = sweep_from_request(payload)
        priority = _validated_priority(payload)
        return self.queue.submit(sweep, priority=priority, trace=trace)

    def trace_spans(self, trace_id: str) -> list[Span]:
        """Every span this daemon holds for one trace id — its own
        (sink) plus what worker processes wrote to the span dir."""
        return (
            self.spans.spans(trace_id)
            + read_spans(self.span_dir, trace_id)
        )

    def job(self, job_id: str) -> QueuedJob | None:
        return self.queue.get(job_id)

    def results(self, job_id: str) -> dict | None:
        """Completed sub-run breakdowns of one submission, as JSON."""
        job = self.queue.get(job_id)
        if job is None:
            return None
        rows = []
        for record in job.records:
            if record.state != "done":
                continue
            payload = self._cached_bytes(record.key)
            if payload is None:
                continue
            breakdown = pickle.loads(payload)
            rows.append({
                "label": record.label,
                "key": record.key,
                "source": record.source,
                "breakdown": {
                    "label": breakdown.label,
                    "total": breakdown.total,
                    "busy": breakdown.busy,
                    "sync": breakdown.sync,
                    "read": breakdown.read,
                    "write": breakdown.write,
                    "other": breakdown.other,
                    "instructions": breakdown.instructions,
                },
            })
        return {"id": job.id, "state": job.state, "results": rows}

    def healthz(self) -> dict:
        by_state: dict[str, int] = {}
        for job in list(self.queue.jobs.values()):
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "status": "draining" if self.draining else "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
            "queue_depth": self.queue.depth(),
            "workers": self.workers,
            "jobs": by_state,
        }

    # -- result cache --------------------------------------------------

    def _cached_bytes(self, key: str) -> bytes | None:
        """Result payload from the in-memory cache, then the store."""
        with self._cache_lock:
            payload = self._result_cache.get(key)
            if payload is not None:
                self._result_cache.move_to_end(key)
                self._c_cache_hits.inc()
                return payload
        payload = self.store.get_bytes(key)
        if payload is not None:
            self._cache_put(key, payload)
        else:
            self._c_cache_misses.inc()
        return payload

    def _cache_put(self, key: str, payload: bytes) -> None:
        with self._cache_lock:
            self._result_cache[key] = payload
            self._result_cache.move_to_end(key)
            while len(self._result_cache) > self._result_cache_size:
                self._result_cache.popitem(last=False)

    # -- scheduler -----------------------------------------------------

    def _loop(self) -> None:
        while True:
            qjob = self.queue.pop(timeout=0.1)
            if qjob is None:
                if self._stop.is_set() or self.queue.closed:
                    return
                continue
            self._execute(qjob)

    def _trace_store(self, job: SweepJob):
        from ..experiments.runner import shared_store

        return shared_store(
            dict(
                n_procs=job.procs,
                miss_penalty=job.penalty,
                preset=job.preset,
                cache_dir=self.cache_dir,
            ),
            metrics=self.metrics,
        )

    def _store_computed(self, record: JobRecord, payload: bytes) -> None:
        self.store.put_bytes(
            record.key, payload,
            meta={"label": record.label, "config": record.config},
        )
        self._cache_put(record.key, payload)
        self._c_subruns.inc()

    def _execute(self, qjob: QueuedJob) -> None:
        trace = qjob.trace or {}
        trace_id = trace.get("trace_id")
        log = self.log.bind(job=qjob.id)
        if trace_id:
            log = log.bind(trace=trace_id)
        qjob.state = JOB_RUNNING
        qjob.started_at = time.time()
        log.info(
            "daemon.sweep_start", n_subruns=len(qjob.sweep),
            wait_s=round(qjob.started_at - qjob.submitted_at, 6),
        )
        t0 = time.monotonic()
        records = [
            JobRecord(
                key=self.store.key(job.config()),
                label=job.label(),
                config=job.config(),
                queued_at=qjob.submitted_at,
            )
            for job in qjob.sweep
        ]
        qjob.records = records
        # Pre-minted per-record span ids let supervisor-side attempt
        # spans and worker-side run spans share one parent without any
        # cross-process coordination.
        job_span_ids = (
            {record.key: os.urandom(4).hex() for record in records}
            if trace_id else {}
        )

        # Warm pre-pass: in-memory result cache, then the store.
        misses: list[tuple[JobRecord, SweepJob]] = []
        for record, job in zip(records, qjob.sweep):
            payload = self._cached_bytes(record.key)
            if payload is not None:
                record.state = "done"
                record.source = "store"
                record.started_at = record.finished_at = time.time()
            else:
                misses.append((record, job))

        interrupted = False
        if misses:
            if self._pool is not None and len(misses) > 1:
                interrupted = self._execute_pooled(
                    misses, trace_id, job_span_ids, log,
                )
            else:
                interrupted = self._execute_serial(
                    misses, trace_id, job_span_ids,
                )

        qjob.finished_at = time.time()
        self.queue.note_duration(time.monotonic() - t0)
        for record in records:
            wait = record.queue_latency
            if wait is not None:
                self._h_wait.observe(wait)
            run_s = record.run_seconds
            if run_s is not None:
                self._h_run.observe(run_s)
        states = {record.state for record in records}
        if "cancelled" in states or interrupted:
            qjob.state = JOB_CANCELLED
        elif "failed" in states:
            qjob.state = JOB_FAILED
            self._c_jobs_failed.inc()
        else:
            qjob.state = JOB_DONE
            self._c_jobs_done.inc()
        if trace_id:
            self._record_sweep_spans(qjob, trace, job_span_ids)
        log.info(
            "daemon.sweep_done", state=qjob.state,
            seconds=round(qjob.finished_at - qjob.started_at, 6),
            counts=qjob.counts(),
        )

    def _record_sweep_spans(
        self, qjob: QueuedJob, trace: dict, job_span_ids: dict,
    ) -> None:
        """Record queue-wait, sweep, and per-record job spans."""
        trace_id = trace["trace_id"]
        parent_id = trace.get("parent_id")
        sweep_id = os.urandom(4).hex()
        self.spans.record(Span(
            trace_id, os.urandom(4).hex(), parent_id,
            "queue-wait", "daemon", "scheduler",
            qjob.submitted_at, qjob.started_at,
            args={"job": qjob.id},
        ))
        self.spans.record(Span(
            trace_id, sweep_id, parent_id,
            f"sweep {qjob.id}", "daemon", "scheduler",
            qjob.started_at, qjob.finished_at,
            args={"job": qjob.id, "state": qjob.state},
        ))
        for record in qjob.records:
            start = record.started_at
            end = record.finished_at
            if start is None:
                start = end if end is not None else qjob.finished_at
            if end is None:
                end = qjob.finished_at
            self.spans.record(Span(
                trace_id, job_span_ids[record.key], sweep_id,
                f"job {record.label}", "daemon", record.label,
                start, end,
                args={
                    "state": record.state, "source": record.source,
                    "attempts": record.attempts,
                },
            ))

    def _execute_serial(
        self, misses, trace_id=None, job_span_ids=None,
    ) -> bool:
        """Run misses in the scheduler thread against warm stores."""
        for i, (record, job) in enumerate(misses):
            if self._stop.is_set():
                # Draining: the sub-runs already executed are kept
                # (drained); the rest are cancelled.
                for rec, _ in misses[i:]:
                    rec.state = "cancelled"
                    rec.finished_at = time.time()
                return True
            record.state = "running"
            record.started_at = time.time()
            record.attempts = 1
            try:
                if self._executor is not None:
                    result = self._executor(job)
                else:
                    result = run_sweep_job(job, self._trace_store(job))
                payload = pickle.dumps(result, pickle.HIGHEST_PROTOCOL)
            except Exception as exc:  # noqa: BLE001 — recorded, not fatal
                record.state = "failed"
                record.history.append(
                    AttemptFailure(
                        1, REASON_ERROR, f"{type(exc).__name__}: {exc}",
                        0.0,
                    ).to_dict()
                )
            else:
                self._store_computed(record, payload)
                record.state = "done"
                record.source = "computed"
            record.finished_at = time.time()
            if trace_id:
                self.spans.record(Span(
                    trace_id, os.urandom(4).hex(),
                    job_span_ids[record.key],
                    "attempt 1", "daemon", record.label,
                    record.started_at, record.finished_at,
                    args={"state": record.state, "label": record.label},
                ))
        return False

    def _execute_pooled(
        self, misses, trace_id=None, job_span_ids=None, log=None,
    ) -> bool:
        """Run misses on the persistent supervised pool."""
        by_index: dict[int, JobRecord] = {}
        pool_jobs: list[Job] = []
        for i, (record, job) in enumerate(misses):
            by_index[i] = record
            args = (asdict(job), self.cache_dir)
            if trace_id:
                args = args + ({
                    "trace_id": trace_id,
                    "parent_id": job_span_ids[record.key],
                    "label": record.label,
                    "span_dir": str(self.span_dir),
                },)
            pool_jobs.append(
                Job(
                    index=i,
                    fn=_sweep_worker,
                    args=args,
                    label=record.label,
                )
            )
        attempt_open: dict[tuple[int, int], float] = {}

        def on_update(job: Job) -> None:
            record = by_index[job.index]
            now = time.time()
            record.state = job.state
            record.attempts = job.attempts
            record.history = [h.to_dict() for h in job.history]
            if job.state == STATE_RUNNING:
                if record.started_at is None:
                    record.started_at = now
                attempt_open.setdefault((job.index, job.attempts), now)
            if job.state not in (STATE_RUNNING, STATE_PENDING,
                                 STATE_RETRY):
                record.finished_at = now
            if trace_id and job.state != STATE_RUNNING:
                opened = attempt_open.pop((job.index, job.attempts), None)
                if opened is not None:
                    self.spans.record(Span(
                        trace_id, os.urandom(4).hex(),
                        job_span_ids[record.key],
                        f"attempt {job.attempts}", "daemon",
                        record.label, opened, now,
                        args={
                            "state": job.state, "label": record.label,
                        },
                    ))
            if job.state == STATE_DONE and job.payload is not None:
                record.source = "computed"
                self._store_computed(record, job.payload)

        try:
            self._pool.run(pool_jobs, on_update=on_update)
        except BatchInterrupted:
            return True
        return False


def serve(
    daemon: Daemon,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    banner=None,
    ready=None,
) -> int:
    """Run a daemon behind its HTTP front end until SIGTERM/SIGINT.

    Blocks the calling (main) thread in the HTTP serve loop.  On
    SIGTERM or SIGINT the server stops accepting connections, the
    daemon drains its in-flight submission within the grace period,
    and the function returns 130 (the repo-wide interrupted exit
    code); a plain ``server.shutdown()`` from another thread returns
    0.  ``ready`` (if given) is called with the bound server once it
    is listening — used by tests to learn the ephemeral port.
    """
    import signal

    from .http import make_server

    server = make_server(daemon, host, port)
    daemon.start()
    stop_signals: list[int] = []

    def _on_signal(signum, frame):  # noqa: ARG001 — signal contract
        stop_signals.append(signum)
        # shutdown() blocks until the serve loop exits, and the serve
        # loop cannot advance while this handler runs on the main
        # thread — so trip it from a helper thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(signum, _on_signal)
    try:
        if banner is not None:
            bound_host, bound_port = server.server_address[:2]
            banner(
                f"simulation daemon listening on "
                f"http://{bound_host}:{bound_port} "
                f"(workers={daemon.workers}, "
                f"queue_depth={daemon.queue.maxsize})"
            )
        if ready is not None:
            ready(server)
        server.serve_forever(poll_interval=0.1)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        cancelled = daemon.stop()
        server.server_close()
        if banner is not None and cancelled:
            banner(f"cancelled {len(cancelled)} queued submission(s)")
    return 130 if stop_signals else 0
