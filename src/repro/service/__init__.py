"""Resilient batch-simulation service layer.

The layer between "one CLI invocation" and "sustained sweep traffic":

* :class:`SupervisedPool` / :func:`run_jobs` — process fan-out with
  heartbeats, per-job wall-clock timeouts, automatic worker restart,
  seeded exponential backoff + jitter retries, and a quarantine list
  (the drop-in replacement for the repo's former bare
  ``ProcessPoolExecutor`` paths);
* :mod:`~repro.service.jobs` — config-grid decomposition into
  deduplicated, shardable :class:`SweepJob`\\ s;
* :class:`ResultStore` — content-addressed results keyed by (canonical
  config hash, trace schema version, git revision) with embedded
  checksums and regenerate-on-corruption loads;
* :mod:`~repro.service.chaos` — real fault injection (SIGKILL, hangs,
  payload corruption, transient failures) used by the tests and the CI
  smoke to prove the supervisor recovers;
* :func:`run_batch` — graceful degradation: partial results plus a
  structured failure report, surfaced via ``python -m repro
  batch``/``status``/``results``.
"""

from .chaos import (
    ALWAYS,
    ChaosSpec,
    ChaosTransientError,
    echo_job,
    parse_chaos_arg,
    sleep_job,
    square_job,
)
from .errors import (
    AttemptFailure,
    BatchInterrupted,
    JobFailure,
    JobsFailedError,
    ResultStoreError,
    ServiceError,
)
from .batch import (
    BATCH_STATE_SCHEMA,
    BatchReport,
    DEFAULT_BATCH_DIR,
    JobRecord,
    find_batch,
    format_results,
    format_status,
    load_state,
    run_batch,
)
from .jobs import KINDS, MODELS, SweepJob, expand_grid, shard
from .pool import Job, SupervisedPool, run_jobs
from .store import RESULT_STORE_SCHEMA, ResultStore, result_key

__all__ = [
    "ALWAYS",
    "AttemptFailure",
    "BATCH_STATE_SCHEMA",
    "BatchInterrupted",
    "BatchReport",
    "ChaosSpec",
    "ChaosTransientError",
    "DEFAULT_BATCH_DIR",
    "Job",
    "JobFailure",
    "JobRecord",
    "JobsFailedError",
    "KINDS",
    "MODELS",
    "RESULT_STORE_SCHEMA",
    "ResultStore",
    "ResultStoreError",
    "ServiceError",
    "SupervisedPool",
    "SweepJob",
    "echo_job",
    "expand_grid",
    "find_batch",
    "format_results",
    "format_status",
    "load_state",
    "parse_chaos_arg",
    "result_key",
    "run_batch",
    "run_jobs",
    "shard",
    "sleep_job",
    "square_job",
]
