"""Resilient batch-simulation service layer.

The layer between "one CLI invocation" and "sustained sweep traffic":

* :class:`SupervisedPool` / :func:`run_jobs` — process fan-out with
  heartbeats, per-job wall-clock timeouts, automatic worker restart,
  seeded exponential backoff + jitter retries, and a quarantine list
  (the drop-in replacement for the repo's former bare
  ``ProcessPoolExecutor`` paths);
* :mod:`~repro.service.jobs` — config-grid decomposition into
  deduplicated, shardable :class:`SweepJob`\\ s;
* :class:`ResultStore` — content-addressed results keyed by (canonical
  config hash, trace schema version, git revision) with embedded
  checksums and regenerate-on-corruption loads;
* :mod:`~repro.service.chaos` — real fault injection (SIGKILL, hangs,
  payload corruption, transient failures) used by the tests and the CI
  smoke to prove the supervisor recovers;
* :func:`run_batch` — graceful degradation: partial results plus a
  structured failure report, surfaced via ``python -m repro
  batch``/``status``/``results``;
* :class:`Daemon` + :mod:`~repro.service.http` — the persistent
  simulation-as-a-service front half: warm pool and caches behind a
  bounded priority :class:`JobQueue`, exposed over a stdlib JSON/HTTP
  API (``python -m repro serve``) with a :class:`DaemonClient` and a
  multi-endpoint shard :func:`dispatch` on the client side.
"""

from .chaos import (
    ALWAYS,
    ChaosSpec,
    ChaosTransientError,
    echo_job,
    parse_chaos_arg,
    sleep_job,
    square_job,
)
from .errors import (
    AttemptFailure,
    BatchInterrupted,
    JobFailure,
    JobsFailedError,
    ResultStoreError,
    ServiceError,
)
from .batch import (
    BATCH_STATE_SCHEMA,
    BatchReport,
    DEFAULT_BATCH_DIR,
    JobRecord,
    find_batch,
    format_results,
    format_status,
    load_state,
    run_batch,
)
from .batch import run_sweep_job
from .client import ClientError, DaemonClient, DispatchReport, dispatch
from .daemon import DEFAULT_DAEMON_DIR, Daemon, serve
from .http import DaemonHTTPServer, make_server
from .jobs import (
    KINDS,
    MODELS,
    SweepJob,
    expand_grid,
    shard,
    sweep_from_request,
)
from .pool import Job, SupervisedPool, run_jobs
from .queue import (
    JobQueue,
    QueueClosed,
    QueuedJob,
    QueueFull,
    submission_id,
)
from .store import RESULT_STORE_SCHEMA, ResultStore, result_key

__all__ = [
    "ALWAYS",
    "AttemptFailure",
    "BATCH_STATE_SCHEMA",
    "BatchInterrupted",
    "BatchReport",
    "ChaosSpec",
    "ChaosTransientError",
    "ClientError",
    "DEFAULT_BATCH_DIR",
    "DEFAULT_DAEMON_DIR",
    "Daemon",
    "DaemonClient",
    "DaemonHTTPServer",
    "DispatchReport",
    "Job",
    "JobFailure",
    "JobQueue",
    "JobRecord",
    "JobsFailedError",
    "KINDS",
    "MODELS",
    "QueueClosed",
    "QueueFull",
    "QueuedJob",
    "RESULT_STORE_SCHEMA",
    "ResultStore",
    "ResultStoreError",
    "ServiceError",
    "SupervisedPool",
    "SweepJob",
    "dispatch",
    "echo_job",
    "expand_grid",
    "find_batch",
    "format_results",
    "format_status",
    "load_state",
    "make_server",
    "parse_chaos_arg",
    "result_key",
    "run_batch",
    "run_jobs",
    "run_sweep_job",
    "serve",
    "shard",
    "sleep_job",
    "square_job",
    "submission_id",
    "sweep_from_request",
]
