"""Fault injection for the supervised pool — prove the supervisor works.

A :class:`ChaosSpec` rides into every worker process and fires *inside*
the worker at well-defined points, so the failures it produces are the
real thing, not mocks: ``crash`` delivers an actual ``SIGKILL`` to the
worker's own pid, ``hang`` really sleeps past the supervisor's wall
clock budget, ``corrupt`` flips bytes of the pickled result payload
*after* its checksum was computed, and ``fail`` raises a plain
exception.  Each injector is keyed by job index and bounded by attempt
count, which covers both transient faults (``{idx: 1}`` — fail the
first attempt, succeed on retry) and deterministic ones
(``{idx: ALWAYS}`` — fail every attempt until the job is quarantined).

The module also hosts the small picklable job functions the tests and
the CI smoke drive through the pool.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field

#: Attempt bound meaning "every attempt" (far above any max_attempts).
ALWAYS = 1_000_000


class ChaosTransientError(RuntimeError):
    """The exception the ``fail`` injector raises inside a worker."""


@dataclass
class ChaosSpec:
    """Which jobs to sabotage, and for how many attempts.

    Every mapping is ``{job_index: n}``: the fault fires while the
    job's attempt number (1-based) is ``<= n``.  ``hang_seconds`` only
    bounds the injected sleep so a test without timeouts still ends.
    """

    crash: dict[int, int] = field(default_factory=dict)
    hang: dict[int, int] = field(default_factory=dict)
    corrupt: dict[int, int] = field(default_factory=dict)
    fail: dict[int, int] = field(default_factory=dict)
    hang_seconds: float = 3600.0

    def __bool__(self) -> bool:
        return bool(self.crash or self.hang or self.corrupt or self.fail)

    def before(self, index: int, attempt: int) -> None:
        """Fire pre-execution faults (crash / hang / transient raise)."""
        if attempt <= self.crash.get(index, 0):
            os.kill(os.getpid(), signal.SIGKILL)
        if attempt <= self.hang.get(index, 0):
            time.sleep(self.hang_seconds)
        if attempt <= self.fail.get(index, 0):
            raise ChaosTransientError(
                f"injected transient failure (job {index}, "
                f"attempt {attempt})"
            )

    def after(self, index: int, attempt: int, payload: bytes) -> bytes:
        """Fire post-execution faults (payload corruption)."""
        if attempt <= self.corrupt.get(index, 0):
            # Flip a byte in the middle: the checksum was computed over
            # the pristine payload, so the supervisor must reject this.
            mid = len(payload) // 2
            mutated = bytearray(payload)
            mutated[mid] ^= 0xFF
            return bytes(mutated)
        return payload


def parse_chaos_arg(mapping: dict[int, int], spec: str) -> dict[int, int]:
    """Parse one ``IDX[:N]`` CLI chaos argument into ``mapping``.

    ``"3"`` means "fault job 3 on every attempt"; ``"3:1"`` means
    "fault job 3 on its first attempt only".
    """
    idx, _, bound = spec.partition(":")
    try:
        index = int(idx)
        count = int(bound) if bound else ALWAYS
    except ValueError:
        raise ValueError(f"bad chaos spec {spec!r}: expected IDX[:N]")
    if index < 0 or count < 0:
        raise ValueError(f"bad chaos spec {spec!r}: negative values")
    mapping[index] = count
    return mapping


# --- Picklable job functions for tests and smoke runs ------------------


def echo_job(value):
    """Return the argument unchanged (the minimal pool job)."""
    return value


def square_job(value: int) -> int:
    return value * value


def sleep_job(seconds: float, value=None):
    """Sleep, then return ``value`` — a controllable slow job."""
    time.sleep(seconds)
    return value
