"""Batch runner: sweeps with graceful degradation and live status.

``run_batch`` ties the service layer together: the sweep scheduler
(:mod:`repro.service.jobs`) decomposes the grid, the content-addressed
:class:`~repro.service.store.ResultStore` satisfies every sub-run that
any earlier batch already computed, and the
:class:`~repro.service.pool.SupervisedPool` computes the rest under
supervision.  A batch never raises on job failure: it returns partial
results plus a structured failure report, persisted as
``state.json``/``manifest.json`` under ``<out>/<batch-id>/`` so that
``python -m repro status`` and ``results`` can inspect a batch during
and after the run.  Only SIGINT/SIGTERM interrupt a batch, and even
then the state file records how far it got.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..obs.manifest import build_manifest, write_manifest
from ..obs.metrics import MetricsRegistry
from .errors import BatchInterrupted
from .jobs import SweepJob
from .pool import (
    STATE_DONE,
    STATE_PENDING,
    STATE_RETRY,
    STATE_RUNNING,
    Job,
    SupervisedPool,
)
from .store import ResultStore

BATCH_STATE_SCHEMA = "repro-batch-state/1"

DEFAULT_BATCH_DIR = Path("results") / "batches"


def run_sweep_job(job: SweepJob, store):
    """Run one canonical sub-run against ``store``, to a breakdown.

    The single execution path shared by the batch workers and the
    daemon's serial scheduler — both therefore produce byte-identical
    pickles for the same job.  ``store`` is an
    :class:`~repro.experiments.runner.TraceStore`; a warm one (the
    daemon's, or a persistent worker's shared store) satisfies the
    trace lookup from memory.

    Imports stay inside the function so :mod:`repro.service` never
    imports :mod:`repro.experiments` at module level (the experiments
    layer imports the pool, and cycles must stay one-directional).
    """
    from ..cpu import ExecutionBreakdown, ProcessorConfig, simulate
    from ..net import build_network

    if job.kind == "cosim":
        # Co-simulate the DS multiprocessor: every processor on one
        # shared fabric.  The stored result is the machine aggregate
        # (summed per-processor components) so the standard results
        # table renders it; per-processor cycles and the fabric's
        # miss-latency summary ride along in ``extras``.
        from ..cosim import run_cosim

        crun = store.get_cosim(job.app)
        cfg = ProcessorConfig(
            kind="ds", model=job.model, window=job.window,
            engine=job.engine,
        )
        result = run_cosim(
            crun, cfg, network_kind=job.network,
            line_size=store.line_size,
        )
        parts = result.breakdowns
        extras = {
            "per_cpu_cycles": result.cycles(),
            "net": result.net_summary,
        }
        return ExecutionBreakdown(
            label=f"COSIM-{cfg.label()}-{job.network}",
            busy=sum(b.busy for b in parts),
            sync=sum(b.sync for b in parts),
            read=sum(b.read for b in parts),
            write=sum(b.write for b in parts),
            other=sum(b.other for b in parts),
            instructions=sum(b.instructions for b in parts),
            extras=extras,
        )
    run = store.get(job.app)
    cfg = ProcessorConfig(
        kind=job.kind,
        model=job.model if job.kind != "base" else "RC",
        window=job.window,
        engine=job.engine,
    )
    # Like the contention experiment: traces come from the shared ideal
    # cache; a non-ideal backend re-times misses at replay.
    network = build_network(job.network, job.procs, store.line_size)
    return simulate(run.trace, cfg, network=network)


def _sweep_worker(
    config: dict, cache_dir: str | None, trace_info: dict | None = None,
):
    """Worker-side entry: reconstruct the job and run it.

    The store comes from :func:`repro.experiments.runner.shared_store`,
    keyed by the job's trace-shaping parameters — in a *persistent*
    worker (daemon mode) the same process serves many jobs, so traces
    generated for one request stay warm for the next.  In per-batch
    workers the shared store degenerates to the old per-job store.

    ``trace_info`` (``{"trace_id", "parent_id", "label", "span_dir"}``)
    opts this execution into distributed tracing: the worker records a
    run span with nested trace-acquisition and simulate spans into a
    JSONL side file under ``span_dir``.  The simulation result itself
    is untouched — tracing on or off, the returned (and thus pickled)
    payload is byte-identical.
    """
    from ..experiments.runner import shared_store

    job = SweepJob(**config)
    store = shared_store(dict(
        n_procs=job.procs,
        miss_penalty=job.penalty,
        preset=job.preset,
        cache_dir=cache_dir,
    ))
    if trace_info is None:
        return run_sweep_job(job, store)
    return _traced_sweep_job(job, store, trace_info)


def _traced_sweep_job(job: SweepJob, store, trace_info: dict):
    """Run one job while recording worker-side spans to a side file."""
    from ..obs.spans import Span, write_spans

    trace_id = trace_info["trace_id"]
    label = trace_info.get("label") or job.label()
    process = f"worker-{os.getpid()}"
    run_id = os.urandom(4).hex()
    t_run = time.time()
    # Warm the trace explicitly so its cost appears as its own nested
    # span; run_sweep_job re-fetches it from the (now warm) store.
    t_trace = time.time()
    if job.kind == "cosim":
        store.get_cosim(job.app)
    else:
        store.get(job.app)
    t_sim = time.time()
    result = run_sweep_job(job, store)
    t_end = time.time()
    spans = [
        Span(
            trace_id, run_id, trace_info.get("parent_id"),
            f"run {label}", process, "main", t_run, t_end,
            args={"pid": os.getpid(), "label": label},
        ),
        Span(
            trace_id, os.urandom(4).hex(), run_id,
            "trace", process, "main", t_trace, t_sim,
        ),
        Span(
            trace_id, os.urandom(4).hex(), run_id,
            "simulate", process, "main", t_sim, t_end,
        ),
    ]
    span_dir = trace_info.get("span_dir")
    if span_dir:
        write_spans(
            Path(span_dir) / f"{trace_id}-{os.getpid()}.jsonl", spans,
        )
    return result


@dataclass
class JobRecord:
    """Persisted per-job state for status/results reporting.

    The three wall-clock timestamps give real queue latency per job:
    ``queued_at`` is set when the batch (or daemon) accepts the job,
    ``started_at`` when a worker first begins executing it, and
    ``finished_at`` when it reaches a terminal state.  Store-served
    jobs start and finish at acceptance.
    """

    key: str
    label: str
    config: dict
    state: str = "pending"
    attempts: int = 0
    source: str | None = None  # "store"/"cache" (dedup hit), "computed"
    history: list = field(default_factory=list)
    queued_at: float | None = None
    started_at: float | None = None
    finished_at: float | None = None

    @property
    def queue_latency(self) -> float | None:
        """Seconds spent waiting between acceptance and first start."""
        if self.queued_at is None or self.started_at is None:
            return None
        return max(0.0, self.started_at - self.queued_at)

    @property
    def run_seconds(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return max(0.0, self.finished_at - self.started_at)

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "label": self.label,
            "config": self.config,
            "state": self.state,
            "attempts": self.attempts,
            "source": self.source,
            "history": list(self.history),
            "queued_at": self.queued_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


@dataclass
class BatchReport:
    """Outcome of one batch: partial results + structured failures."""

    batch_id: str
    out_dir: Path
    store_dir: Path
    records: list[JobRecord]
    interrupted: bool = False
    counters: dict = field(default_factory=dict)

    @property
    def completed(self) -> list[JobRecord]:
        return [r for r in self.records if r.state == "done"]

    @property
    def failed(self) -> list[JobRecord]:
        return [r for r in self.records if r.state == "failed"]

    @property
    def cancelled(self) -> list[JobRecord]:
        return [r for r in self.records if r.state == "cancelled"]

    @property
    def partial(self) -> bool:
        return bool(self.failed or self.cancelled or self.interrupted)

    def failure_report(self) -> dict:
        """The structured failure report embedded in state.json."""
        return {
            "failed": [r.to_dict() for r in self.failed],
            "cancelled": [r.label for r in self.cancelled],
            "interrupted": self.interrupted,
            "counters": self.counters,
        }

    def format_summary(self) -> str:
        total = len(self.records)
        done = len(self.completed)
        dedup = sum(1 for r in self.records if r.source == "store")
        lines = [
            f"batch {self.batch_id}: {done}/{total} jobs done"
            f" ({dedup} from result store), "
            f"{len(self.failed)} failed, {len(self.cancelled)} cancelled"
        ]
        for name in ("retries", "timeouts", "crashes", "corrupt_payloads",
                     "worker_restarts", "quarantined"):
            value = self.counters.get(f"service.{name}", 0)
            if value:
                lines.append(f"  {name}: {value}")
        for rec in self.failed:
            steps = "; ".join(
                f"#{h['attempt']} {h['reason']}: {h['detail']}"
                for h in rec.history
            )
            lines.append(
                f"  FAILED {rec.label} after {rec.attempts} attempts"
                f" ({steps})"
            )
        if self.interrupted:
            lines.append("  interrupted before completion")
        lines.append(f"  state: {self.out_dir / 'state.json'}")
        return "\n".join(lines)


def _batch_id(keys: list[str]) -> str:
    material = "|".join(sorted(keys))
    return hashlib.sha256(material.encode()).hexdigest()[:12]


def _write_state(path: Path, state: dict) -> None:
    """Atomic JSON write so `status` never reads a torn state file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(state, indent=2) + "\n")
    os.replace(tmp, path)


def run_batch(
    sweep: list[SweepJob],
    *,
    jobs: int = 1,
    cache_dir: Path | str | None = None,
    out_dir: Path | str = DEFAULT_BATCH_DIR,
    store_dir: Path | str | None = None,
    timeout: float | None = None,
    max_attempts: int = 3,
    seed: int = 0,
    chaos=None,
    metrics: MetricsRegistry | None = None,
    log=None,
    trace=None,
    command: str = "",
) -> BatchReport:
    """Run a sweep resiliently; always returns a report, never raises
    for job-level failures.  Raises :class:`BatchInterrupted` only on
    SIGINT/SIGTERM — after persisting the partial state.

    ``log`` is an optional :class:`~repro.obs.log.JsonLogger`;
    ``trace`` an optional :class:`~repro.obs.context.TraceContext`.
    With a trace context, the batch records a root span, per-job spans
    and worker-side run/engine spans, and writes the stitched Perfetto
    timeline to ``<batch>/trace.json``.
    """
    from ..obs.log import NULL_LOG
    from ..obs.spans import Span, read_spans, stitch, write_spans

    m = metrics if metrics is not None else MetricsRegistry(enabled=True)
    log = log if log is not None else NULL_LOG
    out_root = Path(out_dir)
    store = ResultStore(
        Path(store_dir) if store_dir else out_root / "store", metrics=m
    )
    t_start = time.time()

    keys = [store.key(job.config()) for job in sweep]
    records = [
        JobRecord(
            key=key, label=job.label(), config=job.config(),
            queued_at=t_start,
        )
        for key, job in zip(keys, sweep)
    ]
    batch_dir = out_root / _batch_id(keys)
    state_path = batch_dir / "state.json"
    if trace is not None:
        log = log.bind(trace=trace.trace_id)
    log = log.bind(batch=batch_dir.name)
    log.info(
        "batch.start", n_jobs=len(sweep), workers=jobs,
        max_attempts=max_attempts, chaos=chaos is not None,
    )
    span_dir = batch_dir / "spans"
    batch_spans: list[Span] = []
    job_span_ids: dict[str, str] = {}
    if trace is not None:
        for record in records:
            job_span_ids[record.key] = os.urandom(4).hex()

    def persist(extra: dict | None = None) -> None:
        state = {
            "schema": BATCH_STATE_SCHEMA,
            "batch_id": batch_dir.name,
            "command": command,
            "git_rev": store.git_rev,
            "store_dir": str(store.root),
            "jobs": [r.to_dict() for r in records],
        }
        if extra:
            state.update(extra)
        _write_state(state_path, state)

    # Content-addressed dedup: anything a previous batch (or a shared
    # grid point of this one) already computed is done before any
    # worker spawns.
    misses: list[tuple[JobRecord, SweepJob]] = []
    for record, job in zip(records, sweep):
        if store.get_bytes(record.key) is not None:
            record.state = "done"
            record.source = "store"
            record.started_at = record.finished_at = time.time()
            log.debug("batch.store_hit", label=record.label)
        else:
            misses.append((record, job))
    persist()

    pool_jobs: list[Job] = []
    by_index: dict[int, JobRecord] = {}
    for i, (record, job) in enumerate(misses):
        by_index[i] = record
        trace_info = None
        if trace is not None:
            trace_info = {
                "trace_id": trace.trace_id,
                "parent_id": job_span_ids[record.key],
                "label": record.label,
                "span_dir": str(span_dir),
            }
        pool_jobs.append(
            Job(
                index=i,
                fn=_sweep_worker,
                args=(
                    (asdict(job), str(cache_dir) if cache_dir else None)
                    if trace_info is None else
                    (asdict(job), str(cache_dir) if cache_dir else None,
                     trace_info)
                ),
                label=record.label,
            )
        )

    interrupted = False
    if pool_jobs:
        pool = SupervisedPool(
            workers=jobs,
            timeout=timeout,
            max_attempts=max_attempts,
            seed=seed,
            chaos=chaos,
            metrics=m,
            log=log,
            install_signal_handlers=True,
        )
        attempt_open: dict[tuple[int, int], float] = {}

        def on_update(job: Job) -> None:
            record = by_index[job.index]
            now = time.time()
            record.state = job.state
            record.attempts = job.attempts
            record.history = [h.to_dict() for h in job.history]
            if job.state == STATE_RUNNING:
                if record.started_at is None:
                    record.started_at = now
                attempt_open.setdefault((job.index, job.attempts), now)
            if job.state not in (STATE_RUNNING, STATE_PENDING, STATE_RETRY):
                record.finished_at = now
            if trace is not None and job.state != STATE_RUNNING:
                opened = attempt_open.pop((job.index, job.attempts), None)
                if opened is not None:
                    batch_spans.append(Span(
                        trace.trace_id, os.urandom(4).hex(),
                        job_span_ids[record.key],
                        f"attempt {job.attempts}", "batch", record.label,
                        opened, now,
                        args={"state": job.state, "label": record.label},
                    ))
            if job.state == STATE_DONE and job.payload is not None:
                record.source = "computed"
                store.put_bytes(
                    record.key, job.payload,
                    meta={"label": record.label, "config": record.config},
                )
            persist()

        try:
            pool.run(pool_jobs, on_update=on_update)
        except BatchInterrupted:
            interrupted = True
            log.warning("batch.interrupted")

    counters = {
        name: inst.value
        for name, inst in (
            (n, m.get(n)) for n in (
                "service.jobs_total", "service.jobs_done",
                "service.retries", "service.timeouts", "service.crashes",
                "service.corrupt_payloads", "service.worker_restarts",
                "service.quarantined", "service.store_hits",
                "service.store_misses", "service.store_corrupt",
            )
        )
        if inst is not None
    }
    report = BatchReport(
        batch_id=batch_dir.name,
        out_dir=batch_dir,
        store_dir=store.root,
        records=records,
        interrupted=interrupted,
        counters=counters,
    )
    persist(extra={"failure_report": report.failure_report()})

    outputs = {"state": state_path}
    t_end = time.time()
    if trace is not None:
        root_id = trace.span_id
        batch_spans.append(Span(
            trace.trace_id, root_id, None,
            f"batch {batch_dir.name}", "batch", "main", t_start, t_end,
            args={"n_jobs": len(records)},
        ))
        for record in records:
            start = record.started_at
            end = record.finished_at
            if start is None:
                start = end if end is not None else t_end
            if end is None:
                end = t_end
            batch_spans.append(Span(
                trace.trace_id, job_span_ids[record.key], root_id,
                f"job {record.label}", "batch", record.label, start, end,
                args={
                    "state": record.state, "source": record.source,
                    "attempts": record.attempts,
                },
            ))
        all_spans = batch_spans + read_spans(span_dir, trace.trace_id)
        write_spans(batch_dir / "spans" / "supervisor.jsonl", batch_spans)
        trace_doc = stitch(
            all_spans, other_data={"batch_id": batch_dir.name},
        )
        trace_path = batch_dir / "trace.json"
        trace_path.write_text(
            json.dumps(trace_doc, sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        outputs["trace"] = trace_path
        log.info(
            "batch.trace_written", path=str(trace_path),
            spans=len(all_spans),
        )

    manifest = build_manifest(
        command=command or "repro batch",
        config={
            "jobs": jobs,
            "timeout": timeout,
            "max_attempts": max_attempts,
            "seed": seed,
            "n_sweep_jobs": len(sweep),
            "engine": ",".join(sorted({job.engine for job in sweep})),
            "networks": sorted({job.network for job in sweep}),
        },
        timings={"total": t_end - t_start},
        outputs=outputs,
    )
    write_manifest(batch_dir / "manifest.json", manifest)
    log.info(
        "batch.done", done=len(report.completed),
        failed=len(report.failed), cancelled=len(report.cancelled),
        interrupted=interrupted, seconds=round(t_end - t_start, 3),
    )
    if interrupted:
        raise BatchInterrupted(
            f"batch {report.batch_id} interrupted; partial state at "
            f"{state_path}"
        )
    return report


# -- status / results inspection ---------------------------------------


def find_batch(
    out_dir: Path | str = DEFAULT_BATCH_DIR, batch_id: str | None = None
) -> Path:
    """The state file for ``batch_id``, or the most recent batch."""
    root = Path(out_dir)
    if batch_id is not None:
        path = root / batch_id / "state.json"
        if not path.is_file():
            raise FileNotFoundError(f"no batch state at {path}")
        return path
    candidates = sorted(
        root.glob("*/state.json"), key=lambda p: p.stat().st_mtime
    )
    if not candidates:
        raise FileNotFoundError(f"no batches under {root}")
    return candidates[-1]


def load_state(state_path: Path) -> dict:
    state = json.loads(Path(state_path).read_text())
    if state.get("schema") != BATCH_STATE_SCHEMA:
        raise ValueError(
            f"unrecognised batch state schema {state.get('schema')!r}"
        )
    return state


def format_status(state: dict) -> str:
    jobs = state.get("jobs", [])
    by_state: dict[str, int] = {}
    for job in jobs:
        by_state[job["state"]] = by_state.get(job["state"], 0) + 1
    counts = ", ".join(
        f"{state_name}={n}" for state_name, n in sorted(by_state.items())
    )
    lines = [
        f"batch {state.get('batch_id')} — {len(jobs)} jobs ({counts})"
    ]
    for job in jobs:
        marker = {
            "done": "ok",
            "failed": "FAILED",
            "cancelled": "cancelled",
        }.get(job["state"], job["state"])
        src = f" [{job['source']}]" if job.get("source") else ""
        queued = job.get("queued_at")
        started = job.get("started_at")
        finished = job.get("finished_at")
        timing = ""
        if queued is not None and started is not None:
            timing = f" (wait {max(0.0, started - queued):.2f}s"
            if finished is not None:
                timing += f", run {max(0.0, finished - started):.2f}s"
            timing += ")"
        lines.append(
            f"  {job['label']:<40} {marker}{src}{timing}"
            + (f" (attempts {job['attempts']})" if job["attempts"] > 1
               else "")
        )
        for h in job.get("history", []):
            lines.append(
                f"      attempt {h['attempt']}: {h['reason']}"
                f" — {h['detail']}"
            )
    report = state.get("failure_report")
    if report and report.get("interrupted"):
        lines.append("  batch was interrupted before completion")
    return "\n".join(lines)


def format_results(state: dict) -> str:
    """Render completed results (loaded from the content store)."""
    from ..experiments.report import format_table  # lazy: avoid cycle

    store = ResultStore(state["store_dir"])
    rows = []
    missing = 0
    for job in state.get("jobs", []):
        if job["state"] != "done":
            continue
        breakdown = store.get(job["key"])
        if breakdown is None:
            missing += 1
            continue
        rows.append([
            job["label"],
            breakdown.total,
            breakdown.busy,
            breakdown.sync,
            breakdown.read,
            breakdown.write,
            job["key"][:12],
        ])
    table = format_table(
        ["job", "cycles", "busy", "sync", "read", "write", "key"],
        rows,
        title=f"Batch {state.get('batch_id')} — completed results",
    )
    if missing:
        table += (
            f"\n({missing} result(s) missing from the store — "
            f"evicted or corrupt; re-run the batch to regenerate)"
        )
    return table
