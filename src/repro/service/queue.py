"""Async job queue for the simulation daemon.

Submissions (one sweep each — a list of canonical
:class:`~repro.service.jobs.SweepJob`\\ s) are queued with a priority
and served **priority-first, FIFO within a priority** by the daemon's
scheduler thread.  Three properties make the queue safe to expose to
untrusted traffic:

* **bounded depth with explicit backpressure** — the queue holds at
  most ``maxsize`` waiting submissions; one more raises
  :class:`QueueFull` carrying a drain-rate-based ``retry_after`` hint,
  which the HTTP layer maps to ``429 Retry-After``.  Overload is
  rejected at the door, never absorbed into unbounded memory;
* **deduplication** — a submission's id is the SHA-256 of its sorted
  canonical sub-run configs, so resubmitting work that is already
  queued, running, or finished returns the *existing* job id instead
  of queueing a duplicate (sub-runs are additionally deduplicated
  against the content-addressed result store at execution time);
* **clean shutdown** — :meth:`JobQueue.close` atomically stops
  accepting submissions (:class:`QueueClosed`, HTTP 503) and lets the
  scheduler drain or cancel what is left.

All methods are thread-safe; the HTTP front end calls ``submit`` from
handler threads while the scheduler pops from its own.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field

from .errors import ServiceError
from .store import canonical_config_blob

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"

#: States in which a resubmission dedups onto the existing job.  A
#: failed or cancelled job is *not* sticky: resubmitting retries it.
_DEDUP_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE)


class QueueFull(ServiceError):
    """The queue is at capacity; retry after ``retry_after`` seconds."""

    def __init__(self, depth: int, retry_after: float) -> None:
        self.depth = depth
        self.retry_after = retry_after
        super().__init__(
            f"job queue full ({depth} submissions waiting); "
            f"retry in {retry_after:.0f}s"
        )


class QueueClosed(ServiceError):
    """The daemon is draining; no new submissions are accepted."""


def submission_id(sweep: list) -> str:
    """Deterministic id for a sweep: hash of its sorted sub-run configs.

    Two requests that expand to the same canonical sub-runs — however
    they were spelled — share one id, which is what makes duplicate
    submission detection work across clients.
    """
    material = "|".join(sorted(
        canonical_config_blob(job.config()) for job in sweep
    ))
    return hashlib.sha256(material.encode()).hexdigest()[:16]


@dataclass
class QueuedJob:
    """One accepted submission and its full lifecycle record."""

    id: str
    sweep: list                       # list[SweepJob]
    priority: int = 0
    seq: int = 0
    state: str = JOB_QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    records: list = field(default_factory=list)   # list[JobRecord]
    error: str | None = None
    #: Distributed trace context from the submission, if any:
    #: ``{"trace_id": ..., "parent_id": ...}``.  Dedup keeps the first
    #: submission's context — a duplicate never re-parents a live job.
    trace: dict | None = None

    @property
    def queue_latency(self) -> float | None:
        """Seconds between acceptance and the scheduler picking it up."""
        if self.started_at is None:
            return None
        return max(0.0, self.started_at - self.submitted_at)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for record in self.records:
            out[record.state] = out.get(record.state, 0) + 1
        return out

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "state": self.state,
            "priority": self.priority,
            "n_subruns": len(self.sweep),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_latency": self.queue_latency,
            "counts": self.counts(),
            "error": self.error,
            "subruns": [r.to_dict() for r in self.records],
        }


class JobQueue:
    """Bounded priority queue plus the daemon's job table."""

    def __init__(self, maxsize: int = 64, metrics=None, log=None) -> None:
        if maxsize < 1:
            raise ValueError("queue maxsize must be >= 1")
        self.maxsize = maxsize
        self.jobs: dict[str, QueuedJob] = {}
        self._heap: list[tuple[int, int, str]] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        # EWMA of sweep execution time, fed back by the daemon after
        # each job; sizes the Retry-After hint under backpressure.
        self._ewma_seconds = 1.0
        if log is None:
            from ..obs.log import NULL_LOG

            log = NULL_LOG
        self.log = log
        if metrics is None:
            from ..obs.metrics import NULL_REGISTRY

            metrics = NULL_REGISTRY
        self._depth = metrics.gauge("daemon.queue_depth")
        self._drain_ewma = metrics.gauge("daemon.drain_ewma_seconds")
        self._drain_ewma.set(self._ewma_seconds)
        self._submitted = metrics.counter("daemon.submitted")
        self._deduped = metrics.counter("daemon.deduped")
        self._rejected = metrics.counter("daemon.rejected_full")

    # -- producer side -------------------------------------------------

    def submit(
        self, sweep: list, priority: int = 0, trace: dict | None = None,
    ) -> tuple[QueuedJob, bool]:
        """Enqueue a sweep; returns ``(job, created)``.

        ``created`` is False when the submission deduplicated onto an
        existing queued/running/finished job.  Lower ``priority`` runs
        earlier; equal priorities run in submission order.  ``trace``
        is the submitter's ``{"trace_id", "parent_id"}`` context, kept
        on the job so the executor can parent its spans under the
        client's submit span.
        """
        if not sweep:
            raise ValueError("submission expands to zero jobs")
        job_id = submission_id(sweep)
        with self._lock:
            if self._closed:
                self.log.warning("queue.refused_closed", job=job_id)
                raise QueueClosed("daemon is draining; submission refused")
            existing = self.jobs.get(job_id)
            if existing is not None and existing.state in _DEDUP_STATES:
                self._deduped.inc()
                self.log.info(
                    "queue.deduped", job=job_id, state=existing.state,
                )
                return existing, False
            depth = len(self._heap)
            if depth >= self.maxsize:
                self._rejected.inc()
                retry_after = self.retry_after(depth)
                self.log.warning(
                    "queue.rejected_full", job=job_id, depth=depth,
                    retry_after=retry_after,
                )
                raise QueueFull(depth, retry_after)
            job = QueuedJob(
                id=job_id,
                sweep=list(sweep),
                priority=priority,
                seq=next(self._seq),
                submitted_at=time.time(),
                trace=dict(trace) if trace else None,
            )
            self.jobs[job_id] = job
            heapq.heappush(self._heap, (priority, job.seq, job_id))
            self._depth.set(len(self._heap))
            self._submitted.inc()
            self.log.info(
                "queue.accepted", job=job_id, priority=priority,
                depth=len(self._heap), n_subruns=len(sweep),
                trace=(trace or {}).get("trace_id"),
            )
            self._not_empty.notify()
            return job, True

    # -- consumer side -------------------------------------------------

    def pop(self, timeout: float | None = None) -> QueuedJob | None:
        """Dequeue the highest-priority submission, or None on timeout.

        Entries whose job was cancelled while waiting are skipped.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._not_empty:
            while True:
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    self._depth.set(len(self._heap))
                    job = self.jobs.get(job_id)
                    if job is not None and job.state == JOB_QUEUED:
                        return job
                if self._closed:
                    return None
                if deadline is None:
                    self._not_empty.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._not_empty.wait(
                        remaining
                    ):
                        if not self._heap:
                            return None

    def note_duration(self, seconds: float) -> None:
        """Feed one sweep's execution time into the drain-rate EWMA."""
        with self._lock:
            self._ewma_seconds = (
                0.7 * self._ewma_seconds + 0.3 * max(0.01, seconds)
            )
            self._drain_ewma.set(round(self._ewma_seconds, 6))

    def retry_after(self, depth: int | None = None) -> float:
        """Seconds until the queue has likely drained one slot."""
        if depth is None:
            depth = len(self._heap)
        return max(1.0, round(depth * self._ewma_seconds, 1))

    # -- shared --------------------------------------------------------

    def get(self, job_id: str) -> QueuedJob | None:
        with self._lock:
            return self.jobs.get(job_id)

    def depth(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> list[QueuedJob]:
        """Refuse new submissions and cancel everything still queued.

        Returns the cancelled jobs; the submission currently executing
        (if any) is the scheduler's to finish within its grace period.
        """
        with self._lock:
            self._closed = True
            cancelled = []
            for job in self.jobs.values():
                if job.state == JOB_QUEUED:
                    job.state = JOB_CANCELLED
                    job.finished_at = time.time()
                    cancelled.append(job)
            self._heap.clear()
            self._depth.set(0)
            self._not_empty.notify_all()
            self.log.info("queue.closed", cancelled=len(cancelled))
            return cancelled
