"""Synchronization substrate: ANL-macro style locks, barriers, events."""

from .primitives import SyncError, SyncManager, Wakeup
from .schedule import SyncSchedule, SyncScheduleRecorder

__all__ = [
    "SyncError",
    "SyncManager",
    "SyncSchedule",
    "SyncScheduleRecorder",
    "Wakeup",
]
