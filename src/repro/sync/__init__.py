"""Synchronization substrate: ANL-macro style locks, barriers, events."""

from .primitives import SyncError, SyncManager, Wakeup

__all__ = ["SyncError", "SyncManager", "Wakeup"]
