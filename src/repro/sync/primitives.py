"""ANL-macro style synchronization: locks, barriers, events.

The paper's applications synchronize through the Argonne National
Laboratory macro package: mutual-exclusion locks, global barriers, and
general events (``wait_event`` / ``set_event``) for producer/consumer
interactions.  This module implements those primitives for the
virtual-time executor in :mod:`repro.tango.executor`.

Every primitive is identified by a memory address (the address of the
synchronization variable), so application code simply embeds the address
in a register and executes ``LOCK``/``UNLOCK``/``BARRIER``/``EVWAIT``/
``EVSET`` instructions.

Timing model
------------

Each synchronization operation has two latency components, recorded
separately because the paper's analysis depends on the split (§4.1.2,
footnote 4):

* ``wait`` — cycles spent blocked on *other processors*: lock contention,
  barrier load imbalance, waiting for an unset event.  This component
  arises from imbalance/contention and cannot be hidden by processor
  lookahead.
* ``access`` — the memory latency of touching the (remote) synchronization
  variable itself, one miss penalty.  This is the part a dynamically
  scheduled processor can overlap with prior computation, which is how the
  paper explains PTHOR hiding ~30% of its acquire overhead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


class SyncError(Exception):
    """Raised on protocol violations (unlocking a free lock, ...)."""


@dataclass(slots=True)
class Wakeup:
    """A blocked thread being released.

    Attributes:
        tid: thread being woken.
        grant_time: virtual time at which the primitive became available
            to this thread (release time / last-arrival time / set time).
        wait: cycles the thread spent blocked (``grant_time - request``).
    """

    tid: int
    grant_time: int
    wait: int


@dataclass
class _Lock:
    holder: int | None = None
    waiters: deque = field(default_factory=deque)  # of (tid, request_time)


@dataclass
class _Barrier:
    arrived: list = field(default_factory=list)  # of (tid, arrival_time)
    episodes: int = 0


@dataclass
class _Event:
    is_set: bool = False
    waiters: deque = field(default_factory=deque)  # of (tid, request_time)


class SyncManager:
    """Virtual-time lock/barrier/event state for one multiprocessor run."""

    def __init__(self, n_threads: int) -> None:
        if n_threads < 1:
            raise ValueError("need at least one thread")
        self.n_threads = n_threads
        self._locks: dict[int, _Lock] = {}
        self._barriers: dict[int, _Barrier] = {}
        self._events: dict[int, _Event] = {}

    # -- locks -----------------------------------------------------------

    def acquire_lock(self, addr: int, tid: int, now: int) -> bool:
        """Try to take the lock at ``addr`` at virtual time ``now``.

        Returns True if acquired immediately (free lock); False if the
        caller must block until a :class:`Wakeup` names it.
        """
        lock = self._locks.setdefault(addr, _Lock())
        if lock.holder is None:
            lock.holder = tid
            return True
        if lock.holder == tid:
            raise SyncError(f"thread {tid} re-acquiring lock {addr:#x}")
        lock.waiters.append((tid, now))
        return False

    def release_lock(self, addr: int, tid: int, now: int) -> Wakeup | None:
        """Release the lock; hands it to the oldest waiter, FIFO."""
        lock = self._locks.get(addr)
        if lock is None or lock.holder is None:
            raise SyncError(f"thread {tid} unlocking free lock {addr:#x}")
        if lock.holder != tid:
            raise SyncError(
                f"thread {tid} unlocking lock {addr:#x} held by {lock.holder}"
            )
        if not lock.waiters:
            lock.holder = None
            return None
        next_tid, requested = lock.waiters.popleft()
        lock.holder = next_tid
        grant = max(now, requested)
        return Wakeup(tid=next_tid, grant_time=grant, wait=grant - requested)

    def lock_holder(self, addr: int) -> int | None:
        lock = self._locks.get(addr)
        return lock.holder if lock else None

    # -- barriers --------------------------------------------------------------

    def barrier_arrive(
        self, addr: int, tid: int, now: int
    ) -> list[Wakeup] | None:
        """Arrive at the barrier.

        Returns ``None`` if the caller must block; otherwise (when the
        caller is the last arrival) the full list of wakeups, *including
        one for the caller itself*, all granted at the last arrival time.
        """
        barrier = self._barriers.setdefault(addr, _Barrier())
        for waiting_tid, _ in barrier.arrived:
            if waiting_tid == tid:
                raise SyncError(
                    f"thread {tid} arrived twice at barrier {addr:#x}"
                )
        barrier.arrived.append((tid, now))
        if len(barrier.arrived) < self.n_threads:
            return None
        barrier.episodes += 1
        wakeups = [
            Wakeup(tid=t, grant_time=now, wait=now - arrived)
            for t, arrived in barrier.arrived
        ]
        barrier.arrived.clear()
        return wakeups

    def barrier_episodes(self, addr: int) -> int:
        barrier = self._barriers.get(addr)
        return barrier.episodes if barrier else 0

    # -- events --------------------------------------------------------------

    def event_wait(self, addr: int, tid: int, now: int) -> bool:
        """Wait for the event; True if already set, else the caller blocks."""
        event = self._events.setdefault(addr, _Event())
        if event.is_set:
            return True
        event.waiters.append((tid, now))
        return False

    def event_set(self, addr: int, tid: int, now: int) -> list[Wakeup]:
        """Set the event, releasing every waiter."""
        event = self._events.setdefault(addr, _Event())
        event.is_set = True
        wakeups = [
            Wakeup(tid=t, grant_time=now, wait=now - requested)
            for t, requested in event.waiters
        ]
        event.waiters.clear()
        return wakeups

    def event_clear(self, addr: int) -> None:
        event = self._events.setdefault(addr, _Event())
        if event.waiters:
            raise SyncError(f"clearing event {addr:#x} with waiters blocked")
        event.is_set = False

    def event_is_set(self, addr: int) -> bool:
        event = self._events.get(addr)
        return bool(event and event.is_set)

    # -- diagnostics -----------------------------------------------------------

    def blocked_threads(self) -> dict[int, str]:
        """Map of blocked tid -> human-readable reason (deadlock reports)."""
        blocked: dict[int, str] = {}
        for addr, lock in self._locks.items():
            for tid, _ in lock.waiters:
                blocked[tid] = f"lock {addr:#x} held by {lock.holder}"
        for addr, barrier in self._barriers.items():
            for tid, _ in barrier.arrived:
                blocked[tid] = (
                    f"barrier {addr:#x} "
                    f"({len(barrier.arrived)}/{self.n_threads} arrived)"
                )
        for addr, event in self._events.items():
            for tid, _ in event.waiters:
                blocked[tid] = f"event {addr:#x} (unset)"
        return blocked
