"""The recorded synchronization schedule of a multiprocessor run.

The Tango executor resolves every lock handoff, event grant, and barrier
episode while it generates traces.  A :class:`SyncSchedule` captures that
resolution as *cross-processor wait edges*, keyed by each operation's
``(cpu, ordinal)`` — the ordinal counting that processor's
synchronization-class trace rows (acquires, releases, and barriers share
one per-cpu counter, in program order), which is exactly how the CPU
steppers (:mod:`repro.cpu.requests`) number their sync requests.

The co-simulation engine's *live* sync mode uses the schedule to park an
acquiring processor until the releasing processor actually performs the
release on the co-simulated timeline, and to hold barrier members until
the last member of the same episode arrives — the SynchroTrace-style
replay of dependencies, rather than of baked wait cycles.  Because every
edge points at an operation the host executed *earlier*, replaying the
edges can never deadlock.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SyncSchedule:
    """Cross-processor wait edges recorded during trace generation."""

    #: (cpu, ordinal) of an acquire -> (cpu, ordinal) of the release
    #: (unlock or event-set) that enabled its grant; None when the lock
    #: or event had no prior release (free from initialization).
    acquire_source: dict[tuple[int, int], tuple[int, int] | None] = field(
        default_factory=dict
    )
    #: (cpu, ordinal) of a barrier arrival -> episode index.
    barrier_episode: dict[tuple[int, int], int] = field(
        default_factory=dict
    )
    #: Member count of each barrier episode, indexed by episode.
    episode_sizes: list[int] = field(default_factory=list)

    def summary(self) -> dict:
        edges = sum(1 for s in self.acquire_source.values() if s)
        return {
            "acquires": len(self.acquire_source),
            "edges": edges,
            "barrier_arrivals": len(self.barrier_episode),
            "episodes": len(self.episode_sizes),
        }


class SyncScheduleRecorder:
    """Executor-side hooks that build a :class:`SyncSchedule`.

    The executor calls :meth:`note_release` *before* waking the threads
    a release enables, so every woken acquire sees that release as its
    source; barrier episodes are opened with their member count before
    the members' acquires are finished, so arrivals attach to the right
    episode even when episodes at one address repeat.
    """

    def __init__(self, n_cpus: int) -> None:
        self.schedule = SyncSchedule()
        self._ordinal = [0] * n_cpus
        #: ("lock"|"event", addr) -> (cpu, ordinal) of the last release.
        self._last_release: dict[tuple[str, int], tuple[int, int]] = {}
        #: addr -> [episode index, members still to attach].
        self._open_episodes: dict[int, list[int]] = {}

    def _next_ordinal(self, tid: int) -> int:
        ordinal = self._ordinal[tid]
        self._ordinal[tid] = ordinal + 1
        return ordinal

    def note_release(self, tid: int, kind: str | None, addr: int) -> None:
        """A release-class row was emitted (unlock / event set / event
        clear); ``kind`` is None for operations that enable no acquire
        (event clear) — they consume an ordinal but update no source."""
        ordinal = self._next_ordinal(tid)
        if kind is not None:
            self._last_release[(kind, addr)] = (tid, ordinal)

    def note_acquire(self, tid: int, kind: str, addr: int) -> None:
        """An acquire-class row was emitted (lock / event wait granted)."""
        ordinal = self._next_ordinal(tid)
        self.schedule.acquire_source[(tid, ordinal)] = (
            self._last_release.get((kind, addr))
        )

    def open_episode(self, addr: int, members: int) -> None:
        """A barrier at ``addr`` just completed with ``members`` arrivals
        (about to be granted one by one)."""
        episode = len(self.schedule.episode_sizes)
        self.schedule.episode_sizes.append(members)
        self._open_episodes[addr] = [episode, members]

    def note_barrier(self, tid: int, addr: int) -> None:
        """One member of the open episode at ``addr`` was granted."""
        ordinal = self._next_ordinal(tid)
        entry = self._open_episodes[addr]
        self.schedule.barrier_episode[(tid, ordinal)] = entry[0]
        entry[1] -= 1
        if entry[1] == 0:
            del self._open_episodes[addr]
