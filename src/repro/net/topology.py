"""Interconnect topologies: link graphs with deterministic routing.

A topology is a directed link graph between ``n_nodes`` processor/memory
nodes plus a routing function mapping ``(src, dst)`` to the sequence of
link ids a message traverses.  Links are the unit of contention: the
network model keeps one free-time per link, so two messages crossing the
same link serialize by the link occupancy (finite bandwidth) while
messages on disjoint links proceed independently.

Two concrete topologies:

* :class:`Crossbar` — the uniform single-stage switch.  Every node has
  one injection port and one ejection port; any pair is two hops apart.
  Contention exists only at the ports (a node overlapping many misses
  queues on its own injection link — exactly the bursty-traffic effect
  the paper's fixed-latency assumption ignores).
* :class:`Mesh` — a k-ary 2D mesh with dimension-ordered (X-Y) routing:
  a message first travels along X to the destination column, then along
  Y.  X-Y routing is deterministic and deadlock-free, and distance now
  matters: latency grows with Manhattan distance and shared mesh links
  add queueing between unrelated node pairs.

Routers are laid out row-major on a ``width x height`` grid; when
``n_nodes`` does not fill the rectangle the spare routers still exist
(messages may route through them) but have no node attached.
"""

from __future__ import annotations

import math


class Topology:
    """Base class: a named directed-link graph with routing."""

    kind: str = "?"

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ValueError("topology needs at least one node")
        self.n_nodes = n_nodes
        self.n_links = 0
        self._routes: dict[tuple[int, int], tuple[int, ...]] = {}

    def _new_link(self) -> int:
        link = self.n_links
        self.n_links += 1
        return link

    def route(self, src: int, dst: int) -> tuple[int, ...]:
        """Link ids a message from ``src`` to ``dst`` traverses, in
        order.  ``src == dst`` is the empty route (a node talking to its
        own directory/memory never enters the network)."""
        key = (src, dst)
        cached = self._routes.get(key)
        if cached is None:
            cached = self._build_route(src, dst)
            self._routes[key] = cached
        return cached

    def hops(self, src: int, dst: int) -> int:
        """Number of links between ``src`` and ``dst``."""
        return len(self.route(src, dst))

    def _build_route(self, src: int, dst: int) -> tuple[int, ...]:
        raise NotImplementedError


class Crossbar(Topology):
    """Uniform crossbar: injection port -> switch -> ejection port."""

    kind = "crossbar"

    def __init__(self, n_nodes: int) -> None:
        super().__init__(n_nodes)
        self._inject = [self._new_link() for _ in range(n_nodes)]
        self._eject = [self._new_link() for _ in range(n_nodes)]

    def _build_route(self, src: int, dst: int) -> tuple[int, ...]:
        if src == dst:
            return ()
        return (self._inject[src], self._eject[dst])


class Mesh(Topology):
    """k-ary 2D mesh with dimension-ordered (X-Y) routing."""

    kind = "mesh"

    def __init__(self, n_nodes: int, width: int | None = None) -> None:
        super().__init__(n_nodes)
        if width is None:
            width = max(1, math.isqrt(n_nodes - 1) + 1) if n_nodes > 1 else 1
        if width < 1:
            raise ValueError("mesh width must be positive")
        self.width = width
        self.height = (n_nodes + width - 1) // width
        self._inject = [self._new_link() for _ in range(n_nodes)]
        self._eject = [self._new_link() for _ in range(n_nodes)]
        #: (router, router) -> link id for every directed mesh edge.
        self._edges: dict[tuple[int, int], int] = {}
        for y in range(self.height):
            for x in range(self.width):
                here = y * width + x
                if x + 1 < width:
                    right = here + 1
                    self._edges[(here, right)] = self._new_link()
                    self._edges[(right, here)] = self._new_link()
                if y + 1 < self.height:
                    down = here + width
                    self._edges[(here, down)] = self._new_link()
                    self._edges[(down, here)] = self._new_link()

    def coords(self, node: int) -> tuple[int, int]:
        """Grid position ``(x, y)`` of a node/router."""
        return (node % self.width, node // self.width)

    def _build_route(self, src: int, dst: int) -> tuple[int, ...]:
        if src == dst:
            return ()
        links = [self._inject[src]]
        x, y = self.coords(src)
        dx, dy = self.coords(dst)
        here = src
        while x != dx:  # X first
            step = 1 if dx > x else -1
            nxt = here + step
            links.append(self._edges[(here, nxt)])
            here = nxt
            x += step
        while y != dy:  # then Y
            step = 1 if dy > y else -1
            nxt = here + step * self.width
            links.append(self._edges[(here, nxt)])
            here = nxt
            y += step
        links.append(self._eject[dst])
        return tuple(links)
