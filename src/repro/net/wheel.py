"""Event-wheel scheduler for the interconnect timing model.

A classic timing wheel: pending events live in ``size`` circular buckets
indexed by ``time % size``, with a heap-based overflow list for events
scheduled further than one wheel revolution ahead.  Popping the next
event is O(1) amortised for the dense, short-horizon event populations a
network transaction produces (a handful of hop/ack completions within a
few hundred cycles), which is what keeps the whole interconnect model
fast in pure Python — no per-event heap churn on the hot path.

Events are plain callbacks invoked as ``fn(time)``.  Two events at the
same time fire in scheduling order (FIFO per bucket), so the model is
deterministic.  Callbacks may schedule further events at or after the
time currently being processed; scheduling into the past clamps to the
present, which is how the near-sorted request streams of the
multiprocessor executor (per-thread virtual clocks, batched slices) are
absorbed without a global sort.
"""

from __future__ import annotations

import heapq


class EventWheel:
    """Bucketed future-event list with an overflow heap."""

    __slots__ = ("_size", "_buckets", "_overflow", "_now", "_pending",
                 "_seq")

    def __init__(self, size: int = 1024) -> None:
        if size < 2:
            raise ValueError("wheel needs at least two buckets")
        self._size = size
        self._buckets: list[list] = [[] for _ in range(size)]
        self._overflow: list = []  # heap of (time, seq, fn)
        self._now = 0
        self._pending = 0
        self._seq = 0

    @property
    def now(self) -> int:
        """Time of the most recently processed (or next) event."""
        return self._now

    def __len__(self) -> int:
        return self._pending

    def schedule(self, time: int, fn) -> None:
        """Enqueue ``fn`` to run at ``time``.

        While events are in flight, scheduling into the past clamps to
        the present (time never rewinds mid-run).  With no events
        pending the clock simply rewinds — each network transaction is
        resolved to quiescence, so a later query carrying an earlier
        per-CPU timestamp starts a fresh, correctly-timed run.
        """
        if time < self._now:
            if self._pending == 0:
                self._now = time
            else:
                time = self._now
        self._seq += 1
        self._pending += 1
        if time - self._now < self._size:
            self._buckets[time % self._size].append((time, self._seq, fn))
        else:
            heapq.heappush(self._overflow, (time, self._seq, fn))

    def _refill(self) -> None:
        """Move overflow events now within one revolution into buckets."""
        horizon = self._now + self._size
        overflow = self._overflow
        while overflow and overflow[0][0] < horizon:
            time, seq, fn = heapq.heappop(overflow)
            self._buckets[time % self._size].append((time, seq, fn))

    def run(self) -> int:
        """Process every pending event in time order; returns the final
        time.  The wheel stays usable afterwards (time never rewinds)."""
        while self._pending:
            bucket = self._buckets[self._now % self._size]
            if bucket:
                due = [e for e in bucket if e[0] == self._now]
                if due:
                    if len(due) == len(bucket):
                        bucket.clear()
                    else:
                        bucket[:] = [e for e in bucket if e[0] != self._now]
                    due.sort(key=lambda e: e[1])
                    for _, _, fn in due:
                        # The event stays counted while its callback
                        # runs, so a callback scheduling into the past
                        # clamps to the present (never rewinds mid-run).
                        fn(self._now)
                        self._pending -= 1
                    continue  # callbacks may have scheduled at `now`
            # Nothing due this cycle: advance.  Gaps between network
            # events are a few cycles (hop latencies, occupancies), so
            # stepping beats maintaining a sorted index of times.
            self._now += 1
            if self._overflow and (
                self._overflow[0][0] - self._now < self._size
            ):
                self._refill()
        return self._now
