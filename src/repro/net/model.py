"""Contention-aware network/directory timing model.

`ContentionNetwork` replaces the fixed ``miss_penalty`` constant with a
cycle-approximate transaction model.  Every miss becomes a sequence of
messages over a :class:`~repro.net.topology.Topology` plus a lookup at
the line's :class:`~repro.net.directory.DirectoryModel` home node:

* read miss, line at memory::

      request (cpu -> home) + directory occupancy
      + memory latency + data reply (home -> cpu)

* read miss, line dirty in a remote cache::

      request + directory occupancy + intervention (home -> owner)
      + remote cache lookup + cache-to-cache reply (owner -> cpu)

* write miss / upgrade with sharers::

      request + directory occupancy
      + invalidations fanned out (home -> each sharer)
      + acks collected at the requester; data from memory in parallel
      (an upgrade skips the data transfer — the requester already holds
      the line)

Each message walks its route's links through the event wheel: a link is
busy for ``link_occupancy`` cycles per message (finite bandwidth), so a
burst of overlapped misses from a dynamically scheduled processor queues
at its injection port and at hot directory nodes — the contention the
paper's fixed-latency assumption explicitly sets aside.

The model is *queried* synchronously: `read_miss`/`write_miss` return
the full miss latency immediately, mutating link/directory free-times so
later misses observe the congestion earlier ones created.  Message
timestamps come from per-CPU virtual clocks, which are only near-sorted
globally; the wheel clamps stragglers to the present, keeping the model
deterministic for a fixed arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass

from .directory import DirectoryModel
from .topology import Crossbar, Mesh, Topology
from .wheel import EventWheel


@dataclass(frozen=True)
class NetworkConfig:
    """Timing parameters for the interconnect/directory model."""

    hop_latency: int = 2  # cycles for a message to traverse one link
    link_occupancy: int = 2  # cycles a control message keeps a link busy
    #: cycles a *data* message (a full cache line of flits) keeps each
    #: link busy; None derives it as link_occupancy x line-size flits.
    #: This is what makes overlapped misses contend: every reply ejects
    #: at the requester's port, so a burst of outstanding misses
    #: serializes there even when their homes differ.
    data_occupancy: int | None = None
    dir_occupancy: int = 4  # directory controller lookup time
    memory_latency: int = 30  # DRAM access at the home node
    remote_cache_latency: int = 6  # remote cache lookup (intervention)
    mesh_width: int | None = None  # mesh columns; None = near-square
    wheel_size: int = 1024

    def key(self) -> str:
        """Short stable string for cache keys / bench labels."""
        return (
            f"h{self.hop_latency}o{self.link_occupancy}"
            f"d{self.dir_occupancy}m{self.memory_latency}"
            f"r{self.remote_cache_latency}"
        )


class ContentionNetwork:
    """Topology + directory timing with per-link FIFO queueing."""

    def __init__(
        self,
        topology: Topology,
        line_size: int,
        config: NetworkConfig | None = None,
    ) -> None:
        self.topology = topology
        self.line_size = line_size
        self.config = config or NetworkConfig()
        self.directory = DirectoryModel(
            topology.n_nodes, self.config.dir_occupancy
        )
        if self.config.data_occupancy is not None:
            self._data_occ = self.config.data_occupancy
        else:
            # A data message carries the whole line as 4-byte flits.
            self._data_occ = self.config.link_occupancy * max(
                1, line_size // 4
            )
        self.wheel = EventWheel(self.config.wheel_size)
        self._link_free = [0] * topology.n_links
        #: observed miss latencies, in query order
        self.latencies: list[int] = []
        # Per-link queue-depth samples: every hop observes how many
        # occupancy slots are already queued ahead of it on its link.
        n_links = topology.n_links
        self._link_samples = [0] * n_links
        self._link_depth_sum = [0] * n_links
        self._link_depth_max = [0] * n_links
        #: optional repro.obs.Probe for trace events (None = untraced)
        self._probe = None

    @property
    def kind(self) -> str:
        return self.topology.kind

    def attach_probe(self, probe) -> None:
        """Emit per-transaction spans and per-hop queue-wait events into
        ``probe``'s tracer (budgeted); metrics flow via :meth:`publish`."""
        self._probe = probe if (
            probe is not None and probe.tracer is not None
        ) else None

    def reset(self) -> None:
        """Fresh timing state and stats (used between per-model runs)."""
        self.wheel = EventWheel(self.config.wheel_size)
        n_links = self.topology.n_links
        self._link_free = [0] * n_links
        self._link_samples = [0] * n_links
        self._link_depth_sum = [0] * n_links
        self._link_depth_max = [0] * n_links
        self.directory.reset_timing()
        self.latencies = []

    # -- message timing ------------------------------------------------

    def _chain(
        self, src: int, dst: int, start: int, on_arrive, data: bool = False
    ) -> None:
        """Schedule one message's hop chain on the wheel (no run).

        Each hop is an event: the message departs a link when both it
        has arrived and the link is free, occupies the link for its
        occupancy — ``link_occupancy`` for control messages, the
        line-sized ``data_occupancy`` for data replies — and arrives
        ``hop_latency`` later.  ``on_arrive(time)`` fires at the
        destination.  Scheduling several chains before running lets
        concurrent messages (data reply racing invalidation/ack
        fan-out) acquire shared links in timestamp order, not call
        order.
        """
        route = self.topology.route(src, dst)
        if not route:
            on_arrive(start)
            return
        cfg = self.config
        link_free = self._link_free
        samples = self._link_samples
        depth_sum = self._link_depth_sum
        depth_max = self._link_depth_max
        occupancy = self._data_occ if data else cfg.link_occupancy

        def hop(i: int, t: int) -> None:
            link = route[i]
            free = link_free[link]
            if t >= free:
                depart = t
                depth = 0
            else:
                depart = free
                # Queue depth in messages: how many occupancy slots are
                # already committed ahead of this hop on the link.
                depth = (free - t + occupancy - 1) // occupancy
                depth_sum[link] += depth
                if depth > depth_max[link]:
                    depth_max[link] = depth
            samples[link] += 1
            link_free[link] = depart + occupancy
            arrive = depart + cfg.hop_latency
            probe = self._probe
            if probe is not None and probe.hop_budget > 0:
                probe.hop_budget -= 1
                pid, tid = probe.tracer.track("network", f"link{link}")
                probe.tracer.instant(
                    "hop", "net", pid, tid, depart,
                    args={"link": link, "queue_depth": depth},
                )
            if i + 1 < len(route):
                self.wheel.schedule(arrive, lambda now: hop(i + 1, now))
            else:
                on_arrive(arrive)

        self.wheel.schedule(start, lambda now: hop(0, now))

    def _send(
        self, src: int, dst: int, start: int, data: bool = False
    ) -> int:
        """Deliver one message synchronously; returns its arrival."""
        arrival = [start]

        def landed(t: int) -> None:
            arrival[0] = t

        self._chain(src, dst, start, landed, data)
        self.wheel.run()
        return arrival[0]

    def _record(
        self, start: int, done: int, cpu: int = -1, kind: str = "miss"
    ) -> int:
        latency = done - start
        if latency < 1:
            latency = 1
        self.latencies.append(latency)
        probe = self._probe
        if probe is not None and probe.span_budget > 0:
            probe.span_budget -= 1
            # Overlapped misses from one cpu need separate lanes to keep
            # the track's spans properly nested.
            pid, tid = probe.span_track(
                "network", f"cpu{cpu}", start, start + latency
            )
            probe.tracer.complete(
                kind, "net", pid, tid, start, latency,
                args={"cpu": cpu},
            )
        return latency

    # -- coherence transactions ----------------------------------------

    def line_of(self, addr: int) -> int:
        return addr // self.line_size

    def read_miss(
        self, cpu: int, line: int, owner: int | None, now: int
    ) -> int:
        """Latency of a read miss on ``line`` issued by ``cpu``.

        ``owner`` is the node holding the line dirty (intervention +
        cache-to-cache reply) or None when memory at the home supplies
        the data.
        """
        home = self.directory.home(line)
        t = self._send(cpu, home, now)
        t = self.directory.serve(home, t)
        if owner is not None and owner != cpu:
            t = self._send(home, owner, t)
            t += self.config.remote_cache_latency
            t = self._send(owner, cpu, t, data=True)
        else:
            t += self.config.memory_latency
            t = self._send(home, cpu, t, data=True)
        return self._record(now, t, cpu, "read_miss")

    def write_miss(
        self,
        cpu: int,
        line: int,
        sharers: tuple[int, ...] = (),
        now: int = 0,
        upgrade: bool = False,
    ) -> int:
        """Latency of a write miss / ownership upgrade on ``line``.

        Invalidations fan out from the home node to every sharer; the
        requester collects the acks.  Data comes from memory at the
        home in parallel unless this is an ``upgrade`` (the requester
        already holds the line shared, so only acks gate the write).
        """
        home = self.directory.home(line)
        t = self.directory.serve(home, self._send(cpu, home, now))
        done = [t]

        def extend(arrive: int) -> None:
            if arrive > done[0]:
                done[0] = arrive

        if not upgrade:
            self._chain(
                home, cpu, t + self.config.memory_latency, extend, data=True
            )
        for sharer in sharers:
            if sharer == cpu:
                continue

            def invalidated(arrive: int, s: int = sharer) -> None:
                ack_start = arrive + self.config.remote_cache_latency
                self._chain(s, cpu, ack_start, extend)

            self._chain(home, sharer, t, invalidated)
        self.wheel.run()
        return self._record(now, done[0], cpu, "write_miss")

    def replay_miss(
        self, cpu: int, addr: int, is_write: bool, now: int
    ) -> int:
        """Latency of a miss re-timed at CPU-simulation time.

        The CPU models replay baked traces where sharer/owner identity
        is no longer known, so this approximates every miss as a
        memory-sourced fetch: request + directory + memory + reply.
        Queueing is still real — overlapped misses from one node
        serialize on its injection link and at hot home nodes.
        """
        line = addr // self.line_size
        home = self.directory.home(line)
        t = self._send(cpu, home, now)
        t = self.directory.serve(home, t)
        t += self.config.memory_latency
        t = self._send(home, cpu, t, data=True)
        return self._record(
            now, t, cpu, "replay_write" if is_write else "replay_read"
        )

    # -- statistics ----------------------------------------------------

    def summary(self) -> dict:
        """Mean/p50/p99/max of observed miss latencies."""
        lats = sorted(self.latencies)
        n = len(lats)
        if not n:
            return {"count": 0, "mean": 0.0, "p50": 0, "p99": 0, "max": 0}
        return {
            "count": n,
            "mean": sum(lats) / n,
            "p50": lats[n // 2],
            "p99": lats[min(n - 1, (n * 99) // 100)],
            "max": lats[-1],
        }

    def link_summary(self) -> dict:
        """Aggregate per-link queue-depth statistics.

        ``mean_depth`` averages the queue depth seen by every hop (most
        hops see an idle link, so small means still indicate real
        hot-spots); ``busiest_link`` is the link with the deepest
        observed queue.
        """
        samples = sum(self._link_samples)
        depth_sum = sum(self._link_depth_sum)
        max_depth = 0
        busiest = -1
        for link, depth in enumerate(self._link_depth_max):
            if depth > max_depth:
                max_depth = depth
                busiest = link
        return {
            "samples": samples,
            "mean_depth": depth_sum / samples if samples else 0.0,
            "max_depth": max_depth,
            "busiest_link": busiest,
        }

    def publish(self, metrics, prefix: str = "net") -> None:
        """Push miss-latency and link-queue stats into a metrics registry.

        This is the surfacing path for the per-link queue-depth samples
        accumulated in :meth:`_chain` — the registry (and the
        ``contention`` report) are the only consumers.
        """
        if not metrics.enabled:
            return
        from ..obs.metrics import LATENCY_BOUNDS

        hist = metrics.histogram(f"{prefix}.miss_latency", LATENCY_BOUNDS)
        for lat in self.latencies:
            hist.observe(lat)
        links = self.link_summary()
        metrics.counter(f"{prefix}.link_hops").inc(links["samples"])
        metrics.gauge(f"{prefix}.link_queue_mean").set(links["mean_depth"])
        metrics.gauge(f"{prefix}.link_queue_max").set(links["max_depth"])
        metrics.gauge(f"{prefix}.busiest_link").set(links["busiest_link"])
        directory = self.directory.summary()
        metrics.counter(f"{prefix}.dir_serves").inc(directory["serves"])
        metrics.gauge(f"{prefix}.dir_wait_mean").set(directory["mean_wait"])
        metrics.gauge(f"{prefix}.dir_wait_max").set(directory["max_wait"])
        metrics.gauge(f"{prefix}.dir_hottest_node").set(
            directory["hottest_node"]
        )
        for link in range(self.topology.n_links):
            if self._link_depth_max[link]:
                metrics.gauge(
                    f"{prefix}.link{link}.queue_max"
                ).set(self._link_depth_max[link])


NETWORK_KINDS = ("ideal", "crossbar", "mesh")


def build_network(
    kind: str,
    n_nodes: int,
    line_size: int,
    config: NetworkConfig | None = None,
) -> ContentionNetwork | None:
    """Construct the network backend named by ``kind``.

    ``"ideal"`` returns None — the fixed-``miss_penalty`` fast path in
    `CoherentMemorySystem`, byte-identical to the pre-network simulator.
    """
    if kind == "ideal":
        return None
    config = config or NetworkConfig()
    if kind == "crossbar":
        topo: Topology = Crossbar(n_nodes)
    elif kind == "mesh":
        topo = Mesh(n_nodes, config.mesh_width)
    else:
        raise ValueError(
            f"unknown network kind {kind!r}; expected one of "
            f"{', '.join(NETWORK_KINDS)}"
        )
    return ContentionNetwork(topo, line_size, config)
