"""Directory home-node timing: per-line serialization points.

Every cache line has a *home node* (``line % n_nodes``) whose directory
controller is the serialization point for coherence on that line.  The
controller handles one request at a time: each request occupies it for
``occupancy`` cycles, and a request arriving while the controller is
busy queues behind the earlier one.  This is where racing upgrades to
the same line become visible as latency — the second writer's request
sits in the home node's queue until the first finishes.

The model is deliberately coarse (one free-time per node, not per line):
it captures directory *occupancy* and *queueing*, the two terms the
paper's fixed miss penalty abstracts away, without simulating MSHRs or
transient directory states.
"""

from __future__ import annotations


class DirectoryModel:
    """Per-node directory controllers with FIFO occupancy."""

    def __init__(self, n_nodes: int, occupancy: int) -> None:
        if n_nodes < 1:
            raise ValueError("directory needs at least one node")
        if occupancy < 0:
            raise ValueError("directory occupancy must be >= 0")
        self.n_nodes = n_nodes
        self.occupancy = occupancy
        self._free = [0] * n_nodes  # controller free-time per node
        # Occupancy statistics: per-node serve counts and queue waits
        # (cycles a request sat behind earlier ones at its home node).
        self._serves = [0] * n_nodes
        self._wait_sum = [0] * n_nodes
        self._wait_max = 0

    def home(self, line: int) -> int:
        """Home node of a cache line (address-interleaved)."""
        return line % self.n_nodes

    def serve(self, node: int, arrival: int) -> int:
        """Admit a request arriving at ``arrival``; returns the time the
        directory has looked it up and begins acting on it.  A busy
        controller queues the request FIFO behind the current one."""
        start = self._free[node]
        if start < arrival:
            start = arrival
        else:
            wait = start - arrival
            self._wait_sum[node] += wait
            if wait > self._wait_max:
                self._wait_max = wait
        self._serves[node] += 1
        done = start + self.occupancy
        self._free[node] = done
        return done

    def summary(self) -> dict:
        """Aggregate occupancy statistics: how contended the directory
        controllers were, and which home node was hottest."""
        serves = sum(self._serves)
        waits = sum(self._wait_sum)
        hottest = -1
        hottest_serves = 0
        for node, count in enumerate(self._serves):
            if count > hottest_serves:
                hottest_serves = count
                hottest = node
        return {
            "serves": serves,
            "mean_wait": waits / serves if serves else 0.0,
            "max_wait": self._wait_max,
            "hottest_node": hottest,
            "hottest_serves": hottest_serves,
        }

    def reset_timing(self) -> None:
        """Forget queueing state (used between per-model replays)."""
        self._free = [0] * self.n_nodes
        self._serves = [0] * self.n_nodes
        self._wait_sum = [0] * self.n_nodes
        self._wait_max = 0
