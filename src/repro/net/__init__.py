"""Interconnect & directory timing subsystem.

Replaces the paper's fixed 50-cycle miss penalty with a cycle-
approximate, contention-aware model: messages route over a configurable
topology (crossbar or k-ary 2D mesh) with per-link FIFO queueing and
finite bandwidth, and per-line directory home nodes serialize coherence
requests.  ``build_network("ideal", ...)`` returns None — the original
constant-penalty fast path, kept as the default backend.
"""

from .directory import DirectoryModel
from .model import (
    NETWORK_KINDS,
    ContentionNetwork,
    NetworkConfig,
    build_network,
)
from .topology import Crossbar, Mesh, Topology
from .wheel import EventWheel

__all__ = [
    "NETWORK_KINDS",
    "ContentionNetwork",
    "Crossbar",
    "DirectoryModel",
    "EventWheel",
    "Mesh",
    "NetworkConfig",
    "Topology",
    "build_network",
]
