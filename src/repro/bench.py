"""Performance-regression tracking over ``BENCH_core.json``.

The perf smoke test (``benchmarks/test_perf_smoke.py``) rewrites
``BENCH_core.json`` on every run with the machine's current throughput
numbers.  This module turns those snapshots into a trajectory:

* :func:`append_history` appends the current payload — stamped with a
  UTC timestamp and the git revision — as one JSONL line to a history
  file, so successive runs accumulate a comparable series;
* :func:`check` compares the current payload against a committed
  *baseline* payload metric-by-metric, each with its own tolerance, and
  reports which ratios regressed.

Only **ratio** metrics are checked (speedups and overheads): they are
computed from interleaved samples inside the smoke test, so machine
speed cancels out and a committed baseline stays meaningful across
hosts.  Absolute throughput numbers (instructions/s etc.) are recorded
in the history but never gated — they measure the machine, not the
code.

CLI: ``python -m repro bench`` appends to the history;
``python -m repro bench --check [--baseline PATH]`` additionally
compares and exits 1 on any regression.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path

#: Default locations, relative to the repository root / CWD.
DEFAULT_BENCH = Path("BENCH_core.json")
DEFAULT_HISTORY = Path("BENCH_history.jsonl")

#: Gated metrics: ``name -> (direction, tolerance)``.  ``higher`` means
#: the metric is a speedup (current may fall at most ``tol`` fraction
#: below baseline); ``lower`` means it is an overhead ratio (current
#: may rise at most ``tol`` fraction above baseline).  Tolerances are
#: wide because even interleaved ratios carry CI-runner noise — they
#: catch "the fast path stopped being fast", not single-digit drift.
TOLERANCES: dict[str, tuple[str, float]] = {
    "compiled_speedup": ("higher", 0.35),
    "static_speedup": ("higher", 0.35),
    "ds_event_speedup": ("higher", 0.35),
    "daemon_warm_speedup": ("higher", 0.7),
    "obs_disabled_overhead": ("lower", 0.05),
    "obs_disabled_overhead_ref": ("lower", 0.05),
    "obs_enabled_overhead": ("lower", 0.30),
}


class BenchError(ValueError):
    """A bench file is missing or malformed."""


@dataclass
class Delta:
    """One gated metric's baseline-vs-current comparison."""

    metric: str
    direction: str         # "higher" or "lower" is better
    tolerance: float
    baseline: float
    current: float

    @property
    def bound(self) -> float:
        """The worst acceptable current value for this metric."""
        if self.direction == "higher":
            return self.baseline * (1.0 - self.tolerance)
        return self.baseline * (1.0 + self.tolerance)

    @property
    def ok(self) -> bool:
        if self.direction == "higher":
            return self.current >= self.bound
        return self.current <= self.bound

    def format(self) -> str:
        arrow = ">=" if self.direction == "higher" else "<="
        verdict = "ok" if self.ok else "REGRESSED"
        return (
            f"  {self.metric:<24} baseline {self.baseline:>8.3f}  "
            f"current {self.current:>8.3f}  "
            f"(need {arrow} {self.bound:.3f})  {verdict}"
        )


def load_payload(path: Path | str) -> dict:
    """Read one bench payload (a ``BENCH_core.json``-style dict)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise BenchError(
            f"no bench payload at {path} — run the perf smoke first: "
            "PYTHONPATH=src python -m pytest benchmarks/test_perf_smoke.py"
        ) from None
    except (json.JSONDecodeError, OSError) as exc:
        raise BenchError(f"unreadable bench payload {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise BenchError(f"bench payload {path} is not a JSON object")
    return payload


def _git_revision() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def append_history(
    payload: dict,
    history_path: Path | str = DEFAULT_HISTORY,
    *,
    now: float | None = None,
) -> dict:
    """Append one timestamped run to the JSONL history; returns the entry."""
    ts = time.time() if now is None else now
    entry = {
        "recorded_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(ts)
        ),
        "revision": _git_revision(),
        "payload": payload,
    }
    history_path = Path(history_path)
    history_path.parent.mkdir(parents=True, exist_ok=True)
    with history_path.open("a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(history_path: Path | str = DEFAULT_HISTORY) -> list[dict]:
    """All recorded history entries, oldest first (corrupt lines skipped)."""
    path = Path(history_path)
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict) and isinstance(
            entry.get("payload"), dict
        ):
            entries.append(entry)
    return entries


def check(
    current: dict,
    baseline: dict,
    tolerances: dict[str, tuple[str, float]] | None = None,
) -> list[Delta]:
    """Compare gated ratio metrics; returns one :class:`Delta` each.

    Metrics absent from either payload are skipped (a new metric has no
    baseline yet; an old baseline may predate a metric) — gating only
    what both sides measured keeps ``--check`` usable across PRs that
    add instrumentation.
    """
    deltas = []
    for metric, (direction, tol) in sorted(
        (tolerances or TOLERANCES).items()
    ):
        base = baseline.get(metric)
        cur = current.get(metric)
        if not isinstance(base, (int, float)) or not isinstance(
            cur, (int, float)
        ):
            continue
        deltas.append(Delta(
            metric=metric, direction=direction, tolerance=tol,
            baseline=float(base), current=float(cur),
        ))
    return deltas


def format_check(deltas: list[Delta]) -> str:
    lines = ["perf check (ratio metrics, interleaved-sample invariant):"]
    lines.extend(delta.format() for delta in deltas)
    failed = [d for d in deltas if not d.ok]
    if failed:
        lines.append(
            f"FAILED: {len(failed)} metric(s) regressed past tolerance: "
            + ", ".join(d.metric for d in failed)
        )
    else:
        lines.append(f"OK: {len(deltas)} metric(s) within tolerance")
    return "\n".join(lines)
