"""High-level co-simulation entry points.

:func:`build_node` maps one (trace, processor-config) pair onto the
cheapest stepper handle that preserves exact timing for the requested
mode; :func:`run_cosim` co-simulates a whole :class:`CosimRun` (every
processor of the application on one shared fabric); :func:`replay_solo`
routes a *single* processor through the same engine and a fresh fabric —
the ``contention`` experiment's replay mode, now sharing the cosim code
path instead of duplicating it.
"""

from __future__ import annotations

from ..consistency import get_model
from ..cpu import (
    DSConfig,
    DSProcessor,
    MultiContextConfig,
    MultiContextProcessor,
    ProcessorConfig,
    base_stepper,
    simulate,
    ss_stepper,
    ssbr_stepper,
)
from ..net import build_network
from .engine import (
    CosimEngine,
    CosimNode,
    CosimResult,
    GenStepper,
    ImmediateStepper,
    ThreadStepper,
)


def build_node(
    trace,
    config: ProcessorConfig,
    has_network: bool = False,
    live_sync: bool = False,
    probe=None,
) -> CosimNode:
    """Wrap one processor model around ``trace`` as a cosim node.

    Engine selection preserves byte-identical timing in every mode:

    * ``reference`` (or live sync, which only the scalar steppers
      support) — the model's generator behind a :class:`GenStepper`;
    * ``fast`` with a shared network — the vectorized/event-driven
      engine in a :class:`ThreadStepper`, whose ``replay_miss`` call
      sequence is guaranteed identical to the reference stepper's;
    * ``fast`` without a network (ideal fabric, replayed sync) — the
      standalone result via :class:`ImmediateStepper`, since nothing
      couples the processors.
    """
    kind = config.kind.lower()
    label = config.label()
    fast = config.engine.lower() == "fast"
    # Live sync needs the scalar steppers: the vectorized/event-driven
    # fast engines cannot suspend at a sync operation.
    if fast and not live_sync:
        if not has_network:
            return CosimNode(
                ImmediateStepper(simulate(trace, config, probe=probe)),
                label=label, net_cpu=trace.cpu,
            )
        return CosimNode(
            ThreadStepper(
                lambda network: simulate(
                    trace, config, network=network, probe=probe
                )
            ),
            label=label, net_cpu=trace.cpu,
        )
    clamp = has_network
    if kind == "base":
        gen = base_stepper(trace, label=label, clamp_time=clamp)
    elif kind == "ssbr":
        gen = ssbr_stepper(
            trace, get_model(config.model), label=label,
            clamp_time=clamp, probe=probe,
        )
    elif kind == "ss":
        gen = ss_stepper(
            trace, get_model(config.model), label=label,
            clamp_time=clamp, probe=probe,
        )
    elif kind == "ds":
        ds_kwargs = dict(config.ds)
        ds_kwargs.pop("network", None)  # the engine serves the fabric
        ds_config = DSConfig(
            window=config.window,
            issue_width=config.issue_width,
            perfect_branch_prediction=config.perfect_bp,
            ignore_data_dependences=config.ignore_deps,
            **ds_kwargs,
        )
        gen = DSProcessor(
            trace, get_model(config.model), ds_config, probe=probe
        ).steps(label=label, live_sync=live_sync)
        # A parked DS stepper cannot drain its store buffer, so the
        # engine must answer PENDING instead of suspending it.
        return CosimNode(
            GenStepper(gen), label=label, net_cpu=trace.cpu,
            parkable=not live_sync,
        )
    else:
        raise ValueError(f"unknown processor kind {config.kind!r}")
    return CosimNode(GenStepper(gen), label=label, net_cpu=trace.cpu)


def _build_mc_nodes(traces, contexts: int, switch_penalty: int):
    """Group the per-cpu traces into multicontext processors."""
    if contexts < 1:
        raise ValueError("need at least one context per processor")
    mc_config = MultiContextConfig(switch_penalty=switch_penalty)
    nodes = []
    for node_idx, start in enumerate(range(0, len(traces), contexts)):
        group = traces[start:start + contexts]
        label = f"MC-k{contexts}"
        gen = MultiContextProcessor(group, mc_config).steps(label=label)
        nodes.append(
            CosimNode(GenStepper(gen), label=label, net_cpu=node_idx)
        )
    return nodes


def run_cosim(
    crun,
    config: ProcessorConfig,
    network_kind: str = "ideal",
    line_size: int = 4,
    net_config=None,
    sync_mode: str = "replay",
    contexts: int = 1,
    switch_penalty: int = 4,
    probe=None,
) -> CosimResult:
    """Co-simulate every processor of ``crun`` on one shared fabric.

    ``crun`` is a :class:`repro.experiments.runner.CosimRun` (all
    per-cpu traces plus the recorded sync schedule).  ``config.kind``
    may additionally be ``"mc"``: the traces are then grouped
    ``contexts`` per physical node into multicontext processors (which
    only support replayed sync — a parked context would block its
    siblings on the shared request stream).
    """
    kind = config.kind.lower()
    live = sync_mode == "live"
    if kind == "mc":
        if live:
            raise ValueError("multicontext nodes require --sync replay")
        nodes = _build_mc_nodes(crun.traces, contexts, switch_penalty)
    else:
        nodes = [
            build_node(
                trace, config,
                has_network=network_kind != "ideal",
                live_sync=live, probe=probe,
            )
            for trace in crun.traces
        ]
    network = build_network(network_kind, len(nodes), line_size, net_config)
    if network is not None and probe is not None:
        network.attach_probe(probe)
    engine = CosimEngine(
        nodes, network=network, schedule=crun.schedule,
        sync_mode=sync_mode, probe=probe,
    )
    result = engine.run()
    result.network_kind = network_kind
    if probe is not None and probe.enabled:
        _publish(probe, result, network)
    return result


def _publish(probe, result: CosimResult, network) -> None:
    """Push per-processor and fabric statistics into the probe."""
    metrics = probe.metrics
    for idx, breakdown in enumerate(result.breakdowns):
        prefix = f"cosim.cpu{idx}"
        metrics.counter(f"{prefix}.cycles").inc(breakdown.total)
        miss = result.node_miss_summary(idx)
        metrics.counter(f"{prefix}.misses").inc(miss["count"])
        metrics.gauge(f"{prefix}.miss_mean").set(miss["mean"])
        metrics.gauge(f"{prefix}.miss_p99").set(miss["p99"])
    if network is not None:
        network.publish(metrics, prefix="cosim.net")


def replay_solo(
    trace,
    config: ProcessorConfig,
    network_kind: str,
    n_nodes: int,
    line_size: int,
    net_config=None,
    probe=None,
):
    """One processor alone on a fresh fabric, via the cosim engine.

    This is the ``contention`` experiment's replay mode: the same
    engine/network path as :func:`run_cosim`, but with a single node, so
    queueing reflects only this processor's own overlapped misses.
    Returns ``(breakdown, network)`` — ``network`` is None under
    ``"ideal"``.
    """
    network = build_network(network_kind, n_nodes, line_size, net_config)
    node = build_node(
        trace, config, has_network=network is not None, probe=probe
    )
    engine = CosimEngine([node], network=network, probe=probe)
    result = engine.run()
    return result.breakdowns[0], network
