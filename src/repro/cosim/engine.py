"""The co-simulation engine: one event wheel over all processors.

Every processor model is wrapped in a *stepper handle* exposing
``start() -> request | None`` and ``send(answer) -> request | None``
(``None`` means the model ran to completion; its breakdown is then in
``.result``).  The :class:`CosimEngine` keeps at most one outstanding
request per processor on a min-heap keyed by request time and serves
them in global timestamp order:

* :class:`~repro.cpu.requests.MemRequest` — served on the **shared**
  :class:`repro.net.ContentionNetwork`, so this miss queues behind every
  earlier miss from *any* processor on the same links and directory
  controllers; the resulting latency is fed back into the issuing
  model's clock via ``send()``.
* :class:`~repro.cpu.requests.SyncRequest` — in ``replay`` mode,
  answered with the trace's baked wait (the host's timing).  In ``live``
  mode, resolved against the recorded
  :class:`~repro.sync.SyncSchedule`: an acquire parks until the release
  that enabled it in the host run has *performed on the co-simulated
  timeline*, and a barrier member parks until the last member of its
  episode arrives.
* :class:`~repro.cpu.requests.ReleaseNotify` — records the release's
  co-simulated perform time and resumes any parked acquirers.

Three stepper handles cover the engine choices:

* :class:`GenStepper` — a reference-model generator (the scalar timing
  loops of :mod:`repro.cpu`), advanced with ``send()`` directly.
* :class:`ThreadStepper` — a *fast* engine (vectorized static models,
  event-driven DS) running in a worker thread against a proxy network
  whose ``replay_miss`` blocks on a rendezvous channel.  Exactly one
  thread runs at any moment (the coordinator blocks while the worker
  runs and vice versa), and the fast engines guarantee the same
  ``replay_miss`` call sequence as the reference models, so results are
  byte-identical to :class:`GenStepper` co-simulation — just faster.
* :class:`ImmediateStepper` — a completed standalone run (used when the
  network is ideal and sync is replayed, where co-simulation is
  definitionally equivalent to per-processor simulation).

Request timestamps are only approximately causal across processors — a
model may reveal its next request after the engine has served a
slightly-later one from another processor (the same conservatism the
post-hoc ``contention`` replay has).  Service order is deterministic:
the heap breaks timestamp ties by processor index, and nothing depends
on wall-clock or thread scheduling.
"""

from __future__ import annotations

import heapq
import queue
import threading
from dataclasses import dataclass, field

from ..cpu.requests import MemRequest, ReleaseNotify, SyncRequest

#: Engine answer to a live SyncRequest whose enabling release has not
#: yet performed: "keep cycling and ask again" (only sent to handles
#: with ``parkable=False``; parkable models are suspended instead).
PENDING = -1


class GenStepper:
    """Handle over a reference-model stepper generator."""

    __slots__ = ("_gen", "result")

    def __init__(self, gen) -> None:
        self._gen = gen
        self.result = None

    def start(self):
        try:
            return next(self._gen)
        except StopIteration as stop:
            self.result = stop.value
            return None

    def send(self, answer):
        try:
            return self._gen.send(answer)
        except StopIteration as stop:
            self.result = stop.value
            return None


class ImmediateStepper:
    """Handle over an already-finished standalone run (no requests)."""

    __slots__ = ("result",)

    def __init__(self, result) -> None:
        self.result = result

    def start(self):
        return None

    def send(self, answer):  # pragma: no cover - never reached
        raise RuntimeError("ImmediateStepper issues no requests")


class _ChannelNetwork:
    """Network facade handed to a fast engine inside a ThreadStepper.

    Every ``replay_miss`` becomes a :class:`MemRequest` posted to the
    coordinator; the worker thread blocks until the co-simulation engine
    answers with the shared fabric's actual latency.
    """

    __slots__ = ("_stepper",)

    def __init__(self, stepper: "ThreadStepper") -> None:
        self._stepper = stepper

    def replay_miss(self, cpu: int, addr: int, is_write: bool,
                    now: int) -> int:
        return self._stepper._rpc(MemRequest(addr, is_write, now, 0))


class ThreadStepper:
    """Handle running a fast engine in a worker thread.

    ``fn`` is called with the proxy network and must return the model's
    breakdown; its stateful ``network.replay_miss`` calls rendezvous
    with the coordinator one at a time, so the handle presents the same
    start/send protocol as a generator.  Only meaningful with a real
    shared network — the proxy cannot answer from baked stalls.
    """

    __slots__ = ("_req_q", "_ans_q", "_thread", "result")

    def __init__(self, fn) -> None:
        self._req_q: queue.Queue = queue.Queue(1)
        self._ans_q: queue.Queue = queue.Queue(1)
        self.result = None
        self._thread = threading.Thread(
            target=self._main, args=(fn,), daemon=True
        )

    def _main(self, fn) -> None:
        try:
            result = fn(_ChannelNetwork(self))
        except BaseException as exc:  # surfaced in the coordinator
            self._req_q.put(("error", exc))
            return
        self._req_q.put(("done", result))

    def _rpc(self, request: MemRequest) -> int:
        self._req_q.put(("request", request))
        return self._ans_q.get()

    def _pump(self):
        kind, payload = self._req_q.get()
        if kind == "request":
            return payload
        self._thread.join()
        if kind == "error":
            raise payload
        self.result = payload
        return None

    def start(self):
        self._thread.start()
        return self._pump()

    def send(self, answer):
        self._ans_q.put(answer)
        return self._pump()


@dataclass
class CosimNode:
    """One processor (or multicontext processor) on the fabric."""

    handle: object
    label: str = ""
    #: Source node id on the fabric (the trace's cpu for single-context
    #: nodes, the physical node index for multicontext groups).
    net_cpu: int = 0
    #: Whether the handle may be suspended indefinitely at a live sync
    #: request.  False for the DS models: their store buffer must keep
    #: draining while an acquire waits (a parked DS stepper could hold
    #: back the very release another parked stepper waits on), so they
    #: are answered :data:`PENDING` and re-query instead.
    parkable: bool = True


def _percentile(ordered: list, fraction: float):
    if not ordered:
        return 0
    idx = int(fraction * (len(ordered) - 1) + 0.5)
    return ordered[idx]


@dataclass
class CosimResult:
    """Per-processor outcomes of one co-simulated run."""

    #: Per-node :class:`~repro.cpu.results.ExecutionBreakdown`.
    breakdowns: list = field(default_factory=list)
    #: Per-node list of served miss latencies, in service order.
    miss_latencies: list = field(default_factory=list)
    #: Per-node sync waits charged (live mode only; empty in replay).
    sync_waits: list = field(default_factory=list)
    network_kind: str = "ideal"
    sync_mode: str = "replay"
    #: ``ContentionNetwork.summary()`` of the shared fabric (None: ideal).
    net_summary: dict | None = None
    #: ``ContentionNetwork.link_summary()`` (None under ideal).
    link_summary: dict | None = None
    #: ``DirectoryModel.summary()`` (None under ideal).
    dir_summary: dict | None = None

    def cycles(self) -> list:
        return [b.total for b in self.breakdowns]

    def node_miss_summary(self, node: int) -> dict:
        """count/mean/p50/p99/max of one processor's served misses."""
        lats = sorted(self.miss_latencies[node])
        n = len(lats)
        return {
            "count": n,
            "mean": (sum(lats) / n) if n else 0.0,
            "p50": _percentile(lats, 0.50),
            "p99": _percentile(lats, 0.99),
            "max": lats[-1] if n else 0,
        }


class _Episode:
    """Live-mode bookkeeping of one barrier episode."""

    __slots__ = ("size", "arrivals", "seen", "complete")

    def __init__(self, size: int) -> None:
        self.size = size
        #: [(node, arrival time)] of members that have queried.
        self.arrivals: list[tuple[int, int]] = []
        #: (cpu, ordinal) keys already registered (re-queries dedupe).
        self.seen: set[tuple[int, int]] = set()
        #: Completion time once all members arrived, else None.
        self.complete: int | None = None


class CosimEngine:
    """Advance all processors against one shared fabric."""

    def __init__(
        self,
        nodes: list[CosimNode],
        network=None,
        schedule=None,
        sync_mode: str = "replay",
        probe=None,
    ) -> None:
        if sync_mode not in ("replay", "live"):
            raise ValueError(f"unknown sync mode {sync_mode!r}")
        if sync_mode == "live" and schedule is None:
            raise ValueError("live sync mode needs a recorded schedule")
        self.nodes = nodes
        self.network = network
        self.schedule = schedule
        self.sync_mode = sync_mode
        self.probe = probe
        self.miss_latencies: list[list[int]] = [[] for _ in nodes]
        self.sync_waits: list[list[int]] = [[] for _ in nodes]
        # -- live-sync state ------------------------------------------
        #: (cpu, ordinal) of a release -> its co-simulated perform time.
        self._released: dict[tuple[int, int], int] = {}
        #: (cpu, ordinal) of an un-performed release -> parked
        #: [(node, SyncRequest)] acquirers waiting on it.
        self._waiters: dict[tuple[int, int], list] = {}
        #: Barrier episode index -> :class:`_Episode`.
        self._episodes: dict[int, _Episode] = {}
        #: Nodes currently parked at a live sync request.
        self._parked = 0
        #: Nodes started but not yet run to completion.
        self._unfinished = 0

    # -- scheduling ---------------------------------------------------

    def run(self) -> CosimResult:
        heap: list[tuple[int, int]] = []
        pending: list = [None] * len(self.nodes)
        for idx, node in enumerate(self.nodes):
            request = node.handle.start()
            if request is None:
                continue
            self._unfinished += 1
            pending[idx] = request
            heapq.heappush(heap, (request.time, idx))

        while heap:
            _, idx = heapq.heappop(heap)
            request = pending[idx]
            pending[idx] = None
            kind = type(request)
            if kind is MemRequest:
                answer = self._serve_mem(idx, request)
            elif kind is SyncRequest:
                if self.sync_mode == "replay":
                    answer = request.wait
                else:
                    answer = self._serve_sync(idx, request, heap, pending)
                    if answer is None:
                        # Parked: resumed by a later ReleaseNotify or
                        # episode completion.
                        continue
                    if answer >= 0:
                        self.sync_waits[idx].append(answer)
            else:  # ReleaseNotify
                if self.sync_mode == "live":
                    self._serve_release(request, heap, pending)
                answer = None
            request = self.nodes[idx].handle.send(answer)
            if request is None:
                self._unfinished -= 1
            else:
                pending[idx] = request
                heapq.heappush(heap, (request.time, idx))

        if self._unfinished or self._parked:
            raise RuntimeError(
                f"co-simulation wedged: {self._parked} processor(s) parked "
                f"with no pending release (schedule/trace mismatch?)"
            )
        return self._result()

    # -- memory -------------------------------------------------------

    def _serve_mem(self, idx: int, request: MemRequest) -> int:
        node = self.nodes[idx]
        if self.network is None:
            latency = request.stall
        else:
            latency = self.network.replay_miss(
                node.net_cpu, request.addr, request.is_write, request.time
            )
        self.miss_latencies[idx].append(latency)
        probe = self.probe
        if probe is not None and probe.tracer is not None:
            if probe.span_budget > 0:
                probe.span_budget -= 1
                end = request.time + max(1, latency)
                pid, tid = probe.span_track(
                    f"cosim/cpu{node.net_cpu}", "miss", request.time, end
                )
                probe.tracer.complete(
                    "wr_miss" if request.is_write else "rd_miss",
                    "mem", pid, tid, request.time, max(1, latency),
                    args={"addr": request.addr},
                )
        return latency

    # -- live synchronization -----------------------------------------

    def _resume(self, idx: int, answer, heap, pending) -> None:
        """Un-park a node with the final sync wait."""
        self._parked -= 1
        self.sync_waits[idx].append(answer)
        request = self.nodes[idx].handle.send(answer)
        if request is None:
            self._unfinished -= 1
            return
        pending[idx] = request
        heapq.heappush(heap, (request.time, idx))

    def _serve_sync(self, idx: int, request: SyncRequest, heap, pending):
        """Resolve a live acquire/barrier.

        Returns the wait in cycles, :data:`PENDING` for an unresolved
        non-parkable node, or None after parking the node.
        """
        key = (request.cpu, request.ordinal)
        schedule = self.schedule
        episode_idx = schedule.barrier_episode.get(key)
        if episode_idx is not None:
            return self._serve_barrier(idx, key, episode_idx, request,
                                       heap, pending)
        if key not in schedule.acquire_source:
            # Not recorded (defensive): fall back to the baked wait.
            return max(0, request.wait)
        source = schedule.acquire_source[key]
        if source is None:
            return 0  # lock/event free since initialization
        if source[0] == request.cpu:
            # Re-acquiring after our own release: locally visible
            # immediately (store forwarding), and parking on our own
            # buffered release would deadlock.
            return 0
        release_time = self._released.get(source)
        if release_time is None:
            if self.nodes[idx].parkable:
                self._parked += 1
                self._waiters.setdefault(source, []).append((idx, request))
                return None
            return PENDING
        return max(0, release_time - request.time)

    def _serve_barrier(self, idx: int, key, episode_idx: int,
                       request: SyncRequest, heap, pending):
        episode = self._episodes.get(episode_idx)
        if episode is None:
            size = self.schedule.episode_sizes[episode_idx]
            episode = self._episodes[episode_idx] = _Episode(size)
        if episode.complete is not None:
            return max(0, episode.complete - request.time)
        if key not in episode.seen:
            episode.seen.add(key)
            episode.arrivals.append((idx, request.time))
            if len(episode.seen) == episode.size:
                episode.complete = max(t for _, t in episode.arrivals)
                # Resume every parked member; the last arriver (idx)
                # gets its answer through the return value.
                for member, arrival in episode.arrivals:
                    if member == idx:
                        continue
                    if self.nodes[member].parkable:
                        self._resume(
                            member, max(0, episode.complete - arrival),
                            heap, pending,
                        )
                    # Non-parkable members are re-querying; their next
                    # query hits the episode-complete path above.
                return max(0, episode.complete - request.time)
        if self.nodes[idx].parkable:
            self._parked += 1
            return None
        return PENDING

    def _serve_release(self, request: ReleaseNotify, heap, pending) -> None:
        key = (request.cpu, request.ordinal)
        self._released[key] = request.time
        waiters = self._waiters.pop(key, None)
        if waiters:
            for idx, acquire in waiters:
                self._resume(
                    idx, max(0, request.time - acquire.time), heap, pending
                )

    # -- results ------------------------------------------------------

    def _result(self) -> CosimResult:
        network = self.network
        result = CosimResult(
            breakdowns=[n.handle.result for n in self.nodes],
            miss_latencies=self.miss_latencies,
            sync_waits=self.sync_waits,
            sync_mode=self.sync_mode,
        )
        if network is not None:
            result.net_summary = network.summary()
            result.link_summary = network.link_summary()
            result.dir_summary = network.directory.summary()
        return result
