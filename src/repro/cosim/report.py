"""``python -m repro cosim`` — one co-simulated run, fully reported.

Co-simulates every processor of one application on one shared fabric
and reports the per-processor outcomes (cycles, served misses with
their latency distribution) plus the fabric-level view the per-model
replays cannot see: link queueing and directory occupancy *under the
combined load of all processors at once*.

With an output directory the run also writes the observability
artifacts of the ``profile`` subcommand — a Perfetto-loadable
``trace.json`` with per-processor miss lanes (opt-in), a deterministic
``metrics.json``, and a validated ``manifest.json``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..cpu import ProcessorConfig
from .run import run_cosim


@dataclass
class CosimAppResult:
    """Everything one co-simulated run produced."""

    app: str
    config: dict
    result: object  # CosimResult
    report: str
    out_dir: Path | None = None
    outputs: dict[str, Path] = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


def run_cosim_app(
    app: str,
    store,
    kind: str = "ds",
    model: str = "RC",
    window: int = 64,
    network: str = "ideal",
    sync_mode: str = "replay",
    contexts: int = 1,
    trace: bool = False,
    metrics: bool = True,
    out_dir: Path | str | None = None,
    command: str = "",
) -> CosimAppResult:
    """Co-simulate ``app`` and (optionally) write run artifacts.

    ``store`` is a :class:`~repro.experiments.runner.TraceStore`; the
    all-processor trace set plus the recorded sync schedule come from
    its co-simulation cache.  With ``out_dir`` set, the trace/metrics/
    manifest triple lands under ``<out_dir>/<run-id>/`` and the
    manifest is schema-validated (failures land in ``errors``).
    """
    from ..obs import (
        ChromeTracer,
        MetricsRegistry,
        Probe,
        build_manifest,
        validate_manifest,
        validate_trace,
        write_manifest,
    )

    kind = kind.lower()
    model = model.upper()
    timings: dict[str, float] = {}

    t0 = time.perf_counter()
    crun = store.get_cosim(app)
    timings["trace_generation"] = time.perf_counter() - t0

    write_artifacts = out_dir is not None
    registry = MetricsRegistry(enabled=write_artifacts)
    tracer = ChromeTracer() if (trace and write_artifacts) else None
    probe = Probe(metrics=registry, tracer=tracer)

    t0 = time.perf_counter()
    config = ProcessorConfig(kind=kind, model=model, window=window)
    result = run_cosim(
        crun, config,
        network_kind=network,
        line_size=store.line_size,
        sync_mode=sync_mode,
        contexts=contexts,
        probe=probe if write_artifacts else None,
    )
    timings["cosim_run"] = time.perf_counter() - t0

    label = f"MC-k{contexts}" if kind == "mc" else config.label()
    config_dict = {
        "app": app,
        "kind": kind,
        "model": model,
        "window": window,
        "network": network,
        "sync": sync_mode,
        "contexts": contexts,
        "engine": config.engine,
        "n_procs": store.n_procs,
        "miss_penalty": store.miss_penalty,
        "preset": store.preset,
        "trace": trace,
        "metrics": metrics,
    }
    errors: list[str] = []
    outputs: dict[str, Path] = {}
    run_id = (
        f"{app}-cosim-{kind}-{model.lower()}-{network}-{sync_mode}"
    )

    if write_artifacts:
        out_path = Path(out_dir) / run_id
        out_path.mkdir(parents=True, exist_ok=True)
        t0 = time.perf_counter()
        if tracer is not None:
            trace_path = out_path / "trace.json"
            tracer.write(trace_path, other_data={"run_id": run_id})
            outputs["trace"] = trace_path
            errors += [
                f"trace: {e}"
                for e in validate_trace(json.loads(trace_path.read_text()))
            ]
        if metrics:
            metrics_path = out_path / "metrics.json"
            metrics_path.write_text(json.dumps(
                registry.snapshot(), sort_keys=True, indent=1,
            ) + "\n")
            outputs["metrics"] = metrics_path
        manifest_path = out_path / "manifest.json"
        manifest = build_manifest(
            command or f"python -m repro cosim {app}",
            config_dict, timings | {"write": time.perf_counter() - t0},
            outputs,
        )
        write_manifest(manifest_path, manifest)
        outputs["manifest"] = manifest_path
        errors += [
            f"manifest: {e}"
            for e in validate_manifest(
                json.loads(manifest_path.read_text())
            )
        ]
    else:
        out_path = None

    report = format_cosim_report(run_id, label, result, outputs)
    return CosimAppResult(
        app=app, config=config_dict, result=result, report=report,
        out_dir=out_path, outputs=outputs, errors=errors,
    )


def format_cosim_report(
    run_id: str, label: str, result, outputs: dict | None = None
) -> str:
    """Per-processor and fabric-level view of one co-simulated run."""
    from ..experiments.report import format_table

    rows = []
    for idx, breakdown in enumerate(result.breakdowns):
        miss = result.node_miss_summary(idx)
        sync = result.sync_waits[idx]
        rows.append([
            f"cpu{idx}", breakdown.total, breakdown.busy,
            breakdown.sync, breakdown.read, breakdown.write,
            miss["count"], float(miss["mean"]), miss["p50"], miss["p99"],
            sum(sync) if sync else "-",
        ])
    lines = [
        f"cosim {run_id}",
        f"  {len(result.breakdowns)} x {label} on one shared "
        f"'{result.network_kind}' fabric, {result.sync_mode} sync",
        "",
        format_table(
            ["node", "cycles", "busy", "sync", "read", "write",
             "misses", "lat mean", "p50", "p99", "live waits"],
            rows,
            title="per-processor outcomes",
        ),
    ]

    if result.net_summary is not None:
        net = result.net_summary
        links = result.link_summary
        directory = result.dir_summary
        lines.append("")
        lines.append(format_table(
            ["misses", "lat mean", "p50", "p99", "max",
             "q mean", "q max"],
            [[net["count"], float(net["mean"]), net["p50"], net["p99"],
              net["max"], float(links["mean_depth"]),
              links["max_depth"]]],
            title="shared fabric (all processors' load combined)",
            float_fmt="{:.2f}",
        ))
        lines.append("")
        lines.append(format_table(
            ["serves", "wait mean", "wait max", "hottest node",
             "its serves"],
            [[directory["serves"], float(directory["mean_wait"]),
              directory["max_wait"], directory["hottest_node"],
              directory["hottest_serves"]]],
            title="directory occupancy",
            float_fmt="{:.2f}",
        ))

    if outputs:
        lines.append("")
        lines.append("outputs:")
        for name, path in sorted(outputs.items()):
            lines.append(f"  {name}: {path}")
    return "\n".join(lines)
