"""Execution-driven co-simulation of all processors on one shared fabric.

The paper evaluates each processor model in isolation with a fixed miss
penalty, and the ``contention`` experiment replays each model through a
*fresh* network afterwards.  This package closes the loop: every
processor of the multiprocessor advances against a **single shared**
:mod:`repro.net` fabric with live directory state, and each access's
actual network latency — including queueing behind the *other*
processors' concurrent misses — feeds back into the issuing CPU's
timing.

The moving parts:

* :mod:`repro.cpu.requests` — every CPU model restructured as a
  resumable stepper that suspends at each miss and acquire;
* :class:`CosimEngine` — the global scheduler interleaving all
  steppers' requests on the shared network in timestamp order, with
  cross-processor sync wait edges (live mode) resolved from the
  recorded :class:`repro.sync.SyncSchedule`;
* :func:`run_cosim` / :func:`replay_solo` — the high-level entry
  points used by the ``cosim`` CLI subcommand, the ``contention``
  experiment, and the ``cosim`` batch job kind.
"""

from .engine import (
    CosimEngine,
    CosimNode,
    CosimResult,
    GenStepper,
    ImmediateStepper,
    ThreadStepper,
)
from .report import CosimAppResult, format_cosim_report, run_cosim_app
from .run import build_node, replay_solo, run_cosim

__all__ = [
    "CosimAppResult",
    "CosimEngine",
    "CosimNode",
    "CosimResult",
    "GenStepper",
    "ImmediateStepper",
    "ThreadStepper",
    "build_node",
    "format_cosim_report",
    "replay_solo",
    "run_cosim",
    "run_cosim_app",
]
