"""Compiled instruction dispatch (classic threaded code).

At :meth:`repro.isa.program.Program.seal` time every static instruction
is translated into a small specialised closure with its operand indices,
immediates and branch targets bound as locals.  The executor's inner loop
then calls one closure per dynamic instruction instead of re-decoding the
opcode through the interpreter's ~60-arm ``if/elif`` chain
(:func:`repro.tango.interp.execute_instruction`, which remains the
reference semantics the compiled path is differentially tested against).

Each instruction compiles to ``(kind, closure)``:

========  =============================  ==========================
kind      closure signature              meaning of return value
========  =============================  ==========================
K_PLAIN   ``fn(regs)``                   none (falls through)
K_CBR     ``fn(regs) -> int``            next pc (conditional branch)
K_JMP     ``fn(regs) -> int``            next pc (J/JAL/JR)
K_LOAD    ``fn(regs, words, doubles)``   effective address
K_STORE   ``fn(regs, words, doubles)``   effective address
K_SYNC    ``None``                       executor-handled
K_HALT    ``None``                       executor-handled
========  =============================  ==========================

``words``/``doubles`` are the backing dicts of
:class:`repro.mem.memory.SharedMemory`; binding them per run keeps the
closures reusable across memories while skipping a method call per
access.  Register 0 is hardwired to zero, so destinations of 0 (or
``None``) compile to a compute-and-discard variant — faults (division by
zero, misalignment) are still raised exactly as the reference does.
"""

from __future__ import annotations

import math

from ..mem.memory import MemoryError_
from .ops import Op

K_PLAIN = 0
K_CBR = 1
K_JMP = 2
K_LOAD = 3
K_STORE = 4
K_SYNC = 5
K_HALT = 6


class CompileError(Exception):
    """An instruction could not be translated (unclassified opcode)."""


def _trunc_div(a: int, b: int) -> int:
    # Mirrors repro.tango.interp._trunc_div (C-style truncating division).
    if b == 0:
        from ..tango.interp import ExecutionError
        raise ExecutionError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _bin_rr(fn, rd, rs1, rs2):
    if rd:
        def run(regs):
            regs[rd] = fn(regs[rs1], regs[rs2])
    else:
        def run(regs):
            fn(regs[rs1], regs[rs2])
    return run


def _bin_ri(fn, rd, rs1, imm):
    if rd:
        def run(regs):
            regs[rd] = fn(regs[rs1], imm)
    else:
        def run(regs):
            fn(regs[rs1], imm)
    return run


def _unary(fn, rd, rs1):
    if rd:
        def run(regs):
            regs[rd] = fn(regs[rs1])
    else:
        def run(regs):
            fn(regs[rs1])
    return run


# Two-register ALU/FP bodies, written out so the result types match the
# reference interpreter exactly (comparisons produce int 1/0, not bool).
_RR = {
    Op.ADD: lambda a, b: a + b,
    Op.SUB: lambda a, b: a - b,
    Op.MUL: lambda a, b: a * b,
    Op.DIV: _trunc_div,
    Op.REM: lambda a, b: a - b * _trunc_div(a, b),
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SLT: lambda a, b: 1 if a < b else 0,
    Op.SLE: lambda a, b: 1 if a <= b else 0,
    Op.SEQ: lambda a, b: 1 if a == b else 0,
    Op.SLL: lambda a, b: a << b,
    Op.SRL: lambda a, b: a >> b,
    Op.SRA: lambda a, b: a >> b,
    Op.FADD: lambda a, b: a + b,
    Op.FSUB: lambda a, b: a - b,
    Op.FMUL: lambda a, b: a * b,
    Op.FMIN: min,
    Op.FMAX: max,
    Op.FLT: lambda a, b: 1 if a < b else 0,
    Op.FLE: lambda a, b: 1 if a <= b else 0,
    Op.FEQ: lambda a, b: 1 if a == b else 0,
}

_RI = {
    Op.ADDI: lambda a, imm: a + imm,
    Op.MULI: lambda a, imm: a * imm,
    Op.ANDI: lambda a, imm: a & imm,
    Op.ORI: lambda a, imm: a | imm,
    Op.XORI: lambda a, imm: a ^ imm,
    Op.SLTI: lambda a, imm: 1 if a < imm else 0,
    Op.SLLI: lambda a, imm: a << imm,
    Op.SRLI: lambda a, imm: a >> imm,
    Op.SRAI: lambda a, imm: a >> imm,
}

_UNARY = {
    Op.FNEG: lambda a: -a,
    Op.FABS: abs,
    Op.FMOV: lambda a: a,
    Op.CVTIF: float,
    Op.CVTFI: int,
}

_COND = {
    Op.BEQ: lambda a, b: a == b,
    Op.BNE: lambda a, b: a != b,
    Op.BLT: lambda a, b: a < b,
    Op.BGE: lambda a, b: a >= b,
    Op.BLE: lambda a, b: a <= b,
    Op.BGT: lambda a, b: a > b,
}

_SYNC_OPS = frozenset({
    Op.LOCK, Op.UNLOCK, Op.BARRIER, Op.EVWAIT, Op.EVSET, Op.EVCLEAR,
})


def _compile_fdiv(rd, rs1, rs2):
    from ..tango.interp import ExecutionError

    def run(regs, rd=rd, rs1=rs1, rs2=rs2):
        divisor = regs[rs2]
        if divisor == 0.0:
            raise ExecutionError("floating point division by zero")
        val = regs[rs1] / divisor
        if rd:
            regs[rd] = val
    return run


def _compile_fsqrt(rd, rs1):
    from ..tango.interp import ExecutionError
    sqrt = math.sqrt

    def run(regs, rd=rd, rs1=rs1):
        operand = regs[rs1]
        if operand < 0.0:
            raise ExecutionError("sqrt of negative value")
        val = sqrt(operand)
        if rd:
            regs[rd] = val
    return run


def _compile_load(op, rd, rs1, imm):
    if op is Op.LW:
        if rd:
            def run(regs, words, doubles, rs1=rs1, imm=imm, rd=rd):
                addr = regs[rs1] + imm
                if addr % 4:
                    raise MemoryError_(f"misaligned word read at {addr:#x}")
                regs[rd] = words.get(addr, 0)
                return addr
        else:
            def run(regs, words, doubles, rs1=rs1, imm=imm):
                addr = regs[rs1] + imm
                if addr % 4:
                    raise MemoryError_(f"misaligned word read at {addr:#x}")
                return addr
    else:  # FLD
        if rd:
            def run(regs, words, doubles, rs1=rs1, imm=imm, rd=rd):
                addr = regs[rs1] + imm
                if addr % 8:
                    raise MemoryError_(
                        f"misaligned double read at {addr:#x}"
                    )
                regs[rd] = doubles.get(addr, 0.0)
                return addr
        else:
            def run(regs, words, doubles, rs1=rs1, imm=imm):
                addr = regs[rs1] + imm
                if addr % 8:
                    raise MemoryError_(
                        f"misaligned double read at {addr:#x}"
                    )
                return addr
    return run


def _compile_store(op, rs1, rs2, imm):
    if op is Op.SW:
        def run(regs, words, doubles, rs1=rs1, rs2=rs2, imm=imm):
            addr = regs[rs1] + imm
            if addr % 4:
                raise MemoryError_(f"misaligned word write at {addr:#x}")
            words[addr] = regs[rs2]
            return addr
    else:  # FSD
        def run(regs, words, doubles, rs1=rs1, rs2=rs2, imm=imm):
            addr = regs[rs1] + imm
            if addr % 8:
                raise MemoryError_(f"misaligned double write at {addr:#x}")
            doubles[addr] = regs[rs2]
            return addr
    return run


def compile_instruction(instr, pc: int):
    """Translate one sealed instruction into ``(kind, closure)``."""
    op = instr.op
    rd = instr.rd
    # Destination 0 is the hardwired zero register: compute, discard.
    rd = rd if rd else 0

    if op in _RR:
        return K_PLAIN, _bin_rr(_RR[op], rd, instr.rs1, instr.rs2)
    if op in _RI:
        return K_PLAIN, _bin_ri(_RI[op], rd, instr.rs1, instr.imm)
    if op in _UNARY:
        return K_PLAIN, _unary(_UNARY[op], rd, instr.rs1)
    if op is Op.FLI:
        imm = instr.imm
        if rd:
            def run(regs, rd=rd, imm=imm):
                regs[rd] = imm
        else:
            def run(regs):
                pass
        return K_PLAIN, run
    if op is Op.FDIV:
        return K_PLAIN, _compile_fdiv(rd, instr.rs1, instr.rs2)
    if op is Op.FSQRT:
        return K_PLAIN, _compile_fsqrt(rd, instr.rs1)
    if op is Op.NOP:
        def run(regs):
            pass
        return K_PLAIN, run

    if op in (Op.LW, Op.FLD):
        return K_LOAD, _compile_load(op, rd, instr.rs1, instr.imm)
    if op in (Op.SW, Op.FSD):
        return K_STORE, _compile_store(op, instr.rs1, instr.rs2, instr.imm)

    if op in _COND:
        cond = _COND[op]
        target = instr.target
        fall = pc + 1

        def run(regs, cond=cond, rs1=instr.rs1, rs2=instr.rs2,
                target=target, fall=fall):
            return target if cond(regs[rs1], regs[rs2]) else fall
        return K_CBR, run
    if op is Op.J:
        target = instr.target

        def run(regs, target=target):
            return target
        return K_JMP, run
    if op is Op.JAL:
        target = instr.target
        link = pc + 1
        if rd:
            def run(regs, rd=rd, link=link, target=target):
                regs[rd] = link
                return target
        else:
            def run(regs, target=target):
                return target
        return K_JMP, run
    if op is Op.JR:
        # Bounds are checked by the executor at the next fetch, exactly
        # where the reference interpreter faults on a wild jump.
        def run(regs, rs1=instr.rs1):
            return regs[rs1]
        return K_JMP, run

    if op in _SYNC_OPS:
        return K_SYNC, None
    if op is Op.HALT:
        return K_HALT, None
    raise CompileError(f"opcode {op.name} has no compiled semantics")


def compile_program(program):
    """Compile a sealed program; returns ``(kinds, code, trace_meta)``.

    ``kinds[pc]`` is the dispatch class, ``code[pc]`` the specialised
    closure (``None`` for sync/halt), and ``trace_meta[pc]`` the static
    ``(op, rd, rs1, rs2)`` tuple the executor stamps into trace rows
    (-1 for absent operands, matching :class:`repro.tango.trace.Trace`).
    """
    kinds = []
    code = []
    trace_meta = []
    for pc, instr in enumerate(program.instructions):
        kind, fn = compile_instruction(instr, pc)
        kinds.append(kind)
        code.append(fn)
        trace_meta.append((
            int(instr.op),
            -1 if instr.rd is None else instr.rd,
            -1 if instr.rs1 is None else instr.rs1,
            -1 if instr.rs2 is None else instr.rs2,
        ))
    return kinds, code, trace_meta
