"""Operation codes for the simulated RISC instruction set.

The instruction set is a small load/store RISC, deliberately shaped like the
MIPS-style ISA the original study traced: integer ALU ops, a shifter class,
floating point add/multiply/divide/convert classes, loads and stores, and
conditional branches.  On top of that it carries the ANL-macro style
synchronization operations (lock/unlock, barrier, event wait/set) that the
paper's applications use, so that the trace generator can annotate
synchronization stalls exactly the way Tango Lite did.

Each opcode is statically classified along the three axes every simulator in
this package cares about:

* its **functional-unit class** (:class:`FuClass`) — which reservation
  station / functional unit executes it in the dynamically scheduled core;
* its **memory class** (:class:`MemClass`) — whether the consistency model
  treats it as a read, a write, an acquire, a release, or a non-memory op;
* its **control flow** role (branch / jump / halt).
"""

from __future__ import annotations

import enum


class Op(enum.IntEnum):
    """Every operation the simulated machine can execute."""

    # Integer ALU --------------------------------------------------------
    ADD = enum.auto()
    SUB = enum.auto()
    MUL = enum.auto()
    DIV = enum.auto()
    REM = enum.auto()
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    SLT = enum.auto()   # rd = 1 if rs1 < rs2 else 0
    SLE = enum.auto()
    SEQ = enum.auto()
    ADDI = enum.auto()
    MULI = enum.auto()
    ANDI = enum.auto()
    ORI = enum.auto()
    XORI = enum.auto()
    SLTI = enum.auto()

    # Shifter -------------------------------------------------------------
    SLL = enum.auto()
    SRL = enum.auto()
    SRA = enum.auto()
    SLLI = enum.auto()
    SRLI = enum.auto()
    SRAI = enum.auto()

    # Floating point ------------------------------------------------------
    FADD = enum.auto()
    FSUB = enum.auto()
    FNEG = enum.auto()
    FABS = enum.auto()
    FMOV = enum.auto()
    FMIN = enum.auto()
    FMAX = enum.auto()
    FLT = enum.auto()   # int rd = 1 if fs1 < fs2
    FLE = enum.auto()
    FEQ = enum.auto()
    FLI = enum.auto()   # load float immediate
    FMUL = enum.auto()
    FDIV = enum.auto()
    FSQRT = enum.auto()
    CVTIF = enum.auto()  # int -> fp
    CVTFI = enum.auto()  # fp -> int (truncate)

    # Memory --------------------------------------------------------------
    LW = enum.auto()    # load 4-byte integer word
    SW = enum.auto()    # store 4-byte integer word
    FLD = enum.auto()   # load 8-byte double
    FSD = enum.auto()   # store 8-byte double

    # Control flow ----------------------------------------------------------
    BEQ = enum.auto()
    BNE = enum.auto()
    BLT = enum.auto()
    BGE = enum.auto()
    BLE = enum.auto()
    BGT = enum.auto()
    J = enum.auto()
    JAL = enum.auto()
    JR = enum.auto()
    HALT = enum.auto()

    # Synchronization (ANL macro equivalents) -------------------------------
    LOCK = enum.auto()      # acquire mutual exclusion lock at address rs1
    UNLOCK = enum.auto()    # release lock at address rs1
    BARRIER = enum.auto()   # global barrier identified by address rs1
    EVWAIT = enum.auto()    # wait until event at address rs1 is set
    EVSET = enum.auto()     # set event at address rs1
    EVCLEAR = enum.auto()   # clear event at address rs1

    NOP = enum.auto()


class FuClass(enum.IntEnum):
    """Functional-unit class, one reservation station group per class.

    This mirrors Figure 2 of the paper (Johnson's processor): integer ALU,
    shifter, branch unit, load/store unit, plus the four floating point
    units (add, multiply, divide, convert) assumed to be on-chip.
    """

    INT_ALU = 0
    SHIFTER = 1
    BRANCH = 2
    LOAD_STORE = 3
    FP_ADD = 4
    FP_MUL = 5
    FP_DIV = 6
    FP_CVT = 7


class MemClass(enum.IntEnum):
    """How the consistency model classifies an operation.

    ``ACQUIRE`` operations are read-like synchronization (lock, event wait,
    the wait half of a barrier); ``RELEASE`` operations are write-like
    synchronization (unlock, event set).  A barrier is modelled as an
    acquire *and* a release, which is the strongest classification and the
    one release consistency requires.
    """

    NONE = 0
    READ = 1
    WRITE = 2
    ACQUIRE = 3
    RELEASE = 4
    BARRIER = 5


_INT_ALU_OPS = frozenset({
    Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.REM, Op.AND, Op.OR, Op.XOR,
    Op.SLT, Op.SLE, Op.SEQ, Op.ADDI, Op.MULI, Op.ANDI, Op.ORI, Op.XORI,
    Op.SLTI, Op.NOP,
})
_SHIFT_OPS = frozenset({Op.SLL, Op.SRL, Op.SRA, Op.SLLI, Op.SRLI, Op.SRAI})
_FP_ADD_OPS = frozenset({
    Op.FADD, Op.FSUB, Op.FNEG, Op.FABS, Op.FMOV, Op.FMIN, Op.FMAX,
    Op.FLT, Op.FLE, Op.FEQ, Op.FLI,
})
_FP_MUL_OPS = frozenset({Op.FMUL})
_FP_DIV_OPS = frozenset({Op.FDIV, Op.FSQRT})
_FP_CVT_OPS = frozenset({Op.CVTIF, Op.CVTFI})
_LOAD_OPS = frozenset({Op.LW, Op.FLD})
_STORE_OPS = frozenset({Op.SW, Op.FSD})
_COND_BRANCH_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLE, Op.BGT})
_JUMP_OPS = frozenset({Op.J, Op.JAL, Op.JR})
_SYNC_OPS = frozenset({
    Op.LOCK, Op.UNLOCK, Op.BARRIER, Op.EVWAIT, Op.EVSET, Op.EVCLEAR,
})
_ACQUIRE_OPS = frozenset({Op.LOCK, Op.EVWAIT})
_RELEASE_OPS = frozenset({Op.UNLOCK, Op.EVSET, Op.EVCLEAR})


def fu_class(op: Op) -> FuClass:
    """Return the functional-unit class that executes ``op``.

    Synchronization operations go through the load/store unit: they are
    memory operations on synchronization variables, exactly as the ANL
    macros compile to loads and stores on a real machine.
    """
    if op in _INT_ALU_OPS:
        return FuClass.INT_ALU
    if op in _SHIFT_OPS:
        return FuClass.SHIFTER
    if op in _FP_ADD_OPS:
        return FuClass.FP_ADD
    if op in _FP_MUL_OPS:
        return FuClass.FP_MUL
    if op in _FP_DIV_OPS:
        return FuClass.FP_DIV
    if op in _FP_CVT_OPS:
        return FuClass.FP_CVT
    if op in _LOAD_OPS or op in _STORE_OPS or op in _SYNC_OPS:
        return FuClass.LOAD_STORE
    if op in _COND_BRANCH_OPS or op in _JUMP_OPS or op is Op.HALT:
        return FuClass.BRANCH
    raise ValueError(f"unclassified op {op!r}")


def mem_class(op: Op) -> MemClass:
    """Return the memory-consistency classification of ``op``."""
    if op in _LOAD_OPS:
        return MemClass.READ
    if op in _STORE_OPS:
        return MemClass.WRITE
    if op in _ACQUIRE_OPS:
        return MemClass.ACQUIRE
    if op in _RELEASE_OPS:
        return MemClass.RELEASE
    if op is Op.BARRIER:
        return MemClass.BARRIER
    return MemClass.NONE


def is_load(op: Op) -> bool:
    return op in _LOAD_OPS


def is_store(op: Op) -> bool:
    return op in _STORE_OPS


def is_mem(op: Op) -> bool:
    """True for plain data loads and stores (not synchronization)."""
    return op in _LOAD_OPS or op in _STORE_OPS


def is_sync(op: Op) -> bool:
    return op in _SYNC_OPS


def is_cond_branch(op: Op) -> bool:
    return op in _COND_BRANCH_OPS


def is_jump(op: Op) -> bool:
    return op in _JUMP_OPS


def is_control(op: Op) -> bool:
    return op in _COND_BRANCH_OPS or op in _JUMP_OPS or op is Op.HALT


def mem_width(op: Op) -> int:
    """Access width in bytes for a load/store opcode."""
    if op in (Op.LW, Op.SW):
        return 4
    if op in (Op.FLD, Op.FSD):
        return 8
    raise ValueError(f"{op!r} is not a load/store")
