"""Register-file layout for the simulated machine.

There are 32 integer registers and 32 floating point registers, encoded in a
single flat namespace: integer registers occupy ids ``0..31`` and floating
point registers occupy ids ``32..63``.  Register 0 (``zero``) is hardwired
to the integer value 0, as on MIPS; writes to it are discarded.

The flat encoding lets every downstream consumer — the functional
interpreter, the renaming logic in the reorder buffer, the dependence
analyser — treat "a register" as a small integer without caring which file
it lives in.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS

#: The hardwired-zero integer register.
ZERO = 0

#: Conventional link register used by ``JAL`` (MIPS ``$ra``).
RA = 31

FP_BASE = NUM_INT_REGS


def int_reg(n: int) -> int:
    """Flat id of integer register ``n``."""
    if not 0 <= n < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {n}")
    return n


def fp_reg(n: int) -> int:
    """Flat id of floating point register ``n``."""
    if not 0 <= n < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {n}")
    return FP_BASE + n


def is_fp(reg: int) -> bool:
    """True if flat register id ``reg`` names a floating point register."""
    return reg >= FP_BASE


def reg_name(reg: int) -> str:
    """Human-readable name (``r7`` / ``f3``) for a flat register id."""
    if reg is None:  # pragma: no cover - defensive
        return "-"
    if reg < 0 or reg >= NUM_REGS:
        raise ValueError(f"register id out of range: {reg}")
    if reg < FP_BASE:
        return f"r{reg}"
    return f"f{reg - FP_BASE}"
