"""The :class:`Instruction` container and its pretty-printer."""

from __future__ import annotations

from dataclasses import dataclass

from .ops import Op, is_cond_branch, is_mem, is_sync
from .registers import reg_name


@dataclass(slots=True)
class Instruction:
    """One static instruction.

    Fields that do not apply to an opcode are ``None``.  Branch and jump
    targets are symbolic labels while a program is being built; the
    assembler resolves them to absolute instruction indices (``target``)
    when the program is sealed.

    Attributes:
        op: the opcode.
        rd: flat id of the destination register, if any.
        rs1: flat id of the first source register, if any.  For memory
            operations this is the base address register; for
            synchronization operations it holds the synchronization
            variable's address.
        rs2: flat id of the second source register, if any.  For stores
            this is the register holding the value to be stored.
        imm: immediate operand (integer for ALU/shift ops, byte offset for
            loads and stores).
        label: symbolic control-flow target, present until resolution.
        target: absolute instruction index of the control-flow target,
            filled in by :meth:`repro.isa.program.Program.seal`.
    """

    op: Op
    rd: int | None = None
    rs1: int | None = None
    rs2: int | None = None
    imm: int | float | None = None
    label: str | None = None
    target: int | None = None

    def sources(self) -> tuple[int, ...]:
        """Flat ids of the registers this instruction reads."""
        srcs = []
        if self.rs1 is not None:
            srcs.append(self.rs1)
        if self.rs2 is not None:
            srcs.append(self.rs2)
        return tuple(srcs)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        op = self.op.name.lower()
        if is_mem(self.op):
            if self.op in (Op.LW, Op.FLD):
                return f"{op} {reg_name(self.rd)}, {self.imm}({reg_name(self.rs1)})"
            return f"{op} {reg_name(self.rs2)}, {self.imm}({reg_name(self.rs1)})"
        if is_sync(self.op):
            return f"{op} ({reg_name(self.rs1)})"
        if is_cond_branch(self.op):
            dest = self.label if self.target is None else f"@{self.target}"
            return f"{op} {reg_name(self.rs1)}, {reg_name(self.rs2)}, {dest}"
        if self.op in (Op.J, Op.JAL):
            dest = self.label if self.target is None else f"@{self.target}"
            return f"{op} {dest}"
        if self.op is Op.JR:
            return f"{op} {reg_name(self.rs1)}"
        parts = []
        if self.rd is not None:
            parts.append(reg_name(self.rd))
        if self.rs1 is not None:
            parts.append(reg_name(self.rs1))
        if self.rs2 is not None:
            parts.append(reg_name(self.rs2))
        if self.imm is not None:
            parts.append(str(self.imm))
        return f"{op} {', '.join(parts)}" if parts else op
