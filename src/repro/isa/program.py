"""Program container: a sealed list of instructions with resolved labels."""

from __future__ import annotations

from .compiled import compile_program
from .instruction import Instruction
from .ops import Op, is_control


class ProgramError(Exception):
    """Raised for malformed programs (duplicate/undefined labels, ...)."""


class Program:
    """An executable instruction sequence for one thread.

    A program is built by appending instructions and defining labels, then
    :meth:`seal`-ed, which resolves every symbolic label to an absolute
    instruction index and freezes the instruction list.  Only sealed
    programs can be executed.
    """

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.instructions: list[Instruction] = []
        self.labels: dict[str, int] = {}
        self._sealed = False
        # Compiled-dispatch artifacts, populated by seal() (see
        # repro.isa.compiled): per-pc dispatch kind, specialised closure,
        # and the static (op, rd, rs1, rs2) tuple stamped into traces.
        self.kinds: list[int] | None = None
        self.code: list | None = None
        self.trace_meta: list[tuple[int, int, int, int]] | None = None

    def __len__(self) -> int:
        return len(self.instructions)

    def append(self, instr: Instruction) -> int:
        """Append ``instr``; returns its instruction index."""
        if self._sealed:
            raise ProgramError(f"program {self.name!r} is sealed")
        self.instructions.append(instr)
        return len(self.instructions) - 1

    def define_label(self, label: str) -> None:
        """Bind ``label`` to the index of the next appended instruction."""
        if self._sealed:
            raise ProgramError(f"program {self.name!r} is sealed")
        if label in self.labels:
            raise ProgramError(f"duplicate label {label!r} in {self.name!r}")
        self.labels[label] = len(self.instructions)

    @property
    def sealed(self) -> bool:
        return self._sealed

    def seal(self) -> "Program":
        """Resolve labels, validate control flow, and freeze the program."""
        if self._sealed:
            return self
        if not self.instructions or self.instructions[-1].op is not Op.HALT:
            # Every thread program must terminate explicitly so the
            # executor can retire the thread.
            self.append(Instruction(Op.HALT))
        for idx, instr in enumerate(self.instructions):
            if instr.label is not None:
                if instr.label not in self.labels:
                    raise ProgramError(
                        f"undefined label {instr.label!r} at instruction "
                        f"{idx} of {self.name!r}"
                    )
                instr.target = self.labels[instr.label]
            elif is_control(instr.op) and instr.op not in (Op.JR, Op.HALT):
                raise ProgramError(
                    f"control instruction without target at {idx} "
                    f"of {self.name!r}: {instr}"
                )
            if instr.target is not None and not (
                0 <= instr.target <= len(self.instructions)
            ):
                raise ProgramError(
                    f"branch target out of range at {idx} of {self.name!r}"
                )
        self._sealed = True
        self.kinds, self.code, self.trace_meta = compile_program(self)
        return self

    def disassemble(self) -> str:
        """Textual listing, one instruction per line, labels inlined."""
        by_index: dict[int, list[str]] = {}
        for label, idx in self.labels.items():
            by_index.setdefault(idx, []).append(label)
        lines = []
        for idx, instr in enumerate(self.instructions):
            for label in by_index.get(idx, ()):
                lines.append(f"{label}:")
            lines.append(f"  {idx:5d}  {instr}")
        return "\n".join(lines)
