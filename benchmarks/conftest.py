"""Benchmark fixtures: shared trace stores and a results directory.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered artifact is written to ``results/<name>.txt`` so a benchmark run
leaves the full reproduction on disk, and timing comes from
pytest-benchmark (single-round pedantic mode — each experiment is a
deterministic batch job, not a microbenchmark).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import TraceStore

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
CACHE_DIR = Path(__file__).resolve().parent.parent / ".cache" / "traces"


@pytest.fixture(scope="session")
def store50():
    """Application runs at the paper's 50-cycle miss penalty."""
    return TraceStore(miss_penalty=50, cache_dir=CACHE_DIR)


@pytest.fixture(scope="session")
def store100():
    """Application runs at the 100-cycle miss penalty (§4.2)."""
    return TraceStore(miss_penalty=100, cache_dir=CACHE_DIR)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: Path, name: str, text: str) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
