"""Benchmark E4 — regenerate Figure 3 (execution-time breakdowns).

One benchmark per application, each producing the app's full set of
Figure 3 bars (BASE; SSBR/SS/DS under SC and PC; SSBR/SS and the DS
window sweep under RC) and asserting the paper's qualitative claims.
"""

import pytest
from conftest import save_result

from repro.apps import APP_NAMES
from repro.experiments import format_figure3
from repro.experiments.figure3 import run_figure3_app


@pytest.mark.parametrize("app", APP_NAMES)
def test_figure3(benchmark, store50, results_dir, app):
    run = store50.get(app)

    runs = benchmark.pedantic(
        lambda: run_figure3_app(run), rounds=1, iterations=1
    )
    save_result(
        results_dir, f"figure3_{app}", format_figure3({app: runs})
    )

    by_label = {r.label: r for r in runs}
    base = by_label["BASE"]

    # (i) SC does not let read or write latency be hidden, regardless of
    # processor: even the 256-entry window stays close to static.
    assert by_label["DS-SC-w256"].total > by_label["SSBR-SC"].total * 0.75
    assert by_label["SSBR-SC"].total > base.total * 0.9

    # (ii) PC hides write latency with static scheduling — except OCEAN,
    # whose write misses outnumber read misses and fill the buffer.
    if app == "ocean":
        assert by_label["SSBR-PC"].write > base.write * 0.3
    elif base.write > 0.05 * base.total:
        assert by_label["SSBR-PC"].write < base.write * 0.5

    # RC removes the OCEAN write-buffer problem entirely.
    assert by_label["SSBR-RC"].write <= by_label["SSBR-PC"].write + 1

    # SS barely improves on SSBR (no compiler rescheduling).
    assert by_label["SS-RC"].total <= by_label["SSBR-RC"].total + 1

    # (iii) RC with dynamic scheduling hides substantial read latency,
    # monotonically in the window size, levelling off past 64.
    sweep = [by_label[f"DS-RC-w{w}"] for w in (16, 32, 64, 128, 256)]
    for a, b in zip(sweep, sweep[1:]):
        assert b.total <= a.total * 1.02
    assert sweep[2].read < base.read * 0.5        # w64 hides > 50%
    # Level-off: 64 -> 256 gains are small relative to 16 -> 64 gains.
    big_gain = sweep[0].total - sweep[2].total
    tail_gain = sweep[2].total - sweep[4].total
    assert tail_gain <= big_gain * 0.6 + 2

    # LU and OCEAN hide virtually all read latency at window 64.
    if app in ("lu", "ocean"):
        assert sweep[2].read < base.read * 0.1

    # Busy time is invariant: the issue rate is capped at 1/cycle.
    for r in runs:
        assert r.busy == base.busy
