"""Benchmark E10 — §4.1.3 read-miss issue-delay / spacing analysis."""

from conftest import save_result

from repro.experiments import format_miss_analysis, run_miss_analysis


def test_miss_analysis(benchmark, store50, results_dir):
    store50.all_apps()

    results = benchmark.pedantic(
        lambda: run_miss_analysis(store50), rounds=1, iterations=1
    )
    save_result(results_dir, "miss_analysis",
                format_miss_analysis(results))

    by_app = {r.app: r for r in results}
    # LU and OCEAN: read misses issue almost immediately (independent
    # misses; the paper: "rarely delayed more than 10 cycles").
    assert by_app["lu"].frac_delay_over(40) < 0.10
    assert by_app["ocean"].frac_delay_over(40) < 0.10
    # MP3D and PTHOR have dependent miss chains: a visible fraction of
    # read misses issues long after decode.
    assert by_app["mp3d"].frac_delay_over(40) > 0.05
    assert by_app["pthor"].frac_delay_over(40) > 0.10
    # PTHOR is the worst of the suite.
    assert by_app["pthor"].frac_delay_over(40) >= (
        by_app["lu"].frac_delay_over(40)
    )
    for r in results:
        assert len(r.issue_delays) > 0
