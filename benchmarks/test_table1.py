"""Benchmark E1 — regenerate Table 1 (data-reference statistics)."""

from conftest import save_result

from repro.experiments import format_table1, run_table1


def test_table1(benchmark, store50, results_dir):
    # Warm the trace cache outside the timed region.
    store50.all_apps()

    rows = benchmark.pedantic(
        lambda: run_table1(store50), rounds=1, iterations=1
    )
    text = format_table1(rows)
    save_result(results_dir, "table1", text)

    by_app = {r.app: r for r in rows}
    # Shape checks against the paper's Table 1:
    # reads outnumber writes everywhere,
    for row in rows:
        assert row.reads > row.writes
    # PTHOR and MP3D have the worst read-miss rates,
    miss_rates = {a: r.read_miss_rate for a, r in by_app.items()}
    worst_two = sorted(miss_rates, key=miss_rates.get, reverse=True)[:2]
    assert set(worst_two) == {"pthor", "mp3d"}
    # LU and OCEAN have the mildest read-miss rates (in the paper LU is
    # lowest; at our scale OCEAN edges it out),
    mildest_two = sorted(miss_rates, key=miss_rates.get)[:2]
    assert set(mildest_two) == {"lu", "ocean"}
    # and OCEAN's write misses exceed its read misses (the PC pathology).
    assert by_app["ocean"].write_miss_rate > by_app["ocean"].read_miss_rate
