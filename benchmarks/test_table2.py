"""Benchmark E2 — regenerate Table 2 (synchronization statistics)."""

from conftest import save_result

from repro.experiments import format_table2, run_table2


def test_table2(benchmark, store50, results_dir):
    store50.all_apps()

    rows = benchmark.pedantic(
        lambda: run_table2(store50), rounds=1, iterations=1
    )
    save_result(results_dir, "table2", format_table2(rows))

    by_app = {r.app: r for r in rows}
    # Shape checks against the paper's Table 2:
    # PTHOR is by far the most lock-intensive application,
    lock_rates = {a: r.rate(r.locks) for a, r in by_app.items()}
    assert max(lock_rates, key=lock_rates.get) == "pthor"
    assert by_app["pthor"].locks > 10 * max(
        by_app[a].locks for a in ("mp3d", "locus", "ocean")
    )
    # locks and unlocks balance,
    for row in rows:
        assert row.locks == row.unlocks
    # LU synchronizes through events, not locks,
    assert by_app["lu"].locks == 0
    assert by_app["lu"].wait_events > 0
    # LU uses exactly two barriers; OCEAN and MP3D use barriers per step.
    assert by_app["lu"].barriers == 2
    assert by_app["ocean"].barriers > 2
    assert by_app["mp3d"].barriers > 2
