"""Benchmark E5 — regenerate Figure 4 (perfect BP / ignored dependences)."""

import pytest
from conftest import save_result

from repro.apps import APP_NAMES
from repro.cpu import ProcessorConfig, simulate
from repro.experiments import format_figure4
from repro.experiments.figure4 import run_figure4_app


@pytest.mark.parametrize("app", APP_NAMES)
def test_figure4(benchmark, store50, results_dir, app):
    run = store50.get(app)

    runs = benchmark.pedantic(
        lambda: run_figure4_app(run), rounds=1, iterations=1
    )
    save_result(
        results_dir, f"figure4_{app}", format_figure4({app: runs})
    )

    by_label = {r.label: r for r in runs}
    base = by_label["BASE"]
    pbp = {w: by_label[f"DS-RC-w{w}-pbp"] for w in (16, 32, 64, 128, 256)}
    nodep = {
        w: by_label[f"DS-RC-w{w}-pbp-nodep"]
        for w in (16, 32, 64, 128, 256)
    }

    # Perfect prediction and ignoring dependences only ever help.
    for w in (16, 32, 64, 128, 256):
        real = simulate(
            run.trace, ProcessorConfig(kind="ds", model="RC", window=w)
        )
        assert pbp[w].total <= real.total * 1.01
        assert nodep[w].total <= pbp[w].total * 1.01

    # LU and OCEAN: branch prediction is already near-perfect and data
    # dependences do not hinder performance — idealising changes little.
    if app in ("lu", "ocean"):
        real64 = simulate(
            run.trace, ProcessorConfig(kind="ds", model="RC", window=64)
        )
        assert pbp[64].total >= real64.total * 0.97
        assert nodep[64].total >= pbp[64].total * 0.95

    # Ignoring dependences helps MP3D/PTHOR more at small windows than at
    # the largest window (dependences bind at short distances).
    if app in ("mp3d", "pthor"):
        gain_small = pbp[16].total - nodep[16].total
        gain_large = pbp[256].total - nodep[256].total
        assert gain_small >= gain_large - 2

    # With both idealisations and a huge window, execution approaches
    # busy + synchronization: read stall nearly vanishes.  PTHOR keeps a
    # somewhat larger residue: its reads sit between acquires, and the
    # consistency-imposed orderings are still respected (footnote 3).
    limit = 0.2 if app == "pthor" else 0.12
    assert nodep[256].read <= base.read * limit
