"""Benchmark E9 — regenerate Figure 1 (ordering restrictions per model)."""

from conftest import save_result

from repro.experiments import format_figure1, run_figure1


def test_figure1(benchmark, results_dir):
    result = benchmark.pedantic(run_figure1, rounds=1, iterations=1)
    save_result(results_dir, "figure1", format_figure1(result))

    # SC fully serializes the canonical 8-access sequence.
    assert result["SC"]["makespan"] == 400
    # Each relaxation step shortens the idealised makespan.
    assert result["PC"]["makespan"] < result["SC"]["makespan"]
    assert result["WO"]["makespan"] < result["SC"]["makespan"]
    assert result["RC"]["makespan"] < result["WO"]["makespan"]
    # Total ordering constraints shrink along the relaxation chain
    # SC > WO > RC and SC > PC.
    assert result["RC"]["constraints"] < result["WO"]["constraints"] \
        < result["SC"]["constraints"]
    assert result["PC"]["constraints"] < result["SC"]["constraints"]
