"""Benchmark E6 — the 100-cycle-latency extension (§4.2).

The paper: trends match the 50-cycle results, but performance levels off
at window 128 instead of 64 (the window must exceed the latency), and the
relative gain from hiding latency is consistently larger at the higher
latency.
"""

import pytest
from conftest import save_result

from repro.apps import APP_NAMES
from repro.cpu import ProcessorConfig, simulate
from repro.experiments import format_latency100
from repro.experiments.latency100 import run_latency100


@pytest.mark.parametrize("app", APP_NAMES)
def test_latency100(benchmark, store50, store100, results_dir, app):
    run100 = store100.get(app)

    results = benchmark.pedantic(
        lambda: run_latency100(store100, apps=(app,)),
        rounds=1, iterations=1,
    )
    save_result(results_dir, f"latency100_{app}",
                format_latency100(results))

    runs = results[app]
    base100 = runs[0]
    sweep = {r.label: r for r in runs[1:]}
    w = {n: sweep[f"DS-RC-w{n}"] for n in (16, 32, 64, 128, 256)}

    # Monotone in window size.
    totals = [w[n].total for n in (16, 32, 64, 128, 256)]
    for a, b in zip(totals, totals[1:]):
        assert b <= a * 1.02

    # Level-off moves out to 128: the 64 -> 128 step still pays off
    # noticeably more than the 128 -> 256 step.
    gain_64_128 = w[64].total - w[128].total
    gain_128_256 = w[128].total - w[256].total
    assert gain_64_128 >= gain_128_256 - 2

    # At window 64 (== half the latency) a larger fraction of read
    # latency remains than at window 128.
    assert w[128].read <= w[64].read

    # The relative gain from hiding latency is at least as large as at
    # 50 cycles (the memory share of BASE is bigger).
    run50 = store50.get(app)
    ds50 = simulate(
        run50.trace, ProcessorConfig(kind="ds", model="RC", window=256)
    )
    rel_gain_50 = 1 - ds50.total / run50.base.total
    rel_gain_100 = 1 - w[256].total / base100.total
    assert rel_gain_100 >= rel_gain_50 - 0.05
