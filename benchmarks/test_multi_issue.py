"""Benchmark E7 — the multiple-instruction-issue extension (§4.2).

With four-wide issue the computation shrinks while memory latency stays
at 50 cycles, so under RC performance keeps improving from window 64 to
128 where single issue had levelled off, and the relative speedup from
multiple issue is larger under RC than under SC.
"""

import pytest
from conftest import save_result

from repro.apps import APP_NAMES
from repro.cpu import ProcessorConfig, simulate
from repro.experiments import format_multi_issue
from repro.experiments.multi_issue import run_multi_issue


@pytest.mark.parametrize("app", APP_NAMES)
def test_multi_issue(benchmark, store50, results_dir, app):
    run = store50.get(app)

    results = benchmark.pedantic(
        lambda: run_multi_issue(store50, apps=(app,)),
        rounds=1, iterations=1,
    )
    save_result(results_dir, f"multi_issue_{app}",
                format_multi_issue(results))

    runs = results[app]
    sweep = {r.label: r for r in runs[1:]}
    w = {n: sweep[f"DS-RC-w{n}-i4"] for n in (16, 32, 64, 128, 256)}

    # Four-wide issue at window 64 beats single issue at window 64.
    single64 = simulate(
        run.trace, ProcessorConfig(kind="ds", model="RC", window=64)
    )
    assert w[64].total < single64.total

    # Gains persist from 64 to 128 at least as strongly as 128 to 256
    # (the window must cover more latency when computation is faster).
    gain_64_128 = w[64].total - w[128].total
    gain_128_256 = w[128].total - w[256].total
    assert gain_64_128 >= gain_128_256 - 2

    # The relative speedup of 4-issue over 1-issue is larger under RC
    # than under SC (the paper's preliminary finding).
    sc1 = simulate(
        run.trace,
        ProcessorConfig(kind="ds", model="SC", window=128),
    )
    sc4 = simulate(
        run.trace,
        ProcessorConfig(kind="ds", model="SC", window=128, issue_width=4),
    )
    rc1 = simulate(
        run.trace,
        ProcessorConfig(kind="ds", model="RC", window=128),
    )
    speedup_sc = sc1.total / sc4.total
    speedup_rc = rc1.total / w[128].total
    assert speedup_rc >= speedup_sc - 0.05
