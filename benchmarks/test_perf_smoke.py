"""Performance smoke test: record core throughput numbers.

Times the two hot loops everything else is gated on — the functional
interpreter (trace generation) and the dynamic-scheduling processor
model (trace replay) — on the tiny LU workload, and writes the numbers
to ``BENCH_core.json`` at the repository root so successive PRs leave a
performance trajectory.  Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_smoke.py -q
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro import MultiprocessorConfig, TangoExecutor, build_app
from repro.cpu import ProcessorConfig, simulate
from repro.verify import ExecutionRecorder, check_execution

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_perf_smoke():
    config = MultiprocessorConfig(trace_cpus=(0,))

    workload = build_app("lu", preset="tiny")
    compiled = TangoExecutor(
        workload.programs, config, memory=workload.memory
    )
    result, gen_s = _timed(compiled.run)
    workload.verify(result.memory)
    instructions = result.stats.total_instructions()
    trace = result.trace(0)

    ref_workload = build_app("lu", preset="tiny")
    reference = TangoExecutor(
        ref_workload.programs, config, memory=ref_workload.memory,
        compiled=False,
    )
    _, ref_s = _timed(reference.run)

    ds_cfg = ProcessorConfig(kind="ds", model="RC", window=256)
    _, ds_s = _timed(lambda: simulate(trace, ds_cfg))

    # DS replay with every miss re-timed through the mesh backend: the
    # contention model's overhead relative to the fixed penalty.
    from repro.net import build_network

    mesh = build_network("mesh", config.n_cpus, config.line_size)
    _, mesh_s = _timed(lambda: simulate(trace, ds_cfg, network=mesh))

    # Axiomatic-checker throughput over a freshly recorded run.
    rec_workload = build_app("lu", preset="tiny")
    recorder = ExecutionRecorder()
    rec_result = TangoExecutor(
        rec_workload.programs,
        MultiprocessorConfig(trace_cpus=()),
        memory=rec_workload.memory,
        recorder=recorder,
    ).run()
    rec_workload.verify(rec_result.memory)
    log = recorder.log()
    check, verify_s = _timed(lambda: check_execution(log, "SC"))
    assert check.ok

    # Instrumentation overhead on the DS replay loop.  The disabled
    # path (a probe with metrics off and no tracer resolves to None
    # inside the models) is guarded at <=2%; the fully enabled path is
    # recorded for the trajectory, not bounded.
    from repro.obs import ChromeTracer, MetricsRegistry, Probe

    plain_s = disabled_s = float("inf")
    for _ in range(5):
        _, a = _timed(lambda: simulate(trace, ds_cfg))
        _, b = _timed(lambda: simulate(trace, ds_cfg, probe=Probe()))
        plain_s = min(plain_s, a)
        disabled_s = min(disabled_s, b)
    _, enabled_s = _timed(lambda: simulate(
        trace, ds_cfg,
        probe=Probe(metrics=MetricsRegistry(), tracer=ChromeTracer()),
    ))
    obs_disabled_ratio = disabled_s / plain_s

    payload = {
        "app": "lu",
        "preset": "tiny",
        "interp_instructions": instructions,
        "interp_seconds": round(gen_s, 4),
        "interp_instr_per_s": round(instructions / gen_s),
        "interp_reference_instr_per_s": round(instructions / ref_s),
        "compiled_speedup": round(ref_s / gen_s, 2),
        "ds_trace_instructions": len(trace),
        "ds_seconds": round(ds_s, 4),
        "ds_instr_per_s": round(len(trace) / ds_s),
        "ds_mesh_seconds": round(mesh_s, 4),
        "ds_mesh_instr_per_s": round(len(trace) / mesh_s),
        "ds_mesh_misses_timed": len(mesh.latencies),
        "verify_events": len(log),
        "verify_seconds": round(verify_s, 4),
        "verify_events_per_s": round(len(log) / verify_s),
        "obs_disabled_overhead": round(obs_disabled_ratio, 4),
        "obs_enabled_seconds": round(enabled_s, 4),
        "obs_enabled_overhead": round(enabled_s / plain_s, 2),
        "python": sys.version.split()[0],
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert payload["interp_instr_per_s"] > 0
    assert payload["ds_instr_per_s"] > 0
    assert payload["ds_mesh_instr_per_s"] > 0
    assert payload["ds_mesh_misses_timed"] > 0
    assert payload["verify_events_per_s"] > 0
    # The compiled engine must never regress below the reference one.
    assert payload["compiled_speedup"] > 1.0
    # Observability off may cost at most 2% on the replay hot loop.
    assert obs_disabled_ratio <= 1.02, payload["obs_disabled_overhead"]
