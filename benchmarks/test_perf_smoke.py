"""Performance smoke test: record core throughput numbers.

Times the hot loops everything else is gated on — the functional
interpreter (trace generation), the vectorized static-model kernels,
the event-driven DS engine (both against their scalar oracles), and
the batch cache-lookup kernel — on the tiny LU workload, and writes
the numbers to ``BENCH_core.json`` at the repository root so
successive PRs leave a performance trajectory.  Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_smoke.py -q

Ratios (speedups, instrumentation overhead) are computed from
interleaved min-of-reps samples so machine-speed drift between the two
sides of a ratio cancels out.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro import MultiprocessorConfig, TangoExecutor, build_app
from repro.consistency import get_model
from repro.cpu import (
    ProcessorConfig,
    simulate,
    simulate_ds,
    simulate_ds_fast,
    simulate_ss,
    simulate_ss_fast,
)
from repro.cpu.ds import DSConfig
from repro.verify import ExecutionRecorder, check_execution

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _race(*fns, reps=5):
    """Interleaved min-of-reps wall times, one per callable."""
    best = [float("inf")] * len(fns)
    for _ in range(reps):
        for i, fn in enumerate(fns):
            _, s = _timed(fn)
            if s < best[i]:
                best[i] = s
    return best


def test_perf_smoke():
    config = MultiprocessorConfig(trace_cpus=(0,))

    workload = build_app("lu", preset="tiny")
    compiled = TangoExecutor(
        workload.programs, config, memory=workload.memory
    )
    result, gen_s = _timed(compiled.run)
    workload.verify(result.memory)
    instructions = result.stats.total_instructions()
    trace = result.trace(0)
    n = len(trace)

    ref_workload = build_app("lu", preset="tiny")
    reference = TangoExecutor(
        ref_workload.programs, config, memory=ref_workload.memory,
        compiled=False,
    )
    _, ref_s = _timed(reference.run)

    ds_cfg = ProcessorConfig(kind="ds", model="RC", window=256)
    _, ds_s = _timed(lambda: simulate(trace, ds_cfg))

    # DS replay with every miss re-timed through the mesh backend: the
    # contention model's overhead relative to the fixed penalty.
    from repro.net import build_network

    mesh = build_network("mesh", config.n_cpus, config.line_size)
    _, mesh_s = _timed(lambda: simulate(trace, ds_cfg, network=mesh))

    # Co-simulation throughput: every processor of a 4-node tiny LU
    # stepping against one shared mesh (the ThreadStepper fast path),
    # in co-simulated cycles per second of wall time.
    from repro.cosim import run_cosim
    from repro.experiments.runner import TraceStore

    cosim_store = TraceStore(n_procs=4, preset="tiny")
    crun = cosim_store.get_cosim("lu")
    cosim_result, cosim_s = _timed(lambda: run_cosim(
        crun, ProcessorConfig(kind="ds", model="RC", window=64),
        network_kind="mesh", line_size=cosim_store.line_size,
    ))
    cosim_cycles = sum(cosim_result.cycles())

    # Vectorized engines vs. their scalar oracles, on the same trace.
    # SS is the static model with the most per-row work; DS pairs the
    # event-driven engine against the per-cycle reference.
    rc = get_model("RC")
    static_fast_s, static_scalar_s = _race(
        lambda: simulate_ss_fast(trace, rc),
        lambda: simulate_ss(trace, rc),
    )
    ds_fast_s, ds_scalar_s = _race(
        lambda: simulate_ds_fast(trace, rc, DSConfig(window=256)),
        lambda: simulate_ds(trace, rc, DSConfig(window=256)),
        reps=3,
    )

    # Batch cache-lookup kernel: one vectorized set-index/tag-match
    # over the trace's whole memory-access column.
    import numpy as np

    from repro.mem.cache import EXCLUSIVE, Cache

    cols = trace.np_columns()
    addrs = cols[6][cols[9] != 0].astype(np.int64)
    probe_cache = Cache()
    for addr in addrs[: probe_cache.num_lines].tolist():
        probe_cache.install(addr, EXCLUSIVE)
    (batch_s,) = _race(lambda: probe_cache.batch_hits(addrs), reps=7)

    # Both engines must agree exactly — the cheap CI echo of the full
    # differential suite in tests/test_fastpath.py.
    for kind in ("base", "ssbr", "ss", "ds"):
        fast_bd = simulate(
            trace, ProcessorConfig(kind=kind, model="RC", engine="fast")
        )
        ref_bd = simulate(
            trace,
            ProcessorConfig(kind=kind, model="RC", engine="reference"),
        )
        assert fast_bd == ref_bd, kind

    # Axiomatic-checker throughput over a freshly recorded run.
    rec_workload = build_app("lu", preset="tiny")
    recorder = ExecutionRecorder()
    rec_result = TangoExecutor(
        rec_workload.programs,
        MultiprocessorConfig(trace_cpus=()),
        memory=rec_workload.memory,
        recorder=recorder,
    ).run()
    rec_workload.verify(rec_result.memory)
    log = recorder.log()
    check, verify_s = _timed(lambda: check_execution(log, "SC"))
    assert check.ok

    # Instrumentation overhead on the DS replay loop, measured on BOTH
    # engines explicitly: the event-driven fast path (where a stray
    # per-instruction hook would be catastrophic relative to the
    # vectorized loop) and the scalar reference path.  The disabled
    # path (a probe with metrics off and no tracer resolves to None
    # inside the models) is guarded at <=2% on each; the fully enabled
    # path (occupancy histograms + a Chrome trace span per
    # instruction) at <=40% on the fast engine.
    from repro.obs import ChromeTracer, MetricsRegistry, Probe

    fast_cfg = ProcessorConfig(
        kind="ds", model="RC", window=256, engine="fast"
    )
    ref_cfg = ProcessorConfig(
        kind="ds", model="RC", window=256, engine="reference"
    )
    plain_s, disabled_s, enabled_s = _race(
        lambda: simulate(trace, fast_cfg),
        lambda: simulate(trace, fast_cfg, probe=Probe()),
        lambda: simulate(
            trace, fast_cfg,
            probe=Probe(metrics=MetricsRegistry(), tracer=ChromeTracer()),
        ),
        reps=9,
    )
    obs_disabled_ratio = disabled_s / plain_s
    obs_enabled_ratio = enabled_s / plain_s
    ref_plain_s, ref_disabled_s = _race(
        lambda: simulate(trace, ref_cfg),
        lambda: simulate(trace, ref_cfg, probe=Probe()),
        reps=5,
    )
    obs_disabled_ratio_ref = ref_disabled_s / ref_plain_s

    # Daemon cold vs. warm: the first sweep through a fresh daemon pays
    # trace generation; a second sweep over the same traces (different
    # window) is served from the warm in-memory stores.  This is the
    # latency the simulation service exists to hide.
    import tempfile

    from repro.service import Daemon
    from repro.service.queue import JOB_DONE

    with tempfile.TemporaryDirectory() as svc_dir:
        svc = Path(svc_dir)
        daemon = Daemon(store_dir=svc / "store", cache_dir=svc / "cache")
        daemon.start()

        def _daemon_sweep(windows):
            job, _ = daemon.submit({
                "apps": ["lu"], "kinds": ["base", "ds"],
                "windows": windows, "procs": 4, "preset": "tiny",
            })
            while daemon.job(job.id).state not in (
                JOB_DONE, "failed", "cancelled"
            ):
                time.sleep(0.005)
            assert daemon.job(job.id).state == JOB_DONE
            return job

        try:
            _, daemon_cold_s = _timed(lambda: _daemon_sweep([16]))
            _, daemon_warm_s = _timed(lambda: _daemon_sweep([32]))
            trace_builds = daemon.metrics.get("trace.builds").value
            trace_warm_hits = daemon.metrics.get("trace.warm_hits").value
        finally:
            daemon.stop()

    payload = {
        "app": "lu",
        "preset": "tiny",
        "interp_instructions": instructions,
        "interp_seconds": round(gen_s, 4),
        "interp_instr_per_s": round(instructions / gen_s),
        "interp_reference_instr_per_s": round(instructions / ref_s),
        "compiled_speedup": round(ref_s / gen_s, 2),
        "ds_trace_instructions": n,
        "ds_seconds": round(ds_s, 4),
        "ds_instr_per_s": round(n / ds_s),
        "ds_mesh_seconds": round(mesh_s, 4),
        "ds_mesh_instr_per_s": round(n / mesh_s),
        "ds_mesh_misses_timed": len(mesh.latencies),
        "cosim_procs": len(cosim_result.breakdowns),
        "cosim_seconds": round(cosim_s, 4),
        "cosim_cycles_per_s": round(cosim_cycles / cosim_s),
        "static_instr_per_s": round(n / static_fast_s),
        "static_scalar_instr_per_s": round(n / static_scalar_s),
        "static_speedup": round(static_scalar_s / static_fast_s, 2),
        "ds_event_instr_per_s": round(n / ds_fast_s),
        "ds_scalar_instr_per_s": round(n / ds_scalar_s),
        "ds_event_speedup": round(ds_scalar_s / ds_fast_s, 2),
        "cache_batch_lookups_per_s": round(len(addrs) / batch_s),
        "verify_events": len(log),
        "verify_seconds": round(verify_s, 4),
        "verify_events_per_s": round(len(log) / verify_s),
        "obs_disabled_overhead": round(obs_disabled_ratio, 4),
        "obs_disabled_overhead_ref": round(obs_disabled_ratio_ref, 4),
        "obs_enabled_seconds": round(enabled_s, 4),
        "obs_enabled_overhead": round(obs_enabled_ratio, 2),
        "daemon_cold_seconds": round(daemon_cold_s, 4),
        "daemon_warm_seconds": round(daemon_warm_s, 4),
        "daemon_warm_speedup": round(daemon_cold_s / daemon_warm_s, 2),
        "daemon_trace_builds": trace_builds,
        "daemon_trace_warm_hits": trace_warm_hits,
        "python": sys.version.split()[0],
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert payload["interp_instr_per_s"] > 0
    assert payload["ds_instr_per_s"] > 0
    assert payload["ds_mesh_instr_per_s"] > 0
    assert payload["ds_mesh_misses_timed"] > 0
    assert payload["cosim_cycles_per_s"] > 0
    assert payload["cache_batch_lookups_per_s"] > 0
    assert payload["verify_events_per_s"] > 0
    # The compiled engine must never regress below the reference one.
    assert payload["compiled_speedup"] > 1.0
    # Nor may the vectorized model engines: conservative floors well
    # under the measured ~4.5x (static) and ~1.7-2.1x (DS) so CI noise
    # cannot flake them, but any real regression to scalar parity trips.
    assert payload["static_speedup"] >= 2.0, payload["static_speedup"]
    assert payload["ds_event_speedup"] >= 1.2, payload["ds_event_speedup"]
    # Observability off may cost at most 2% on the replay hot loop —
    # on the event-driven engine AND the scalar reference engine;
    # fully on (histograms + per-instruction spans) at most 40%.
    assert obs_disabled_ratio <= 1.02, payload["obs_disabled_overhead"]
    assert obs_disabled_ratio_ref <= 1.02, (
        payload["obs_disabled_overhead_ref"]
    )
    assert obs_enabled_ratio <= 1.4, payload["obs_enabled_overhead"]
    # A warm daemon sweep must not regenerate traces (that is its whole
    # point) and must beat the cold sweep that built them.
    assert trace_builds == 1, trace_builds  # one lu trace, built once
    assert trace_warm_hits >= 1, trace_warm_hits
    assert payload["daemon_warm_speedup"] >= 1.2, (
        payload["daemon_warm_speedup"]
    )
