"""Benchmark E3 — regenerate Table 3 (branch behaviour)."""

from conftest import save_result

from repro.experiments import format_table3, run_table3


def test_table3(benchmark, store50, results_dir):
    store50.all_apps()

    rows = benchmark.pedantic(
        lambda: run_table3(store50), rounds=1, iterations=1
    )
    save_result(results_dir, "table3", format_table3(rows))

    by_app = {r.app: r for r in rows}
    # Shape checks against the paper's Table 3:
    # PTHOR has the worst branch prediction of the suite,
    accuracy = {a: r.predicted_pct for a, r in by_app.items()}
    assert min(accuracy, key=accuracy.get) == "pthor"
    # LU and OCEAN predict extremely well (paper: ~98%),
    assert accuracy["lu"] > 92.0
    assert accuracy["ocean"] > 92.0
    # branch-dense applications (PTHOR, LOCUS) have short inter-branch
    # distances; the numeric ones (LU, OCEAN, MP3D) longer,
    assert by_app["pthor"].avg_distance < by_app["ocean"].avg_distance
    assert by_app["locus"].avg_distance < by_app["lu"].avg_distance
    # and the mispredict distance ordering follows accuracy.
    assert (
        by_app["pthor"].avg_mispredict_distance
        < by_app["lu"].avg_mispredict_distance
    )
