"""Benchmarks E11-E13 — the extension experiments.

E11: multiple hardware contexts vs. dynamic scheduling (§5's competing
technique).  E12: boosting SC with prefetch + speculative loads ([8]).
E13: compiler read scheduling for the SS processor (the paper's stated
future work).
"""

from conftest import save_result

from repro.experiments import (
    format_compiler_sched,
    format_contexts,
    format_sc_boost,
    run_compiler_sched,
    run_contexts,
    run_sc_boost,
)


def test_contexts(benchmark, store50, results_dir):
    store50.all_apps()

    result = benchmark.pedantic(
        lambda: run_contexts(store50, apps=("mp3d", "lu", "ocean")),
        rounds=1, iterations=1,
    )
    save_result(results_dir, "contexts", format_contexts(result))

    for app, data in result.items():
        eff = data["efficiency"]
        # More contexts -> higher processor efficiency, monotonically.
        assert eff[2] >= eff[1] - 0.02
        assert eff[4] >= eff[2] - 0.02
        # One context is (roughly) the BASE processor with hidden writes,
        # so it beats BASE but not the 4-context machine.
        assert eff[1] >= data["base_efficiency"] - 0.02
        assert eff[4] > data["base_efficiency"]


def test_sc_boost(benchmark, store50, results_dir):
    store50.all_apps()

    result = benchmark.pedantic(
        lambda: run_sc_boost(store50), rounds=1, iterations=1
    )
    save_result(results_dir, "sc_boost", format_sc_boost(result))

    for app, runs in result.items():
        by_label = {r.label: r for r in runs}
        plain = by_label["DS-SC-w64"]
        pf = by_label["DS-SC-w64+pf"]
        spec = by_label["DS-SC-w64+spec"]
        both = by_label["DS-SC-w64+pf+spec"]
        rc = by_label["DS-RC-w64"]
        # Each technique only helps; combined helps at least as much.
        assert pf.total <= plain.total + 2
        assert spec.total <= plain.total + 2
        assert both.total <= min(pf.total, spec.total) + 2
        # The boosted SC closes a substantial part of the SC-to-RC gap.
        gap = plain.total - rc.total
        if gap > 0.05 * plain.total:
            closed = plain.total - both.total
            assert closed >= 0.4 * gap, (app, closed, gap)
        # RC always beats plain SC.  Fully boosted SC can overtake RC
        # (dramatically so on lock-dense PTHOR) because speculative
        # loads also bypass the acquires RC must respect.
        assert rc.total <= plain.total + 2


def test_compiler_sched(benchmark, store50, results_dir):
    store50.all_apps()

    result = benchmark.pedantic(
        lambda: run_compiler_sched(store50), rounds=1, iterations=1
    )
    save_result(results_dir, "compiler_sched",
                format_compiler_sched(result))

    for app, data in result.items():
        runs = {r.label: r for r in data["runs"]}
        orig = runs["SS-RC (original)"]
        sched = runs["SS-RC (scheduled)"]
        stats = data["stats"]
        # The pass moved a meaningful number of loads.
        assert stats.loads_moved > 0
        # Rescheduling helps the regular codes (wide hoisting room) and
        # at worst perturbs the irregular ones by a sliver — the paper's
        # conjecture holds where a compiler could realistically act.
        assert sched.total <= orig.total * 1.01 + 2
        if app in ("lu", "ocean"):
            assert sched.read < orig.read
