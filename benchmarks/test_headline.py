"""Benchmark E8 — the paper's §7 headline averages.

Paper: with 50-cycle latency, the average read latency hidden across the
five applications is 33% (window 16), 63% (window 32), 81% (window 64).
We assert the same staircase shape with generous bands — the absolute
numbers depend on the exact workload scale.
"""

from conftest import save_result

from repro.experiments import format_headline, run_headline


def test_headline(benchmark, store50, results_dir):
    store50.all_apps()

    result = benchmark.pedantic(
        lambda: run_headline(store50), rounds=1, iterations=1
    )
    save_result(results_dir, "headline", format_headline(result))

    avg = {w: result[w]["avg"] for w in result}
    # Monotone increasing in window size.
    assert avg[16] < avg[32] < avg[64]
    # The paper's staircase: ~33% / ~63% / ~81%, checked as bands.
    assert 0.15 <= avg[16] <= 0.60
    assert 0.40 <= avg[32] <= 0.85
    assert 0.65 <= avg[64] <= 1.00
    # Level-off: going 64 -> 256 adds far less than 16 -> 64 did.
    assert avg[256] - avg[64] < (avg[64] - avg[16]) * 0.5
    # LU and OCEAN fully hidden at 64 (paper: "read latency was fully
    # hidden at the 64 window size").
    assert result[64]["lu"] > 0.9
    assert result[64]["ocean"] > 0.9
