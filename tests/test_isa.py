"""Unit tests for the instruction set definitions."""

import pytest

from repro.isa import (
    FuClass,
    Instruction,
    MemClass,
    Op,
    Program,
    ProgramError,
    fp_reg,
    fu_class,
    int_reg,
    is_cond_branch,
    is_control,
    is_fp,
    is_load,
    is_mem,
    is_store,
    is_sync,
    mem_class,
    mem_width,
    reg_name,
)


class TestOpClassification:
    def test_every_op_has_a_functional_unit(self):
        for op in Op:
            assert isinstance(fu_class(op), FuClass)

    def test_every_op_has_a_mem_class(self):
        for op in Op:
            assert isinstance(mem_class(op), MemClass)

    @pytest.mark.parametrize("op,fu", [
        (Op.ADD, FuClass.INT_ALU),
        (Op.MUL, FuClass.INT_ALU),
        (Op.SLLI, FuClass.SHIFTER),
        (Op.FADD, FuClass.FP_ADD),
        (Op.FMUL, FuClass.FP_MUL),
        (Op.FDIV, FuClass.FP_DIV),
        (Op.FSQRT, FuClass.FP_DIV),
        (Op.CVTIF, FuClass.FP_CVT),
        (Op.LW, FuClass.LOAD_STORE),
        (Op.FSD, FuClass.LOAD_STORE),
        (Op.LOCK, FuClass.LOAD_STORE),
        (Op.BARRIER, FuClass.LOAD_STORE),
        (Op.BEQ, FuClass.BRANCH),
        (Op.J, FuClass.BRANCH),
        (Op.JR, FuClass.BRANCH),
        (Op.HALT, FuClass.BRANCH),
    ])
    def test_fu_assignments(self, op, fu):
        assert fu_class(op) == fu

    @pytest.mark.parametrize("op,cls", [
        (Op.LW, MemClass.READ),
        (Op.FLD, MemClass.READ),
        (Op.SW, MemClass.WRITE),
        (Op.FSD, MemClass.WRITE),
        (Op.LOCK, MemClass.ACQUIRE),
        (Op.EVWAIT, MemClass.ACQUIRE),
        (Op.UNLOCK, MemClass.RELEASE),
        (Op.EVSET, MemClass.RELEASE),
        (Op.EVCLEAR, MemClass.RELEASE),
        (Op.BARRIER, MemClass.BARRIER),
        (Op.ADD, MemClass.NONE),
        (Op.BEQ, MemClass.NONE),
    ])
    def test_mem_classes(self, op, cls):
        assert mem_class(op) == cls

    def test_load_store_predicates(self):
        assert is_load(Op.LW) and is_load(Op.FLD)
        assert is_store(Op.SW) and is_store(Op.FSD)
        assert not is_load(Op.SW)
        assert not is_store(Op.LW)
        assert is_mem(Op.LW) and is_mem(Op.FSD)
        assert not is_mem(Op.LOCK)  # sync is not a plain data access

    def test_sync_predicate(self):
        for op in (Op.LOCK, Op.UNLOCK, Op.BARRIER, Op.EVWAIT, Op.EVSET,
                   Op.EVCLEAR):
            assert is_sync(op)
        assert not is_sync(Op.LW)

    def test_control_predicates(self):
        assert is_cond_branch(Op.BNE)
        assert not is_cond_branch(Op.J)
        assert is_control(Op.J) and is_control(Op.JR)
        assert is_control(Op.HALT)
        assert not is_control(Op.ADD)

    def test_mem_width(self):
        assert mem_width(Op.LW) == 4
        assert mem_width(Op.SW) == 4
        assert mem_width(Op.FLD) == 8
        assert mem_width(Op.FSD) == 8
        with pytest.raises(ValueError):
            mem_width(Op.ADD)


class TestRegisters:
    def test_int_reg_range(self):
        assert int_reg(0) == 0
        assert int_reg(31) == 31
        with pytest.raises(ValueError):
            int_reg(32)
        with pytest.raises(ValueError):
            int_reg(-1)

    def test_fp_reg_range(self):
        assert fp_reg(0) == 32
        assert fp_reg(31) == 63
        with pytest.raises(ValueError):
            fp_reg(32)

    def test_is_fp(self):
        assert not is_fp(int_reg(5))
        assert is_fp(fp_reg(5))

    def test_reg_names(self):
        assert reg_name(0) == "r0"
        assert reg_name(31) == "r31"
        assert reg_name(32) == "f0"
        assert reg_name(63) == "f31"
        with pytest.raises(ValueError):
            reg_name(64)


class TestProgram:
    def test_labels_resolve(self):
        p = Program("t")
        p.define_label("top")
        p.append(Instruction(Op.ADDI, rd=1, rs1=0, imm=1))
        p.append(Instruction(Op.J, label="top"))
        p.seal()
        assert p.instructions[1].target == 0

    def test_seal_appends_halt(self):
        p = Program("t")
        p.append(Instruction(Op.NOP))
        p.seal()
        assert p.instructions[-1].op is Op.HALT

    def test_seal_idempotent(self):
        p = Program("t")
        p.append(Instruction(Op.HALT))
        p.seal()
        n = len(p)
        p.seal()
        assert len(p) == n

    def test_duplicate_label_rejected(self):
        p = Program("t")
        p.define_label("x")
        with pytest.raises(ProgramError):
            p.define_label("x")

    def test_undefined_label_rejected(self):
        p = Program("t")
        p.append(Instruction(Op.J, label="nowhere"))
        with pytest.raises(ProgramError):
            p.seal()

    def test_branch_without_target_rejected(self):
        p = Program("t")
        p.append(Instruction(Op.BEQ, rs1=1, rs2=2))
        with pytest.raises(ProgramError):
            p.seal()

    def test_append_after_seal_rejected(self):
        p = Program("t")
        p.seal()
        with pytest.raises(ProgramError):
            p.append(Instruction(Op.NOP))

    def test_disassemble_contains_labels(self):
        p = Program("t")
        p.define_label("loop")
        p.append(Instruction(Op.J, label="loop"))
        p.seal()
        text = p.disassemble()
        assert "loop:" in text
        assert "j" in text

    def test_sources(self):
        i = Instruction(Op.ADD, rd=3, rs1=1, rs2=2)
        assert i.sources() == (1, 2)
        assert Instruction(Op.NOP).sources() == ()
