"""Tests for the virtual-time synchronization manager."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sync import SyncError, SyncManager


class TestLocks:
    def test_free_lock_acquires_immediately(self):
        m = SyncManager(4)
        assert m.acquire_lock(0x10, tid=0, now=5)
        assert m.lock_holder(0x10) == 0

    def test_held_lock_blocks(self):
        m = SyncManager(4)
        m.acquire_lock(0x10, 0, 0)
        assert not m.acquire_lock(0x10, 1, 3)

    def test_release_hands_to_fifo_waiter(self):
        m = SyncManager(4)
        m.acquire_lock(0x10, 0, 0)
        m.acquire_lock(0x10, 1, 5)
        m.acquire_lock(0x10, 2, 7)
        w = m.release_lock(0x10, 0, now=20)
        assert w.tid == 1
        assert w.grant_time == 20
        assert w.wait == 15
        assert m.lock_holder(0x10) == 1
        w2 = m.release_lock(0x10, 1, now=30)
        assert w2.tid == 2 and w2.wait == 23

    def test_release_with_no_waiters_frees(self):
        m = SyncManager(4)
        m.acquire_lock(0x10, 0, 0)
        assert m.release_lock(0x10, 0, 5) is None
        assert m.lock_holder(0x10) is None
        assert m.acquire_lock(0x10, 1, 6)

    def test_grant_never_before_request(self):
        m = SyncManager(4)
        m.acquire_lock(0x10, 0, 0)
        m.acquire_lock(0x10, 1, 50)
        w = m.release_lock(0x10, 0, now=10)  # release "before" request
        assert w.grant_time == 50
        assert w.wait == 0

    def test_reacquire_raises(self):
        m = SyncManager(4)
        m.acquire_lock(0x10, 0, 0)
        with pytest.raises(SyncError):
            m.acquire_lock(0x10, 0, 1)

    def test_unlock_free_lock_raises(self):
        m = SyncManager(4)
        with pytest.raises(SyncError):
            m.release_lock(0x10, 0, 0)

    def test_unlock_by_non_holder_raises(self):
        m = SyncManager(4)
        m.acquire_lock(0x10, 0, 0)
        with pytest.raises(SyncError):
            m.release_lock(0x10, 1, 5)

    def test_independent_locks(self):
        m = SyncManager(4)
        assert m.acquire_lock(0x10, 0, 0)
        assert m.acquire_lock(0x20, 1, 0)


class TestBarriers:
    def test_all_but_last_block(self):
        m = SyncManager(3)
        assert m.barrier_arrive(0x30, 0, 10) is None
        assert m.barrier_arrive(0x30, 1, 20) is None
        wakeups = m.barrier_arrive(0x30, 2, 35)
        assert wakeups is not None
        by_tid = {w.tid: w for w in wakeups}
        assert set(by_tid) == {0, 1, 2}
        assert by_tid[0].wait == 25
        assert by_tid[1].wait == 15
        assert by_tid[2].wait == 0
        assert all(w.grant_time == 35 for w in wakeups)

    def test_barrier_reusable(self):
        m = SyncManager(2)
        m.barrier_arrive(0x30, 0, 0)
        m.barrier_arrive(0x30, 1, 1)
        assert m.barrier_episodes(0x30) == 1
        m.barrier_arrive(0x30, 1, 5)
        wakeups = m.barrier_arrive(0x30, 0, 9)
        assert wakeups is not None
        assert m.barrier_episodes(0x30) == 2

    def test_double_arrival_raises(self):
        m = SyncManager(3)
        m.barrier_arrive(0x30, 0, 0)
        with pytest.raises(SyncError):
            m.barrier_arrive(0x30, 0, 1)

    def test_single_thread_barrier_passes(self):
        m = SyncManager(1)
        wakeups = m.barrier_arrive(0x30, 0, 7)
        assert wakeups is not None and wakeups[0].wait == 0


class TestEvents:
    def test_wait_on_unset_blocks(self):
        m = SyncManager(2)
        assert not m.event_wait(0x40, 0, 5)

    def test_set_releases_all_waiters(self):
        m = SyncManager(3)
        m.event_wait(0x40, 0, 5)
        m.event_wait(0x40, 1, 8)
        wakeups = m.event_set(0x40, 2, 30)
        assert {w.tid for w in wakeups} == {0, 1}
        assert {w.wait for w in wakeups} == {25, 22}

    def test_wait_on_set_event_passes(self):
        m = SyncManager(2)
        m.event_set(0x40, 0, 0)
        assert m.event_wait(0x40, 1, 5)

    def test_clear_resets(self):
        m = SyncManager(2)
        m.event_set(0x40, 0, 0)
        m.event_clear(0x40)
        assert not m.event_is_set(0x40)
        assert not m.event_wait(0x40, 1, 5)

    def test_clear_with_waiters_raises(self):
        m = SyncManager(2)
        m.event_wait(0x40, 0, 0)
        with pytest.raises(SyncError):
            m.event_clear(0x40)


class TestLockHandoffUnderContention:
    """A contended lock is handed down the waiter queue without ever
    going free in between, and every grant accounts its wait."""

    def test_chained_handoff_stays_fifo(self):
        m = SyncManager(8)
        m.acquire_lock(0x10, 0, 0)
        for tid, at in ((1, 2), (2, 4), (3, 6), (4, 8)):
            assert not m.acquire_lock(0x10, tid, at)
        release_at = 10
        for expect_tid, requested in ((1, 2), (2, 4), (3, 6), (4, 8)):
            w = m.release_lock(0x10, m.lock_holder(0x10), release_at)
            assert w.tid == expect_tid
            assert w.grant_time == release_at
            assert w.wait == release_at - requested
            # The lock never appears free during a handoff.
            assert m.lock_holder(0x10) == expect_tid
            release_at += 10
        assert m.release_lock(0x10, 4, release_at) is None
        assert m.lock_holder(0x10) is None

    def test_late_acquirer_queues_behind_handoff(self):
        m = SyncManager(4)
        m.acquire_lock(0x10, 0, 0)
        m.acquire_lock(0x10, 1, 1)
        w = m.release_lock(0x10, 0, 5)
        assert w.tid == 1
        # Thread 2 arrives after the handoff: it must queue, and the
        # next release grants it (not thread 0 re-requesting later).
        assert not m.acquire_lock(0x10, 2, 6)
        assert not m.acquire_lock(0x10, 0, 7)
        w2 = m.release_lock(0x10, 1, 9)
        assert w2.tid == 2 and w2.wait == 3
        w3 = m.release_lock(0x10, 2, 12)
        assert w3.tid == 0 and w3.wait == 5

    def test_handoff_wait_uses_request_time_not_release(self):
        m = SyncManager(4)
        m.acquire_lock(0x10, 0, 0)
        m.acquire_lock(0x10, 1, 100)
        w = m.release_lock(0x10, 0, 40)
        assert w.grant_time == 100 and w.wait == 0


class TestBarrierEpochReuse:
    """One barrier address serves every epoch; state fully resets."""

    def test_three_epochs_with_rotating_last_arrival(self):
        m = SyncManager(3)
        arrival_orders = [
            ((0, 10), (1, 20), (2, 30)),
            ((2, 40), (0, 44), (1, 50)),
            ((1, 60), (2, 61), (0, 70)),
        ]
        for epoch, order in enumerate(arrival_orders):
            wakeups = None
            for tid, at in order:
                wakeups = m.barrier_arrive(0x30, tid, at)
            assert wakeups is not None
            last = order[-1][1]
            by_tid = {w.tid: w for w in wakeups}
            assert set(by_tid) == {0, 1, 2}
            for tid, at in order:
                assert by_tid[tid].grant_time == last
                assert by_tid[tid].wait == last - at
            assert m.barrier_episodes(0x30) == epoch + 1

    def test_double_arrival_still_raises_after_reuse(self):
        m = SyncManager(2)
        m.barrier_arrive(0x30, 0, 0)
        m.barrier_arrive(0x30, 1, 1)     # epoch 1 completes
        m.barrier_arrive(0x30, 0, 5)
        with pytest.raises(SyncError):
            m.barrier_arrive(0x30, 0, 6)
        # The failed arrival did not corrupt the epoch: 1 completes it.
        assert m.barrier_arrive(0x30, 1, 7) is not None
        assert m.barrier_episodes(0x30) == 2

    def test_independent_barrier_addresses(self):
        m = SyncManager(2)
        assert m.barrier_arrive(0x30, 0, 0) is None
        assert m.barrier_arrive(0x70, 1, 0) is None
        assert m.barrier_episodes(0x30) == 0
        assert m.barrier_episodes(0x70) == 0


class TestEventRearm:
    """set -> clear -> wait -> set again: a reusable producer/consumer
    event (the PTHOR idiom), with wait accounting per generation."""

    def test_full_rearm_cycle(self):
        m = SyncManager(3)
        m.event_set(0x40, 0, 10)
        assert m.event_is_set(0x40)
        assert m.event_wait(0x40, 1, 11)      # passes while set
        m.event_clear(0x40)
        assert not m.event_is_set(0x40)
        assert not m.event_wait(0x40, 1, 20)  # blocks after re-arm
        assert not m.event_wait(0x40, 2, 25)
        wakeups = m.event_set(0x40, 0, 30)
        assert {(w.tid, w.wait) for w in wakeups} == {(1, 10), (2, 5)}
        assert m.event_is_set(0x40)

    def test_set_is_idempotent_and_sticky(self):
        m = SyncManager(2)
        assert m.event_set(0x40, 0, 0) == []
        assert m.event_set(0x40, 0, 5) == []
        assert m.event_wait(0x40, 1, 6)

    def test_clear_unset_event_is_noop(self):
        m = SyncManager(2)
        m.event_clear(0x40)
        assert not m.event_is_set(0x40)

    def test_waits_do_not_leak_across_generations(self):
        m = SyncManager(2)
        m.event_wait(0x40, 1, 0)
        assert len(m.event_set(0x40, 0, 4)) == 1
        m.event_clear(0x40)
        # No stale waiter from generation 1 reappears in generation 2.
        assert m.event_set(0x40, 0, 8) == []


class TestDiagnostics:
    def test_blocked_threads_report(self):
        m = SyncManager(4)
        m.acquire_lock(0x10, 0, 0)
        m.acquire_lock(0x10, 1, 1)
        m.barrier_arrive(0x30, 2, 2)
        m.event_wait(0x40, 3, 3)
        blocked = m.blocked_threads()
        assert set(blocked) == {1, 2, 3}
        assert "lock" in blocked[1]
        assert "barrier" in blocked[2]
        assert "event" in blocked[3]


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(0, 3), min_size=1, max_size=40))
def test_property_lock_fifo_and_mutual_exclusion(tids):
    """Interleave acquire/release arbitrarily: the lock is always held by
    at most one thread and grants follow FIFO request order."""
    m = SyncManager(4)
    holder = None
    waiting: list[int] = []
    now = 0
    for tid in tids:
        now += 1
        if holder is None:
            assert m.acquire_lock(0xAA, tid, now)
            holder = tid
        elif tid == holder:
            w = m.release_lock(0xAA, tid, now)
            if waiting:
                assert w is not None and w.tid == waiting.pop(0)
                holder = w.tid
            else:
                assert w is None
                holder = None
        elif tid not in waiting:
            assert not m.acquire_lock(0xAA, tid, now)
            waiting.append(tid)
    assert m.lock_holder(0xAA) == holder
