"""Tests for the simulation-as-a-service front half.

Queue semantics run against the real thread-safe queue; HTTP tests run
against a real ThreadingHTTPServer on an ephemeral port; the daemon
lifecycle tests use the ``executor`` seam so they stay fast; and the
byte-identity tests run real (tiny) simulations through both the
daemon and the batch path and compare stored payloads.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cpu.results import ExecutionBreakdown
from repro.service import (
    ClientError,
    Daemon,
    DaemonClient,
    JobQueue,
    QueueClosed,
    QueueFull,
    ResultStore,
    dispatch,
    expand_grid,
    make_server,
    run_batch,
    submission_id,
    sweep_from_request,
)
from repro.service.queue import JOB_CANCELLED, JOB_DONE, JOB_FAILED


def _sweep(**overrides):
    grid = dict(
        apps=("lu",), kinds=("base",), models=("RC",), windows=(16,),
        networks=("ideal",), penalties=(50,), procs=4, preset="tiny",
    )
    grid.update(overrides)
    return expand_grid(**grid)


def fake_executor(job):
    """Deterministic stand-in for a real simulation."""
    return ExecutionBreakdown(
        label=job.label(), busy=100, sync=10, read=20, write=30,
        other=5, instructions=100,
    )


class TestSubmissionId:
    def test_same_canonical_sweep_same_id(self):
        a = _sweep(kinds=("base", "ds"))
        b = _sweep(kinds=("ds", "base"))
        assert submission_id(a) == submission_id(b)

    def test_different_grid_different_id(self):
        assert submission_id(_sweep()) != submission_id(
            _sweep(penalties=(100,))
        )


class TestJobQueue:
    def test_priority_first_fifo_within(self):
        q = JobQueue(maxsize=16)
        low, _ = q.submit(_sweep(), priority=5)
        first, _ = q.submit(_sweep(penalties=(25,)), priority=0)
        second, _ = q.submit(_sweep(penalties=(100,)), priority=0)
        order = [q.pop(timeout=0.1).id for _ in range(3)]
        assert order == [first.id, second.id, low.id]

    def test_bounded_depth_rejects_with_hint(self):
        q = JobQueue(maxsize=2)
        q.submit(_sweep(), priority=0)
        q.submit(_sweep(penalties=(25,)), priority=0)
        with pytest.raises(QueueFull) as exc_info:
            q.submit(_sweep(penalties=(100,)), priority=0)
        assert exc_info.value.depth == 2
        assert exc_info.value.retry_after >= 1.0

    def test_retry_after_scales_with_drain_rate(self):
        q = JobQueue(maxsize=4)
        for _ in range(20):
            q.note_duration(10.0)
        assert q.retry_after(4) > q.retry_after(1) >= 1.0

    def test_duplicate_submission_returns_existing(self):
        q = JobQueue(maxsize=4)
        job, created = q.submit(_sweep())
        dup, dup_created = q.submit(_sweep())
        assert created and not dup_created
        assert dup is job
        assert q.depth() == 1

    def test_failed_job_resubmits_fresh(self):
        q = JobQueue(maxsize=4)
        job, _ = q.submit(_sweep())
        q.pop(timeout=0.1)
        job.state = JOB_FAILED
        retry, created = q.submit(_sweep())
        assert created
        assert retry.id == job.id  # same canonical content address

    def test_close_cancels_queued_and_refuses_new(self):
        q = JobQueue(maxsize=4)
        job, _ = q.submit(_sweep())
        cancelled = q.close()
        assert [j.id for j in cancelled] == [job.id]
        assert job.state == JOB_CANCELLED
        with pytest.raises(QueueClosed):
            q.submit(_sweep(penalties=(25,)))
        assert q.pop(timeout=0.1) is None


class TestSweepFromRequest:
    def test_grid_form_expands_and_dedupes(self):
        jobs = sweep_from_request({
            "apps": ["lu"], "kinds": ["base", "ds"], "windows": [16],
            "procs": 4, "preset": "tiny",
        })
        assert [j.kind for j in jobs] == ["base", "ds"]

    def test_explicit_jobs_form(self):
        jobs = sweep_from_request({
            "jobs": [
                {"app": "lu", "kind": "ds", "window": 16,
                 "procs": 4, "preset": "tiny"},
                {"app": "lu", "kind": "ds", "window": 16,
                 "procs": 4, "preset": "tiny"},  # dup collapses
            ],
        })
        assert len(jobs) == 1

    @pytest.mark.parametrize("payload", [
        "not-a-dict",
        {"bogus_field": 1},
        {"apps": ["no-such-app"]},
        {"jobs": []},
        {"jobs": [{"kind": "ds"}]},                 # missing app
        {"jobs": [{"app": "lu"}], "apps": ["lu"]},  # mixed forms
        {"kinds": ["warp-drive"]},
    ])
    def test_malformed_rejected(self, payload):
        with pytest.raises(ValueError):
            sweep_from_request(payload)


@pytest.fixture
def daemon(tmp_path):
    d = Daemon(store_dir=tmp_path / "store", executor=fake_executor)
    d.start()
    yield d
    d.stop()


def _wait_done(daemon, job_id, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = daemon.job(job_id)
        if job.state in (JOB_DONE, JOB_FAILED, JOB_CANCELLED):
            return job
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} still {job.state}")


class TestDaemonLifecycle:
    def test_submit_executes_and_stores(self, daemon):
        job, created = daemon.submit({
            "apps": ["lu"], "kinds": ["base", "ds"], "windows": [16],
            "procs": 4, "preset": "tiny",
        })
        assert created
        final = _wait_done(daemon, job.id)
        assert final.state == JOB_DONE
        assert final.counts() == {"done": 2}
        assert final.queue_latency is not None
        rows = daemon.results(job.id)["results"]
        assert [r["source"] for r in rows] == ["computed", "computed"]
        assert all(r["breakdown"]["total"] == 165 for r in rows)

    def test_resubmit_of_done_job_dedupes(self, daemon):
        payload = {"apps": ["lu"], "kinds": ["base"], "procs": 4,
                   "preset": "tiny"}
        job, _ = daemon.submit(payload)
        _wait_done(daemon, job.id)
        dup, created = daemon.submit(payload)
        assert not created
        assert dup.id == job.id

    def test_overlapping_submission_served_from_result_cache(
        self, daemon
    ):
        first, _ = daemon.submit({"apps": ["lu"], "kinds": ["base"],
                                  "procs": 4, "preset": "tiny"})
        _wait_done(daemon, first.id)
        # A different submission sharing the sub-run: store/cache hit.
        second, created = daemon.submit({
            "apps": ["lu"], "kinds": ["base", "ds"], "windows": [16],
            "procs": 4, "preset": "tiny",
        })
        assert created
        final = _wait_done(daemon, second.id)
        sources = {r.label: r.source for r in final.records}
        assert sources["lu/base/ideal/m50"] == "store"
        assert sources["lu/ds/RC/w16/ideal/m50"] == "computed"

    def test_executor_failure_marks_job_failed(self, tmp_path):
        def boom(job):
            raise RuntimeError("synthetic failure")

        d = Daemon(store_dir=tmp_path / "store", executor=boom)
        d.start()
        try:
            job, _ = d.submit({"apps": ["lu"], "kinds": ["base"],
                               "procs": 4, "preset": "tiny"})
            final = _wait_done(d, job.id)
            assert final.state == JOB_FAILED
            record = final.records[0]
            assert record.state == "failed"
            assert "synthetic failure" in record.history[0]["detail"]
        finally:
            d.stop()

    def test_priority_orders_backlog(self, tmp_path):
        gate = threading.Event()
        ran = []

        def gated(job):
            gate.wait(10.0)
            ran.append(job.label())
            return fake_executor(job)

        d = Daemon(store_dir=tmp_path / "store", executor=gated)
        d.start()
        try:
            blocker, _ = d.submit({"apps": ["lu"], "kinds": ["base"],
                                   "procs": 4, "preset": "tiny"})
            time.sleep(0.1)  # scheduler is now blocked inside it
            low, _ = d.submit({"apps": ["lu"], "penalties": [100],
                               "procs": 4, "preset": "tiny",
                               "priority": 5})
            high, _ = d.submit({"apps": ["lu"], "penalties": [25],
                                "procs": 4, "preset": "tiny",
                                "priority": 0})
            gate.set()
            for job in (blocker, low, high):
                assert _wait_done(d, job.id).state == JOB_DONE
            assert ran.index("lu/ds/RC/w64/ideal/m25") < ran.index(
                "lu/ds/RC/w64/ideal/m100"
            )
        finally:
            d.stop()

    def test_stop_drains_in_flight_and_cancels_rest(self, tmp_path):
        started = threading.Event()
        gate = threading.Event()

        def gated(job):
            started.set()
            gate.wait(10.0)
            return fake_executor(job)

        d = Daemon(store_dir=tmp_path / "store", executor=gated)
        d.start()
        job, _ = d.submit({"apps": ["lu"], "kinds": ["base", "ds"],
                           "models": ["SC", "RC"], "windows": [16],
                           "procs": 4, "preset": "tiny"})
        assert started.wait(5.0)
        stopper = threading.Thread(target=d.stop)
        stopper.start()
        gate.set()  # let the in-flight sub-run finish
        stopper.join(10.0)
        assert not stopper.is_alive()
        final = d.job(job.id)
        counts = final.counts()
        # The sub-run that was executing drained; the rest cancelled.
        assert counts.get("done", 0) >= 1
        assert counts.get("cancelled", 0) >= 1
        assert final.state == JOB_CANCELLED

    def test_stop_cancels_queued_submissions(self, tmp_path):
        d = Daemon(store_dir=tmp_path / "store", executor=fake_executor)
        # Never started: everything stays queued until stop().
        job, _ = d.submit({"apps": ["lu"], "kinds": ["base"],
                           "procs": 4, "preset": "tiny"})
        cancelled = d.stop()
        assert [j.id for j in cancelled] == [job.id]
        assert job.state == JOB_CANCELLED


@pytest.fixture
def http_daemon(tmp_path):
    d = Daemon(store_dir=tmp_path / "store", executor=fake_executor,
               queue_depth=2)
    server = make_server(d)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    d.start()
    host, port = server.server_address[:2]
    yield d, DaemonClient(f"http://{host}:{port}")
    server.shutdown()
    d.stop()
    server.server_close()


class TestDaemonHTTP:
    def test_healthz_and_metrics(self, http_daemon):
        _, client = http_daemon
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0
        assert isinstance(client.metrics(), dict)

    def test_submit_poll_results_roundtrip(self, http_daemon):
        _, client = http_daemon
        accepted = client.submit({
            "apps": ["lu"], "kinds": ["base", "ds"], "windows": [16],
            "procs": 4, "preset": "tiny",
        })
        assert accepted["deduped"] is False
        assert accepted["n_subruns"] == 2
        final = client.wait(accepted["id"], timeout=10)
        assert final["state"] == "done"
        assert final["counts"] == {"done": 2}
        assert final["queue_latency"] is not None
        for sub in final["subruns"]:
            assert sub["queued_at"] <= sub["started_at"]
            assert sub["started_at"] <= sub["finished_at"]
        rows = client.results(accepted["id"])["results"]
        assert len(rows) == 2

    def test_duplicate_submission_returns_existing_id(
        self, http_daemon
    ):
        _, client = http_daemon
        payload = {"apps": ["lu"], "kinds": ["base"], "procs": 4,
                   "preset": "tiny"}
        first = client.submit(payload)
        client.wait(first["id"], timeout=10)
        dup = client.submit(payload)
        assert dup["deduped"] is True
        assert dup["id"] == first["id"]

    def test_bad_grid_is_400(self, http_daemon):
        _, client = http_daemon
        with pytest.raises(ClientError) as exc_info:
            client.submit({"apps": ["no-such-app"]})
        assert exc_info.value.status == 400

    def test_invalid_json_is_400(self, http_daemon):
        _, client = http_daemon
        request = urllib.request.Request(
            client.base_url + "/v1/jobs", data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request, timeout=5)
        assert exc_info.value.code == 400

    def test_unknown_ids_and_routes_are_404(self, http_daemon):
        _, client = http_daemon
        for path in ("/v1/jobs/feedface00000000",
                     "/v1/results/feedface00000000", "/v1/nope"):
            with pytest.raises(ClientError) as exc_info:
                client._request("GET", path)
            assert exc_info.value.status == 404

    def test_queue_full_is_429_with_retry_after(self, tmp_path):
        # No scheduler running, so submissions pile up in the queue.
        d = Daemon(store_dir=tmp_path / "store",
                   executor=fake_executor, queue_depth=1)
        server = make_server(d)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        host, port = server.server_address[:2]
        client = DaemonClient(f"http://{host}:{port}")
        try:
            client.submit({"apps": ["lu"], "procs": 4,
                           "preset": "tiny"})
            request = urllib.request.Request(
                client.base_url + "/v1/jobs",
                data=json.dumps({"apps": ["lu"], "penalties": [100],
                                 "procs": 4,
                                 "preset": "tiny"}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(request, timeout=5)
            assert exc_info.value.code == 429
            retry_after = exc_info.value.headers.get("Retry-After")
            assert retry_after is not None
            assert float(retry_after) >= 1.0
        finally:
            server.shutdown()
            d.stop()
            server.server_close()

    def test_draining_daemon_is_503(self, http_daemon):
        daemon, client = http_daemon
        daemon.queue.close()
        with pytest.raises(ClientError) as exc_info:
            client.submit({"apps": ["lu"], "procs": 4,
                           "preset": "tiny"})
        assert exc_info.value.status == 503


class TestDaemonTracing:
    def test_trace_header_propagates_to_daemon_spans(
        self, http_daemon
    ):
        from repro.obs import TraceContext, stitch, validate_trace

        _, client = http_daemon
        ctx = TraceContext.mint()
        accepted = client.submit({
            "apps": ["lu"], "kinds": ["base", "ds"], "procs": 4,
            "preset": "tiny",
        }, trace=ctx)
        final = client.wait(accepted["id"], timeout=10)
        assert final["state"] == "done"

        spans = client.trace_spans(ctx.trace_id)
        assert spans, "daemon recorded no spans for the trace"
        assert all(s.trace_id == ctx.trace_id for s in spans)
        names = [s.name for s in spans]
        assert "queue-wait" in names
        assert any(n.startswith("sweep ") for n in names)
        assert sum(n.startswith("attempt") for n in names) == 2
        # The daemon's root span hangs off the client's submit span.
        queue_wait = next(s for s in spans if s.name == "queue-wait")
        assert queue_wait.parent_id == ctx.span_id
        # Grafting the client's own span on top yields one valid
        # timeline — the same stitch `submit --trace-out` performs.
        from repro.obs import Span

        t0 = min(s.start for s in spans)
        t1 = max(s.end for s in spans)
        root = Span(ctx.trace_id, ctx.span_id, None, "submit",
                    "client", "main", t0 - 0.001, t1 + 0.001)
        doc = stitch([root] + spans)
        assert validate_trace(doc) == []

    def test_malformed_trace_header_is_400(self, http_daemon):
        _, client = http_daemon
        request = urllib.request.Request(
            client.base_url + "/v1/jobs",
            data=json.dumps({"apps": ["lu"], "procs": 4,
                             "preset": "tiny"}).encode(),
            headers={"Content-Type": "application/json",
                     "X-Repro-Trace": "not-a-trace-context"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request, timeout=5)
        assert exc_info.value.code == 400

    def test_untraced_submissions_record_no_spans(self, http_daemon):
        daemon, client = http_daemon
        accepted = client.submit({"apps": ["lu"], "procs": 4,
                                  "preset": "tiny"})
        client.wait(accepted["id"], timeout=10)
        assert len(daemon.spans) == 0

    def test_unknown_trace_id_is_empty_not_error(self, http_daemon):
        _, client = http_daemon
        assert client.trace_spans("feedfacefeedface") == []

    def test_prometheus_exposition_endpoint(self, http_daemon):
        from repro.obs import PROM_CONTENT_TYPE

        _, client = http_daemon
        accepted = client.submit({"apps": ["lu"], "procs": 4,
                                  "preset": "tiny"})
        client.wait(accepted["id"], timeout=10)
        with urllib.request.urlopen(
            client.base_url + "/v1/metrics?format=prom", timeout=5
        ) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == (
                PROM_CONTENT_TYPE
            )
            text = response.read().decode()
        assert "repro_daemon_submitted_total" in text
        assert "repro_daemon_jobs_done_total" in text
        assert "repro_daemon_job_wait_seconds_bucket" in text
        assert 'le="+Inf"' in text
        # Default format is unchanged: the JSON snapshot.
        snapshot = client.metrics()
        assert "counters" in snapshot and "histograms" in snapshot


class TestShardDispatch:
    def test_dispatch_merges_in_grid_order(self, tmp_path):
        daemons, servers, endpoints = [], [], []
        for i in range(2):
            d = Daemon(store_dir=tmp_path / f"store{i}",
                       executor=fake_executor)
            server = make_server(d)
            threading.Thread(
                target=server.serve_forever, daemon=True
            ).start()
            d.start()
            host, port = server.server_address[:2]
            daemons.append(d)
            servers.append(server)
            endpoints.append(f"http://{host}:{port}")
        try:
            payload = {
                "apps": ["lu"], "kinds": ["base", "ds"],
                "windows": [16], "penalties": [25, 50],
                "procs": 4, "preset": "tiny",
            }
            report = dispatch(endpoints, payload, timeout=20)
            assert report.ok
            assert len(report.shards) == 2
            expected = [j.label() for j in
                        sweep_from_request(payload)]
            assert [r["label"] for r in report.results] == expected
            # Each daemon computed only its own disjoint shard.
            per_daemon = [len(d.store.keys()) for d in daemons]
            assert sum(per_daemon) == len(expected)
            assert all(n > 0 for n in per_daemon)
        finally:
            for server in servers:
                server.shutdown()
            for d in daemons:
                d.stop()
            for server in servers:
                server.server_close()


@pytest.fixture(scope="module")
def warm_traces(tmp_path_factory):
    """Shared tiny trace cache so real-simulation tests stay fast."""
    from repro.experiments.runner import TraceStore

    cache = tmp_path_factory.mktemp("daemon-traces")
    TraceStore(n_procs=4, preset="tiny", cache_dir=cache).get("lu")
    return cache


class TestByteIdentityWithBatch:
    def test_daemon_results_byte_identical_to_batch(
        self, tmp_path, warm_traces
    ):
        """Acceptance: the daemon path and the batch path store
        byte-identical payloads under identical keys."""
        sweep = _sweep(kinds=("base", "ds"))
        batch = run_batch(
            sweep, cache_dir=warm_traces,
            out_dir=tmp_path / "batches",
            store_dir=tmp_path / "batch-store",
        )
        assert not batch.partial

        d = Daemon(store_dir=tmp_path / "daemon-store",
                   cache_dir=warm_traces)
        d.start()
        try:
            job, _ = d.submit({
                "apps": ["lu"], "kinds": ["base", "ds"],
                "windows": [16], "procs": 4, "preset": "tiny",
            })
            final = _wait_done(d, job.id, timeout=60)
            assert final.state == JOB_DONE
        finally:
            d.stop()

        batch_store = ResultStore(tmp_path / "batch-store")
        daemon_store = ResultStore(tmp_path / "daemon-store")
        keys = batch_store.keys()
        assert sorted(keys) == sorted(daemon_store.keys())
        for key in keys:
            assert (
                daemon_store.get_bytes(key)
                == batch_store.get_bytes(key)
            )

    def test_warm_daemon_skips_trace_regeneration(
        self, tmp_path, warm_traces
    ):
        """A second sweep over the same traces must not rebuild them."""
        d = Daemon(store_dir=tmp_path / "store", cache_dir=warm_traces)
        d.start()
        try:
            first, _ = d.submit({"apps": ["lu"], "windows": [16],
                                 "procs": 4, "preset": "tiny"})
            assert _wait_done(d, first.id, timeout=60).state == JOB_DONE
            builds_before = d.metrics.get("trace.builds")
            builds_before = (
                builds_before.value if builds_before else 0
            )
            # Different window: same trace, new simulation.
            second, _ = d.submit({"apps": ["lu"], "windows": [32],
                                  "procs": 4, "preset": "tiny"})
            assert _wait_done(d, second.id, timeout=60).state == JOB_DONE
            builds_after = d.metrics.get("trace.builds")
            builds_after = builds_after.value if builds_after else 0
            warm_hits = d.metrics.get("trace.warm_hits").value
            assert builds_after == builds_before
            assert warm_hits >= 1
        finally:
            d.stop()


class TestServeSignal:
    def test_sigterm_drains_and_exits_130(self, tmp_path):
        """SIGTERM against a live daemon: HTTP stops, the daemon
        drains within its grace budget, exit code is 130."""
        cmd = [
            sys.executable, "-u", "-m", "repro",
            "--preset", "tiny", "--procs", "4",
            "--cache-dir", str(tmp_path / "traces"),
            "serve", "--port", "0", "--grace", "5",
            "--store", str(tmp_path / "store"),
        ]
        repo_src = os.path.join(os.path.dirname(__file__), "..", "src")
        env = dict(os.environ, PYTHONPATH=os.path.abspath(repo_src))
        proc = subprocess.Popen(
            cmd, env=env, start_new_session=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            banner = proc.stdout.readline().decode()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            assert match, banner
            client = DaemonClient(match.group(0))
            accepted = client.submit({
                "apps": ["lu"], "kinds": ["base"], "procs": 4,
                "preset": "tiny",
            })
            final = client.wait(accepted["id"], timeout=60)
            assert final["state"] == "done"
            t0 = time.monotonic()
            os.killpg(proc.pid, signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
            elapsed = time.monotonic() - t0
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
        assert proc.returncode == 130, out.decode()
        assert elapsed < 10.0  # grace is 5s; shutdown is bounded
