"""Tests for the branch target buffer."""

import pytest

from repro.cpu import BranchTargetBuffer
from repro.cpu.ds.btb import predicted_correctly
from repro.isa import Op


class TestPrediction:
    def test_cold_conditional_predicts_not_taken(self):
        btb = BranchTargetBuffer()
        assert btb.predict(Op.BNE, pc=10, fallthrough=11) == 11

    def test_learns_taken_branch(self):
        btb = BranchTargetBuffer()
        btb.update(Op.BNE, 10, taken=True, target=5)
        assert btb.predict(Op.BNE, 10, fallthrough=11) == 5

    def test_two_bit_hysteresis(self):
        btb = BranchTargetBuffer()
        for _ in range(3):
            btb.update(Op.BNE, 10, taken=True, target=5)
        # One not-taken outcome should not flip a saturated counter.
        btb.update(Op.BNE, 10, taken=False, target=5)
        assert btb.predict(Op.BNE, 10, fallthrough=11) == 5
        btb.update(Op.BNE, 10, taken=False, target=5)
        btb.update(Op.BNE, 10, taken=False, target=5)
        assert btb.predict(Op.BNE, 10, fallthrough=11) == 11

    def test_not_taken_branches_not_allocated(self):
        btb = BranchTargetBuffer()
        btb.update(Op.BNE, 10, taken=False, target=5)
        assert btb._lookup(10) is None

    def test_jr_without_entry_is_mispredicted(self):
        btb = BranchTargetBuffer()
        assert btb.predict(Op.JR, 10, fallthrough=11) == -1

    def test_jr_predicts_last_target(self):
        btb = BranchTargetBuffer()
        btb.update(Op.JR, 10, taken=True, target=99)
        assert btb.predict(Op.JR, 10, fallthrough=11) == 99
        btb.update(Op.JR, 10, taken=True, target=123)
        assert btb.predict(Op.JR, 10, fallthrough=11) == 123

    def test_direct_jumps_always_correct(self):
        btb = BranchTargetBuffer()
        assert btb.predict(Op.J, 10, fallthrough=11) == -2

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=10, assoc=4)


class TestReplacement:
    def test_lru_within_set(self):
        btb = BranchTargetBuffer(entries=8, assoc=2)  # 4 sets
        # Three branches mapping to set 0 (pc % 4 == 0).
        btb.update(Op.BNE, 0, taken=True, target=1)
        btb.update(Op.BNE, 4, taken=True, target=2)
        btb.update(Op.BNE, 0, taken=True, target=1)   # refresh pc 0
        btb.update(Op.BNE, 8, taken=True, target=3)   # evicts pc 4
        assert btb._lookup(0) is not None
        assert btb._lookup(4) is None
        assert btb._lookup(8) is not None


class TestPredictedCorrectly:
    def test_loop_branch_accuracy(self):
        btb = BranchTargetBuffer()
        correct = 0
        for i in range(100):
            taken = i < 99
            next_pc = 0 if taken else 7
            if predicted_correctly(btb, Op.BNE, 6, next_pc):
                correct += 1
        # Misses only on warmup and the final exit.
        assert correct >= 97

    def test_alternating_branch_is_hard(self):
        btb = BranchTargetBuffer()
        correct = sum(
            predicted_correctly(btb, Op.BNE, 6, 0 if i % 2 else 7)
            for i in range(100)
        )
        assert correct <= 60

    def test_direct_jump_always_correct(self):
        btb = BranchTargetBuffer()
        assert predicted_correctly(btb, Op.J, 3, 77)
        assert predicted_correctly(btb, Op.JAL, 3, 77)
