"""Unit tests for the extension models: multiple contexts, SC boosting,
compiler read scheduling."""

import pytest

from repro.consistency import RC, SC
from repro.cpu import (
    schedule_reads_early,
    simulate_base,
    simulate_multicontext,
    simulate_ss,
)
from repro.cpu.ds import DSConfig, DSProcessor
from repro.isa import MemClass

from trace_helpers import TraceBuilder, alu_block


def miss_heavy_trace(misses=10, gap=3):
    tb = TraceBuilder()
    for i in range(misses):
        tb.load(rd=-1, stall=50, addr=0x1000 + 64 * i)
        alu_block(tb, gap)
    return tb.build()


class TestMultiContext:
    def test_single_context_exposes_all_misses(self):
        trace = miss_heavy_trace()
        r = simulate_multicontext([trace], switch_penalty=0)
        base = simulate_base(trace)
        assert r.total >= base.total - base.write - 2

    def test_two_contexts_overlap_misses(self):
        t1, t2 = miss_heavy_trace(), miss_heavy_trace()
        one = simulate_multicontext([t1], switch_penalty=0)
        two = simulate_multicontext([t1, t2], switch_penalty=0)
        # Two streams of work in (not much) more time than one.
        assert two.busy == 2 * one.busy
        assert two.total < 1.5 * one.total

    def test_efficiency_improves_with_contexts(self):
        traces = [miss_heavy_trace() for _ in range(8)]
        effs = []
        for k in (1, 2, 4, 8):
            r = simulate_multicontext(traces[:k], switch_penalty=4)
            effs.append(r.busy / r.total)
        assert effs[0] < effs[1] < effs[2]
        assert effs[3] >= effs[2] - 0.02

    def test_switch_penalty_costs(self):
        traces = [miss_heavy_trace(), miss_heavy_trace()]
        free = simulate_multicontext(traces, switch_penalty=0)
        costly = simulate_multicontext(traces, switch_penalty=20)
        assert costly.total > free.total
        assert costly.other > 0

    def test_empty_context_list_rejected(self):
        with pytest.raises(ValueError):
            simulate_multicontext([])

    def test_attribution_sums(self):
        tb = TraceBuilder()
        tb.acquire(stall=50, wait=100)
        tb.load(rd=-1, stall=50)
        alu_block(tb, 5)
        r = simulate_multicontext([tb.build(), miss_heavy_trace()],
                                  switch_penalty=4)
        assert r.total == r.busy + r.sync + r.read + r.write + r.other


class TestScBoost:
    def test_prefetch_shrinks_delayed_miss(self):
        # Two misses under SC: the second is delayed by the first; with
        # prefetch its line arrives during the wait.
        tb = TraceBuilder()
        tb.load(rd=-1, stall=50, addr=0x1000)
        tb.load(rd=-1, stall=50, addr=0x2000)
        plain = DSProcessor(tb.build(), SC, DSConfig(window=16)).run()
        boosted = DSProcessor(
            tb.build(), SC, DSConfig(window=16, prefetch=True)
        ).run()
        assert boosted.total < plain.total - 30

    def test_speculative_loads_overlap_under_sc(self):
        tb = TraceBuilder()
        for i in range(6):
            tb.load(rd=-1, stall=50, addr=0x1000 + 64 * i)
        plain = DSProcessor(tb.build(), SC, DSConfig(window=64)).run()
        spec = DSProcessor(
            tb.build(), SC, DSConfig(window=64, speculative_loads=True)
        ).run()
        assert spec.total < plain.total / 2

    def test_boosted_sc_still_bounded_by_rc(self):
        trace = miss_heavy_trace()
        both = DSProcessor(
            trace, SC,
            DSConfig(window=64, prefetch=True, speculative_loads=True),
        ).run()
        rc = DSProcessor(trace, RC, DSConfig(window=64)).run()
        assert rc.total <= both.total + 2

    def test_prefetch_noop_on_hits(self):
        tb = TraceBuilder()
        for _ in range(10):
            tb.load(rd=-1, stall=0)
        plain = DSProcessor(tb.build(), SC, DSConfig(window=16)).run()
        boosted = DSProcessor(
            tb.build(), SC, DSConfig(window=16, prefetch=True)
        ).run()
        assert boosted.total == plain.total


class TestCompilerScheduling:
    def test_hoists_load_past_independent_work(self):
        tb = TraceBuilder()
        alu_block(tb, 10)                  # independent filler
        tb.load(rd=5, stall=50)            # should hoist to the top
        tb.alu(rd=6, rs1=5)
        scheduled, stats = schedule_reads_early(tb.build())
        assert stats.loads_moved == 1
        assert stats.total_hoist == 10
        assert scheduled[0].mem_class == MemClass.READ

    def test_respects_true_dependence(self):
        tb = TraceBuilder()
        tb.alu(rd=3)                       # produces the address
        tb.load(rd=5, rs1=3, stall=50)     # cannot cross its producer
        scheduled, stats = schedule_reads_early(tb.build())
        assert stats.loads_moved == 0
        assert scheduled[1].mem_class == MemClass.READ

    def test_respects_anti_dependence(self):
        tb = TraceBuilder()
        tb.alu(rd=9, rs1=5)                # reads r5
        tb.load(rd=5, stall=50)            # writes r5: cannot cross
        scheduled, stats = schedule_reads_early(tb.build())
        assert stats.loads_moved == 0

    def test_does_not_cross_stores_or_branches(self):
        tb = TraceBuilder()
        tb.store(stall=0, addr=0x100)
        tb.load(rd=5, stall=50, addr=0x200)
        tb.branch(taken=False)
        tb.load(rd=6, stall=50, addr=0x300)
        scheduled, stats = schedule_reads_early(tb.build())
        # Region boundaries (store, branch) pin both loads in place.
        assert [r.mem_class for r in scheduled] == [
            r.mem_class for r in tb.build()
        ]

    def test_preserves_instruction_multiset(self):
        tb = TraceBuilder()
        alu_block(tb, 5)
        tb.load(rd=5, stall=50)
        tb.alu(rd=6, rs1=5)
        tb.store(rs2=6, addr=0x100)
        alu_block(tb, 4)
        tb.load(rd=7, stall=50)
        original = tb.build()
        scheduled, _ = schedule_reads_early(original)
        assert sorted(r.op for r in scheduled) == sorted(
            r.op for r in original
        )
        assert len(scheduled) == len(original)

    def test_ss_benefits_from_scheduling(self):
        # use-distance 0 originally; hoisting gives SS room to overlap.
        tb = TraceBuilder()
        for i in range(10):
            alu_block(tb, 12)
            tb.load(rd=5, stall=50, addr=0x1000 + 64 * i)
            tb.alu(rd=6, rs1=5)
            tb.store(rs2=6, addr=0x4000 + 64 * i)  # region boundary
        original = tb.build()
        scheduled, stats = schedule_reads_early(original)
        assert stats.loads_moved == 10
        before = simulate_ss(original, RC)
        after = simulate_ss(scheduled, RC)
        assert after.read < before.read
        assert after.total < before.total

    def test_max_hoist_cap(self):
        tb = TraceBuilder()
        alu_block(tb, 30)
        tb.load(rd=5, stall=50)
        _, stats = schedule_reads_early(tb.build(), max_hoist=8)
        assert stats.total_hoist == 8
