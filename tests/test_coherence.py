"""Tests for the multi-cache invalidation protocol."""

from hypothesis import given, settings, strategies as st

from repro.mem import (
    CoherentMemorySystem,
    EXCLUSIVE,
    INVALID,
    MODIFIED,
    SHARED,
)


def make_system(n=4, penalty=50):
    return CoherentMemorySystem(n_cpus=n, cache_size=256, miss_penalty=penalty)


class TestReadPaths:
    def test_cold_read_misses_installs_exclusive(self):
        s = make_system()
        r = s.access(0, 0x40, is_write=False)
        assert not r.hit and r.stall == 50
        assert s.caches[0].state_of(0x40) == EXCLUSIVE

    def test_second_read_hits(self):
        s = make_system()
        s.access(0, 0x40, is_write=False)
        r = s.access(0, 0x44, is_write=False)  # same line
        assert r.hit and r.stall == 0

    def test_remote_read_downgrades_to_shared(self):
        s = make_system()
        s.access(0, 0x40, is_write=False)
        r = s.access(1, 0x40, is_write=False)
        assert not r.hit
        assert s.caches[0].state_of(0x40) == SHARED
        assert s.caches[1].state_of(0x40) == SHARED

    def test_read_of_remote_dirty_writes_back(self):
        s = make_system()
        s.access(0, 0x40, is_write=True)
        assert s.caches[0].state_of(0x40) == MODIFIED
        s.access(1, 0x40, is_write=False)
        assert s.caches[0].state_of(0x40) == SHARED
        assert s.caches[0].stats.writebacks == 1


class TestWritePaths:
    def test_cold_write_misses_installs_modified(self):
        s = make_system()
        r = s.access(0, 0x40, is_write=True)
        assert not r.hit and r.stall == 50
        assert s.caches[0].state_of(0x40) == MODIFIED

    def test_write_to_modified_hits(self):
        s = make_system()
        s.access(0, 0x40, is_write=True)
        r = s.access(0, 0x44, is_write=True)
        assert r.hit

    def test_write_to_exclusive_is_silent_upgrade(self):
        s = make_system()
        s.access(0, 0x40, is_write=False)   # E
        r = s.access(0, 0x40, is_write=True)
        assert r.hit and r.stall == 0
        assert s.caches[0].state_of(0x40) == MODIFIED
        assert s.caches[0].stats.write_misses == 0

    def test_write_to_shared_pays_upgrade_miss(self):
        s = make_system()
        s.access(0, 0x40, is_write=False)
        s.access(1, 0x40, is_write=False)   # both SHARED now
        r = s.access(0, 0x40, is_write=True)
        assert not r.hit and r.stall == 50
        assert s.caches[0].stats.upgrades == 1
        assert s.caches[0].stats.write_misses == 1
        assert s.caches[1].state_of(0x40) == INVALID

    def test_write_invalidates_all_remote_copies(self):
        s = make_system()
        for cpu in range(4):
            s.access(cpu, 0x40, is_write=False)
        s.access(0, 0x40, is_write=True)
        for cpu in range(1, 4):
            assert s.caches[cpu].state_of(0x40) == INVALID

    def test_write_miss_to_remote_dirty(self):
        s = make_system()
        s.access(0, 0x40, is_write=True)
        s.access(1, 0x40, is_write=True)
        assert s.caches[0].state_of(0x40) == INVALID
        assert s.caches[1].state_of(0x40) == MODIFIED


class TestStatsAndInvariants:
    def test_would_hit_is_non_mutating(self):
        s = make_system()
        assert not s.would_hit(0, 0x40, is_write=False)
        s.access(0, 0x40, is_write=False)
        assert s.would_hit(0, 0x40, is_write=False)
        assert s.would_hit(0, 0x40, is_write=True)  # E counts for writes

    def test_total_stats_aggregates(self):
        s = make_system()
        s.access(0, 0x40, is_write=False)
        s.access(1, 0x80, is_write=True)
        total = s.total_stats()
        assert total.reads == 1
        assert total.writes == 1
        assert total.read_misses == 1
        assert total.write_misses == 1

    def test_invariant_checker_detects_clean_state(self):
        s = make_system()
        s.access(0, 0x40, is_write=True)
        s.check_coherence_invariant(0x40)
        s.access(1, 0x40, is_write=False)
        s.check_coherence_invariant(0x40)


@settings(max_examples=150, deadline=None)
@given(st.lists(
    st.tuples(
        st.integers(0, 3),            # cpu
        st.integers(0, 63),           # line number
        st.booleans(),                # is_write
    ),
    max_size=120,
))
def test_property_single_writer_multiple_reader(ops):
    """After any access sequence: at most one owned (E/M) copy per line,
    and an owned copy never coexists with other copies."""
    s = make_system()
    touched = set()
    for cpu, line, is_write in ops:
        addr = line * 16
        s.access(cpu, addr, is_write)
        touched.add(addr)
    for addr in touched:
        s.check_coherence_invariant(addr)


@settings(max_examples=100, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 31), st.booleans()),
    max_size=100,
))
def test_property_hit_stall_is_zero_miss_stall_is_penalty(ops):
    s = make_system(penalty=37)
    for cpu, line, is_write in ops:
        r = s.access(cpu, line * 16, is_write)
        assert r.stall == (0 if r.hit else 37)
