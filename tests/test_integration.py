"""End-to-end integration: applications -> traces -> processor models.

These are the qualitative claims of the paper, checked on the tiny
workloads so the whole suite stays fast.
"""

import pytest

from repro.apps import APP_NAMES
from repro.cpu import ProcessorConfig, simulate


def breakdowns(trace, *configs):
    return [simulate(trace, cfg) for cfg in configs]


class TestFigure3Shapes:
    @pytest.mark.parametrize("app", APP_NAMES)
    def test_base_is_slowest(self, tiny_traces, app):
        trace = tiny_traces[app]
        base = simulate(trace, ProcessorConfig(kind="base"))
        for kind in ("ssbr", "ss", "ds"):
            for model in ("SC", "PC", "RC"):
                run = simulate(
                    trace,
                    ProcessorConfig(kind=kind, model=model, window=64),
                )
                assert run.total <= base.total * 1.03, run.label

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_rc_static_hides_write_latency(self, tiny_traces, app):
        trace = tiny_traces[app]
        base = simulate(trace, ProcessorConfig(kind="base"))
        rc = simulate(trace, ProcessorConfig(kind="ssbr", model="RC"))
        if base.write > 200:
            # Lock-dense PTHOR keeps some release->acquire ordering cost;
            # everything else hides nearly all of it.
            limit = 0.65 if app == "pthor" else 0.3
            assert rc.write < base.write * limit

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_sc_ds_gains_little(self, tiny_traces, app):
        trace = tiny_traces[app]
        ssbr = simulate(trace, ProcessorConfig(kind="ssbr", model="SC"))
        ds = simulate(
            trace, ProcessorConfig(kind="ds", model="SC", window=256)
        )
        # DS under SC is within ~20% of static scheduling: the window
        # cannot be exploited when every access serializes.
        assert ds.total > ssbr.total * 0.75

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_rc_ds_hides_read_latency_with_window(self, tiny_traces, app):
        trace = tiny_traces[app]
        base = simulate(trace, ProcessorConfig(kind="base"))
        w16 = simulate(
            trace, ProcessorConfig(kind="ds", model="RC", window=16)
        )
        w64 = simulate(
            trace, ProcessorConfig(kind="ds", model="RC", window=64)
        )
        assert w64.read < w16.read
        assert w64.read < base.read * 0.7

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_window_sweep_is_monotone(self, tiny_traces, app):
        trace = tiny_traces[app]
        totals = [
            simulate(
                trace, ProcessorConfig(kind="ds", model="RC", window=w)
            ).total
            for w in (16, 32, 64, 128, 256)
        ]
        for a, b in zip(totals, totals[1:]):
            assert b <= a * 1.02

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_busy_identical_across_models(self, tiny_traces, app):
        trace = tiny_traces[app]
        busies = {
            simulate(trace, cfg).busy
            for cfg in (
                ProcessorConfig(kind="base"),
                ProcessorConfig(kind="ssbr", model="RC"),
                ProcessorConfig(kind="ss", model="PC"),
                ProcessorConfig(kind="ds", model="RC", window=64),
            )
        }
        assert busies == {len(trace)}


class TestFigure4Shapes:
    @pytest.mark.parametrize("app", APP_NAMES)
    def test_perfect_bp_never_slower(self, tiny_traces, app):
        trace = tiny_traces[app]
        for window in (16, 64):
            normal = simulate(
                trace,
                ProcessorConfig(kind="ds", model="RC", window=window),
            )
            perfect = simulate(
                trace,
                ProcessorConfig(kind="ds", model="RC", window=window,
                                perfect_bp=True),
            )
            assert perfect.total <= normal.total * 1.01

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_ignoring_deps_never_slower(self, tiny_traces, app):
        trace = tiny_traces[app]
        perfect = simulate(
            trace,
            ProcessorConfig(kind="ds", model="RC", window=32,
                            perfect_bp=True),
        )
        nodep = simulate(
            trace,
            ProcessorConfig(kind="ds", model="RC", window=32,
                            perfect_bp=True, ignore_deps=True),
        )
        assert nodep.total <= perfect.total * 1.01


class TestAttribution:
    @pytest.mark.parametrize("app", APP_NAMES)
    @pytest.mark.parametrize("kind,model", [
        ("base", "RC"), ("ssbr", "SC"), ("ssbr", "PC"), ("ssbr", "RC"),
        ("ss", "SC"), ("ss", "RC"), ("ds", "SC"), ("ds", "PC"),
        ("ds", "RC"),
    ])
    def test_components_sum_to_total(self, tiny_traces, app, kind, model):
        trace = tiny_traces[app]
        r = simulate(
            trace, ProcessorConfig(kind=kind, model=model, window=32)
        )
        assert r.total == r.busy + r.sync + r.read + r.write + r.other

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_ds_other_component_is_small(self, tiny_traces, app):
        trace = tiny_traces[app]
        r = simulate(
            trace, ProcessorConfig(kind="ds", model="RC", window=64)
        )
        assert r.other <= r.total * 0.05


class TestUnifiedInterface:
    def test_unknown_kind_rejected(self, tiny_traces):
        with pytest.raises(ValueError):
            simulate(
                tiny_traces["lu"], ProcessorConfig(kind="vliw")
            )

    def test_labels_are_descriptive(self):
        assert ProcessorConfig(kind="base").label() == "BASE"
        assert ProcessorConfig(kind="ssbr", model="PC").label() == "SSBR-PC"
        label = ProcessorConfig(
            kind="ds", model="RC", window=64, issue_width=4,
            perfect_bp=True, ignore_deps=True,
        ).label()
        assert "w64" in label and "i4" in label
        assert "pbp" in label and "nodep" in label
