"""Tests for the multiprocessor executor (trace generation, sync, timing)."""

import pytest

from repro.asm import AsmBuilder
from repro.isa import MemClass, Op
from repro.mem import SharedMemory
from repro.tango import (
    DeadlockError,
    MultiprocessorConfig,
    StepLimitExceeded,
    TangoExecutor,
)


def two_cpu_config(**kw):
    kw.setdefault("n_cpus", 2)
    kw.setdefault("trace_cpus", (0, 1))
    return MultiprocessorConfig(**kw)


def build_pair(body0, body1):
    """Build two thread programs from callables taking a builder."""
    programs = []
    for tid, body in enumerate((body0, body1)):
        b = AsmBuilder(f"t{tid}")
        body(b)
        b.halt()
        programs.append(b.build())
    return programs


class TestBasicExecution:
    def test_single_thread_computes(self):
        b = AsmBuilder()
        x, addr = b.ireg(), b.ireg()
        b.li(x, 41)
        b.addi(x, x, 1)
        b.li(addr, 0x1000)
        b.sw(x, addr, 0)
        b.halt()
        ex = TangoExecutor(
            [b.build()], MultiprocessorConfig(n_cpus=1), SharedMemory()
        )
        result = ex.run()
        assert result.memory.read_word(0x1000) == 42

    def test_busy_cycles_count_instructions(self):
        b = AsmBuilder()
        x = b.ireg()
        for _ in range(10):
            b.addi(x, x, 1)
        b.halt()
        ex = TangoExecutor(
            [b.build()], MultiprocessorConfig(n_cpus=1), SharedMemory()
        )
        result = ex.run()
        assert result.stats.cpu(0).busy_cycles == 10

    def test_read_miss_advances_clock_by_penalty(self):
        b = AsmBuilder()
        addr, x = b.ireg(), b.ireg()
        b.li(addr, 0x1000)
        b.lw(x, addr, 0)     # cold miss
        b.lw(x, addr, 0)     # hit
        b.halt()
        ex = TangoExecutor(
            [b.build()],
            MultiprocessorConfig(n_cpus=1, miss_penalty=50),
            SharedMemory(),
        )
        result = ex.run()
        # 3 instructions (HALT is free) + 50-cycle miss stall
        assert result.stats.cpu(0).end_time == 3 + 50

    def test_write_latency_hidden_on_host(self):
        b = AsmBuilder()
        addr, x = b.ireg(), b.ireg()
        b.li(addr, 0x1000)
        b.li(x, 5)
        b.sw(x, addr, 0)     # write miss, but buffered
        b.halt()
        ex = TangoExecutor(
            [b.build()],
            MultiprocessorConfig(n_cpus=1, miss_penalty=50),
            SharedMemory(),
        )
        result = ex.run()
        assert result.stats.cpu(0).end_time == 3
        assert result.stats.cpu(0).write_misses == 1

    def test_program_count_mismatch_rejected(self):
        b = AsmBuilder()
        b.halt()
        with pytest.raises(ValueError):
            TangoExecutor(
                [b.build()], MultiprocessorConfig(n_cpus=2), SharedMemory()
            )

    def test_step_limit(self):
        b = AsmBuilder()
        b.label("spin")
        b.j("spin")
        ex = TangoExecutor(
            [b.build()],
            MultiprocessorConfig(n_cpus=1, max_instructions=1000),
            SharedMemory(),
        )
        with pytest.raises(StepLimitExceeded):
            ex.run()


class TestTraceAnnotations:
    def test_trace_records_everything(self):
        b = AsmBuilder()
        addr, x = b.ireg(), b.ireg()
        b.li(addr, 0x1000)
        b.lw(x, addr, 0)
        b.sw(x, addr, 4)
        b.halt()
        ex = TangoExecutor(
            [b.build()],
            MultiprocessorConfig(n_cpus=1, trace_cpus=(0,)),
            SharedMemory(),
        )
        trace = ex.run().trace(0)
        assert len(trace) == 3  # HALT is not traced
        load = trace[1]
        assert load.op is Op.LW
        assert load.mem_class == MemClass.READ
        assert load.addr == 0x1000
        assert load.stall == 50
        store = trace[2]
        assert store.mem_class == MemClass.WRITE
        assert store.addr == 0x1004
        assert store.stall == 0  # line now owned after the load fill

    def test_untraced_cpu_has_no_trace(self):
        b0 = AsmBuilder("a")
        b0.halt()
        b1 = AsmBuilder("b")
        b1.halt()
        ex = TangoExecutor(
            [b0.build(), b1.build()],
            MultiprocessorConfig(n_cpus=2, trace_cpus=(0,)),
            SharedMemory(),
        )
        result = ex.run()
        assert 0 in result.traces and 1 not in result.traces

    def test_branch_next_pc_recorded(self):
        b = AsmBuilder()
        x = b.ireg()
        b.li(x, 1)
        b.bnez(x, "skip")
        b.li(x, 99)
        b.label("skip")
        b.halt()
        ex = TangoExecutor(
            [b.build()], MultiprocessorConfig(n_cpus=1), SharedMemory()
        )
        trace = ex.run().trace(0)
        branch = trace[1]
        assert branch.op is Op.BNE
        assert branch.next_pc == branch.pc + 2  # taken over the li


class TestSynchronization:
    def test_lock_provides_mutual_exclusion(self):
        # Both threads do read-modify-write under a lock; no lost updates.
        def body(b):
            lock, addr, x, i = b.ireg(), b.ireg(), b.ireg(), b.ireg()
            b.li(lock, 0x100)
            b.li(addr, 0x200)
            with b.for_range(i, 0, 20):
                b.lock(lock)
                b.lw(x, addr, 0)
                b.addi(x, x, 1)
                b.sw(x, addr, 0)
                b.unlock(lock)

        ex = TangoExecutor(
            build_pair(body, body), two_cpu_config(), SharedMemory()
        )
        result = ex.run()
        assert result.memory.read_word(0x200) == 40
        assert result.stats.cpu(0).locks == 20
        assert result.stats.cpu(0).unlocks == 20

    def test_event_producer_consumer(self):
        def producer(b):
            ev, addr, x = b.ireg(), b.ireg(), b.ireg()
            b.li(addr, 0x200)
            b.li(x, 7)
            b.sw(x, addr, 0)
            b.li(ev, 0x100)
            b.evset(ev)

        def consumer(b):
            ev, addr, x, out = b.ireg(), b.ireg(), b.ireg(), b.ireg()
            b.li(ev, 0x100)
            b.evwait(ev)
            b.li(addr, 0x200)
            b.lw(x, addr, 0)
            b.li(out, 0x300)
            b.sw(x, out, 0)

        ex = TangoExecutor(
            build_pair(producer, consumer), two_cpu_config(), SharedMemory()
        )
        result = ex.run()
        assert result.memory.read_word(0x300) == 7
        assert result.stats.cpu(1).wait_events == 1
        assert result.stats.cpu(0).set_events == 1

    def test_barrier_separates_phases(self):
        # Thread 0 writes before the barrier; thread 1 reads after it.
        def writer(b):
            addr, x, bar = b.ireg(), b.ireg(), b.ireg()
            b.li(addr, 0x200)
            b.li(x, 9)
            b.sw(x, addr, 0)
            b.li(bar, 0x100)
            b.barrier(bar)

        def reader(b):
            addr, x, bar, out = b.ireg(), b.ireg(), b.ireg(), b.ireg()
            b.li(bar, 0x100)
            b.barrier(bar)
            b.li(addr, 0x200)
            b.lw(x, addr, 0)
            b.li(out, 0x300)
            b.sw(x, out, 0)

        ex = TangoExecutor(
            build_pair(writer, reader), two_cpu_config(), SharedMemory()
        )
        result = ex.run()
        assert result.memory.read_word(0x300) == 9
        assert result.stats.cpu(0).barriers == 1
        assert result.stats.cpu(1).barriers == 1

    def test_contended_lock_records_wait(self):
        def holder(b):
            lock, i, x = b.ireg(), b.ireg(), b.ireg()
            b.li(lock, 0x100)
            b.lock(lock)
            with b.for_range(i, 0, 200):  # hold for a long time
                b.addi(x, x, 1)
            b.unlock(lock)

        def waiter(b):
            lock, i, x = b.ireg(), b.ireg(), b.ireg()
            b.li(lock, 0x100)
            # Warm up long enough that the holder certainly locks first.
            with b.for_range(i, 0, 10):
                b.addi(x, x, 1)
            b.lock(lock)
            b.unlock(lock)

        ex = TangoExecutor(
            build_pair(holder, waiter), two_cpu_config(), SharedMemory()
        )
        result = ex.run()
        trace1 = result.trace(1)
        acquires = [
            r for r in trace1 if r.mem_class == MemClass.ACQUIRE
        ]
        assert len(acquires) == 1
        assert acquires[0].wait > 100  # waited for the holder's loop
        assert acquires[0].stall == 50  # plus the access latency

    def test_deadlock_detected(self):
        def stuck(b):
            ev = b.ireg()
            b.li(ev, 0x100)
            b.evwait(ev)  # nobody ever sets it

        def fine(b):
            x = b.ireg()
            b.li(x, 1)

        ex = TangoExecutor(
            build_pair(stuck, fine), two_cpu_config(), SharedMemory()
        )
        with pytest.raises(DeadlockError) as info:
            ex.run()
        assert "event" in str(info.value)


class TestDeterminism:
    def test_same_inputs_same_trace(self):
        def make():
            def body(b):
                lock, addr, x, i = b.ireg(), b.ireg(), b.ireg(), b.ireg()
                b.li(lock, 0x100)
                b.li(addr, 0x200)
                with b.for_range(i, 0, 10):
                    b.lock(lock)
                    b.lw(x, addr, 0)
                    b.addi(x, x, 1)
                    b.sw(x, addr, 0)
                    b.unlock(lock)
            ex = TangoExecutor(
                build_pair(body, body), two_cpu_config(), SharedMemory()
            )
            return ex.run()

        r1, r2 = make(), make()
        t1 = [(r.op, r.pc, r.addr, r.stall, r.wait) for r in r1.trace(0)]
        t2 = [(r.op, r.pc, r.addr, r.stall, r.wait) for r in r2.trace(0)]
        assert t1 == t2
        assert r1.stats.cpu(1).end_time == r2.stats.cpu(1).end_time
