"""Tests for ExecutionBreakdown and the text report helpers."""

from repro.cpu import ExecutionBreakdown
from repro.experiments import format_stacked_bars, format_table


def make(label="x", busy=100, sync=10, read=40, write=20, other=0):
    return ExecutionBreakdown(
        label=label, busy=busy, sync=sync, read=read, write=write,
        other=other, instructions=busy,
    )


class TestExecutionBreakdown:
    def test_total_is_component_sum(self):
        r = make()
        assert r.total == 170

    def test_normalized_to_self_is_100(self):
        r = make()
        nz = r.normalized_to(r)
        assert abs(nz["total"] - 100.0) < 1e-9
        assert abs(sum(
            nz[k] for k in ("busy", "sync", "read", "write", "other")
        ) - 100.0) < 1e-9

    def test_normalized_to_zero_base(self):
        empty = ExecutionBreakdown()
        assert make().normalized_to(empty)["total"] == 0.0

    def test_read_latency_hidden(self):
        base = make(read=100)
        faster = make(read=25)
        assert faster.read_latency_hidden_vs(base) == 0.75
        assert base.read_latency_hidden_vs(base) == 0.0

    def test_read_latency_hidden_clamps(self):
        base = make(read=10)
        worse = make(read=50)
        assert worse.read_latency_hidden_vs(base) == 0.0
        assert make().read_latency_hidden_vs(make(read=0)) == 0.0

    def test_str_mentions_components(self):
        text = str(make(label="DS-RC"))
        assert "DS-RC" in text and "busy=100" in text


class TestFormatters:
    def test_format_table_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_format_table_float_formatting(self):
        text = format_table(["v"], [[3.14159]], float_fmt="{:.2f}")
        assert "3.14" in text

    def test_stacked_bars_scale(self):
        base = make()
        half = make(busy=50, sync=5, read=20, write=10)
        text = format_stacked_bars("T", [base, half], base, width=50)
        lines = [l for l in text.splitlines() if "|" in l]
        bar_base = lines[0].split("|")[1]
        bar_half = lines[1].split("|")[1]
        assert len(bar_half) < len(bar_base)
        assert "100.0%" in lines[0]
