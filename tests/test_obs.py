"""Tests for the observability layer (repro.obs).

Covers the metrics registry (including the disabled no-op path and the
reservoir's deterministic decimation), the Chrome trace_event tracer
(schema validation, span-nesting invariants, byte determinism), the run
manifest, the profile pipeline end-to-end over every processor kind and
network backend, and the satellite fixes: per-link queue-depth columns
in the contention report and the shared execution-breakdown component
table.
"""

from __future__ import annotations

import json

import pytest

from repro.cpu.results import (
    COMPONENT_GLYPHS,
    COMPONENTS,
    ExecutionBreakdown,
)
from repro.experiments import TraceStore
from repro.experiments.contention import format_contention, run_contention
from repro.experiments.report import format_breakdowns, format_stacked_bars
from repro.obs import (
    ChromeTracer,
    MetricsRegistry,
    NULL_REGISTRY,
    Probe,
    build_manifest,
    format_histogram,
    occupancy_bounds,
    run_profile,
    validate_manifest,
    validate_trace,
)


@pytest.fixture(scope="module")
def store():
    """One shared tiny-preset trace store (traces generated once)."""
    return TraceStore(n_procs=8, preset="tiny", cache_dir=None)


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.counter("c").inc(4)
        m.gauge("g").set(7)
        h = m.histogram("h", bounds=(1, 10, 100))
        h.observe(1)
        h.observe(50, n=3)
        h.observe(1000)
        assert m.counter("c").value == 5
        assert m.gauge("g").value == 7
        assert h.count == 5
        assert h.counts == [1, 0, 3, 1]
        assert h.max == 1000
        assert h.mean() == pytest.approx((1 + 150 + 1000) / 5)
        assert h.quantile(0.5) == 100

    def test_snapshot_is_sorted_and_grouped(self):
        m = MetricsRegistry()
        m.counter("z")
        m.counter("a").inc(2)
        m.gauge("g").set(1.5)
        snap = m.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["counters"]["a"] == 2
        assert snap["gauges"]["g"] == 1.5
        json.dumps(snap)  # must be JSON-serializable

    def test_kind_mismatch_rejected(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(TypeError):
            m.gauge("x")

    def test_disabled_registry_is_noop(self):
        m = MetricsRegistry(enabled=False)
        c = m.counter("c")
        c.inc(100)
        m.histogram("h").observe(5)
        m.reservoir("r").sample(0, 1)
        assert c.value == 0
        assert m.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
            "reservoirs": {},
        }
        # All instruments are one shared object.
        assert m.counter("a") is m.gauge("b") is NULL_REGISTRY.counter("c")

    def test_occupancy_bounds(self):
        assert occupancy_bounds(16) == (0, 1, 2, 4, 8, 16)
        assert occupancy_bounds(100) == (0, 1, 2, 4, 8, 16, 32, 64, 100)

    def test_reservoir_decimates_deterministically(self):
        m = MetricsRegistry()
        r = m.reservoir("r", capacity=8)
        for t in range(100):
            r.sample(t, t * 2)
        assert len(r.times) < 8
        # Strides double, so retained times are evenly spaced.
        deltas = {b - a for a, b in zip(r.times, r.times[1:])}
        assert len(deltas) == 1
        m2 = MetricsRegistry()
        r2 = m2.reservoir("r", capacity=8)
        for t in range(100):
            r2.sample(t, t * 2)
        assert r.snapshot() == r2.snapshot()

    def test_format_histogram_renders(self):
        m = MetricsRegistry()
        h = m.histogram("h", bounds=(1, 2))
        h.observe(1, 3)
        h.observe(9)
        text = format_histogram(h)
        assert "count 4" in text
        assert "###" in text


class TestTracer:
    def test_tracks_and_metadata(self):
        tr = ChromeTracer()
        assert tr.track("p1", "a") == (1, 0)
        assert tr.track("p1", "b") == (1, 1)
        assert tr.track("p2") == (2, 0)
        assert tr.track("p1", "a") == (1, 0)  # cached
        doc = tr.to_dict()
        names = [
            (e["name"], e["args"]["name"])
            for e in doc["traceEvents"] if e["ph"] == "M"
        ]
        assert ("process_name", "p1") in names
        assert ("thread_name", "b") in names

    def test_valid_trace_passes_schema(self):
        tr = ChromeTracer()
        pid, tid = tr.track("cpu")
        tr.complete("outer", "cpu", pid, tid, 0, 10)
        tr.complete("inner", "cpu", pid, tid, 2, 3)
        tr.instant("mark", "mem", pid, tid, 4)
        tr.counter("occ", pid, 5, {"rob": 3})
        assert validate_trace(json.loads(tr.dumps())) == []

    def test_validator_rejects_bad_events(self):
        bad = {"traceEvents": [
            {"ph": "X", "ts": 0, "pid": 1, "tid": 0, "dur": -1},
            {"name": "x", "ph": "?", "ts": 0, "pid": 1, "tid": 0},
        ]}
        errors = validate_trace(bad)
        assert any("missing 'name'" in e for e in errors)
        assert any("bad dur" in e for e in errors)
        assert any("unknown phase" in e for e in errors)
        assert validate_trace([]) != []

    def test_validator_rejects_partial_overlap(self):
        tr = ChromeTracer()
        pid, tid = tr.track("cpu")
        tr.complete("a", "cpu", pid, tid, 0, 10)
        tr.complete("b", "cpu", pid, tid, 5, 10)  # straddles a's end
        errors = validate_trace(tr.to_dict())
        assert errors and "partially overlaps" in errors[0]

    def test_dumps_deterministic(self):
        def build():
            tr = ChromeTracer()
            pid, tid = tr.track("p", "t")
            tr.complete("s", "cpu", pid, tid, 1, 2, args={"k": 1})
            tr.instant("i", "net", pid, tid, 3)
            return tr.dumps(other_data={"run": "x"})

        assert build() == build()

    def test_span_track_lanes_overlapping_spans(self):
        probe = Probe(tracer=ChromeTracer())
        # Two overlapping spans get distinct lanes; a later span reuses
        # the first lane once it is free.
        t1 = probe.span_track("net", "cpu0", 0, 10)
        t2 = probe.span_track("net", "cpu0", 5, 15)
        t3 = probe.span_track("net", "cpu0", 12, 20)
        assert t1 != t2
        assert t3 == t1


class TestManifest:
    def test_round_trip_and_validation(self, tmp_path):
        out = tmp_path / "trace.json"
        out.write_text("{}")
        manifest = build_manifest(
            "python -m repro profile lu",
            {"app": "lu", "engine": "fast", "network": "ideal"},
            {"run": 1.23456}, {"trace": out},
        )
        assert validate_manifest(manifest) == []
        assert manifest["outputs"]["trace"]["bytes"] == 2
        assert manifest["timings"]["run"] == 1.2346

    def test_validation_catches_problems(self):
        assert validate_manifest([]) == ["manifest is not an object"]
        errors = validate_manifest({"schema": "bogus/9", "outputs": {
            "trace": {},
        }})
        assert any("unknown schema" in e for e in errors)
        assert any("missing field" in e for e in errors)
        assert any("no path" in e for e in errors)

    def test_validation_requires_engine_and_network(self):
        # A manifest that does not say which engine/interconnect
        # produced the run is not reproducible and must be rejected.
        errors = validate_manifest({"config": {"app": "lu"}})
        assert any("missing 'engine'" in e for e in errors)
        assert any("missing 'network'" in e for e in errors)
        # The batch path records the swept set as "networks" (plural).
        errors = validate_manifest({
            "config": {"engine": "fast", "networks": ["ideal"]},
        })
        assert not any("network" in e or "engine" in e for e in errors)


class TestComponentTable:
    """cpu/results.py and experiments/report.py share one name table."""

    def test_breakdown_components_match_table(self):
        bd = ExecutionBreakdown(
            label="x", busy=5, sync=4, read=3, write=2, other=1,
        )
        assert tuple(bd.components()) == COMPONENTS
        assert bd.total == sum(bd.components().values())
        nz = bd.normalized_to(bd)
        assert set(nz) == set(COMPONENTS) | {"total"}

    def test_report_headers_and_legend_derive_from_table(self):
        base = ExecutionBreakdown(label="BASE", busy=10)
        table = format_breakdowns("t", [base], base)
        bars = format_stacked_bars("t", [base], base)
        for comp in COMPONENTS:
            assert comp in table.splitlines()[1]
            assert f"{COMPONENT_GLYPHS[comp]} {comp}" in bars


class TestContentionQueueColumns:
    """Satellite: per-link queue-depth samples surface in the report."""

    def test_queue_depth_in_summaries_and_table(self, store):
        results = run_contention(
            store, apps=("lu",), networks=("ideal", "mesh")
        )
        for kind, pairs in results["lu"].items():
            for _, summary in pairs:
                assert "q_mean" in summary and "q_max" in summary
                if kind == "ideal":
                    assert summary["q_max"] == 0
        # The DS rows under a real network must have observed queueing.
        mesh_q = [s["q_max"] for _, s in results["lu"]["mesh"]]
        assert any(q > 0 for q in mesh_q)
        text = format_contention(results)
        assert "q mean" in text and "q max" in text


class TestProfile:
    @pytest.mark.parametrize("network", ("ideal", "crossbar", "mesh"))
    def test_ds_profile_all_networks(self, store, tmp_path, network):
        result = run_profile(
            "lu", store, kind="ds", network=network,
            trace=True, out_dir=tmp_path,
        )
        assert result.ok, result.errors[:3]
        for label in ("trace", "metrics", "manifest"):
            assert result.outputs[label].exists()
        assert validate_trace(
            json.loads(result.outputs["trace"].read_text())
        ) == []
        manifest = json.loads(result.outputs["manifest"].read_text())
        assert validate_manifest(manifest) == []
        assert manifest["config"]["network"] == network
        assert "stall attribution" in result.report
        assert "reorder-buffer occupancy" in result.report
        metrics = json.loads(result.outputs["metrics"].read_text())
        assert "ds.rob_occupancy" in metrics["histograms"]
        # Every consistency model contributed a breakdown.
        for model in ("SC", "PC", "WO", "RC"):
            assert f"DS-{model}-w64" in result.report

    @pytest.mark.parametrize("kind", ("base", "ssbr", "ss"))
    def test_other_kinds_profile(self, store, tmp_path, kind):
        result = run_profile(
            "lu", store, kind=kind, network="mesh",
            trace=True, out_dir=tmp_path,
        )
        assert result.ok, result.errors[:3]
        assert result.outputs["manifest"].exists()
        if kind != "base":
            assert "write-buffer depth" in result.report

    def test_profile_deterministic_bytes(self, store, tmp_path):
        outputs = []
        for sub in ("a", "b"):
            result = run_profile(
                "lu", store, kind="ds", network="mesh",
                trace=True, out_dir=tmp_path / sub,
            )
            assert result.ok
            outputs.append((
                result.outputs["trace"].read_bytes(),
                result.outputs["metrics"].read_bytes(),
            ))
        assert outputs[0] == outputs[1]

    def test_no_trace_flag_skips_trace(self, store, tmp_path):
        result = run_profile(
            "lu", store, kind="ds", network="ideal",
            trace=False, out_dir=tmp_path,
        )
        assert result.ok
        assert "trace" not in result.outputs
        assert result.outputs["metrics"].exists()


class TestProbePublication:
    def test_publish_run_fills_tango_metrics(self, store):
        registry = MetricsRegistry()
        probe = Probe(metrics=registry)
        run = store.get("lu")
        probe.publish_run_stats(run.stats)
        snap = registry.snapshot()
        assert snap["gauges"]["tango.total_cycles"] > 0
        assert snap["counters"]["tango.cpu0.busy_cycles"] > 0

    def test_host_timeline_spans_nest(self, store):
        tracer = ChromeTracer()
        probe = Probe(tracer=tracer)
        probe.trace_host_timeline(store.get("lu").trace, 0)
        assert len(tracer) > 0
        assert validate_trace(tracer.to_dict()) == []
