"""Tests for the consistency models and ordering analysis (Figure 1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.consistency import (
    MODELS,
    PC,
    RC,
    SC,
    WO,
    earliest_completion_times,
    get_model,
    ordering_edges,
    reduced_edges,
    total_time,
)
from repro.isa import MemClass

R, W = MemClass.READ, MemClass.WRITE
ACQ, REL, BAR = MemClass.ACQUIRE, MemClass.RELEASE, MemClass.BARRIER
ALL = (R, W, ACQ, REL, BAR)


class TestSC:
    def test_orders_everything(self):
        for a in ALL:
            for b in ALL:
                assert SC.requires(a, b)

    def test_capabilities(self):
        assert not SC.reads_bypass_writes
        assert not SC.writes_overlap


class TestPC:
    def test_read_bypasses_write(self):
        assert not PC.requires(W, R)
        assert not PC.requires(REL, R)   # releases are write-like
        assert not PC.requires(W, ACQ)   # acquires are read-like

    def test_everything_else_ordered(self):
        assert PC.requires(R, R)
        assert PC.requires(R, W)
        assert PC.requires(W, W)
        assert PC.requires(ACQ, R)
        assert PC.requires(R, REL)

    def test_barrier_never_bypasses(self):
        assert PC.requires(W, BAR)
        assert PC.requires(BAR, R)


class TestWO:
    def test_data_accesses_unordered(self):
        assert not WO.requires(R, R)
        assert not WO.requires(R, W)
        assert not WO.requires(W, R)
        assert not WO.requires(W, W)

    def test_sync_orders_both_directions(self):
        for sync in (ACQ, REL, BAR):
            for data in (R, W):
                assert WO.requires(sync, data)
                assert WO.requires(data, sync)
            assert WO.requires(sync, sync)


class TestRC:
    def test_data_accesses_unordered(self):
        assert not RC.requires(R, W)
        assert not RC.requires(W, R)
        assert not RC.requires(W, W)
        assert not RC.requires(R, R)

    def test_acquire_gates_following(self):
        for later in ALL:
            assert RC.requires(ACQ, later)

    def test_release_waits_for_preceding(self):
        for earlier in ALL:
            assert RC.requires(earlier, REL)

    def test_release_does_not_gate_following_data(self):
        assert not RC.requires(REL, R)
        assert not RC.requires(REL, W)

    def test_data_does_not_gate_acquire(self):
        assert not RC.requires(R, ACQ)
        assert not RC.requires(W, ACQ)

    def test_sync_sync_processor_consistent(self):
        # RCpc: specials follow PC among themselves -- only the
        # release -> acquire pair relaxes.
        for a in (ACQ, REL, BAR):
            for b in (ACQ, REL, BAR):
                expected = not (a is REL and b is ACQ)
                assert RC.requires(a, b) == expected, (a, b)

    def test_barrier_acts_as_acquire_and_release(self):
        for cls in ALL:
            assert RC.requires(BAR, cls)
            assert RC.requires(cls, BAR)


class TestRelaxationHierarchy:
    """SC orders a superset of PC, which orders a superset of RC (the
    RCpc result of Gharachorloo et al.); SC also covers WO.  PC/WO and
    WO/RC are incomparable."""

    @pytest.mark.parametrize("stronger,weaker", [
        (SC, PC), (SC, WO), (SC, RC), (PC, RC), (WO, RC),
    ])
    def test_subset(self, stronger, weaker):
        for a in ALL:
            for b in ALL:
                if weaker.requires(a, b):
                    assert stronger.requires(a, b), (a, b)

    def test_pc_and_wo_incomparable(self):
        # PC orders read-read; WO does not.
        assert PC.requires(R, R) and not WO.requires(R, R)
        # WO orders write-like sync before a following read; PC lets the
        # read bypass it.
        assert WO.requires(REL, R) and not PC.requires(REL, R)

    def test_rc_strictly_weaker_than_wo(self):
        # RCpc drops WO's release -> acquire edge (and the data edges
        # around sync that WO keeps), so the containment is strict.
        assert WO.requires(REL, ACQ) and not RC.requires(REL, ACQ)

    def test_lookup_by_name(self):
        for name in ("sc", "PC", "wo", "Rc"):
            assert get_model(name).name == name.upper()
        with pytest.raises(ValueError):
            get_model("tso")


class TestOrderingAnalysis:
    def test_sc_edges_are_total_order(self):
        ops = [R, W, R]
        edges = ordering_edges(SC, ops)
        assert edges == {(0, 1), (0, 2), (1, 2)}

    def test_sc_reduced_edges_are_chain(self):
        ops = [R, W, R, W]
        assert reduced_edges(SC, ops) == {(0, 1), (1, 2), (2, 3)}

    def test_rc_data_has_no_edges(self):
        ops = [R, W, R, W]
        assert ordering_edges(RC, ops) == set()

    def test_makespan_ordering_across_models(self):
        ops = [R, W, ACQ, R, W, REL, R, W]
        lat = [50] * len(ops)
        t_sc = total_time(SC, ops, lat)
        t_pc = total_time(PC, ops, lat)
        t_wo = total_time(WO, ops, lat)
        t_rc = total_time(RC, ops, lat)
        assert t_sc >= t_pc >= t_rc  # holds for this data-heavy sequence
        assert t_sc >= t_wo >= t_rc
        assert t_sc == len(ops) * 50

    def test_earliest_times_respect_edges(self):
        ops = [R, W, ACQ, R, W, REL, R, W]
        lat = [50] * len(ops)
        for model in MODELS.values():
            times = earliest_completion_times(model, ops, lat)
            for (i, j) in ordering_edges(model, ops):
                assert times[j][0] >= times[i][1]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            earliest_completion_times(SC, [R], [1, 2])

    def test_empty_sequence(self):
        assert total_time(SC, [], []) == 0


def _reachable(edges, src, dst):
    """Is ``dst`` reachable from ``src`` along ``edges``?"""
    frontier = [src]
    seen = {src}
    adj = {}
    for i, j in edges:
        adj.setdefault(i, []).append(j)
    while frontier:
        node = frontier.pop()
        if node == dst:
            return True
        for nxt in adj.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False


def _brute_force_reduction(edges):
    """Edges whose removal breaks reachability (unique for a DAG)."""
    return {
        e for e in edges
        if not _reachable(edges - {e}, e[0], e[1])
    }


class TestOrderingEdgesPerModel:
    """Direct pins of ordering_edges for every model on one sequence."""

    OPS = [R, W, ACQ, R, W, REL, R]

    def test_sc_orders_all_pairs(self):
        n = len(self.OPS)
        expected = {(i, j) for j in range(n) for i in range(j)}
        assert ordering_edges(SC, self.OPS) == expected

    def test_pc_drops_only_write_to_readlike(self):
        edges = ordering_edges(PC, self.OPS)
        # write (1) -> read (3), write (4) -> read (6), rel (5) -> read (6)
        assert (1, 3) not in edges and (4, 6) not in edges
        assert (5, 6) not in edges      # release is write-like
        assert (1, 2) not in edges      # acquire is read-like
        assert (0, 1) in edges and (3, 4) in edges

    def test_wo_orders_only_around_sync(self):
        edges = ordering_edges(WO, self.OPS)
        for i, j in edges:
            assert self.OPS[i] in (ACQ, REL, BAR) or \
                self.OPS[j] in (ACQ, REL, BAR), (i, j)
        # Every data access is ordered against both sync points.
        for data in (0, 1, 3, 4):
            assert ((data, 2) in edges) == (data < 2)
            assert ((data, 5) in edges) == (data < 5)

    def test_rc_acquire_gates_release_awaits(self):
        edges = ordering_edges(RC, self.OPS)
        assert edges == {
            (2, 3), (2, 4), (2, 5), (2, 6),   # acquire gates later
            (0, 5), (1, 5), (3, 5), (4, 5),   # release awaits earlier
        }


class TestReducedEdgesBruteForce:
    """reduced_edges must equal the unique DAG transitive reduction."""

    @pytest.mark.parametrize("model", list(MODELS.values()),
                             ids=lambda m: m.name)
    def test_matches_brute_force_on_mixed_sequence(self, model):
        ops = [R, W, ACQ, R, W, BAR, W, REL, R, W]
        full = ordering_edges(model, ops)
        assert reduced_edges(model, ops) == _brute_force_reduction(full)

    @pytest.mark.parametrize("model", list(MODELS.values()),
                             ids=lambda m: m.name)
    def test_reduction_preserves_reachability(self, model):
        ops = [W, R, REL, ACQ, W, R, BAR, R, W]
        full = ordering_edges(model, ops)
        red = reduced_edges(model, ops)
        assert red <= full
        for i, j in full:
            assert _reachable(red, i, j), (i, j)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.sampled_from(ALL), min_size=1, max_size=10))
def test_property_reduced_edges_is_transitive_reduction(ops):
    """Hypothesis sweep: reduction matches brute force for all models."""
    for model in MODELS.values():
        full = ordering_edges(model, ops)
        assert reduced_edges(model, ops) == _brute_force_reduction(full)


class TestEarliestCompletionTimesDirect:
    def test_sc_serialises_heterogeneous_latencies(self):
        ops = [R, W, R]
        lat = [10, 50, 5]
        assert earliest_completion_times(SC, ops, lat) == [
            (0, 10), (10, 60), (60, 65),
        ]

    def test_pc_read_issues_under_pending_write(self):
        ops = [W, R]
        times = earliest_completion_times(PC, ops, [50, 10])
        assert times == [(0, 50), (0, 10)]  # read fully hidden

    def test_wo_sync_fences_data(self):
        ops = [W, W, REL, W]
        times = earliest_completion_times(WO, ops, [50, 50, 10, 50])
        assert times[0] == (0, 50) and times[1] == (0, 50)  # overlap
        assert times[2] == (50, 60)     # release waits for both writes
        assert times[3] == (60, 110)    # data waits for the release (WO)

    def test_rc_release_does_not_fence_later_data(self):
        ops = [W, REL, W]
        times = earliest_completion_times(RC, ops, [50, 10, 50])
        assert times[1] == (50, 60)     # release awaits the earlier write
        assert times[2] == (0, 50)      # later data ignores the release


@settings(max_examples=100, deadline=None)
@given(st.lists(st.sampled_from(ALL), min_size=1, max_size=12))
def test_property_relaxation_never_slower(ops):
    """For any access sequence, the idealised makespan is monotone along
    the true relaxation chains SC >= PC and SC >= WO >= RC.  (PC and RC
    are incomparable: RCsc orders sync-sync pairs PC relaxes.)"""
    lat = [10] * len(ops)
    t = {name: total_time(m, ops, lat) for name, m in MODELS.items()}
    assert t["SC"] >= t["PC"]
    assert t["SC"] >= t["WO"] >= t["RC"]
