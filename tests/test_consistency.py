"""Tests for the consistency models and ordering analysis (Figure 1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.consistency import (
    MODELS,
    PC,
    RC,
    SC,
    WO,
    earliest_completion_times,
    get_model,
    ordering_edges,
    reduced_edges,
    total_time,
)
from repro.isa import MemClass

R, W = MemClass.READ, MemClass.WRITE
ACQ, REL, BAR = MemClass.ACQUIRE, MemClass.RELEASE, MemClass.BARRIER
ALL = (R, W, ACQ, REL, BAR)


class TestSC:
    def test_orders_everything(self):
        for a in ALL:
            for b in ALL:
                assert SC.requires(a, b)

    def test_capabilities(self):
        assert not SC.reads_bypass_writes
        assert not SC.writes_overlap


class TestPC:
    def test_read_bypasses_write(self):
        assert not PC.requires(W, R)
        assert not PC.requires(REL, R)   # releases are write-like
        assert not PC.requires(W, ACQ)   # acquires are read-like

    def test_everything_else_ordered(self):
        assert PC.requires(R, R)
        assert PC.requires(R, W)
        assert PC.requires(W, W)
        assert PC.requires(ACQ, R)
        assert PC.requires(R, REL)

    def test_barrier_never_bypasses(self):
        assert PC.requires(W, BAR)
        assert PC.requires(BAR, R)


class TestWO:
    def test_data_accesses_unordered(self):
        assert not WO.requires(R, R)
        assert not WO.requires(R, W)
        assert not WO.requires(W, R)
        assert not WO.requires(W, W)

    def test_sync_orders_both_directions(self):
        for sync in (ACQ, REL, BAR):
            for data in (R, W):
                assert WO.requires(sync, data)
                assert WO.requires(data, sync)
            assert WO.requires(sync, sync)


class TestRC:
    def test_data_accesses_unordered(self):
        assert not RC.requires(R, W)
        assert not RC.requires(W, R)
        assert not RC.requires(W, W)
        assert not RC.requires(R, R)

    def test_acquire_gates_following(self):
        for later in ALL:
            assert RC.requires(ACQ, later)

    def test_release_waits_for_preceding(self):
        for earlier in ALL:
            assert RC.requires(earlier, REL)

    def test_release_does_not_gate_following_data(self):
        assert not RC.requires(REL, R)
        assert not RC.requires(REL, W)

    def test_data_does_not_gate_acquire(self):
        assert not RC.requires(R, ACQ)
        assert not RC.requires(W, ACQ)

    def test_sync_sync_processor_consistent(self):
        # RCpc: specials follow PC among themselves -- only the
        # release -> acquire pair relaxes.
        for a in (ACQ, REL, BAR):
            for b in (ACQ, REL, BAR):
                expected = not (a is REL and b is ACQ)
                assert RC.requires(a, b) == expected, (a, b)

    def test_barrier_acts_as_acquire_and_release(self):
        for cls in ALL:
            assert RC.requires(BAR, cls)
            assert RC.requires(cls, BAR)


class TestRelaxationHierarchy:
    """SC orders a superset of PC, which orders a superset of RC (the
    RCpc result of Gharachorloo et al.); SC also covers WO.  PC/WO and
    WO/RC are incomparable."""

    @pytest.mark.parametrize("stronger,weaker", [
        (SC, PC), (SC, WO), (SC, RC), (PC, RC), (WO, RC),
    ])
    def test_subset(self, stronger, weaker):
        for a in ALL:
            for b in ALL:
                if weaker.requires(a, b):
                    assert stronger.requires(a, b), (a, b)

    def test_pc_and_wo_incomparable(self):
        # PC orders read-read; WO does not.
        assert PC.requires(R, R) and not WO.requires(R, R)
        # WO orders write-like sync before a following read; PC lets the
        # read bypass it.
        assert WO.requires(REL, R) and not PC.requires(REL, R)

    def test_rc_strictly_weaker_than_wo(self):
        # RCpc drops WO's release -> acquire edge (and the data edges
        # around sync that WO keeps), so the containment is strict.
        assert WO.requires(REL, ACQ) and not RC.requires(REL, ACQ)

    def test_lookup_by_name(self):
        for name in ("sc", "PC", "wo", "Rc"):
            assert get_model(name).name == name.upper()
        with pytest.raises(ValueError):
            get_model("tso")


class TestOrderingAnalysis:
    def test_sc_edges_are_total_order(self):
        ops = [R, W, R]
        edges = ordering_edges(SC, ops)
        assert edges == {(0, 1), (0, 2), (1, 2)}

    def test_sc_reduced_edges_are_chain(self):
        ops = [R, W, R, W]
        assert reduced_edges(SC, ops) == {(0, 1), (1, 2), (2, 3)}

    def test_rc_data_has_no_edges(self):
        ops = [R, W, R, W]
        assert ordering_edges(RC, ops) == set()

    def test_makespan_ordering_across_models(self):
        ops = [R, W, ACQ, R, W, REL, R, W]
        lat = [50] * len(ops)
        t_sc = total_time(SC, ops, lat)
        t_pc = total_time(PC, ops, lat)
        t_wo = total_time(WO, ops, lat)
        t_rc = total_time(RC, ops, lat)
        assert t_sc >= t_pc >= t_rc  # holds for this data-heavy sequence
        assert t_sc >= t_wo >= t_rc
        assert t_sc == len(ops) * 50

    def test_earliest_times_respect_edges(self):
        ops = [R, W, ACQ, R, W, REL, R, W]
        lat = [50] * len(ops)
        for model in MODELS.values():
            times = earliest_completion_times(model, ops, lat)
            for (i, j) in ordering_edges(model, ops):
                assert times[j][0] >= times[i][1]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            earliest_completion_times(SC, [R], [1, 2])

    def test_empty_sequence(self):
        assert total_time(SC, [], []) == 0


@settings(max_examples=100, deadline=None)
@given(st.lists(st.sampled_from(ALL), min_size=1, max_size=12))
def test_property_relaxation_never_slower(ops):
    """For any access sequence, the idealised makespan is monotone along
    the true relaxation chains SC >= PC and SC >= WO >= RC.  (PC and RC
    are incomparable: RCsc orders sync-sync pairs PC relaxes.)"""
    lat = [10] * len(ops)
    t = {name: total_time(m, ops, lat) for name, m in MODELS.items()}
    assert t["SC"] >= t["PC"]
    assert t["SC"] >= t["WO"] >= t["RC"]
