"""Property-based tests over randomly generated traces.

A random-but-wellformed trace generator drives every processor model and
checks the invariants that must hold for *any* workload: attribution sums,
model orderings, window monotonicity, and the busy==instructions identity.
"""

from hypothesis import given, settings, strategies as st

from repro.consistency import MODELS
from repro.cpu import (
    ProcessorConfig,
    simulate,
    simulate_base,
    simulate_ss,
    simulate_ssbr,
)
from repro.cpu.ds import DSConfig, DSProcessor
from repro.isa import MemClass, Op
from repro.tango import Trace, TraceRecord


@st.composite
def traces(draw, max_len=60):
    """A random trace with plausible structure."""
    n = draw(st.integers(1, max_len))
    records = []
    pc = 0
    lock_held = False
    for _ in range(n):
        kind = draw(st.sampled_from(
            ["alu", "alu", "alu", "load", "load", "store", "branch",
             "sync"]
        ))
        if kind == "alu":
            rd = draw(st.integers(1, 8))
            rs1 = draw(st.integers(0, 8))
            records.append(TraceRecord(
                op=Op.ADD, pc=pc, next_pc=pc + 1, rd=rd, rs1=rs1,
            ))
        elif kind == "load":
            stall = draw(st.sampled_from([0, 0, 50]))
            records.append(TraceRecord(
                op=Op.LW, pc=pc, next_pc=pc + 1,
                rd=draw(st.integers(1, 8)),
                rs1=draw(st.integers(0, 8)),
                addr=draw(st.integers(0, 63)) * 16,
                stall=stall, mem_class=MemClass.READ,
            ))
        elif kind == "store":
            stall = draw(st.sampled_from([0, 50]))
            records.append(TraceRecord(
                op=Op.SW, pc=pc, next_pc=pc + 1,
                rs1=draw(st.integers(0, 8)),
                rs2=draw(st.integers(0, 8)),
                addr=draw(st.integers(0, 63)) * 16,
                stall=stall, mem_class=MemClass.WRITE,
            ))
        elif kind == "branch":
            taken = draw(st.booleans())
            records.append(TraceRecord(
                op=Op.BNE, pc=pc,
                next_pc=draw(st.integers(0, 40)) if taken else pc + 1,
                rs1=draw(st.integers(0, 8)),
            ))
        else:
            if lock_held:
                records.append(TraceRecord(
                    op=Op.UNLOCK, pc=pc, next_pc=pc + 1, addr=0x8000,
                    stall=50, mem_class=MemClass.RELEASE,
                ))
                lock_held = False
            else:
                records.append(TraceRecord(
                    op=Op.LOCK, pc=pc, next_pc=pc + 1, addr=0x8000,
                    stall=50, wait=draw(st.sampled_from([0, 0, 30])),
                    mem_class=MemClass.ACQUIRE,
                ))
                lock_held = True
        pc = records[-1].next_pc
    trace = Trace(cpu=0)
    for r in records:
        trace.append(r)
    return trace


@settings(max_examples=60, deadline=None)
@given(traces())
def test_attribution_sums_for_every_model(trace):
    for kind in ("base", "ssbr", "ss", "ds"):
        for model in ("SC", "PC", "WO", "RC"):
            r = simulate(
                trace,
                ProcessorConfig(kind=kind, model=model, window=32),
            )
            assert r.total == r.busy + r.sync + r.read + r.write + r.other
            assert r.busy == len(trace)
            if kind == "base":
                break  # BASE ignores the model


@settings(max_examples=40, deadline=None)
@given(traces())
def test_base_is_upper_bound_for_static_models(trace):
    base = simulate_base(trace)
    for model in MODELS.values():
        assert simulate_ssbr(trace, model).total <= base.total + 2
        assert simulate_ss(trace, model).total <= base.total + 2


@settings(max_examples=30, deadline=None)
@given(traces())
def test_ds_window_monotonicity(trace):
    prev = None
    for window in (16, 64, 256):
        total = DSProcessor(
            trace, MODELS["RC"], DSConfig(window=window)
        ).run().total
        if prev is not None:
            # Allow a sliver of scheduling noise.
            assert total <= prev + 3
        prev = total


@settings(max_examples=30, deadline=None)
@given(traces())
def test_ds_rc_never_slower_than_ds_sc(trace):
    sc = DSProcessor(trace, MODELS["SC"], DSConfig(window=64)).run()
    rc = DSProcessor(trace, MODELS["RC"], DSConfig(window=64)).run()
    assert rc.total <= sc.total + 3


@settings(max_examples=30, deadline=None)
@given(traces())
def test_perfect_bp_and_nodep_never_slower(trace):
    normal = DSProcessor(
        trace, MODELS["RC"], DSConfig(window=32)
    ).run()
    pbp = DSProcessor(
        trace, MODELS["RC"],
        DSConfig(window=32, perfect_branch_prediction=True),
    ).run()
    nodep = DSProcessor(
        trace, MODELS["RC"],
        DSConfig(window=32, perfect_branch_prediction=True,
                 ignore_data_dependences=True),
    ).run()
    assert pbp.total <= normal.total + 3
    assert nodep.total <= pbp.total + 3


@settings(max_examples=30, deadline=None)
@given(traces())
def test_ds_beats_or_matches_base(trace):
    base = simulate_base(trace)
    ds = DSProcessor(trace, MODELS["RC"], DSConfig(window=256)).run()
    # +small slack: pipeline-fill and port quantization.
    assert ds.total <= base.total + len(trace) // 4 + 5


@settings(max_examples=30, deadline=None, derandomize=True)
@given(traces())
def test_wider_issue_never_slower(trace):
    one = DSProcessor(
        trace, MODELS["RC"], DSConfig(window=64, issue_width=1)
    ).run()
    four = DSProcessor(
        trace, MODELS["RC"], DSConfig(window=64, issue_width=4)
    ).run()
    # Wider issue is not strictly monotone cycle-for-cycle: a 4-wide
    # front end reaches mispredicted branches and store-buffer limits
    # sooner, which can cost a few cycles around each such episode.
    # Allow that quantization slack; a real regression dwarfs it.
    assert four.total <= one.total + len(trace) // 8 + 4
