"""Functional-semantics tests for the single-thread interpreter."""

import math

import pytest

from repro.asm import AsmBuilder
from repro.isa import Instruction, Op, Program
from repro.mem import SharedMemory
from repro.tango import ExecutionError, ThreadState, execute_instruction

from exec_helpers import run_program


def eval_int_op(emit, a, b_val):
    """Build a two-operand integer op program and return rd."""
    b = AsmBuilder()
    x, y, z = b.ireg(), b.ireg(), b.ireg()
    b.li(x, a)
    b.li(y, b_val)
    emit(b, z, x, y)
    return run_program(b).regs[z]


def eval_fp_op(emit, a, b_val):
    b = AsmBuilder()
    f, g, h = b.freg(), b.freg(), b.freg()
    b.fli(f, a)
    b.fli(g, b_val)
    emit(b, h, f, g)
    return run_program(b).regs[h]


@pytest.mark.parametrize("method,a,b_val,expected", [
    ("add", 3, 4, 7),
    ("sub", 3, 4, -1),
    ("mul", -3, 4, -12),
    ("and_", 0b1100, 0b1010, 0b1000),
    ("or_", 0b1100, 0b1010, 0b1110),
    ("xor", 0b1100, 0b1010, 0b0110),
    ("slt", 2, 3, 1),
    ("slt", 3, 2, 0),
    ("sle", 3, 3, 1),
    ("seq", 5, 5, 1),
    ("seq", 5, 6, 0),
    ("sll", 3, 4, 48),
    ("srl", 48, 4, 3),
])
def test_int_reg_ops(method, a, b_val, expected):
    assert eval_int_op(
        lambda b, rd, rs1, rs2: getattr(b, method)(rd, rs1, rs2),
        a, b_val,
    ) == expected


@pytest.mark.parametrize("a,b_val,q,r", [
    (7, 2, 3, 1),
    (-7, 2, -3, -1),     # truncation toward zero, C style
    (7, -2, -3, 1),
    (-7, -2, 3, -1),
    (63, 16, 3, 15),
    (-63, 16, -3, -15),
])
def test_div_rem_truncating(a, b_val, q, r):
    assert eval_int_op(lambda b, rd, x, y: b.div(rd, x, y), a, b_val) == q
    assert eval_int_op(lambda b, rd, x, y: b.rem(rd, x, y), a, b_val) == r


def test_div_by_zero_raises():
    with pytest.raises(ExecutionError):
        eval_int_op(lambda b, rd, x, y: b.div(rd, x, y), 1, 0)


@pytest.mark.parametrize("method,imm,a,expected", [
    ("addi", 5, 10, 15),
    ("muli", 3, 10, 30),
    ("andi", 0b0110, 0b1100, 0b0100),
    ("ori", 0b0110, 0b1000, 0b1110),
    ("xori", 1, 0, 1),
    ("slti", 5, 4, 1),
    ("slti", 5, 5, 0),
    ("slli", 2, 3, 12),
    ("srli", 2, 12, 3),
    ("srai", 2, 12, 3),
])
def test_int_imm_ops(method, imm, a, expected):
    b = AsmBuilder()
    x, z = b.ireg(), b.ireg()
    b.li(x, a)
    getattr(b, method)(z, x, imm)
    assert run_program(b).regs[z] == expected


@pytest.mark.parametrize("method,a,b_val,expected", [
    ("fadd", 1.5, 2.25, 3.75),
    ("fsub", 1.5, 2.25, -0.75),
    ("fmul", 1.5, 2.0, 3.0),
    ("fdiv", 3.0, 2.0, 1.5),
    ("fmin", 1.0, 2.0, 1.0),
    ("fmax", 1.0, 2.0, 2.0),
])
def test_fp_reg_ops(method, a, b_val, expected):
    assert eval_fp_op(
        lambda b, rd, rs1, rs2: getattr(b, method)(rd, rs1, rs2),
        a, b_val,
    ) == expected


@pytest.mark.parametrize("method,a,b_val,expected", [
    ("flt", 1.0, 2.0, 1),
    ("flt", 2.0, 1.0, 0),
    ("fle", 2.0, 2.0, 1),
    ("feq", 2.0, 2.0, 1),
    ("feq", 2.0, 2.5, 0),
])
def test_fp_compares_write_int_reg(method, a, b_val, expected):
    b = AsmBuilder()
    f, g = b.freg(), b.freg()
    z = b.ireg()
    b.fli(f, a)
    b.fli(g, b_val)
    getattr(b, method)(z, f, g)
    assert run_program(b).regs[z] == expected


def test_fp_unary_ops():
    b = AsmBuilder()
    f, g, h, k = b.freg(), b.freg(), b.freg(), b.freg()
    b.fli(f, -2.25)
    b.fneg(g, f)
    b.fabs_(h, f)
    b.fli(k, 9.0)
    b.fsqrt(k, k)
    state = run_program(b)
    assert state.regs[g] == 2.25
    assert state.regs[h] == 2.25
    assert state.regs[k] == 3.0


def test_fsqrt_negative_raises():
    b = AsmBuilder()
    f = b.freg()
    b.fli(f, -1.0)
    b.fsqrt(f, f)
    with pytest.raises(ExecutionError):
        run_program(b)


def test_fdiv_by_zero_raises():
    with pytest.raises(ExecutionError):
        eval_fp_op(lambda b, rd, x, y: b.fdiv(rd, x, y), 1.0, 0.0)


def test_conversions():
    b = AsmBuilder()
    x = b.ireg()
    f = b.freg()
    y = b.ireg()
    b.li(x, 7)
    b.cvtif(f, x)
    b.fli(f2 := b.freg(), 2.0)
    b.fdiv(f, f, f2)      # 3.5
    b.cvtfi(y, f)         # truncate -> 3
    state = run_program(b)
    assert state.regs[y] == 3
    assert state.regs[f] == 3.5


def test_cvtfi_truncates_toward_zero():
    b = AsmBuilder()
    f = b.freg()
    y = b.ireg()
    b.fli(f, -3.7)
    b.cvtfi(y, f)
    assert run_program(b).regs[y] == -3


def test_register_zero_is_immutable():
    b = AsmBuilder()
    x = b.ireg()
    b.li(x, 5)
    b.emit(Op.ADDI, rd=0, rs1=x, imm=0)  # attempt to write r0
    b.add(x, b.zero, b.zero)
    assert run_program(b).regs[x] == 0


def test_jal_writes_link_register():
    p = Program("t")
    p.define_label("target")
    p.append(Instruction(Op.JAL, rd=31, label="target"))
    p.append(Instruction(Op.HALT))
    p.seal()
    state = ThreadState(tid=0, program=p)
    execute_instruction(state, SharedMemory())
    assert state.regs[31] == 1
    assert state.pc == 0


def test_pc_out_of_range_raises():
    p = Program("t")
    p.seal()
    state = ThreadState(tid=0, program=p)
    state.pc = 99
    with pytest.raises(ExecutionError):
        execute_instruction(state, SharedMemory())


def test_sync_op_not_executable_functionally():
    p = Program("t")
    p.append(Instruction(Op.LOCK, rs1=1))
    p.seal()
    state = ThreadState(tid=0, program=p)
    with pytest.raises(ExecutionError):
        execute_instruction(state, SharedMemory())


def test_unsealed_program_rejected():
    p = Program("t")
    p.append(Instruction(Op.NOP))
    with pytest.raises(ExecutionError):
        ThreadState(tid=0, program=p)


def test_instruction_count_increments():
    b = AsmBuilder()
    x = b.ireg()
    b.li(x, 1)
    b.addi(x, x, 1)
    state = run_program(b)
    assert state.instructions_executed == 2
