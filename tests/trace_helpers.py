"""Builders for hand-crafted synthetic traces used by the CPU-model tests.

These make processor-timing tests precise: a trace is constructed
instruction by instruction with known stalls, and the expected cycle
counts can be derived by hand.
"""

from __future__ import annotations

from repro.isa import MemClass, Op
from repro.tango import Trace, TraceRecord


class TraceBuilder:
    """Builds a :class:`Trace` one synthetic record at a time."""

    def __init__(self) -> None:
        self.trace = Trace(cpu=0)
        self._pc = 0

    def _emit(self, **kwargs) -> TraceRecord:
        pc = kwargs.pop("pc", self._pc)
        next_pc = kwargs.pop("next_pc", pc + 1)
        record = TraceRecord(pc=pc, next_pc=next_pc, **kwargs)
        self.trace.append(record)
        self._pc = next_pc
        return record

    def alu(self, rd: int = -1, rs1: int = -1, rs2: int = -1):
        """One single-cycle integer instruction."""
        return self._emit(op=Op.ADD, rd=rd, rs1=rs1, rs2=rs2)

    def fp(self, rd: int = -1, rs1: int = -1, rs2: int = -1):
        return self._emit(op=Op.FADD, rd=rd, rs1=rs1, rs2=rs2)

    def load(self, rd: int = -1, addr: int = 0x1000, stall: int = 0,
             rs1: int = -1):
        return self._emit(
            op=Op.LW, rd=rd, rs1=rs1, addr=addr, stall=stall,
            mem_class=MemClass.READ,
        )

    def store(self, rs2: int = -1, addr: int = 0x1000, stall: int = 0,
              rs1: int = -1):
        return self._emit(
            op=Op.SW, rs1=rs1, rs2=rs2, addr=addr, stall=stall,
            mem_class=MemClass.WRITE,
        )

    def acquire(self, addr: int = 0x2000, stall: int = 50, wait: int = 0):
        return self._emit(
            op=Op.LOCK, rs1=1, addr=addr, stall=stall, wait=wait,
            mem_class=MemClass.ACQUIRE,
        )

    def release(self, addr: int = 0x2000, stall: int = 50):
        return self._emit(
            op=Op.UNLOCK, rs1=1, addr=addr, stall=stall,
            mem_class=MemClass.RELEASE,
        )

    def barrier(self, addr: int = 0x3000, stall: int = 50, wait: int = 0):
        return self._emit(
            op=Op.BARRIER, rs1=1, addr=addr, stall=stall, wait=wait,
            mem_class=MemClass.BARRIER,
        )

    def branch(self, taken: bool = False, target: int | None = None,
               rs1: int = -1, rs2: int = -1):
        pc = self._pc
        if taken:
            next_pc = target if target is not None else pc + 2
        else:
            next_pc = pc + 1
        return self._emit(
            op=Op.BNE, rs1=rs1, rs2=rs2, pc=pc, next_pc=next_pc
        )

    def build(self) -> Trace:
        return self.trace


def alu_block(tb: TraceBuilder, count: int) -> None:
    """Append ``count`` independent single-cycle instructions."""
    for _ in range(count):
        tb.alu()
